module N = Bignum.Nat
module BG = Batch_gcd

type caps = { incremental : bool; sharded : bool }

type t = {
  name : string;
  doc : string;
  caps : caps;
  factor :
    ?pool:Parallel.Pool.t -> ?domains:int -> N.t array -> BG.finding list;
}

exception Unknown_backend of string

let default_subsets = 16

let tree =
  {
    name = "tree";
    doc = "Bernstein product/remainder trees (one tree, mod-square descent)";
    caps = { incremental = true; sharded = true };
    factor = BG.factor_batch;
  }

let ksubset_k k =
  {
    name = "ksubset";
    doc =
      Printf.sprintf
        "the paper's k-subset split (k=%d trees, k^2 reduction jobs)" k;
    caps = { incremental = false; sharded = false };
    factor = (fun ?pool ?domains moduli -> BG.factor_subsets ?pool ?domains ~k moduli);
  }

let ksubset = ksubset_k default_subsets

let all_to_all =
  {
    name = "all_to_all";
    doc = "Pelofske all-to-all node-pair pruning (no remainder trees)";
    caps = { incremental = true; sharded = true };
    factor = All_to_all.factor;
  }

let builtin = [ tree; ksubset; all_to_all ]

let names () = List.map (fun b -> b.name) builtin
let find name = List.find_opt (fun b -> String.equal b.name name) builtin

let get name =
  match find name with Some b -> b | None -> raise (Unknown_backend name)

let factor b = b.factor

(* ------------------------------------------------------------------ *)
(* Selection policy                                                    *)
(* ------------------------------------------------------------------ *)

let env_var = "WEAKKEYS_BACKEND"
let threshold_var = "WEAKKEYS_ALL_TO_ALL_THRESHOLD"
let default_all_to_all_threshold = 48

let all_to_all_threshold () =
  match Sys.getenv_opt threshold_var with
  | None | Some "" -> default_all_to_all_threshold
  | Some s -> (
    match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | _ ->
      invalid_arg
        (Printf.sprintf "%s must be a non-negative integer, got `%s`"
           threshold_var s))

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some name -> Some (get name)

let capable purpose b =
  match purpose with
  | `Shard -> b.caps.sharded
  | `Delta -> b.caps.incremental

let select ?override ~purpose ~n () =
  match override with
  | Some name ->
    let b = get name in
    if capable purpose b then b
    else
      invalid_arg
        (Printf.sprintf
           "Batchgcd.Backend: `%s` cannot run as a %s backend" name
           (match purpose with `Shard -> "per-shard" | `Delta -> "delta"))
  | None -> (
    match of_env () with
    | Some b when capable purpose b -> b
    | Some _ | None ->
      if n <= all_to_all_threshold () then all_to_all else tree)
