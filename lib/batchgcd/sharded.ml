module N = Bignum.Nat
module PT = Product_tree
module RT = Remainder_tree
module Pool = Parallel.Pool
module BG = Batch_gcd
module Inc = Incremental
module Io = Corpus.Io
module Store = Corpus.Store

(* Shard forests restore lazily: [load_dir] only records the file, and
   the first sweep that needs a shard's trees pulls them in. *)
type forest = Loaded of Inc.t | On_disk of string

type slot = { goff : int; size : int; mutable forest : forest }

type t = {
  stride : int;
  total : int;
  slots : slot array;
  findings : BG.finding list; (* global index order *)
  store : Store.t; (* ids are exactly the global sweep indexes *)
  mutable uses : (string * int) list;
      (* backend name -> job count of the most recent sweep/extend;
         observability for the selection policy, never persisted *)
}

let default_stride = 65536
let is_pow2 n = n > 0 && n land (n - 1) = 0

let resolve_pool pool domains =
  match pool with Some p -> p | None -> Pool.get ?domains ()

let findings t = t.findings
let corpus_size t = t.total
let stride t = t.stride
let shard_count t = Array.length t.slots
let store t = t.store
let corpus t = Store.to_array t.store
let find t m = Store.find t.store m

let backend_uses t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.uses

let tally names =
  List.fold_left
    (fun acc name ->
      let n = Option.value ~default:0 (List.assoc_opt name acc) in
      (name, n + 1) :: List.remove_assoc name acc)
    [] names

let loaded_shards t =
  Array.fold_left
    (fun acc slot -> match slot.forest with Loaded _ -> acc + 1 | On_disk _ -> acc)
    0 t.slots

let force slot =
  match slot.forest with
  | Loaded inc -> inc
  | On_disk path ->
      let ic =
        try open_in_bin path
        with Sys_error _ -> raise (Io.Corrupt "shard forest file unreadable")
      in
      let inc =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> Inc.load ic)
      in
      if Inc.corpus_size inc <> slot.size then
        raise (Io.Corrupt "shard forest size disagrees with meta");
      slot.forest <- Loaded inc;
      inc

let segment_count t =
  Array.fold_left (fun acc slot -> acc + Inc.segment_count (force slot)) 0 t.slots

(* Findings of one shard, with indexes rebased to the shard. *)
let slice findings goff size =
  List.filter_map
    (fun f ->
      if f.BG.index >= goff && f.BG.index < goff + size then
        Some { f with BG.index = f.BG.index - goff }
      else None)
    findings

let intern_delta store base fresh =
  Array.iteri
    (fun i m ->
      if Store.intern store m <> base + i then
        invalid_arg "Batchgcd.Sharded: moduli must be distinct (dedup first)")
    fresh

let create ?pool ?domains ?backend ?(shard_backend = fun _ -> None)
    ?(stride = default_stride) moduli =
  if not (is_pow2 stride) then
    invalid_arg "Batchgcd.Sharded.create: stride must be a power of two";
  let n = Array.length moduli in
  let store = Store.create ~size:(Stdlib.min n 65536) ~stride () in
  intern_delta store 0 moduli;
  if n = 0 then { stride; total = 0; slots = [||]; findings = []; store; uses = [] }
  else begin
    let pool = resolve_pool pool domains in
    let nshards = (n + stride - 1) / stride in
    let shards = Array.init nshards (fun s -> s) in
    let chunk s =
      let off = s * stride in
      Array.sub moduli off (Stdlib.min stride (n - off))
    in
    (* Per-shard descent choice, resolved up front (the policy reads
       the environment; keep that out of the pool jobs): a per-shard
       override beats the sweep-wide [backend], which beats
       WEAKKEYS_BACKEND, which beats the size threshold. *)
    let chosen =
      Array.map
        (fun s ->
          let size = Stdlib.min stride (n - (s * stride)) in
          let override =
            match shard_backend s with Some name -> Some name | None -> backend
          in
          (Backend.select ?override ~purpose:`Shard ~n:size ()).Backend.name)
        shards
    in
    (* Tier 1: one product tree per shard, each an independent pool
       job (the per-job kernels still take the pool; nested calls from
       inside workers degrade to serial automatically). *)
    let trees = Pool.map ~pool (fun s -> PT.build ~pool (chunk s)) shards in
    (* Tier 2: an upper tree over the shard roots carries the global
       product P down to w_s = P mod root_s^2. Every modulus m of
       shard s divides root_s, so m^2 | root_s^2 and the per-shard
       step from w_s ends at exactly P mod m^2 — the same z that
       [factor_batch]'s single-tree descent computes. *)
    let upper = PT.build ~pool (Array.map PT.root trees) in
    PT.precompute ~pool ~squares:true upper;
    let ws = RT.remainders_mod_square ~pool upper (PT.root upper) in
    (* Cross-shard sweep: per-shard jobs are independent; a tree's
       lazy Barrett caches are filled by its one job only. The [tree]
       backend descends the shard's remainder tree; [all_to_all]
       reduces every leaf against w_s directly (the all-to-all row of
       the shard against the whole corpus) — no interior descent, a
       better fit for small shards. *)
    let divisors =
      Pool.map ~pool
        (fun s ->
          let tree = trees.(s) in
          let leaves = PT.leaves tree in
          if String.equal chosen.(s) Backend.all_to_all.Backend.name then
            Array.map
              (fun m ->
                let z = N.rem ws.(s) (N.sqr m) in
                N.gcd m (BG.own_subset_component m z))
              leaves
          else
            Array.mapi
              (fun l z ->
                let m = leaves.(l) in
                N.gcd m (BG.own_subset_component m z))
              (RT.remainders_mod_square ~pool tree ws.(s)))
        shards
    in
    let findings = BG.collect (Array.concat (Array.to_list divisors)) moduli in
    let slots =
      Array.init nshards (fun s ->
          let goff = s * stride in
          let size = Stdlib.min stride (n - goff) in
          let inc =
            Inc.of_segments ~findings:(slice findings goff size)
              [| (0, trees.(s)) |]
          in
          { goff; size; forest = Loaded inc })
    in
    { stride; total = n; slots; findings; store;
      uses = tally (Array.to_list chosen) }
  end

(* One corpus-wide view of the forest: every shard's segments
   re-offset by the shard's global base. *)
let flat_view t =
  let segs =
    Array.concat
      (Array.to_list
         (Array.map
            (fun slot ->
              Array.map
                (fun (off, tree) -> (slot.goff + off, tree))
                (Inc.segments (force slot)))
            t.slots))
  in
  Inc.of_segments ~findings:t.findings segs

(* Split the corpus-wide forest back into per-shard slots. Chunking
   respects shard boundaries, so no segment ever straddles one. *)
let reslot t total flat =
  let findings = Inc.findings flat in
  let segs = Inc.segments flat in
  let nshards = (total + t.stride - 1) / t.stride in
  let slots =
    Array.init nshards (fun s ->
        let goff = s * t.stride in
        let size = Stdlib.min t.stride (total - goff) in
        let local =
          Array.to_list (Array.copy segs)
          |> List.filter_map (fun (off, tree) ->
                 if off >= goff && off < goff + size then Some (off - goff, tree)
                 else None)
        in
        let inc =
          Inc.of_segments ~findings:(slice findings goff size)
            (Array.of_list local)
        in
        { goff; size; forest = Loaded inc })
  in
  { t with total; slots; findings }

let extend ?pool ?domains ?backend t fresh =
  let nf = Array.length fresh in
  if nf = 0 then t
  else if t.total = 0 then create ?pool ?domains ?backend ~stride:t.stride fresh
  else begin
    let pool = resolve_pool pool domains in
    intern_delta t.store t.total fresh;
    (* Chunk the delta at shard boundaries: top up the tail shard,
       then whole strides. Each chunk is folded in by
       [Incremental.extend] over the corpus-wide forest view, so every
       step — and by induction the whole extend — is findings-equal to
       a full recompute. The delta strategy is chosen per chunk by the
       same policy as the sweep: a small fresh delta drops to the
       all-to-all segment-pruning path, a bulk top-up stays on
       remainder trees. *)
    let room =
      let cap = (t.total + t.stride - 1) / t.stride * t.stride in
      cap - t.total
    in
    let rec chunks off =
      if off >= nf then []
      else
        let len =
          if off = 0 && room > 0 then Stdlib.min room nf
          else Stdlib.min t.stride (nf - off)
        in
        Array.sub fresh off len :: chunks (off + len)
    in
    let parts = chunks 0 in
    let strategies =
      List.map
        (fun part ->
          (Backend.select ?override:backend ~purpose:`Delta
             ~n:(Array.length part) ())
            .Backend.name)
        parts
    in
    let flat =
      List.fold_left2
        (fun acc part strategy -> Inc.extend ~pool ~backend:strategy acc part)
        (flat_view t) parts strategies
    in
    let t' = reslot t (t.total + nf) flat in
    t'.uses <- tally strategies;
    t'
  end

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "weakkeys-sharded/1"

let write_findings oc findings =
  Io.write_int oc (List.length findings);
  List.iter
    (fun f ->
      Io.write_int oc f.BG.index;
      Io.write_nat oc f.BG.modulus;
      Io.write_nat oc f.BG.divisor)
    findings

let read_findings ic total =
  let nf = Io.read_int ic in
  let out = ref [] in
  for _ = 1 to nf do
    let index = Io.read_int ic in
    if index < 0 || index >= total then
      raise (Io.Corrupt "finding index out of corpus range");
    let modulus = Io.read_nat ic in
    let divisor = Io.read_nat ic in
    out := { BG.index; modulus; divisor } :: !out
  done;
  List.rev !out

let read_header ic =
  if not (String.equal (Io.read_string ic) magic) then
    raise (Io.Corrupt "not a sharded-GCD checkpoint");
  let stride = Io.read_int ic in
  if not (is_pow2 stride) then
    raise (Io.Corrupt "shard stride is not a power of two");
  let total = Io.read_int ic in
  (stride, total, read_findings ic total)

(* Eager single-stream form, for Stage.run_cached. *)
let save oc t =
  Io.write_string oc magic;
  Io.write_int oc t.stride;
  Io.write_int oc t.total;
  write_findings oc t.findings;
  Io.write_int oc (Array.length t.slots);
  Array.iter (fun slot -> Inc.save oc (force slot)) t.slots

let load ic =
  let stride, total, findings = read_header ic in
  let nslots = Io.read_int ic in
  if nslots <> (total + stride - 1) / stride then
    raise (Io.Corrupt "shard count disagrees with corpus size");
  let store = Store.create ~size:(Stdlib.min total 65536) ~stride () in
  let slots =
    Array.init nslots (fun s ->
        let goff = s * stride in
        let size = Stdlib.min stride (total - goff) in
        let inc = Inc.load ic in
        if Inc.corpus_size inc <> size then
          raise (Io.Corrupt "shard forest size disagrees with meta");
        Array.iteri
          (fun l m ->
            if Store.intern store m <> goff + l then
              raise (Io.Corrupt "duplicate modulus across shards"))
          (Inc.corpus inc);
        { goff; size; forest = Loaded inc })
  in
  { stride; total; slots; findings; store; uses = [] }

(* Directory form: the corpus shards are the Store's mapped arenas, so
   reopening is O(shard count) — forests stay on disk until a sweep
   needs them. *)

let forest_file dir s = Filename.concat dir (Printf.sprintf "forest-%04d.ckpt" s)
let sweep_file dir = Filename.concat dir "sweep"

let save_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Store.save t.store dir;
  Array.iteri
    (fun s slot ->
      let path = forest_file dir s in
      match slot.forest with
      | On_disk p when String.equal p path -> ()
      | _ ->
          let inc = force slot in
          let tmp = path ^ ".tmp" in
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> Inc.save oc inc);
          Sys.rename tmp path)
    t.slots;
  let tmp = sweep_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Io.write_string oc magic;
      Io.write_int oc t.stride;
      Io.write_int oc t.total;
      write_findings oc t.findings);
  Sys.rename tmp (sweep_file dir)

let load_dir dir =
  let store = Store.load dir in
  let ic = open_in_bin (sweep_file dir) in
  let stride, total, findings =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_header ic)
  in
  if stride <> Store.stride store then
    raise (Io.Corrupt "sweep stride disagrees with corpus shards");
  if total <> Store.size store then
    raise (Io.Corrupt "sweep size disagrees with corpus shards");
  let nshards = (total + stride - 1) / stride in
  let slots =
    Array.init nshards (fun s ->
        if not (Sys.file_exists (forest_file dir s)) then
          raise (Io.Corrupt "missing shard forest file");
        let goff = s * stride in
        {
          goff;
          size = Stdlib.min stride (total - goff);
          forest = On_disk (forest_file dir s);
        })
  in
  { stride; total; slots; findings; store; uses = [] }

let is_dir_checkpoint dir = Sys.file_exists (sweep_file dir)
