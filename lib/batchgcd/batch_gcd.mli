(** Batch GCD: find every modulus in a set that shares a prime factor
    with any other, in quasilinear time (paper Section 3.2).

    Three implementations with identical results:
    - {!naive}: quadratic modular accumulation, the baseline the paper
      calls infeasible at scale;
    - {!factor_batch}: Bernstein product/remainder trees;
    - {!factor_subsets}: the paper's k-subset modification that trades
      total work (quadratic in [k]) for cluster parallelism and a
      smaller peak tree.

    Inputs are expected to be distinct; duplicates are reported with
    the whole modulus as divisor (see {!dedup}). *)

type finding = {
  index : int;  (** position in the input array *)
  modulus : Bignum.Nat.t;
  divisor : Bignum.Nat.t;
      (** [gcd (modulus, product of all other inputs)]; strictly
          between 1 and the modulus for the classic shared-prime case,
          equal to the modulus when every prime is shared (IBM-style
          cliques or duplicate inputs) *)
}

val dedup : Bignum.Nat.t array -> Bignum.Nat.t array
(** Sort-free deduplication preserving first occurrence order. *)

val naive : Bignum.Nat.t array -> finding list
(** O(n^2): for each modulus, accumulate the product of all others
    modulo it, then one GCD. *)

val naive_pairwise_hits : Bignum.Nat.t array -> (int * int * Bignum.Nat.t) list
(** Every pair (i, j, gcd) with a nontrivial common divisor — O(n^2)
    GCDs; useful for tests and for post-processing small flagged
    sets. *)

val factor_batch :
  ?pool:Parallel.Pool.t -> ?domains:int -> Bignum.Nat.t array -> finding list
(** Single product tree + remainder tree, with level-parallel kernels
    run on [pool] ([domains] sizes a memoized pool when no explicit
    pool is given; default {!Parallel.Pool.default_domains}). *)

val factor_subsets :
  ?pool:Parallel.Pool.t ->
  ?domains:int -> k:int -> Bignum.Nat.t array -> finding list
(** The distributed variant: split the input into [k] subsets, build a
    product per subset, and reduce every product through every
    subset's tree ([k^2] jobs, run on the domain pool). [k] is clamped
    to the input size. Results are identical to {!factor_batch}. *)

val findings_equal : finding list -> finding list -> bool
(** Order-insensitive comparison, for cross-implementation tests. *)

(**/**)

val factor_subsets_trees :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  k:int ->
  Bignum.Nat.t array ->
  (int * Product_tree.t) array * finding list
(** {!factor_subsets} that also returns the per-subset product trees
    (with their leaf offset into the input array) so {!Incremental}
    can seed its segment forest without rebuilding them. Subsets are
    contiguous: concatenating the segments' leaves in offset order
    reproduces the input. *)

val own_subset_component : Bignum.Nat.t -> Bignum.Nat.t -> Bignum.Nat.t
(** [own_subset_component m z] with [z = P mod m^2] and [m | P] is
    [(P / m) mod m] — the contribution of [m]'s own subset to its
    accumulated cofactor product. Shared with {!Incremental}. *)

val collect : Bignum.Nat.t array -> Bignum.Nat.t array -> finding list
(** [collect divisors moduli] keeps the nontrivial per-index divisors
    as findings, in index order. Shared with {!Incremental}. *)
