(** Batch GCD over an id-range-sharded corpus.

    The corpus lives in a {!Corpus.Store} whose dense ids are the
    global sweep indexes: with a power-of-two [stride], shard [s]
    covers ids [s*stride, (s+1)*stride). Each shard keeps its own
    segment forest ({!Incremental.t}), and the full sweep runs
    two-tier: per-shard product trees as independent {!Parallel.Pool}
    jobs, an upper tree over the shard roots to carry the global
    product down to each shard (w_s = P mod root_s^2), then per-shard
    mod-square descents — the same per-modulus z values as
    {!Batch_gcd.factor_batch}, so findings are exactly equal.

    {!save_dir} writes the corpus as mapped limb arenas plus one
    forest checkpoint per shard; {!load_dir} reopens the arenas with
    [Unix.map_file] and leaves forests on disk, so a million-modulus
    checkpoint opens in O(shard count) and is immediately queryable
    ({!find}, {!findings}). Forests load lazily when {!extend} (or
    {!segment_count}) needs them.

    Moduli must be distinct across the whole corpus (dedup first, as
    [Weakkeys.Pipeline] and the CLI do); a duplicate raises
    [Invalid_argument]. Like {!Incremental}, values are single-writer:
    {!extend} returns the new state and invalidates the old one (they
    share the underlying store). *)

type t

val default_stride : int
(** 65536. *)

val create :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?backend:string ->
  ?shard_backend:(int -> string option) ->
  ?stride:int ->
  Bignum.Nat.t array ->
  t
(** Full two-tier sweep. [stride] (default {!default_stride}) must be
    a power of two. Each shard's within-shard reduction from
    [w_s = P mod root_s^2] is chosen by {!Backend.select}: a
    [shard_backend s] override beats the sweep-wide [backend], which
    beats [WEAKKEYS_BACKEND], which beats the size threshold (small
    shards reduce each leaf against [w_s] directly, all-to-all style;
    big ones descend the remainder tree). Findings are identical
    whichever ran — see {!backend_uses} for what was picked.
    @raise Backend.Unknown_backend on an unknown backend name.
    @raise Invalid_argument on one without the sharded capability. *)

val extend :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?backend:string ->
  t ->
  Bignum.Nat.t array ->
  t
(** Fold new moduli in: the delta is chunked at shard boundaries (tail
    shard topped up first, then whole strides) and each chunk folded
    through the corpus-wide forest by {!Incremental.extend}, so the
    result is findings-equal to a full recompute. Loads any on-disk
    shard forests first. Each chunk's delta strategy comes from
    {!Backend.select} ([backend] > [WEAKKEYS_BACKEND] > size
    threshold): a small fresh delta goes through the all-to-all
    segment-pruning path, a bulk top-up through remainder trees. *)

val backend_uses : t -> (string * int) list
(** Backend name -> job count of the most recent sweep or extend on
    this value (sorted by name; empty on a loaded checkpoint) — how
    the per-shard selection policy actually decided. Not persisted. *)

val findings : t -> Batch_gcd.finding list
(** Current findings, in global index order. *)

val corpus_size : t -> int
val stride : t -> int
val shard_count : t -> int

val segment_count : t -> int
(** Total segments across all shard forests (loads them). *)

val loaded_shards : t -> int
(** How many shard forests are resident — observability for the lazy
    restore path. *)

val store : t -> Corpus.Store.t
(** The backing store; ids are global sweep indexes. *)

val corpus : t -> Bignum.Nat.t array
(** Every modulus in id order (a fresh array — materialises the whole
    corpus; prefer {!store} at scale). *)

val find : t -> Bignum.Nat.t -> int option
(** Global id of a modulus, if ingested. *)

val save : out_channel -> t -> unit
(** Eager single-stream checkpoint (the {!Weakkeys.Stage} cache
    format). Loads any on-disk shard forests first. *)

val load : in_channel -> t
(** @raise Corpus.Io.Corrupt on a malformed checkpoint. *)

val save_dir : t -> string -> unit
(** Directory checkpoint: corpus arenas ({!Corpus.Store.save}, mapped
    shards skipped), one [forest-NNNN.ckpt] per shard (skipped while
    still on disk from the same directory), and a [sweep] metadata
    file (stride, total, findings) — each atomically via tmp+rename. *)

val load_dir : string -> t
(** Reopen a directory checkpoint in O(shard count): arenas are
    mapped, findings read from [sweep], forests left on disk.
    @raise Corpus.Io.Corrupt on damaged or inconsistent files. *)

val is_dir_checkpoint : string -> bool
(** Whether a directory holds a {!save_dir} checkpoint (the CLI's
    auto-detect between sharded and legacy single-file state). *)
