module N = Bignum.Nat
module Pool = Parallel.Pool

type finding = { index : int; modulus : N.t; divisor : N.t }

let resolve_pool pool domains =
  match pool with Some p -> p | None -> Pool.get ?domains ()

let dedup moduli =
  let store = Corpus.Store.create ~size:(Array.length moduli) () in
  Array.iter (fun m -> ignore (Corpus.Store.intern store m)) moduli;
  Corpus.Store.to_array store

let finding_of index modulus divisor =
  if N.is_one divisor || N.is_zero divisor then None
  else Some { index; modulus; divisor }

let collect per_index_divisors moduli =
  let out = ref [] in
  for i = Array.length moduli - 1 downto 0 do
    match finding_of i moduli.(i) per_index_divisors.(i) with
    | Some f -> out := f :: !out
    | None -> ()
  done;
  !out

let naive moduli =
  let n = Array.length moduli in
  let divisors =
    Array.init n (fun i ->
        let m = moduli.(i) in
        let acc = ref N.one in
        for j = 0 to n - 1 do
          if j <> i then acc := N.rem (N.mul !acc (N.rem moduli.(j) m)) m
        done;
        N.gcd m !acc)
  in
  collect divisors moduli

let naive_pairwise_hits moduli =
  let n = Array.length moduli in
  let hits = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let g = N.gcd moduli.(i) moduli.(j) in
      if not (N.is_one g) then hits := (i, j, g) :: !hits
    done
  done;
  !hits

(* Divisor of leaf [m] from its own subset's remainder-mod-square:
   z = P mod m^2 is divisible by m, and z/m = (P/m) mod m. *)
let own_subset_component m z =
  let y, r = N.divmod z m in
  assert (N.is_zero r);
  y

let factor_batch ?pool ?domains moduli =
  let n = Array.length moduli in
  if n = 0 then []
  else begin
    let pool = resolve_pool pool domains in
    let tree = Product_tree.build ~pool moduli in
    let p = Product_tree.root tree in
    let zs = Remainder_tree.remainders_mod_square ~pool tree p in
    (* The leaf step the whole pipeline funnels into: one N.gcd per
       modulus, at modulus-sized operands — N.gcd dispatches these to
       the Lehmer kernel past WEAKKEYS_HGCD_THRESHOLD limbs (the
       gcd-outside-nat lint keeps that dispatch unbypassed). *)
    let divisors =
      Array.init n (fun i ->
          N.gcd moduli.(i) (own_subset_component moduli.(i) zs.(i)))
    in
    collect divisors moduli
  end

let factor_subsets_trees ?pool ?domains ~k moduli =
  let n = Array.length moduli in
  if n = 0 then ([||], [])
  else begin
    let pool = resolve_pool pool domains in
    let k = Stdlib.max 1 (Stdlib.min k n) in
    (* Contiguous split; subset s covers [starts.(s), starts.(s+1)). *)
    let starts =
      Array.init (k + 1) (fun s -> s * n / k)
    in
    let subset s = Array.sub moduli starts.(s) (starts.(s + 1) - starts.(s)) in
    (* Outer parallelism is across subsets; the per-job tree kernels
       also receive the pool, so whichever level has spare domains
       (k = 1, or a single huge subset) still scales. Nested calls
       from inside pool workers degrade to serial automatically. *)
    let trees =
      Pool.map ~pool (fun s -> Product_tree.build ~pool (subset s))
        (Array.init k (fun s -> s))
    in
    let products = Array.map Product_tree.root trees in
    (* Barrett tables for every subset tree, built before the k^2
       parallel descents: each tree is descended k times (once
       mod-square, k-1 plain) so the reciprocals amortise, and eager
       building keeps the trees' lazy caches single-writer — the gang
       hand-off below publishes them to the workers. *)
    Array.iter
      (fun tree ->
        Product_tree.precompute ~pool ~squares:true tree;
        Product_tree.precompute ~pool ~squares:false tree)
      trees;
    (* k^2 reduction jobs: product j through tree i. Own-subset pairs
       use the mod-square descent; cross pairs plain remainders. *)
    let jobs =
      Array.init (k * k) (fun idx -> (idx / k, idx mod k))
    in
    let job (i, j) =
      let tree = trees.(i) in
      let contributions =
        if i = j then
          Array.mapi
            (fun l z -> own_subset_component (Product_tree.leaves tree).(l) z)
            (Remainder_tree.remainders_mod_square ~pool tree products.(j))
        else Remainder_tree.remainders ~pool tree products.(j)
      in
      (i, contributions)
    in
    let pieces = Pool.map ~pool job jobs in
    (* Merge: for global index g in subset i, the divisor is
       gcd(m, prod over j of contribution_ij mod m) — identical to the
       single-tree accumulation. *)
    let acc = Array.map (fun _ -> N.one) moduli in
    Array.iter
      (fun (i, contributions) ->
        Array.iteri
          (fun l c ->
            let g = starts.(i) + l in
            let m = moduli.(g) in
            acc.(g) <- N.rem (N.mul acc.(g) (N.rem c m)) m)
          contributions)
      pieces;
    let divisors = Array.mapi (fun g m -> N.gcd m acc.(g)) moduli in
    let segments = Array.mapi (fun s tree -> (starts.(s), tree)) trees in
    (segments, collect divisors moduli)
  end

let factor_subsets ?pool ?domains ~k moduli =
  snd (factor_subsets_trees ?pool ?domains ~k moduli)

let findings_equal a b =
  let cmp f g =
    match Int.compare f.index g.index with
    | 0 -> (
      match N.compare f.modulus g.modulus with
      | 0 -> N.compare f.divisor g.divisor
      | c -> c)
    | c -> c
  in
  let sort l = List.sort cmp l in
  List.equal (fun f g -> cmp f g = 0) (sort a) (sort b)
