(** Remainder trees: push a value down a product tree, reducing modulo
    the square of each node, to obtain [v mod leaf_i^2] for every leaf
    in quasilinear total time (Bernstein; as used in the paper's
    Section 3.2).

    Both descents are level-parallel: nodes within a level depend only
    on the level above, so they reduce concurrently on the given pool
    (default: the process-wide {!Parallel.Pool.get} pool) under the
    same node-count/operand-width cutoff as {!Product_tree.build}.

    By default ([precomp = true]) each level's divisors go through the
    tree's cached Barrett precomps ({!Product_tree.sq_precomps} /
    {!Product_tree.node_precomps}): the reciprocal of every node is
    computed once per tree and each descent step becomes two multiplies
    instead of a division — Bernstein's scaled-remainder trick. The
    caches build lazily on the calling domain the first time a level is
    descended; precompute eagerly ({!Product_tree.precompute}) before
    running concurrent descents over one tree. [precomp = false]
    reproduces the plain division path exactly (kept for equivalence
    checks and the bench ablation). *)

val remainders_mod_square :
  ?pool:Parallel.Pool.t ->
  ?precomp:bool ->
  Product_tree.t ->
  Bignum.Nat.t ->
  Bignum.Nat.t array
(** [remainders_mod_square tree v] returns [v mod (leaf_i ^ 2)] for
    each leaf, by descending the tree: the root gets [v mod root^2],
    each child the parent's remainder reduced mod the child squared.
    (The precomp path skips the root squaring outright whenever
    [num_bits v] shows [v < root^2], which holds for every product of
    the tree's own leaves.) *)

val remainders :
  ?pool:Parallel.Pool.t ->
  ?precomp:bool ->
  Product_tree.t ->
  Bignum.Nat.t ->
  Bignum.Nat.t array
(** [remainders tree v] returns [v mod leaf_i] (no squaring); the
    cheaper variant used for cross-subset reductions in the
    distributed algorithm. *)
