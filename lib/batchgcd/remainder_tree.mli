(** Remainder trees: push a value down a product tree, reducing modulo
    the square of each node, to obtain [v mod leaf_i^2] for every leaf
    in quasilinear total time (Bernstein; as used in the paper's
    Section 3.2).

    Both descents are level-parallel: nodes within a level depend only
    on the level above, so they reduce concurrently on the given pool
    (default: the process-wide {!Parallel.Pool.get} pool) under the
    same node-count/operand-width cutoff as {!Product_tree.build}. *)

val remainders_mod_square :
  ?pool:Parallel.Pool.t -> Product_tree.t -> Bignum.Nat.t -> Bignum.Nat.t array
(** [remainders_mod_square tree v] returns [v mod (leaf_i ^ 2)] for
    each leaf, by descending the tree: the root gets [v mod root^2],
    each child the parent's remainder reduced mod the child squared. *)

val remainders :
  ?pool:Parallel.Pool.t -> Product_tree.t -> Bignum.Nat.t -> Bignum.Nat.t array
(** [remainders tree v] returns [v mod leaf_i] (no squaring); the
    cheaper variant used for cross-subset reductions in the
    distributed algorithm. *)
