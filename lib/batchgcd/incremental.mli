(** Incremental batch GCD over a growing corpus.

    The paper's measurement is longitudinal — new scan snapshots are
    folded into an 81 M-modulus corpus month after month — yet the
    product/remainder-tree cost of a full recompute is dominated by
    the {e old} corpus, exactly the part that does not change. This
    module keeps a {b segment forest}: one product tree per ingested
    batch (the k contiguous subset trees of
    {!Batch_gcd.factor_subsets} for the initial corpus, then one tree
    per {!extend} delta). Folding in [d] new moduli against [n] old
    ones costs one tree over the delta plus one remainder descent per
    segment — quasilinear in [n + d] with a small constant — instead
    of rebuilding the full forest.

    Results are {e exactly} the full-recompute findings, not an
    approximation: for an old modulus [m] with previous divisor
    [d_old] and delta product [P], the updated divisor
    [gcd (m, d_old * (P mod m))] equals
    [gcd (m, (product of all other moduli) mod m)] because
    [gcd (m, a*b) = gcd (m, gcd (m, a) * gcd (m, b))] holds
    prime-power by prime-power. Tests assert
    {!Batch_gcd.findings_equal} against a from-scratch run.

    Moduli must be distinct across the whole corpus (intern through
    {!Corpus.Store} first, as [Weakkeys.Pipeline] does); a duplicate
    is reported with the whole modulus as divisor, matching
    {!Batch_gcd.factor_batch} on an input containing duplicates. *)

type t
(** Cached state: the segment forest and the current findings. The
    corpus order (concatenated segment leaves) is the order moduli
    were first presented, so finding indexes are stable across
    {!extend} calls. *)

val create :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?backend:string ->
  ?k:int ->
  Bignum.Nat.t array ->
  t
(** Initial run. [backend] names the {!Backend} decomposition that
    seeds the forest: ["ksubset"] (the default) runs
    {!Batch_gcd.factor_subsets_trees} with [k] (default 1) subset
    trees, ["tree"] is its [k = 1] case, ["all_to_all"] sweeps a
    single tree by {!All_to_all} node-pair pruning. Findings are
    identical whichever seeded.
    @raise Backend.Unknown_backend on an unknown name. *)

val extend :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  ?backend:string ->
  t ->
  Bignum.Nat.t array ->
  t
(** [extend t fresh] folds a batch of new moduli into the corpus.
    The default ["tree"] strategy builds one product tree over
    [fresh], reduces its root through every cached segment tree
    (old-vs-new), every segment root through the fresh tree
    (new-vs-old) and the fresh root mod-square through the fresh tree
    (new-vs-new), then merges divisors with the cached findings. The
    ["all_to_all"] strategy instead prunes segment-vs-delta node
    pairs by gcd ({!All_to_all.cross_hits}) — one root gcd discharges
    an entire untouched segment, the shape that wins on small deltas
    against big corpora. Either way no old tree is rebuilt, findings
    equal a full recompute, and the input is returned unchanged when
    [fresh] is empty.
    @raise Backend.Unknown_backend on an unknown name.
    @raise Invalid_argument on a backend without the incremental
    capability (["ksubset"]). *)

val factor_delta :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  old_tree:Product_tree.t ->
  old_findings:Batch_gcd.finding list ->
  Bignum.Nat.t array ->
  Batch_gcd.finding list
(** One-shot form: given a cached product tree over the old corpus and
    its findings, the findings over old-corpus ++ delta —
    [findings_equal] to {!Batch_gcd.factor_subsets} over the
    concatenation. *)

val findings : t -> Batch_gcd.finding list
(** Current findings, in corpus-index order. *)

val corpus : t -> Bignum.Nat.t array
(** Concatenated segment leaves — every modulus ingested so far, in
    index order (a fresh array). *)

val corpus_size : t -> int
val segment_count : t -> int

val segments : t -> (int * Product_tree.t) array
(** The forest as (leaf offset, tree) pairs in offset order (a fresh
    array; the trees are shared). With {!of_segments} this lets
    {!Sharded} re-group one corpus-wide forest by id range. *)

val of_segments :
  findings:Batch_gcd.finding list -> (int * Product_tree.t) array -> t
(** Reassemble a state from segments and their findings. Offsets must
    be contiguous from 0 and finding indexes in range.
    @raise Invalid_argument otherwise. *)

val total_limbs : t -> int
(** Sum of {!Product_tree.total_limbs} over the forest — the resident
    cost of keeping the cache. *)

val save : out_channel -> t -> unit
(** Serialize the forest and findings (binary, see {!Corpus.Io}). *)

val load : in_channel -> t
(** @raise Corpus.Io.Corrupt on a malformed or truncated checkpoint.
    @raise End_of_file on an empty channel. *)
