(** Pluggable batch-GCD backends.

    Three decompositions of the same sweep sit behind one interface —
    [tree] (Bernstein product/remainder trees, {!Batch_gcd.factor_batch}),
    [ksubset] (the paper's k-subset split, {!Batch_gcd.factor_subsets})
    and [all_to_all] (Pelofske's pruned node-pair recursion,
    {!All_to_all.factor}) — so every layer ({!Incremental},
    {!Sharded}, [Weakkeys.Pipeline], the CLI) can pick a decomposition
    per workload instead of hard-wiring one entry point. All three
    produce {!Batch_gcd.findings_equal} results on identical corpora;
    the cross-backend tests and the [backend-shootout] bench group pin
    that.

    {!select} is the shared size-threshold policy: small work items
    (fresh deltas, small shards) go all-to-all, bulk recomputes go
    through trees, with [WEAKKEYS_BACKEND] as a global override and an
    explicit per-call override on top. *)

type caps = {
  incremental : bool;
      (** usable as the delta strategy of {!Incremental.extend} *)
  sharded : bool;
      (** usable as a per-shard descent strategy in {!Sharded} *)
}

type t = {
  name : string;
  doc : string;
  caps : caps;
  factor :
    ?pool:Parallel.Pool.t ->
    ?domains:int ->
    Bignum.Nat.t array ->
    Batch_gcd.finding list;
}

exception Unknown_backend of string

val builtin : t list
(** The registered backends: [tree], [ksubset], [all_to_all]. *)

val tree : t
val ksubset : t
val all_to_all : t

val ksubset_k : int -> t
(** [ksubset] with an explicit subset count instead of the default
    {!default_subsets} (the CLI's [--k] knob). *)

val default_subsets : int
(** 16, the paper's cluster split. *)

val names : unit -> string list
val find : string -> t option

val get : string -> t
(** @raise Unknown_backend on a name {!find} does not know. *)

val factor :
  t ->
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  Bignum.Nat.t array ->
  Batch_gcd.finding list
(** [factor b] is [b.factor] — the call-site-friendly projection. *)

(** {1 Selection policy} *)

val select : ?override:string -> purpose:[ `Shard | `Delta ] -> n:int -> unit -> t
(** The per-shard / per-delta choice, in precedence order: an explicit
    [override] name (validated against the purpose's capability flag —
    @raise Invalid_argument when incapable,
    @raise Unknown_backend when unknown); the [WEAKKEYS_BACKEND]
    environment variable (skipped when incapable for this purpose);
    otherwise the size heuristic — [all_to_all] when the work item has
    at most {!all_to_all_threshold} moduli, [tree] beyond. *)

val all_to_all_threshold : unit -> int
(** {!default_all_to_all_threshold}, overridable via the
    [WEAKKEYS_ALL_TO_ALL_THRESHOLD] environment variable.
    @raise Invalid_argument on a malformed override. *)

val default_all_to_all_threshold : int
(** 48: at the default shard strides a bulk sweep stays on trees while
    typical monthly deltas drop to the all-to-all path. *)

val of_env : unit -> t option
(** The [WEAKKEYS_BACKEND] global override, if set and non-empty.
    @raise Unknown_backend on an unknown name. *)

val env_var : string
val threshold_var : string
