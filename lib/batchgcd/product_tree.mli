(** Binary product trees (Bernstein): level 0 holds the inputs, each
    higher level the pairwise products, the top level the product of
    every input. The remainder tree walks the same structure downward. *)

type t

val build : ?pool:Parallel.Pool.t -> Bignum.Nat.t array -> t
(** Builds bottom-up, one level at a time. Nodes within a level are
    independent and are computed on [pool] (default: the process-wide
    {!Parallel.Pool.get} pool) once a level has at least 4 nodes of at
    least 4 limbs; smaller levels — in particular the top of the tree,
    where a single giant multiply dominates — stay serial.
    @raise Invalid_argument on an empty input or a zero modulus. *)

val of_levels : Bignum.Nat.t array array -> t
(** Rebuild a tree from its levels (leaves first, root last), as
    produced by iterating {!level} — the checkpoint-restore path in
    {!Incremental}. Validates the shape (each level half the size of
    the one below, a single root) but trusts the node values; precomp
    caches start empty.
    @raise Invalid_argument on a malformed shape. *)

val leaves : t -> Bignum.Nat.t array
(** The inputs, in order (not a copy). *)

val root : t -> Bignum.Nat.t
(** The product of all inputs. *)

val depth : t -> int
(** Number of levels; a single input gives depth 1. *)

val level : t -> int -> Bignum.Nat.t array
(** [level t k] is the k-th level, 0 = leaves.
    @raise Invalid_argument when out of range. *)

val total_limbs : t -> int
(** Sum of [Nat.size_limbs] over every node — the paper's product
    trees needed 70-100 GB per cluster node; this is our proxy
    metric. *)

val precompute : ?pool:Parallel.Pool.t -> squares:bool -> t -> unit
(** Eagerly build and cache the Barrett precomps ({!Bignum.Nat.precompute})
    for every non-root level: of the squared nodes when [squares] is
    true (the mod-square descent), of the nodes themselves otherwise
    (plain {!Remainder_tree.remainders}). Idempotent. The lazy per-level
    cache is single-writer, so call this before sharing one tree across
    concurrent descents (as the distributed k-subset driver does). *)

(**/**)

val level_parallel : nodes:int -> width:int -> bool
(** Whether a level of [nodes] nodes of [width] limbs is worth fanning
    out — shared with {!Remainder_tree} so both kernels use one
    cutoff policy. Exposed for tests and the bench harness. *)

val max_width : Bignum.Nat.t array -> int
(** Widest node of a level, in limbs — the width fed to
    {!level_parallel} (gating on the first node alone misclassifies
    levels led by a narrow odd-one-out). *)

val sq_precomps : ?pool:Parallel.Pool.t -> t -> int -> Bignum.Nat.precomp array
(** Cached precomps of the squared nodes of level [k], built on first
    use. Not safe to first-call concurrently; see {!precompute}. *)

val node_precomps :
  ?pool:Parallel.Pool.t -> t -> int -> Bignum.Nat.precomp array
(** Cached precomps of the nodes of level [k]; same caveats. *)
