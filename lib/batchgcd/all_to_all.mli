(** All-to-all batch GCD (Pelofske, arXiv 2405.03166).

    A third decomposition of the shared-factor sweep, next to
    Bernstein remainder trees ({!Batch_gcd.factor_batch}) and the
    paper's k-subset variant: compare product-tree nodes pairwise,
    top-down, and {e prune} every cross product whose subtree roots
    are coprime — a gcd of 1 between two interior nodes proves every
    leaf pair under them trivial. Surviving pairs recurse to the
    leaves, where the exact pairwise gcd(m_i, m_j) is recorded; each
    comparison below the first runs against the tiny gcd carried down
    from the parent pair rather than the subtree products themselves.

    No remainder trees are built, so the win region is the opposite of
    the tree backend's: small corpora and sparse sharing (almost
    everything prunes at the top) are cheap, while bulk recomputes pay
    one product-sized gcd per unpruned split. Findings are exactly
    {!Batch_gcd.findings_equal} to the other backends — the divisor
    fold relies on the gcd-product lemma documented in
    {!Incremental}'s interface. *)

val factor :
  ?pool:Parallel.Pool.t ->
  ?domains:int ->
  Bignum.Nat.t array ->
  Batch_gcd.finding list
(** Build one product tree and sweep it all-to-all. Results are
    identical to {!Batch_gcd.factor_batch}, duplicates included. *)

val factor_tree :
  ?pool:Parallel.Pool.t -> Product_tree.t -> Batch_gcd.finding list
(** Same, over an already-built tree (the per-shard reuse path). *)

val pairwise_hits :
  ?pool:Parallel.Pool.t -> Product_tree.t -> (int * int * Bignum.Nat.t) list
(** Every unordered leaf pair (i, j, gcd) of one tree with a
    nontrivial gcd, each compared exactly once — the pruned-recursion
    equivalent of {!Batch_gcd.naive_pairwise_hits}, in schedule
    (not index) order. *)

val cross_hits :
  ?pool:Parallel.Pool.t ->
  Product_tree.t ->
  Product_tree.t ->
  (int * int * Bignum.Nat.t) list
(** Nontrivial pairs (i in first tree, j in second tree, gcd) across
    two trees: the delta path of {!Incremental.extend} — one root
    gcd prunes an entire untouched segment. *)

val accumulate :
  Bignum.Nat.t array ->
  (int * int * Bignum.Nat.t) list ->
  Bignum.Nat.t array
(** [accumulate moduli hits] folds pairwise gcds into the per-index
    divisor array [gcd (m_i, prod of its hit gcds mod m_i)] — equal to
    the remainder-tree divisors by the gcd-product lemma. Shared with
    {!Incremental}'s all-to-all delta strategy. *)
