module N = Bignum.Nat
module Pool = Parallel.Pool

(* Shared descent: [reduce_at k] yields the reducer for level [k],
   mapping a node index and the parent remainder to the node's
   remainder. Children index i draws from parent i/2, matching how
   Product_tree pairs nodes upward. [reduce_at] itself runs once per
   level on the calling domain — that is where lazy Barrett precomps
   get built, keeping the tree's caches single-writer — while the
   per-node reducers fan out on the pool, subject to the same serial
   cutoff as the product tree. *)
let descend ?pool tree ~reduce_at v =
  let d = Product_tree.depth tree in
  let rs = ref [| (reduce_at (d - 1)) 0 v |] in
  for k = d - 2 downto 0 do
    let lvl = Product_tree.level tree k in
    let reduce = reduce_at k in
    let parent = !rs in
    let n = Array.length lvl in
    let node i = reduce i parent.(i / 2) in
    rs :=
      if
        Product_tree.level_parallel ~nodes:n
          ~width:(Product_tree.max_width lvl)
      then Pool.init ?pool n node
      else Array.init n node
  done;
  !rs

let remainders_mod_square ?pool ?(precomp = true) tree v =
  if not precomp then
    descend ?pool tree v ~reduce_at:(fun k ->
        let lvl = Product_tree.level tree k in
        fun i r -> N.rem r (N.sqr lvl.(i)))
  else begin
    let d = Product_tree.depth tree in
    descend ?pool tree v ~reduce_at:(fun k ->
        let lvl = Product_tree.level tree k in
        if k = d - 1 then
          (* The root reduction is almost always the identity: the
             value pushed down is a product of the very moduli under
             the root, so v < root^2 whenever the tree has >= 2 leaves.
             Checking bit lengths avoids ever squaring the root — the
             single biggest multiply of the whole pipeline. *)
          fun i r ->
            let node = lvl.(i) in
            if N.num_bits r < (2 * N.num_bits node) - 1 then r
            else N.rem r (N.sqr node)
        else
          let pres = Product_tree.sq_precomps ?pool tree k in
          fun i r -> N.rem_precomp r pres.(i))
  end

let remainders ?pool ?(precomp = true) tree v =
  if not precomp then
    descend ?pool tree v ~reduce_at:(fun k ->
        let lvl = Product_tree.level tree k in
        fun i r -> N.rem r lvl.(i))
  else begin
    let d = Product_tree.depth tree in
    descend ?pool tree v ~reduce_at:(fun k ->
        let lvl = Product_tree.level tree k in
        if k = d - 1 then fun i r -> N.rem r lvl.(i)
        else
          let pres = Product_tree.node_precomps ?pool tree k in
          fun i r -> N.rem_precomp r pres.(i))
  end
