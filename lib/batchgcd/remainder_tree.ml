module N = Bignum.Nat
module Pool = Parallel.Pool

(* Shared descent: [reduce node r] reduces the parent remainder at a
   node. Children index i draws from parent i/2, matching how
   Product_tree pairs nodes upward. Nodes within a level only read the
   (immutable) level above, so each level reduces in parallel on the
   pool, subject to the same serial cutoff as the product tree. *)
let descend ?pool tree ~reduce v =
  let d = Product_tree.depth tree in
  let top = Product_tree.level tree (d - 1) in
  let rs = ref [| reduce top.(0) v |] in
  for k = d - 2 downto 0 do
    let lvl = Product_tree.level tree k in
    let parent = !rs in
    let n = Array.length lvl in
    let node i = reduce lvl.(i) parent.(i / 2) in
    rs :=
      if Product_tree.level_parallel ~nodes:n ~width:(N.size_limbs lvl.(0))
      then Pool.init ?pool n node
      else Array.init n node
  done;
  !rs

let remainders_mod_square ?pool tree v =
  descend ?pool tree ~reduce:(fun node r -> N.rem r (N.sqr node)) v

let remainders ?pool tree v =
  descend ?pool tree ~reduce:(fun node r -> N.rem r node) v
