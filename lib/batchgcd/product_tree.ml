module N = Bignum.Nat
module Pool = Parallel.Pool

type t = { levels : N.t array array }

(* Level-parallel cutoffs: a level fans out onto the pool only when it
   has enough independent nodes to share and each node is wide enough
   that the multiply dwarfs the dispatch cost. Near the root both
   conditions fail (one giant N.mul) and the build stays serial. *)
let min_par_nodes = 4
let min_par_limbs = 4

let level_parallel ~nodes ~width =
  nodes >= min_par_nodes && width >= min_par_limbs

let build ?pool inputs =
  if Array.length inputs = 0 then invalid_arg "Product_tree.build: empty";
  Array.iter
    (fun x -> if N.is_zero x then invalid_arg "Product_tree.build: zero input")
    inputs;
  let rec up acc level =
    let n = Array.length level in
    if n = 1 then List.rev (level :: acc)
    else begin
      let pairs = (n + 1) / 2 in
      let node i =
        if (2 * i) + 1 < n then N.mul level.(2 * i) level.((2 * i) + 1)
        else level.(2 * i)
      in
      let next =
        if level_parallel ~nodes:pairs ~width:(N.size_limbs level.(0)) then
          Pool.init ?pool pairs node
        else Array.init pairs node
      in
      up (level :: acc) next
    end
  in
  { levels = Array.of_list (up [] inputs) }

let leaves t = t.levels.(0)
let depth t = Array.length t.levels
let root t = t.levels.(depth t - 1).(0)

let level t k =
  if k < 0 || k >= depth t then invalid_arg "Product_tree.level: out of range"
  else t.levels.(k)

let total_limbs t =
  Array.fold_left
    (fun acc lvl ->
      Array.fold_left (fun acc n -> acc + N.size_limbs n) acc lvl)
    0 t.levels
