module N = Bignum.Nat
module Pool = Parallel.Pool

(* Barrett precomps are built lazily per level (or eagerly via
   [precompute]) and memoised in the option slots. The caches are
   single-writer: descents fill them from the calling domain before
   fanning a level out, and the distributed driver precomputes every
   tree before its parallel phase, so workers only ever read. *)
type t = {
  levels : N.t array array;
  sq_pre : N.precomp array option array;
  node_pre : N.precomp array option array;
}

(* Level-parallel cutoffs: a level fans out onto the pool only when it
   has enough independent nodes to share and each node is wide enough
   that the multiply dwarfs the dispatch cost. Near the root both
   conditions fail (one giant N.mul) and the build stays serial. *)
let min_par_nodes = 4
let min_par_limbs = 4

let level_parallel ~nodes ~width =
  nodes >= min_par_nodes && width >= min_par_limbs

(* Width of a level is its widest node: gating on the first node alone
   misclassifies a level whose leading node happens to be a narrow
   odd-one-out (e.g. a tiny modulus sorted first). *)
let max_width lvl =
  Array.fold_left (fun acc x -> Stdlib.max acc (N.size_limbs x)) 0 lvl

let build ?pool inputs =
  if Array.length inputs = 0 then invalid_arg "Product_tree.build: empty";
  Array.iter
    (fun x -> if N.is_zero x then invalid_arg "Product_tree.build: zero input")
    inputs;
  let rec up acc level =
    let n = Array.length level in
    if n = 1 then List.rev (level :: acc)
    else begin
      let pairs = (n + 1) / 2 in
      let node i =
        if (2 * i) + 1 < n then N.mul level.(2 * i) level.((2 * i) + 1)
        else level.(2 * i)
      in
      let next =
        if level_parallel ~nodes:pairs ~width:(max_width level) then
          Pool.init ?pool pairs node
        else Array.init pairs node
      in
      up (level :: acc) next
    end
  in
  let levels = Array.of_list (up [] inputs) in
  let d = Array.length levels in
  { levels; sq_pre = Array.make d None; node_pre = Array.make d None }

(* Reconstruct a tree from serialized levels (checkpoint restore).
   Only the shape is validated — the node values are trusted to be the
   products they claim to be, exactly as [build] trusts its inputs.
   Precomp caches start empty and refill lazily or via [precompute]. *)
let of_levels levels =
  let d = Array.length levels in
  if d = 0 then invalid_arg "Product_tree.of_levels: no levels";
  if Array.length levels.(d - 1) <> 1 then
    invalid_arg "Product_tree.of_levels: top level must hold one node";
  for k = 0 to d - 2 do
    let n = Array.length levels.(k) in
    if n = 0 then invalid_arg "Product_tree.of_levels: empty level";
    if Array.length levels.(k + 1) <> (n + 1) / 2 then
      invalid_arg "Product_tree.of_levels: level sizes do not halve"
  done;
  { levels; sq_pre = Array.make d None; node_pre = Array.make d None }

let leaves t = t.levels.(0)
let depth t = Array.length t.levels
let root t = t.levels.(depth t - 1).(0)

let level t k =
  if k < 0 || k >= depth t then invalid_arg "Product_tree.level: out of range"
  else t.levels.(k)

let total_limbs t =
  Array.fold_left
    (fun acc lvl ->
      Array.fold_left (fun acc n -> acc + N.size_limbs n) acc lvl)
    0 t.levels

(* Build one level's precomp array, fanning out under the same policy
   as the build itself (a precompute is a reciprocal, i.e. multiplies). *)
let precomp_level ?pool make lvl =
  let n = Array.length lvl in
  let node i = make lvl.(i) in
  if level_parallel ~nodes:n ~width:(max_width lvl) then
    Pool.init ?pool n node
  else Array.init n node

let sq_precomps ?pool t k =
  match t.sq_pre.(k) with
  | Some ps -> ps
  | None ->
    let ps =
      precomp_level ?pool (fun node -> N.precompute (N.sqr node)) t.levels.(k)
    in
    t.sq_pre.(k) <- Some ps;
    ps

let node_precomps ?pool t k =
  match t.node_pre.(k) with
  | Some ps -> ps
  | None ->
    let ps = precomp_level ?pool N.precompute t.levels.(k) in
    t.node_pre.(k) <- Some ps;
    ps

(* Root-level precomps are never needed: both descents special-case the
   top (the value being pushed down is already smaller than root^2,
   resp. reduced by a plain rem), so eager precomputation stops one
   level short. *)
let precompute ?pool ~squares t =
  for k = 0 to depth t - 2 do
    if squares then ignore (sq_precomps ?pool t k)
    else ignore (node_precomps ?pool t k)
  done
