module N = Bignum.Nat
module PT = Product_tree
module Pool = Parallel.Pool
module BG = Batch_gcd

(* Pelofske-style all-to-all batch GCD (arXiv 2405.03166): instead of
   remainder-tree descents, compare product-tree nodes pairwise and
   prune every cross product whose roots are coprime. A node is
   (level, index) into a product tree; the children of (k, i) are
   (k-1, 2i) and (k-1, 2i+1) when the lower level has them — an odd
   trailing node carries its single child's value unchanged. *)

type node = int * int

let value tree (k, i) = (PT.level tree k).(i)
let is_leaf ((k, _) : node) = k = 0

let children tree ((k, i) : node) =
  let lower = PT.level tree (k - 1) in
  let l : node = (k - 1, 2 * i) in
  if (2 * i) + 1 < Array.length lower then (l, Some ((k - 1, (2 * i) + 1) : node))
  else (l, None)

(* Tasks of the pruned pair recursion. [Cross (bound, a, b)] compares
   subtree [a] of the first tree with subtree [b] of the second;
   [bound] is the gcd computed at the parent pair. Every common prime
   of the two subtree products divides the bound with at least the
   smaller of the two exponents (the bound is a gcd of ancestor
   products, which contain both subtrees as factors), so
   gcd(gcd(va, g), gcd(vb, g)) = gcd(va, vb) exactly — after the
   first comparison, all deeper gcds run against a typically tiny
   bound instead of two subtree products. [Self k i] decomposes the
   pairs within one subtree: pairs within each child plus the
   child-vs-child cross product, so every unordered leaf pair is
   compared exactly once. *)
type task = Self of node | Cross of N.t option * node * node

let pair_gcd bound va vb =
  match bound with
  | None -> N.gcd va vb
  | Some g -> N.gcd (N.gcd va g) (N.gcd vb g)

(* One task step: returns (leaf-pair hits, successor tasks). Pure —
   it only reads the (immutable) tree levels — so a frontier of steps
   can fan out on the pool. *)
let step ta tb task =
  match task with
  | Self n ->
    if is_leaf n then ([], [])
    else begin
      match children ta n with
      | c1, None -> ([], [ Self c1 ])
      | c1, Some c2 -> ([], [ Self c1; Self c2; Cross (None, c1, c2) ])
    end
  | Cross (bound, a, b) ->
    let g = pair_gcd bound (value ta a) (value tb b) in
    if N.is_one g then ([], [])
    else if is_leaf a && is_leaf b then ([ (snd a, snd b, g) ], [])
    else begin
      let bound = Some g in
      let expand_b a =
        match children tb b with
        | c1, None -> [ Cross (bound, a, c1) ]
        | c1, Some c2 -> [ Cross (bound, a, c1); Cross (bound, a, c2) ]
      in
      if is_leaf a then ([], expand_b a)
      else if is_leaf b then
        ( [],
          match children ta a with
          | c1, None -> [ Cross (bound, c1, b) ]
          | c1, Some c2 -> [ Cross (bound, c1, b); Cross (bound, c2, b) ] )
      else begin
        match children ta a with
        | c1, None -> ([], expand_b c1)
        | c1, Some c2 -> ([], List.rev_append (expand_b c1) (expand_b c2))
      end
    end

(* Breadth-first frontier driver: each round maps [step] over the
   surviving pairs (on the pool when there is real fan-out), then
   merges hits and successors sequentially. Hit order is irrelevant —
   the divisor accumulation below commutes — so the parallel schedule
   cannot perturb results. *)
let run ?pool ta tb roots =
  let hits = ref [] in
  let frontier = ref roots in
  while !frontier <> [] do
    let tasks = Array.of_list !frontier in
    let results =
      match pool with
      | Some pool when Array.length tasks > 1 ->
        Pool.map ~pool (step ta tb) tasks
      | _ -> Array.map (step ta tb) tasks
    in
    frontier := [];
    Array.iter
      (fun (hs, ts) ->
        hits := List.rev_append hs !hits;
        frontier := List.rev_append ts !frontier)
      results;
  done;
  !hits

let top tree : node = (PT.depth tree - 1, 0)

let pairwise_hits ?pool tree = run ?pool tree tree [ Self (top tree) ]

let cross_hits ?pool ta tb = run ?pool ta tb [ Cross (None, top ta, top tb) ]

(* Fold pairwise gcds into per-index divisors: for modulus m,
   gcd(m, prod over hits of gcd(m, m_j) mod m) equals the
   remainder-tree divisor gcd(m, (prod of all others) mod m) by the
   gcd-product lemma (see Incremental's interface), prime power by
   prime power. A duplicate modulus hits itself with g = m, zeroing
   the accumulator, and gcd(m, 0) = m — the same report as
   factor_batch on duplicate inputs. *)
let accumulate moduli hits =
  let acc = Array.map (fun _ -> N.one) moduli in
  let mul_into i g =
    let m = moduli.(i) in
    acc.(i) <- N.rem (N.mul acc.(i) (N.rem g m)) m
  in
  List.iter
    (fun (i, j, g) ->
      mul_into i g;
      mul_into j g)
    hits;
  Array.mapi (fun i m -> N.gcd m acc.(i)) moduli

let factor_tree ?pool tree =
  let moduli = PT.leaves tree in
  BG.collect (accumulate moduli (pairwise_hits ?pool tree)) moduli

let factor ?pool ?domains moduli =
  if Array.length moduli = 0 then []
  else begin
    let pool =
      match pool with Some p -> p | None -> Pool.get ?domains ()
    in
    factor_tree ~pool (PT.build ~pool moduli)
  end
