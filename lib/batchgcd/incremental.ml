module N = Bignum.Nat
module PT = Product_tree
module RT = Remainder_tree
module Pool = Parallel.Pool
module BG = Batch_gcd
module Io = Corpus.Io

type t = {
  total : int;
  segments : (int * PT.t) array; (* leaf offset into the corpus, tree *)
  findings : BG.finding list; (* index order *)
}

let findings t = t.findings
let corpus_size t = t.total
let segment_count t = Array.length t.segments
let segments t = Array.copy t.segments

let of_segments ~findings segments =
  let expected = ref 0 in
  Array.iter
    (fun (off, tree) ->
      if off <> !expected then
        invalid_arg "Batchgcd.Incremental.of_segments: segment offsets disagree";
      expected := !expected + Array.length (PT.leaves tree))
    segments;
  let total = !expected in
  List.iter
    (fun f ->
      if f.BG.index < 0 || f.BG.index >= total then
        invalid_arg "Batchgcd.Incremental.of_segments: finding index out of range")
    findings;
  { total; segments = Array.copy segments; findings }

let corpus t =
  if t.total = 0 then [||]
  else
    Array.concat
      (Array.to_list (Array.map (fun (_, tree) -> PT.leaves tree) t.segments))

let total_limbs t =
  Array.fold_left (fun acc (_, tree) -> acc + PT.total_limbs tree) 0 t.segments

let create ?pool ?domains ?backend ?(k = 1) moduli =
  (* Validate the name through the registry, then seed the forest with
     that decomposition: ksubset keeps its k contiguous subset trees,
     tree is the k = 1 degenerate case, all_to_all sweeps one tree by
     node-pair pruning. Findings are equal whichever ran. *)
  let backend =
    match backend with
    | None -> Backend.ksubset.Backend.name
    | Some name -> (Backend.get name).Backend.name
  in
  if String.equal backend Backend.all_to_all.Backend.name then begin
    if Array.length moduli = 0 then
      { total = 0; segments = [||]; findings = [] }
    else begin
      let pool =
        match pool with Some p -> p | None -> Pool.get ?domains ()
      in
      let tree = PT.build ~pool moduli in
      {
        total = Array.length moduli;
        segments = [| (0, tree) |];
        findings = All_to_all.factor_tree ~pool tree;
      }
    end
  end
  else begin
    let k = if String.equal backend Backend.tree.Backend.name then 1 else k in
    let segments, findings = BG.factor_subsets_trees ?pool ?domains ~k moduli in
    { total = Array.length moduli; segments; findings }
  end

(* The all-to-all delta strategy: one gcd of segment root vs delta
   root prunes an entire untouched segment, and surviving pairs
   recurse to exact pairwise gcds — no remainder descents. The merge
   below folds those gcds into the cached divisors through the same
   gcd-product lemma the tree strategy leans on, so both strategies
   land on identical findings. *)
let extend_all_to_all ~pool t fresh =
  let nf = Array.length fresh in
  let tn = PT.build ~pool fresh in
  let nseg = Array.length t.segments in
  (* Jobs: the delta against every old segment, plus the delta's own
     pairwise sweep. Each returns pure hit lists; merging is serial. *)
  let job i =
    if i < nseg then All_to_all.cross_hits ~pool (snd t.segments.(i)) tn
    else All_to_all.pairwise_hits ~pool tn
  in
  let pieces = Pool.map ~pool job (Array.init (nseg + 1) (fun i -> i)) in
  let prior = Array.make t.total N.one in
  List.iter (fun f -> prior.(f.BG.index) <- f.BG.divisor) t.findings;
  let acc_old = Array.make t.total N.one in
  let acc_new = Array.make nf N.one in
  let mul_into acc i m g = acc.(i) <- N.rem (N.mul acc.(i) (N.rem g m)) m in
  Array.iteri
    (fun i hits ->
      if i < nseg then begin
        let off, tree = t.segments.(i) in
        let leaves = PT.leaves tree in
        List.iter
          (fun (l, j, g) ->
            mul_into acc_old (off + l) leaves.(l) g;
            mul_into acc_new j fresh.(j) g)
          hits
      end
      else
        List.iter
          (fun (l, j, g) ->
            mul_into acc_new l fresh.(l) g;
            mul_into acc_new j fresh.(j) g)
          hits)
    pieces;
  let divisors = Array.make (t.total + nf) N.one in
  Array.iter
    (fun (off, tree) ->
      Array.iteri
        (fun l m ->
          divisors.(off + l) <-
            N.gcd m (N.rem (N.mul prior.(off + l) acc_old.(off + l)) m))
        (PT.leaves tree))
    t.segments;
  Array.iteri (fun l n -> divisors.(t.total + l) <- N.gcd n acc_new.(l)) fresh;
  let segments = Array.append t.segments [| (t.total, tn) |] in
  let t' = { total = t.total + nf; segments; findings = [] } in
  { t' with findings = BG.collect divisors (corpus t') }

let extend ?pool ?domains ?backend t fresh =
  let nf = Array.length fresh in
  let backend =
    match backend with
    | None -> Backend.tree.Backend.name
    | Some name ->
      let b = Backend.get name in
      if not b.Backend.caps.Backend.incremental then
        invalid_arg
          (Printf.sprintf
             "Batchgcd.Incremental.extend: `%s` is not a delta strategy" name);
      b.Backend.name
  in
  if nf = 0 then t
  else if t.total = 0 then create ?pool ?domains ~backend ~k:1 fresh
  else if String.equal backend Backend.all_to_all.Backend.name then begin
    let pool =
      match pool with Some p -> p | None -> Pool.get ?domains ()
    in
    extend_all_to_all ~pool t fresh
  end
  else begin
    let pool =
      match pool with Some p -> p | None -> Pool.get ?domains ()
    in
    let tn = PT.build ~pool fresh in
    let pn = PT.root tn in
    (* The fresh tree is descended by every new-vs-old job plus its own
       mod-square job, so its Barrett caches must be published before
       the fan-out. Each old segment tree is touched by exactly one job
       and fills its caches lazily on that worker (single-writer). *)
    PT.precompute ~pool ~squares:true tn;
    PT.precompute ~pool ~squares:false tn;
    let nseg = Array.length t.segments in
    (* Jobs, all independent:
       [0, nseg)        delta product through old segment tree s;
       [nseg, 2*nseg)   segment-s root through the fresh tree;
       2*nseg           fresh root mod-square through the fresh tree
                        (the new-vs-new pass, as in factor_batch). *)
    let job i =
      if i < nseg then (i, RT.remainders ~pool (snd t.segments.(i)) pn)
      else if i < 2 * nseg then
        (i, RT.remainders ~pool tn (PT.root (snd t.segments.(i - nseg))))
      else
        ( i,
          Array.mapi
            (fun l z -> BG.own_subset_component (PT.leaves tn).(l) z)
            (RT.remainders_mod_square ~pool tn pn) )
    in
    let pieces = Pool.map ~pool job (Array.init ((2 * nseg) + 1) (fun i -> i)) in
    (* Old moduli: gcd (m, d_old * (P mod m)) — exactly the divisor a
       full recompute over the union yields (see the .mli lemma). *)
    let prior = Array.make t.total N.one in
    List.iter (fun f -> prior.(f.BG.index) <- f.BG.divisor) t.findings;
    let divisors = Array.make (t.total + nf) N.one in
    let acc_new = Array.make nf N.one in
    Array.iter
      (fun (i, rs) ->
        if i < nseg then begin
          let off, tree = t.segments.(i) in
          let leaves = PT.leaves tree in
          Array.iteri
            (fun l c ->
              let m = leaves.(l) in
              divisors.(off + l) <- N.gcd m (N.rem (N.mul prior.(off + l) c) m))
            rs
        end
        else
          Array.iteri
            (fun l c ->
              let n = fresh.(l) in
              acc_new.(l) <- N.rem (N.mul acc_new.(l) (N.rem c n)) n)
            rs)
      pieces;
    Array.iteri (fun l n -> divisors.(t.total + l) <- N.gcd n acc_new.(l)) fresh;
    let segments = Array.append t.segments [| (t.total, tn) |] in
    let t' = { total = t.total + nf; segments; findings = [] } in
    { t' with findings = BG.collect divisors (corpus t') }
  end

let factor_delta ?pool ?domains ~old_tree ~old_findings fresh =
  let t =
    {
      total = Array.length (PT.leaves old_tree);
      segments = [| (0, old_tree) |];
      findings = old_findings;
    }
  in
  (extend ?pool ?domains t fresh).findings

(* ------------------------------------------------------------------ *)
(* Checkpoint serialization                                            *)
(* ------------------------------------------------------------------ *)

let magic = "weakkeys-incremental/1"

let save oc t =
  Io.write_string oc magic;
  Io.write_int oc t.total;
  Io.write_int oc (Array.length t.segments);
  Array.iter
    (fun (off, tree) ->
      Io.write_int oc off;
      Io.write_int oc (PT.depth tree);
      for k = 0 to PT.depth tree - 1 do
        let lvl = PT.level tree k in
        Io.write_int oc (Array.length lvl);
        Array.iter (Io.write_nat oc) lvl
      done)
    t.segments;
  Io.write_int oc (List.length t.findings);
  List.iter
    (fun f ->
      Io.write_int oc f.BG.index;
      Io.write_nat oc f.BG.modulus;
      Io.write_nat oc f.BG.divisor)
    t.findings

let load ic =
  let m = Io.read_string ic in
  if not (String.equal m magic) then
    raise (Io.Corrupt "not an incremental-GCD checkpoint");
  let total = Io.read_int ic in
  let nseg = Io.read_int ic in
  let segments = Array.make nseg (0, PT.build [| N.one |]) in
  let expected_off = ref 0 in
  for s = 0 to nseg - 1 do
    let off = Io.read_int ic in
    if off <> !expected_off then raise (Io.Corrupt "segment offsets disagree");
    let depth = Io.read_int ic in
    if depth = 0 then raise (Io.Corrupt "segment with no levels");
    let levels = Array.make depth [||] in
    for k = 0 to depth - 1 do
      let n = Io.read_int ic in
      let lvl = Array.make n N.zero in
      for i = 0 to n - 1 do
        lvl.(i) <- Io.read_nat ic
      done;
      levels.(k) <- lvl
    done;
    let tree =
      try PT.of_levels levels
      with Invalid_argument msg -> raise (Io.Corrupt msg)
    in
    expected_off := !expected_off + Array.length (PT.leaves tree);
    segments.(s) <- (off, tree)
  done;
  if !expected_off <> total then
    raise (Io.Corrupt "corpus size disagrees with segment leaves");
  let nf = Io.read_int ic in
  let findings = ref [] in
  for _ = 1 to nf do
    let index = Io.read_int ic in
    if index < 0 || index >= total then
      raise (Io.Corrupt "finding index out of corpus range");
    let modulus = Io.read_nat ic in
    let divisor = Io.read_nat ic in
    findings := { BG.index; modulus; divisor } :: !findings
  done;
  { total; segments; findings = List.rev !findings }
