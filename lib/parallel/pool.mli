(** A persistent domain pool.

    The paper's cluster ran the k-subset batch GCD across 22 machines;
    we parallelise across OCaml 5 domains on one host. Every parallel
    construct in this codebase goes through this module (enforced by
    the [domain-outside-parallel] lint rule): worker domains are
    spawned once per pool size and reused, so callers stop paying a
    [Domain.spawn] per parallel call.

    Scheduling is gang-style: a parallel call publishes a shared claim
    loop, the caller and every pool worker pull chunks of indices from
    an atomic counter, and the caller waits until the whole gang is
    idle again. Re-entrant calls — a job that itself calls {!map} on
    any pool — are detected via domain-local state and run inline
    sequentially, so nesting can never deadlock the pool. *)

type t
(** A pool of [size - 1] worker domains plus the calling domain. *)

exception Worker_failure of exn
(** Wraps the failure with the {e smallest job index}. Every job runs
    to completion (or failure) regardless of other failures, so the
    reported exception is deterministic for a deterministic job
    function — the same one a sequential left-to-right run would hit
    first. *)

val default_domains : unit -> int
(** The [WEAKKEYS_DOMAINS] environment variable when set (a positive
    integer), otherwise [Domain.recommended_domain_count ()], at
    least 1.
    @raise Invalid_argument on a malformed [WEAKKEYS_DOMAINS]. *)

val get : ?domains:int -> unit -> t
(** [get ()] is the process-wide pool sized {!default_domains};
    [get ~domains ()] a pool of exactly [max 1 domains] domains. Pools
    are memoized by size and their workers spawned lazily on first
    use, then kept alive (and joined via [at_exit]) — repeated calls
    return the same pool. *)

val size : t -> int
(** Total parallelism including the calling domain; [size >= 1]. *)

val parallel_for :
  ?pool:t -> ?domains:int -> ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi f] runs [f i] for every [lo <= i < hi],
    distributing chunks of [chunk] consecutive indices (default:
    [max 1 ((hi - lo) / (8 * size))]) over the pool. [f] must be safe
    to run concurrently and must not rely on execution order. Runs
    sequentially when the pool has size 1, when [hi - lo <= 1], or
    when called from inside another parallel region.
    @raise Worker_failure on the smallest failing index. *)

val map : ?pool:t -> ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f jobs] applies [f] to every element, preserving order.
    Chunk size defaults to 1 (a plain work queue — right for few,
    heavy, unevenly-sized jobs). Same sequential fallbacks and failure
    semantics as {!parallel_for}. *)

val init : ?pool:t -> ?domains:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is a parallel [Array.init n f]. *)
