exception Worker_failure of exn

let default_domains () =
  match Sys.getenv_opt "WEAKKEYS_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg "WEAKKEYS_DOMAINS: expected a positive integer")
  | None -> Stdlib.max 1 (Domain.recommended_domain_count ())

type t = {
  size : int;
  mutex : Mutex.t;  (* guards every mutable field below *)
  work : Condition.t;  (* a new generation was published *)
  idle : Condition.t;  (* the last gang member finished *)
  busy : Mutex.t;  (* serialises whole gangs on this pool *)
  mutable generation : int;
  mutable body : (unit -> unit) option;  (* claim loop of the current gang *)
  mutable pending : int;  (* workers still inside the current gang *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* True while the current domain is executing gang work; parallel calls
   made from such a context run inline instead of waiting on workers
   that are already occupied. *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let make size =
  {
    size;
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    busy = Mutex.create ();
    generation = 0;
    body = None;
    pending = 0;
    stop = false;
    workers = [];
  }

let size t = t.size

(* ------------------------------------------------------------------ *)
(* Pool registry: memoized by size, workers joined at exit             *)
(* ------------------------------------------------------------------ *)

let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mutex = Mutex.create ()
(* Deliberate process-wide state: the whole point of the pool is that
   domains persist across calls. *)
let exit_hook_installed = ref false (* lint: allow toplevel-ref *)

let shutdown_all () =
  let live =
    Mutex.lock pools_mutex;
    let ps = Hashtbl.fold (fun _ t acc -> t :: acc) pools [] in
    Mutex.unlock pools_mutex;
    ps
  in
  List.iter
    (fun t ->
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.workers;
      t.workers <- [])
    live

let get ?domains () =
  let n =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> default_domains ()
  in
  Mutex.lock pools_mutex;
  let t =
    match Hashtbl.find_opt pools n with
    | Some t -> t
    | None ->
      let t = make n in
      Hashtbl.replace pools n t;
      t
  in
  if not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit shutdown_all
  end;
  Mutex.unlock pools_mutex;
  t

(* ------------------------------------------------------------------ *)
(* Gang scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let rec worker_loop t last =
  Mutex.lock t.mutex;
  while t.generation = last && not t.stop do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let body = match t.body with Some b -> b | None -> assert false in
    Mutex.unlock t.mutex;
    body ();
    Mutex.lock t.mutex;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.mutex;
    worker_loop t gen
  end

(* Run [body] on the caller plus every pool worker; returns once all of
   them have drained the claim loop. [body] must not raise (the claim
   loops below record failures instead). *)
let run_gang t body =
  Mutex.lock t.busy;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.busy)
    (fun () ->
      Mutex.lock t.mutex;
      if t.workers = [] then
        t.workers <-
          List.init (t.size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
      t.body <- Some body;
      t.pending <- t.size - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      body ();
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.idle t.mutex
      done;
      t.body <- None;
      Mutex.unlock t.mutex)

(* ------------------------------------------------------------------ *)
(* Deterministic failure recording                                     *)
(* ------------------------------------------------------------------ *)

(* Keep the failure with the smallest index; jobs keep running so the
   winner does not depend on scheduling. *)
let record failure i e =
  let rec cas () =
    let cur = Atomic.get failure in
    let replace =
      match cur with None -> true | Some (j, _) -> i < j
    in
    if replace && not (Atomic.compare_and_set failure cur (Some (i, e))) then
      cas ()
  in
  cas ()

let seq_for lo hi f =
  (* Same contract as the parallel path: every index runs, the first
     (= smallest-index) failure is reported. *)
  let failure = ref None in
  for i = lo to hi - 1 do
    try f i
    with e -> ( match !failure with None -> failure := Some e | Some _ -> ())
  done;
  match !failure with Some e -> raise (Worker_failure e) | None -> ()

let resolve pool domains =
  match pool with Some p -> p | None -> get ?domains ()

let parallel_for ?pool ?domains ?chunk lo hi f =
  if hi - lo <= 1 || Domain.DLS.get inside then seq_for lo hi f
  else begin
    let t = resolve pool domains in
    if t.size = 1 then seq_for lo hi f
    else begin
      let chunk =
        match chunk with
        | Some c -> Stdlib.max 1 c
        | None -> Stdlib.max 1 ((hi - lo) / (8 * t.size))
      in
      let failure = Atomic.make None in
      let next = Atomic.make lo in
      let body () =
        Domain.DLS.set inside true;
        let rec claim () =
          let start = Atomic.fetch_and_add next chunk in
          if start < hi then begin
            let stop = Stdlib.min hi (start + chunk) in
            for i = start to stop - 1 do
              try f i with e -> record failure i e
            done;
            claim ()
          end
        in
        claim ();
        Domain.DLS.set inside false
      in
      run_gang t body;
      match Atomic.get failure with
      | Some (_, e) -> raise (Worker_failure e)
      | None -> ()
    end
  end

let map ?pool ?domains ?(chunk = 1) f jobs =
  let n = Array.length jobs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for ?pool ?domains ~chunk 0 n (fun i ->
        results.(i) <- Some (f jobs.(i)));
    Array.map (function Some r -> r | None -> assert false) results
  end

let init ?pool ?domains ?chunk n f =
  map ?pool ?domains ?chunk f (Array.init n Fun.id)
