(* Knuth–Morris–Pratt substring search. [fail.(i)] is the length of
   the longest proper prefix of [needle] that is also a suffix of
   [needle.[0..i]]; on a mismatch the scan resumes there instead of
   rewinding the haystack, so each haystack byte is read once. *)
let contains hay needle =
  let nl = String.length needle in
  if nl = 0 then true
  else begin
    let fail = Array.make nl 0 in
    let k = ref 0 in
    for i = 1 to nl - 1 do
      while !k > 0 && needle.[i] <> needle.[!k] do
        k := fail.(!k - 1)
      done;
      if needle.[i] = needle.[!k] then incr k;
      fail.(i) <- !k
    done;
    let hl = String.length hay in
    let q = ref 0 in
    let i = ref 0 in
    while !q < nl && !i < hl do
      while !q > 0 && hay.[!i] <> needle.[!q] do
        q := fail.(!q - 1)
      done;
      if hay.[!i] = needle.[!q] then incr q;
      incr i
    done;
    !q = nl
  end

let starts_with ~prefix s =
  let pl = String.length prefix and sl = String.length s in
  pl <= sl
  &&
  let rec go i = i >= pl || (prefix.[i] = s.[i] && go (i + 1)) in
  go 0

let ends_with ~suffix s =
  let fl = String.length suffix and sl = String.length s in
  fl <= sl
  &&
  let rec go i = i >= fl || (suffix.[i] = s.[sl - fl + i] && go (i + 1)) in
  go 0
