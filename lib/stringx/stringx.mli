(** Shared string predicates.

    One home for the substring/affix helpers that used to be
    duplicated across [lib/fingerprint] and [lib/lint]. Everything is
    allocation-free except the one failure-table array {!contains}
    builds per needle. *)

val contains : string -> string -> bool
(** [contains hay needle] — substring search via Knuth–Morris–Pratt:
    a single pass over [hay] after an [O(needle)] failure-table build,
    [O(hay + needle)] worst case (the previous naive scan re-compared
    up to [needle] bytes at every position). [needle = ""] is [true]. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool
