(** Lightweight OCaml lexer for [weakkeys-lint].

    Tokenizes just enough of the language for lexical lint rules:
    comments and string literals are recognised (and therefore never
    produce spurious identifier or operator tokens), identifiers are
    joined across [.] into qualified paths ([Random.self_init] is a
    single token), and symbolic operators use maximal munch so that
    [@@] is never mistaken for two [@]. No compiler-libs dependency. *)

type kind =
  | Ident of string
      (** Identifier or keyword, possibly dot-qualified ([Foo.Bar.baz],
          [t.field]). [_] is an [Ident "_"]. *)
  | Sym of string  (** Symbolic operator or punctuation: [==], [->], [{], ... *)
  | Number of string  (** Integer or float literal. *)
  | String_lit  (** String literal (contents deliberately dropped). *)
  | Char_lit  (** Character literal. *)
  | Comment of string  (** Full comment text without the delimiters. *)

type token = { kind : kind; line : int; col : int }
(** [line] is 1-based, [col] is 0-based, both at the token start. *)

val tokenize : string -> token list
(** [tokenize src] lexes a whole compilation unit. Unterminated
    comments or strings are tolerated (the open token simply extends to
    the end of input); the lexer never raises. *)

val is_code : token -> bool
(** True for every kind except [Comment]. *)
