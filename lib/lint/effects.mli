(** Interprocedural effect inference and the pool-capture race
    detector.

    Every syntactic function gets a direct-effect summary — non-local
    mutation (ref assignment, [incr]/[decr], record-field stores,
    known in-place mutators like [Hashtbl.replace] and
    [Corpus.Store.intern]), IO, and outgoing calls — judged against
    its own parameters and local binders. A function is effectful when
    it has direct effects or, transitively through calls resolved via
    the module graph, any callee is. Element writes [a.(i) <- e] are
    exempt (disjoint-index fills are the sanctioned pool idiom), as is
    everything defined in [lib/parallel] and anything the resolver
    cannot see (stdlib, higher-order parameters) — the bias is
    under-reporting, never noise.

    Two checks consume the inference: closures or named functions
    passed to [Parallel.Pool.map] / [parallel_for] / [Pool.init] must
    not mutate captured state, perform IO, or call anything effectful
    ([pool-capture-race]); and [lib/fingerprint] pass bodies must
    treat their [ctx] parameter as read-only ([pass-ctx-mutation]). *)

type write = { target : string; op : string; wline : int }

type fn = {
  fpath : string;
  fname : string;  (** [""] for anonymous bindings. *)
  fline : int;
  ftop : bool;
  fstart : int;  (** Token index of the binding keyword (identity). *)
  writes : write list;  (** Direct non-local mutations. *)
  io : (string * int) list;  (** IO primitive name, line. *)
  calls : (string * int) list;  (** Unresolved callee paths, line. *)
}

type file_info = {
  path : string;
  toks : Lexer.token array;
  bindings : Structure.binding list;
  summary : Symbols.t;
  fns : fn list;
}

type env

type finding = { path : string; line : int; message : string }

val file_info :
  path:string ->
  Lexer.token array ->
  Structure.binding list ->
  Symbols.t ->
  file_info
(** Phase 1: direct-effect summaries for one file. *)

val build_env : Modgraph.t -> file_info list -> env
(** Phase 2 state: resolution tables plus the transitive-effect
    memo. *)

val effect_of : env -> fn -> string option
(** Why the function is effectful (human-readable chain), or [None].
    Memoized; cycles resolve to pure at the back edge. *)

val check_pool_sites : env -> file_info -> finding list
(** [pool-capture-race] findings for one file's pool call sites. *)

val check_ctx_readonly : file_info -> finding list
(** [pass-ctx-mutation] findings: writes through a pass's [ctx]. *)
