(* Interprocedural effect inference and the pool-capture race
   detector.

   Phase 1 (per file): every syntactic function — a binding with
   parameters, or one whose body is a [fun]/[function] literal — gets
   a direct-effect summary: which non-local names it mutates (ref
   assignment, [incr]/[decr], record-field stores, calls into a table
   of known in-place mutators like [Hashtbl.replace] and
   [Corpus.Store.intern]), whether it performs IO, and which
   identifiers it calls. "Non-local" is judged against the binding's
   parameters plus {!Structure.binders} over its body, so a function
   that mutates state it created itself stays pure from the outside.
   Element writes [a.(i) <- e] are deliberately exempt: disjoint-index
   array fills are the codebase's sanctioned way to produce results
   under the pool.

   Phase 2 (whole program): a function is effectful when it has direct
   effects or (transitively, via memoized DFS over resolved calls) any
   callee is. Calls resolve through the module graph — bare names to
   this file's bindings, [Sibling.fn] within the directory,
   [Lib.Module.fn] across libraries. Anything defined in
   [lib/parallel] is the pool's own machinery and counts as pure;
   unresolvable calls (stdlib, externals, higher-order parameters)
   are conservatively ignored, biasing the analysis toward silence
   rather than noise.

   Phase 3 (call sites): at every [Parallel.Pool.map] /
   [parallel_for] / [Pool.init] call outside [lib/parallel], the job
   argument — an inline closure or a named function — is checked:
   mutation of captured state, IO, or a call to an effectful function
   is a race finding. Separately, attribution pass [run] bodies (and
   any [lib/fingerprint] function taking a [ctx] parameter) must
   treat the pass context as read-only; writes through it are
   [pass-ctx-mutation] findings. *)

type write = { target : string; op : string; wline : int }

type fn = {
  fpath : string;
  fname : string;
  fline : int;
  ftop : bool;
  fstart : int;
  writes : write list;
  io : (string * int) list;
  calls : (string * int) list;
}

type file_info = {
  path : string;
  toks : Lexer.token array;
  bindings : Structure.binding list;
  summary : Symbols.t;
  fns : fn list;
}

type env = {
  graph : Modgraph.t;
  files : (string, file_info) Hashtbl.t;
  memo : (string * int, string option) Hashtbl.t;
  running : (string * int, unit) Hashtbl.t;
}

type finding = { path : string; line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Effect tables                                                       *)
(* ------------------------------------------------------------------ *)

let strip_stdlib s =
  if Stringx.starts_with ~prefix:"Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

(* Known in-place mutators, keyed on their last two path segments so
   [Hashtbl.replace], [Stdlib.Hashtbl.replace] and a functor instance
   [H.replace] (alias-expanded to [Hashtbl.Make...]) all match. The
   first plain argument is the mutated value. [Atomic] operations are
   absent on purpose — they are the sanctioned shared-state
   primitive. *)
let mutators =
  [ "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_buffer"; "Buffer.clear";
    "Buffer.reset"; "Buffer.truncate";
    "Queue.add"; "Queue.push"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Stack.push"; "Stack.pop"; "Stack.clear";
    "Bytes.set"; "Bytes.fill"; "Bytes.blit"; "Bytes.blit_string";
    "Array.fill"; "Array.blit"; "Array.sort"; "Array.fast_sort";
    "Array.stable_sort";
    "Store.intern"; "Id_set.add"; "Id_set.remove" ]

let io_writers =
  [ "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "read_line"; "flush";
    "Printf.printf"; "Printf.eprintf"; "Printf.fprintf"; "Format.printf";
    "Format.eprintf"; "output_string"; "output_char"; "output_bytes";
    "output_byte"; "open_out"; "open_out_bin"; "open_in"; "open_in_bin";
    "input_line"; "really_input"; "really_input_string"; "input_byte";
    "input_char"; "Sys.command"; "Sys.remove"; "Sys.rename";
    "Unix.system"; "Unix.unlink"; "Unix.mkdir" ]

let last_two s =
  match List.rev (String.split_on_char '.' s) with
  | f :: m :: _ -> m ^ "." ^ f
  | _ -> s

let root_of = Symbols.root_of

let tail_of s =
  match String.index_opt s '.' with
  | Some i -> String.sub s i (String.length s - i)
  | None -> ""

(* Root-expanded full name: [H.replace] with [module H = Hashtbl.Make]
   becomes [Hashtbl.replace]; unaliased names pass through. *)
let expand (sum : Symbols.t) id =
  let root = root_of id in
  match
    List.find_opt (fun (a, _, _) -> a = root) sum.Symbols.aliases
  with
  | Some (_, target, _) -> target ^ tail_of id
  | None -> id

let is_mutator sum id =
  let id = strip_stdlib (expand sum id) in
  List.mem (last_two id) mutators || List.mem id mutators

let is_io id =
  let id = strip_stdlib id in
  List.mem id io_writers

let is_lower s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Region scanner                                                      *)
(* ------------------------------------------------------------------ *)

(* First plain argument identifier after a function name at [i],
   skipping labeled arguments; [None] when the argument is not a
   simple identifier (conservative: no finding). *)
let arg_after toks n i =
  let skip_atom j =
    if j >= n then j
    else
      match toks.(j).Lexer.kind with
      | Lexer.Sym "(" ->
        let d = ref 1 and k = ref (j + 1) in
        while !d > 0 && !k < n do
          (match toks.(!k).Lexer.kind with
          | Lexer.Sym "(" -> incr d
          | Lexer.Sym ")" -> decr d
          | _ -> ());
          incr k
        done;
        !k
      | _ -> j + 1
  in
  let rec go j =
    if j >= n then None
    else
      match toks.(j).Lexer.kind with
      | Lexer.Sym ("~" | "?") -> (
        match if j + 1 < n then Some toks.(j + 1).Lexer.kind else None with
        | Some (Lexer.Ident _) ->
          if j + 2 < n && toks.(j + 2).Lexer.kind = Lexer.Sym ":" then
            go (skip_atom (j + 3))
          else go (j + 2)
        | _ -> None)
      | Lexer.Ident id when is_lower id -> Some id
      | _ -> None
  in
  go (i + 1)

type region_effects = {
  r_writes : write list;
  r_io : (string * int) list;
  r_calls : (string * int) list;
}

let scan_region (sum : Symbols.t) toks lo hi locals =
  let n = Array.length toks in
  let hi = Stdlib.min hi n in
  let local id = List.mem (root_of id) locals in
  let writes = ref [] and io = ref [] and calls = ref [] in
  let add_write target op line =
    if not (local target) then
      writes := { target = root_of target; op; wline = line } :: !writes
  in
  for i = lo to hi - 1 do
    let line = toks.(i).Lexer.line in
    match toks.(i).Lexer.kind with
    | Lexer.Sym ":=" ->
      if i > lo then (
        match toks.(i - 1).Lexer.kind with
        | Lexer.Ident target when is_lower target -> add_write target ":=" line
        | _ -> ())
    | Lexer.Sym "<-" ->
      if i > lo then (
        match toks.(i - 1).Lexer.kind with
        | Lexer.Sym ")" -> ()  (* element write a.(i) <- e: exempt *)
        | Lexer.Ident target -> add_write target "<-" line
        | _ -> ())
    | Lexer.Ident ("incr" | "decr") ->
      if i + 1 < hi then (
        match toks.(i + 1).Lexer.kind with
        | Lexer.Ident target when is_lower target ->
          add_write target "incr/decr" line
        | _ -> ())
    | Lexer.Ident id when is_mutator sum id -> (
      match arg_after toks hi i with
      | Some target when not (local target) ->
        writes :=
          { target = root_of target; op = strip_stdlib (expand sum id);
            wline = line }
          :: !writes
      | _ -> ())
    | Lexer.Ident id when is_io id -> io := (strip_stdlib id, line) :: !io
    | Lexer.Ident id
      when (not (List.mem id Structure.keywords)) && not (local id) ->
      (* Call candidate: bare lowercase name, or qualified path with a
         lowercase final segment. Resolution later prunes data refs
         and stdlib. *)
      let segs = String.split_on_char '.' id in
      let final = List.nth segs (List.length segs - 1) in
      if is_lower final then calls := (id, line) :: !calls
    | _ -> ()
  done;
  { r_writes = List.rev !writes;
    r_io = List.rev !io;
    r_calls = List.rev !calls }

(* ------------------------------------------------------------------ *)
(* Phase 1: per-file function summaries                                *)
(* ------------------------------------------------------------------ *)

let is_function toks (b : Structure.binding) =
  b.Structure.params <> []
  || (b.Structure.body_start < Array.length toks
     && b.Structure.body_start < b.Structure.stop
     &&
     match toks.(b.Structure.body_start).Lexer.kind with
     | Lexer.Ident ("fun" | "function") -> true
     | _ -> false)

let file_info ~path toks bindings summary =
  let fns =
    List.filter_map
      (fun (b : Structure.binding) ->
        if not (is_function toks b) then None
        else begin
          let locals =
            b.Structure.params
            @ Structure.binders toks b.Structure.body_start b.Structure.stop
          in
          let r =
            scan_region summary toks b.Structure.body_start b.Structure.stop
              locals
          in
          Some
            { fpath = path; fname = b.Structure.name; fline = b.Structure.line;
              ftop = b.Structure.toplevel; fstart = b.Structure.start;
              writes = r.r_writes; io = r.r_io; calls = r.r_calls }
        end)
      bindings
  in
  { path; toks; bindings; summary; fns }

(* ------------------------------------------------------------------ *)
(* Phase 2: resolution and transitive effects                          *)
(* ------------------------------------------------------------------ *)

let build_env graph infos =
  let files = Hashtbl.create 64 in
  List.iter (fun (fi : file_info) -> Hashtbl.replace files fi.path fi) infos;
  { graph; files; memo = Hashtbl.create 256; running = Hashtbl.create 16 }

let find_fn fi ?(toplevel_only = false) name =
  let top =
    List.find_opt (fun f -> f.fname = name && f.ftop) fi.fns
  in
  match top with
  | Some _ -> top
  | None -> if toplevel_only then None
            else List.find_opt (fun f -> f.fname = name) fi.fns

let resolve_call env (fi : file_info) callee =
  let own_dir = Modgraph.dir_of_path fi.path in
  if String.contains callee '.' then begin
    let expanded = expand fi.summary callee in
    match String.split_on_char '.' expanded with
    | root :: rest when rest <> [] -> (
      let final = List.nth rest (List.length rest - 1) in
      let in_file dir modname =
        match Modgraph.file_of env.graph ~dir ~modname with
        | Some p when Modgraph.dir_of_path p <> "lib/parallel" -> (
          match Hashtbl.find_opt env.files p with
          | Some fi' -> find_fn fi' ~toplevel_only:true final
          | None -> None)
        | _ -> None
      in
      if not (is_lower final) then None
      else
        (* Sibling module in the same directory wins, then a library
           root with an explicit submodule. *)
        match in_file own_dir root with
        | Some f -> Some f
        | None -> (
          match Modgraph.dir_of_root env.graph root with
          | Some dir when dir <> "lib/parallel" && List.length rest >= 2 ->
            in_file dir (List.hd rest)
          | _ -> None))
    | _ -> None
  end
  else
    match Hashtbl.find_opt env.files fi.path with
    | Some fi -> find_fn fi callee
    | None -> None

let describe_fn f =
  if f.fname = "" then Printf.sprintf "the closure at %s:%d" f.fpath f.fline
  else Printf.sprintf "`%s` (%s:%d)" f.fname f.fpath f.fline

(* Why is [f] effectful? [None] when it is not. Memoized; cycles
   resolve to [None] at the back edge (one-pass semantics). *)
let rec effect_of env f =
  let key = (f.fpath, f.fstart) in
  match Hashtbl.find_opt env.memo key with
  | Some r -> r
  | None ->
    if Hashtbl.mem env.running key then None
    else begin
      Hashtbl.replace env.running key ();
      let r =
        match f.writes with
        | w :: _ ->
          Some
            (Printf.sprintf "mutates shared `%s` (%s, %s:%d)" w.target w.op
               f.fpath w.wline)
        | [] -> (
          match f.io with
          | (name, line) :: _ ->
            Some
              (Printf.sprintf "performs IO via `%s` (%s:%d)" name f.fpath line)
          | [] ->
            List.find_map
              (fun (callee, _) ->
                match
                  Hashtbl.find_opt env.files f.fpath
                  |> Fun.flip Option.bind (fun fi ->
                         resolve_call env fi callee)
                with
                | Some f' when f'.fstart <> f.fstart || f'.fpath <> f.fpath
                  -> (
                  match effect_of env f' with
                  | Some why ->
                    Some
                      (Printf.sprintf "calls %s, which %s" (describe_fn f')
                         why)
                  | None -> None)
                | _ -> None)
              f.calls)
      in
      Hashtbl.remove env.running key;
      Hashtbl.replace env.memo key r;
      r
    end

(* ------------------------------------------------------------------ *)
(* Phase 3: pool call sites                                            *)
(* ------------------------------------------------------------------ *)

let pool_entry (sum : Symbols.t) id =
  let id = strip_stdlib (expand sum id) in
  match id with
  | "Parallel.Pool.map" | "Parallel.Pool.parallel_for"
  | "Parallel.Pool.init" ->
    Some id
  | _ -> None

(* Argument atoms of the application starting after token [i]:
   [`Closure (lo, hi)] for inline [fun] literals (token range of the
   whole literal), [`Named id] for identifier arguments (including the
   head of a parenthesized partial application). Labeled arguments
   are skipped. *)
let call_args toks n i =
  let atoms = ref [] in
  let j = ref (i + 1) in
  let stop = ref false in
  let matching_close k =
    let d = ref 1 and m = ref (k + 1) in
    while !d > 0 && !m < n do
      (match toks.(!m).Lexer.kind with
      | k when Structure.opens_depth k -> incr d
      | k when Structure.closes_depth k -> decr d
      | _ -> ());
      incr m
    done;
    !m - 1
  in
  while (not !stop) && !j < n && List.length !atoms < 8 do
    (match toks.(!j).Lexer.kind with
    | Lexer.Sym ("~" | "?") ->
      (match if !j + 1 < n then Some toks.(!j + 1).Lexer.kind else None with
      | Some (Lexer.Ident _) ->
        if !j + 2 < n && toks.(!j + 2).Lexer.kind = Lexer.Sym ":" then begin
          (* labeled value: skip one atom *)
          (match if !j + 3 < n then Some toks.(!j + 3).Lexer.kind else None with
          | Some (Lexer.Sym "(") -> j := matching_close (!j + 3) + 1
          | _ -> j := !j + 4)
        end
        else j := !j + 2
      | _ -> stop := true)
    | Lexer.Sym "(" ->
      let close = matching_close !j in
      (match
         if !j + 1 < n then Some toks.(!j + 1).Lexer.kind else None
       with
      | Some (Lexer.Ident ("fun" | "function")) ->
        atoms := `Closure (!j + 1, close) :: !atoms
      | Some (Lexer.Ident id) when is_lower id || String.contains id '.' ->
        atoms := `Named id :: !atoms
      | _ -> ());
      j := close + 1
    | Lexer.Ident "fun" ->
      (* unparenthesized trailing closure: runs to the end of the
         enclosing expression; approximate with the enclosing depth
         drop *)
      atoms := `Closure (!j, n) :: !atoms;
      stop := true
    | Lexer.Ident id when not (List.mem id Structure.keywords) ->
      atoms := `Named id :: !atoms;
      incr j
    | Lexer.Number _ | Lexer.String_lit | Lexer.Char_lit -> incr j
    | Lexer.Sym ("!" | "@@") -> incr j
    | _ -> stop := true);
    ()
  done;
  List.rev !atoms

let check_closure env fi entry lo hi =
  let toks = fi.toks in
  let params =
    (* tokens between `fun` and `->` *)
    let ps = ref [] and j = ref (lo + 1) in
    while
      !j < hi
      && (match toks.(!j).Lexer.kind with
         | Lexer.Sym "->" -> false
         | _ -> true)
    do
      (match toks.(!j).Lexer.kind with
      | Lexer.Ident id when is_lower id -> ps := id :: !ps
      | _ -> ());
      incr j
    done;
    !ps
  in
  let locals = params @ Structure.binders toks lo hi in
  let r = scan_region fi.summary toks lo hi locals in
  match r.r_writes with
  | w :: _ ->
    Some
      ( w.wline,
        Printf.sprintf
          "closure passed to `%s` mutates captured `%s` (%s); return values \
           and merge sequentially instead" entry w.target w.op )
  | [] -> (
    match r.r_io with
    | (name, line) :: _ ->
      Some
        ( line,
          Printf.sprintf "closure passed to `%s` performs IO via `%s`" entry
            name )
    | [] ->
      List.find_map
        (fun (callee, line) ->
          match resolve_call env fi callee with
          | Some f -> (
            match effect_of env f with
            | Some why ->
              Some
                ( line,
                  Printf.sprintf "closure passed to `%s` calls %s, which %s"
                    entry (describe_fn f) why )
            | None -> None)
          | None -> None)
        r.r_calls)

let check_pool_sites env (fi : file_info) =
  if Modgraph.dir_of_path fi.path = "lib/parallel" then []
  else begin
    let toks = fi.toks in
    let n = Array.length toks in
    let out = ref [] in
    for i = 0 to n - 1 do
      match toks.(i).Lexer.kind with
      | Lexer.Ident id -> (
        match pool_entry fi.summary id with
        | None -> ()
        | Some entry ->
          let line = toks.(i).Lexer.line in
          let finding =
            List.find_map
              (function
                | `Closure (lo, hi) -> check_closure env fi entry lo hi
                | `Named callee -> (
                  match resolve_call env fi callee with
                  | Some f -> (
                    match effect_of env f with
                    | Some why ->
                      Some
                        ( line,
                          Printf.sprintf "%s passed to `%s` %s"
                            (describe_fn f) entry why )
                    | None -> None)
                  | None -> None))
              (call_args toks n i)
          in
          Option.iter
            (fun (fline, message) ->
              out := { path = fi.path; line = fline; message } :: !out)
            finding)
      | _ -> ()
    done;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Pass contexts are read-only                                         *)
(* ------------------------------------------------------------------ *)

(* Attribution pass bodies receive the shared Ctx and the
   accumulating table; they must only read them. Checked for every
   lib/fingerprint function whose first parameters include [ctx], and
   for inline [run = (fun ctx ... -> ...)] record fields. *)
let check_ctx_readonly (fi : file_info) =
  if not (Stringx.starts_with ~prefix:"lib/fingerprint/" fi.path) then []
  else begin
    let toks = fi.toks in
    let out = ref [] in
    let check_range name lo hi =
      let r = scan_region fi.summary toks lo hi [] in
      List.iter
        (fun w ->
          if w.target = "ctx" then
            out :=
              { path = fi.path;
                line = w.wline;
                message =
                  Printf.sprintf
                    "%s mutates the pass context via `%s` (%s); Ctx.t is \
                     read-only inside passes" name w.target w.op }
              :: !out)
        r.r_writes
    in
    List.iter
      (fun (b : Structure.binding) ->
        if List.mem "ctx" b.Structure.params then
          check_range
            (if b.Structure.name = "" then "a pass body"
             else "`" ^ b.Structure.name ^ "`")
            b.Structure.body_start b.Structure.stop)
      fi.bindings;
    (* run = (fun ctx ... -> ...) record fields *)
    let n = Array.length toks in
    for i = 0 to n - 4 do
      match
        ( toks.(i).Lexer.kind, toks.(i + 1).Lexer.kind,
          toks.(i + 2).Lexer.kind, toks.(i + 3).Lexer.kind )
      with
      | Lexer.Ident "run", Lexer.Sym "=", Lexer.Sym "(", Lexer.Ident "fun" ->
        let d = ref 1 and k = ref (i + 3) in
        while !d > 0 && !k < n do
          incr k;
          (match if !k < n then Some toks.(!k).Lexer.kind else None with
          | Some (Lexer.Sym "(") -> incr d
          | Some (Lexer.Sym ")") -> decr d
          | _ -> ())
        done;
        check_range "a pass body" (i + 3) !k
      | _ -> ()
    done;
    List.rev !out
  end
