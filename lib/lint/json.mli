(** Minimal JSON reader for the linter's own machine formats.

    Parses the subset of JSON that {!Engine.to_json} and
    [lint-baseline.json] emit: objects, arrays, strings, integers,
    floats, booleans and [null]. No dependency outside the stdlib, so
    the lint library stays standalone. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; trailing non-whitespace is an error. The error
    string carries the byte offset of the first problem. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_string : t -> string option

val to_int : t -> int option

val to_list : t -> t list option

val escape : string -> string
(** JSON string-body escaping, the exact dual of the parser: quote,
    backslash, and control characters become escapes; everything else
    passes through byte-for-byte. *)
