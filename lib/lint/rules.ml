type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type finding = { line : int; message : string }

type ctx = {
  path : string;
  mli_exists : bool option;
  tokens : Lexer.token list;
}

type t = {
  id : string;
  severity : severity;
  doc : string;
  hint : string;
  check : ctx -> finding list;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* Affix checks come from the shared [Stringx] util; the thin aliases
   keep the positional call sites below readable. *)
let starts_with prefix s = Stringx.starts_with ~prefix s
let ends_with suffix s = Stringx.ends_with ~suffix s

let strip_stdlib s =
  if starts_with "Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

let code ctx = List.filter Lexer.is_code ctx.tokens

let in_dir dir path = starts_with (dir ^ "/") path

(* Flag every code identifier satisfying [pred]. *)
let flag_idents pred message ctx =
  List.filter_map
    (fun (t : Lexer.token) ->
      match t.kind with
      | Lexer.Ident s when Lexer.is_code t && pred s ->
        Some { line = t.line; message = message s }
      | _ -> None)
    ctx.tokens

(* ------------------------------------------------------------------ *)
(* Rule 1: determinism — no ambient RNG outside Netsim.Det             *)
(* ------------------------------------------------------------------ *)

(* [Random.State] threaded from an explicit seed replays identically,
   so it stays legal (the test suite relies on it); everything touching
   the ambient global generator — or self-seeding — does not. *)
let det_random ctx =
  if ctx.path = "lib/netsim/det.ml" then []
  else
    flag_idents
      (fun s ->
        let s = strip_stdlib s in
        (s = "Random" || starts_with "Random." s)
        && not
             (starts_with "Random.State." s
             && s <> "Random.State.make_self_init")
      )
      (fun s -> Printf.sprintf "nondeterministic RNG call `%s`" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Rule 2: no physical equality on values                              *)
(* ------------------------------------------------------------------ *)

let phys_equal ctx =
  List.filter_map
    (fun (t : Lexer.token) ->
      match t.kind with
      | Lexer.Sym (("==" | "!=") as op) ->
        Some
          { line = t.line;
            message = Printf.sprintf "physical equality `%s`" op }
      | _ -> None)
    ctx.tokens

(* ------------------------------------------------------------------ *)
(* Rule 3: no polymorphic compare in the bignum layers                 *)
(* ------------------------------------------------------------------ *)

(* A file that defines its own top-level [let compare] (Nat, Zz) may of
   course call it unqualified; only files without such a definition are
   using [Stdlib.compare], which on [Nat.t] would order by limb-array
   identity rather than numeric value. *)
let poly_compare ctx =
  if not (in_dir "lib/bignum" ctx.path || in_dir "lib/batchgcd" ctx.path)
  then []
  else
    let defines_compare =
      let rec scan = function
        | { Lexer.kind = Lexer.Ident "let"; _ }
          :: { Lexer.kind = Lexer.Ident "compare"; _ } :: _ -> true
        | _ :: rest -> scan rest
        | [] -> false
      in
      scan (code ctx)
    in
    flag_idents
      (fun s ->
        s = "Stdlib.compare" || ((not defines_compare) && s = "compare"))
      (fun s -> Printf.sprintf "polymorphic `%s` on bignum values" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Rule 4: no catch-all exception handlers                             *)
(* ------------------------------------------------------------------ *)

(* Lexical [with]-binder tracking: a [with] resolves the innermost
   open [try], [match] or record-update brace. Only a [try]'s [with]
   whose first pattern is a bare [_] is flagged; a trailing [| _ ->]
   arm deeper in a handler is beyond a lexical pass (documented in
   LINTING.md). *)
let catchall_exn ctx =
  let findings = ref [] in
  let rec run stack = function
    | [] -> ()
    | ({ Lexer.kind; line; _ } : Lexer.token) :: rest -> (
      match kind with
      | Lexer.Ident "try" -> run (`Try :: stack) rest
      | Lexer.Ident "match" -> run (`Match :: stack) rest
      | Lexer.Sym "{" -> run (`Brace :: stack) rest
      | Lexer.Sym "}" ->
        run (match stack with `Brace :: tl -> tl | s -> s) rest
      | Lexer.Ident "with" -> (
        match stack with
        | `Try :: tl ->
          (let arm =
             match rest with
             | { Lexer.kind = Lexer.Sym "|"; _ } :: r -> r
             | r -> r
           in
           match arm with
           | { Lexer.kind = Lexer.Ident "_"; _ }
             :: { Lexer.kind = Lexer.Sym "->"; _ } :: _ ->
             findings :=
               { line; message = "catch-all `try ... with _ ->`" }
               :: !findings
           | _ -> ());
          run tl rest
        | `Match :: tl -> run tl rest
        | _ -> run stack rest)
      | _ -> run stack rest)
  in
  run [] (code ctx);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule 5: library code never writes to stdout/stderr                  *)
(* ------------------------------------------------------------------ *)

let stdout_writers =
  [ "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline" ]

let lib_stdout ctx =
  if not (in_dir "lib" ctx.path) then []
  else
    flag_idents
      (fun s -> List.mem (strip_stdlib s) stdout_writers)
      (fun s -> Printf.sprintf "direct console output `%s` in library code" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Rule 6: failwith only inside *_exn functions                        *)
(* ------------------------------------------------------------------ *)

(* The enclosing chain comes from the binding-structure parser, so
   nested [let ... in] helpers resolve precisely: a [failwith] is
   sanctioned when any binding in its enclosing chain carries the
   [_exn] suffix (a private helper inside [parse_exn] may raise on its
   behalf), and a raising helper inside a non-[_exn] function is
   flagged even when the column-0 binding looks innocent. *)
let failwith_outside_exn ctx =
  let toks = Structure.code_array ctx.tokens in
  let bindings = Structure.parse toks in
  let out = ref [] in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident id when strip_stdlib id = "failwith" ->
        let chain = Structure.enclosing bindings i in
        let sanctioned =
          List.exists
            (fun (b : Structure.binding) ->
              ends_with "_exn" b.Structure.name)
            chain
        in
        if not sanctioned then begin
          let name =
            List.find_map
              (fun (b : Structure.binding) ->
                if b.Structure.name = "" then None else Some b.Structure.name)
              chain
          in
          out :=
            { line = t.Lexer.line;
              message =
                Printf.sprintf "`failwith` outside an `_exn` function%s"
                  (match name with
                  | None -> ""
                  | Some n -> " (in `" ^ n ^ "`)") }
            :: !out
        end
      | _ -> ())
    toks;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Rule 7: no top-level mutable state in libraries                     *)
(* ------------------------------------------------------------------ *)

let toplevel_ref ctx =
  if not (in_dir "lib" ctx.path) then []
  else
    let findings = ref [] in
    let rec run = function
      | ({ Lexer.kind = Lexer.Ident "let"; col = 0; _ } : Lexer.token)
        :: { Lexer.kind = Lexer.Ident name; _ }
        :: { Lexer.kind = Lexer.Sym "="; line; _ }
        :: { Lexer.kind = Lexer.Ident "ref"; _ } :: rest ->
        findings :=
          { line;
            message =
              Printf.sprintf "top-level mutable state `let %s = ref ...`" name }
          :: !findings;
        run rest
      | _ :: rest -> run rest
      | [] -> ()
    in
    run (code ctx);
    List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rule 8: every library module has an interface                       *)
(* ------------------------------------------------------------------ *)

let missing_mli ctx =
  match ctx.mli_exists with
  | Some false when in_dir "lib" ctx.path && ends_with ".ml" ctx.path ->
    [ { line = 1; message = "library module without a matching `.mli`" } ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Rule 9: no quadratic list append on hot paths                       *)
(* ------------------------------------------------------------------ *)

let hot_module path =
  in_dir "lib/batchgcd" path || in_dir "lib/fingerprint" path
  || in_dir "lib/corpus" path
  || path = "lib/netsim/world.ml"

let nontail_append ctx =
  if not (hot_module ctx.path) then []
  else
    let rec run prev = function
      | [] -> []
      | ({ Lexer.kind; line; _ } : Lexer.token) :: rest -> (
        match kind with
        | Lexer.Sym "@" when prev <> Some (Lexer.Sym "[") ->
          (* [@attr] is an attribute, not an append *)
          { line; message = "list append `@` in a hot module" }
          :: run (Some kind) rest
        | Lexer.Ident id when strip_stdlib id = "List.append" ->
          { line; message = "`List.append` in a hot module" }
          :: run (Some kind) rest
        | _ -> run (Some kind) rest)
    in
    run None (code ctx)

(* ------------------------------------------------------------------ *)
(* Rule 10: raw domain primitives only inside lib/parallel             *)
(* ------------------------------------------------------------------ *)

(* Parallelism stays centralised in the Parallel.Pool subsystem: ad-hoc
   Domain.spawn re-introduces the per-call spawn cost the pool exists
   to remove, and bypasses its deterministic failure propagation and
   nesting guard. *)
let domain_primitives = [ "Domain.spawn"; "Domain.join" ]

let domain_outside_parallel ctx =
  if in_dir "lib/parallel" ctx.path then []
  else
    flag_idents
      (fun s -> List.mem (strip_stdlib s) domain_primitives)
      (fun s -> Printf.sprintf "raw domain primitive `%s` outside lib/parallel" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Rule 11: task markers must carry an issue tag                       *)
(* ------------------------------------------------------------------ *)

(* A marker is well-formed when immediately followed by "(#<digits>)",
   e.g. TODO(#42). *)
let marker_tagged text i marker =
  let j = i + String.length marker in
  let len = String.length text in
  j + 2 < len
  && text.[j] = '('
  && text.[j + 1] = '#'
  && (let k = ref (j + 2) in
      while !k < len && text.[!k] >= '0' && text.[!k] <= '9' do incr k done;
      !k > j + 2 && !k < len && text.[!k] = ')')

let find_markers text =
  let hits = ref [] in
  List.iter
    (fun marker ->
      let mlen = String.length marker in
      let len = String.length text in
      for i = 0 to len - mlen do
        if String.sub text i mlen = marker && not (marker_tagged text i marker)
        then
          (* line offset of the hit inside a multi-line comment *)
          let off = ref 0 in
          (String.iteri (fun k c -> if k < i && c = '\n' then incr off) text;
           hits := (marker, !off) :: !hits)
      done)
    [ "TODO"; "FIXME" ];
  !hits

let todo_issue_tag ctx =
  List.concat_map
    (fun (t : Lexer.token) ->
      match t.kind with
      | Lexer.Comment text ->
        List.map
          (fun (marker, off) ->
            { line = t.line + off;
              message =
                Printf.sprintf "`%s` without an issue tag like `%s(#123)`"
                  marker marker })
          (find_markers text)
      | _ -> [])
    ctx.tokens

(* ------------------------------------------------------------------ *)
(* Rule 12: Hashtbls keyed on modulus limbs belong in lib/corpus       *)
(* ------------------------------------------------------------------ *)

(* The interning boundary: outside lib/corpus, moduli and primes are
   identified by their dense Corpus.Store id, not by their limb array.
   Two lexical patterns: a Hashtbl type whose key component is
   [int array], and a Hashtbl operation passed a [to_limbs] key. *)
let limbs_keyed_hashtbl ctx =
  if in_dir "lib/corpus" ctx.path then []
  else begin
    let toks = Array.of_list (code ctx) in
    let n = Array.length toks in
    let ident i =
      if i < 0 || i >= n then None
      else match toks.(i).Lexer.kind with Lexer.Ident s -> Some s | _ -> None
    in
    let out = ref [] in
    for i = 0 to n - 1 do
      match toks.(i).Lexer.kind with
      | Lexer.Sym "("
        when ident (i + 1) = Some "int" && ident (i + 2) = Some "array" ->
        (* [(int array, _) Hashtbl.t]: the value type is at most a few
           tokens, so a short window suffices for the constructor. *)
        let rec look j =
          if j <= i + 10 && j < n then
            match ident j with
            | Some s when strip_stdlib s = "Hashtbl.t" ->
              out :=
                { line = toks.(i).Lexer.line;
                  message = "Hashtbl keyed on limb arrays (`(int array, _) Hashtbl.t`)" }
                :: !out
            | _ -> look (j + 1)
        in
        look (i + 3)
      | Lexer.Ident s when s = "to_limbs" || ends_with ".to_limbs" s ->
        let hashtbl_op h =
          let h = strip_stdlib h in
          starts_with "Hashtbl." h && h <> "Hashtbl.t"
        in
        let rec back j =
          if j >= 0 && j >= i - 10 then
            match ident j with
            | Some h when hashtbl_op h ->
              out :=
                { line = toks.(i).Lexer.line;
                  message = Printf.sprintf "`%s` used as a Hashtbl key" s }
                :: !out
            | _ -> back (j - 1)
        in
        back (i - 1)
      | _ -> ()
    done;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Rule 13: fingerprint techniques run through the pass registry       *)
(* ------------------------------------------------------------------ *)

(* The attribution engine is the single place where attribution
   techniques execute: every caller outside lib/fingerprint gets its
   vendor labels from the merged Attribution table, so ad-hoc calls to
   a technique's entry point bypass the registry's dependency order,
   evidence merge and per-pass timing. Reads of pass artifacts
   (Shared_prime.overlaps, Openssl_fp.satisfy_probability_random, …)
   stay legal; only the entry points that *run* a technique are
   flagged. Tests exercise techniques in isolation by design. *)
let technique_entry_points =
  [ "Rules.of_certificate"; "Rules.of_record"; "Ibm_clique.detect";
    "Shared_prime.build"; "Rimon.detect"; "Openssl_fp.classify";
    "Openssl_fp.classify_vendors"; "Bit_errors.suspicious";
    "Bit_errors.partition"; "Bit_errors.bitflip_neighbor" ]

let fingerprint_outside_registry ctx =
  if in_dir "lib/fingerprint" ctx.path || in_dir "test" ctx.path then []
  else
    flag_idents
      (fun s ->
        let s =
          if starts_with "Fingerprint." s then
            String.sub s 12 (String.length s - 12)
          else s
        in
        List.mem s technique_entry_points)
      (fun s ->
        Printf.sprintf
          "fingerprint technique entry point `%s` outside the pass registry" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Rule 14: per-modulus limb vectors stay in the arena                 *)
(* ------------------------------------------------------------------ *)

(* A collection of limb vectors ([int array array], [int array list])
   boxes every modulus as its own heap block with its own header and
   GC lifetime. Bulk limb storage belongs to the contiguous Bigarray
   arena (lib/corpus/arena.ml), and lib/bignum owns the scalar
   representation (its kernels allocate such shapes as scratch).
   Anywhere else, the shape is per-modulus boxing creeping back in. *)
let boxed_limb_array ctx =
  if in_dir "lib/bignum" ctx.path || ctx.path = "lib/corpus/arena.ml" then []
  else begin
    let toks = Array.of_list (code ctx) in
    let n = Array.length toks in
    let ident i =
      if i < 0 || i >= n then None
      else match toks.(i).Lexer.kind with Lexer.Ident s -> Some s | _ -> None
    in
    let out = ref [] in
    for i = 0 to n - 3 do
      if ident i = Some "int" && ident (i + 1) = Some "array" then
        match ident (i + 2) with
        | Some (("array" | "list") as outer) ->
          out :=
            { line = toks.(i).Lexer.line;
              message =
                Printf.sprintf
                  "boxed per-modulus limb storage `int array %s`" outer }
            :: !out
        | _ -> ()
    done;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Rule 15: leaf GCDs go through the Nat.gcd dispatcher                *)
(* ------------------------------------------------------------------ *)

(* [Nat.gcd] picks binary vs Lehmer by operand size; calling
   [gcd_binary]/[gcd_euclid]/[gcd_lehmer] directly — or hand-rolling a
   [let rec gcd] loop — pins the caller to one kernel and silently
   bypasses the WEAKKEYS_HGCD_THRESHOLD dispatch. The variants stay
   exported precisely for the ablation bench and the cross-kernel
   equivalence tests, so bench/ and test/ are exempt alongside
   lib/bignum itself. *)
let gcd_variants = [ "gcd_euclid"; "gcd_binary"; "gcd_lehmer" ]

let gcd_outside_nat ctx =
  if in_dir "lib/bignum" ctx.path || in_dir "bench" ctx.path
     || in_dir "test" ctx.path
  then []
  else begin
    let variant_calls =
      flag_idents
        (fun s ->
          let s = strip_stdlib s in
          let s =
            match String.rindex_opt s '.' with
            | Some i -> String.sub s (i + 1) (String.length s - i - 1)
            | None -> s
          in
          List.mem s gcd_variants)
        (fun s ->
          Printf.sprintf
            "GCD kernel variant `%s` pinned outside lib/bignum" s)
        ctx
    in
    (* A hand-rolled Euclid loop announces itself as [let rec gcd ...];
       plain [let gcd = ...] aliases of the dispatcher stay legal. *)
    let handrolled =
      let rec run = function
        | ({ Lexer.kind = Lexer.Ident "let"; _ } : Lexer.token)
          :: { Lexer.kind = Lexer.Ident "rec"; _ }
          :: { Lexer.kind = Lexer.Ident name; line; _ } :: rest
          when name = "gcd" || List.mem name gcd_variants ->
          { line;
            message =
              Printf.sprintf "hand-rolled GCD loop `let rec %s`" name }
          :: run rest
        | _ :: rest -> run rest
        | [] -> []
      in
      run (code ctx)
    in
    variant_calls @ handrolled
  end

(* ------------------------------------------------------------------ *)
(* Rule 16: batch-GCD sweeps go through the Backend registry            *)
(* ------------------------------------------------------------------ *)

(* [Batchgcd.Backend] is the one place that knows which decomposition
   (tree / ksubset / all_to_all) fits a workload; calling
   [factor_batch]/[factor_subsets] directly from product code pins one
   decomposition and sidesteps the WEAKKEYS_BACKEND override and the
   size-threshold policy. lib/batchgcd itself implements the backends,
   and bench/ and test/ deliberately pin decompositions for shootouts
   and cross-backend equality suites. *)
let batchgcd_entry_points =
  [ "factor_batch"; "factor_subsets"; "factor_subsets_trees" ]

let batchgcd_outside_backend ctx =
  if in_dir "lib/batchgcd" ctx.path || in_dir "bench" ctx.path
     || in_dir "test" ctx.path
  then []
  else
    flag_idents
      (fun s ->
        let s = strip_stdlib s in
        let s =
          match String.rindex_opt s '.' with
          | Some i -> String.sub s (i + 1) (String.length s - i - 1)
          | None -> s
        in
        List.mem s batchgcd_entry_points)
      (fun s ->
        Printf.sprintf
          "batch-GCD entry point `%s` called outside the Backend registry" s)
      ctx

(* ------------------------------------------------------------------ *)
(* Catalogue                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "det-random";
      severity = Error;
      doc =
        "ambient Stdlib.Random breaks seed-replayable simulation; use \
         Netsim.Det or an explicitly seeded Random.State";
      hint = "derive values from Netsim.Det.int/float/bytes keyed on the seed";
      check = det_random };
    { id = "phys-equal";
      severity = Error;
      doc =
        "== / != compare heap identity; on boxed Nat.t/Zz.t two equal \
         numbers are routinely distinct blocks";
      hint = "use =, Nat.equal or Zz.equal";
      check = phys_equal };
    { id = "poly-compare";
      severity = Error;
      doc =
        "polymorphic compare in lib/bignum and lib/batchgcd orders limb \
         arrays structurally, not numerically";
      hint = "use Nat.compare / Zz.compare / Nat.equal";
      check = poly_compare };
    { id = "catchall-exn";
      severity = Error;
      doc = "try ... with _ -> silently swallows every exception, \
             including Out_of_memory and Assert_failure";
      hint = "match the specific exception, or bind it and re-raise";
      check = catchall_exn };
    { id = "lib-stdout";
      severity = Error;
      doc =
        "library code must not print; all reporting goes through \
         Weakkeys.Report so the CLI owns the channel";
      hint = "return a string / Buffer, or extend Weakkeys.Report";
      check = lib_stdout };
    { id = "failwith-outside-exn";
      severity = Warning;
      doc =
        "failwith-raising helpers must advertise it with an _exn suffix \
         so callers know to handle Failure";
      hint = "rename the function to *_exn, or return an option/result";
      check = failwith_outside_exn };
    { id = "toplevel-ref";
      severity = Warning;
      doc =
        "top-level refs are cross-run, cross-domain shared state; they \
         break replay determinism and the parallel batch-GCD pool";
      hint = "thread the state through a record, or suppress for a \
              deliberate tuning knob";
      check = toplevel_ref };
    { id = "missing-mli";
      severity = Error;
      doc = "every lib/ module needs a .mli so the public surface is \
             explicit and warnings stay meaningful";
      hint = "add a matching .mli next to the .ml";
      check = missing_mli };
    { id = "nontail-append";
      severity = Warning;
      doc =
        "@ / List.append are O(n) per use and not tail-recursive; the \
         batch-GCD trees and world stepping are hot paths";
      hint = "accumulate with List.rev_append or a Buffer";
      check = nontail_append };
    { id = "domain-outside-parallel";
      severity = Error;
      doc =
        "Domain.spawn / Domain.join outside lib/parallel bypasses the \
         persistent pool (per-call spawn cost, no deterministic failure \
         propagation, no nesting guard)";
      hint = "use Parallel.Pool.map / parallel_for, or extend lib/parallel";
      check = domain_outside_parallel };
    { id = "todo-issue-tag";
      severity = Warning;
      doc = "untracked TODO/FIXME comments rot; tie them to an issue";
      hint = "write TODO(#<issue>) or delete the comment";
      check = todo_issue_tag };
    { id = "limbs-keyed-hashtbl";
      severity = Warning;
      doc =
        "Hashtbl keyed on Nat.to_limbs limb arrays outside lib/corpus \
         bypasses the interning store and copies key material per lookup";
      hint =
        "intern the value with Corpus.Store and key on the dense int id \
         (int-keyed Hashtbl, array or Corpus.Id_set)";
      check = limbs_keyed_hashtbl };
    { id = "boxed-limb-array";
      severity = Warning;
      doc =
        "`int array array` / `int array list` box every modulus's limbs \
         as a separate heap block; bulk limb storage lives in the \
         contiguous corpus arena";
      hint =
        "store limbs through Corpus.Arena / Corpus.Store and address \
         them by dense id (or keep the shape inside lib/bignum's kernels)";
      check = boxed_limb_array };
    { id = "fingerprint-outside-registry";
      severity = Warning;
      doc =
        "attribution techniques run only as registered passes; direct \
         calls to their entry points outside lib/fingerprint bypass the \
         registry's dependency order, evidence merge and timings";
      hint =
        "query Fingerprint.Attribution (or a Pipeline derived view), or \
         register a new Pass in Fingerprint.Registry";
      check = fingerprint_outside_registry };
    { id = "gcd-outside-nat";
      severity = Warning;
      doc =
        "direct calls to gcd_euclid/gcd_binary/gcd_lehmer — or \
         hand-rolled `let rec gcd` loops — outside lib/bignum pin a \
         caller to one kernel and bypass the size-dispatched Lehmer \
         path and its WEAKKEYS_HGCD_THRESHOLD knob";
      hint =
        "call Nat.gcd and let the dispatcher pick the kernel (the \
         variants stay exported for bench/ ablations and test/ \
         equivalence suites)";
      check = gcd_outside_nat };
    { id = "batchgcd-outside-backend";
      severity = Warning;
      doc =
        "direct calls to factor_batch/factor_subsets outside \
         lib/batchgcd pin one sweep decomposition and bypass the \
         Backend registry's WEAKKEYS_BACKEND override and \
         size-threshold selection";
      hint =
        "resolve a backend with Batchgcd.Backend.get (or select) and \
         call Backend.factor (bench/ shootouts and test/ equality \
         suites stay exempt)";
      check = batchgcd_outside_backend };
  ]

(* ------------------------------------------------------------------ *)
(* Deep (whole-program) analyses                                       *)
(* ------------------------------------------------------------------ *)

(* These rules have no per-file [check]: the engine computes their
   findings from the cross-file module graph and effect inference and
   attributes them back to these ids for severity, doc, and
   suppression handling. *)
let deep_check (_ : ctx) : finding list = []

let deep =
  [
    { id = "layer-violation";
      severity = Error;
      doc =
        "unit directories form an ordered layer cake (bignum at the \
         bottom, bin/test/bench on top); dependencies may point \
         sideways or down, never up, and skip-listed edges are banned \
         outright";
      hint =
        "move the shared code down a layer, or add a justified entry to \
         the Layers spec allow-list";
      check = deep_check };
    { id = "pool-capture-race";
      severity = Warning;
      doc =
        "a closure handed to Parallel.Pool.map / parallel_for that \
         mutates captured state, performs IO, or (transitively) calls \
         something that does races across domains";
      hint =
        "return values and merge sequentially after the join, write \
         into disjoint a.(i) slots, or use Atomic";
      check = deep_check };
    { id = "pass-ctx-mutation";
      severity = Error;
      doc =
        "attribution pass bodies receive the shared Pass.Ctx read-only; \
         mutating it from inside a pass breaks registry replay and \
         pass independence";
      hint =
        "build pass-local state and return it in the pass result \
         instead of writing through ctx";
      check = deep_check };
    { id = "unused-suppression";
      severity = Warning;
      doc =
        "a `(* lint: allow <rule> *)` directive whose rule no longer \
         fires on the lines it covers is dead weight and hides future \
         regressions";
      hint = "delete the stale directive";
      check = deep_check };
  ]

let find id = List.find_opt (fun r -> r.id = id) (all @ deep)
