type finding = {
  rule : string;
  severity : Rules.severity;
  path : string;
  line : int;
  message : string;
  hint : string;
}

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s = Stringx.starts_with ~prefix s

let drop_prefix prefix s =
  String.trim (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))

let split_ids s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun id -> id <> "")

(* A directive [(* lint: allow id1, id2 *)] covers every line the
   comment itself spans plus the line directly below, so it works both
   trailing on the offending line and on its own line above. *)
type directive = { ids : string list; first : int; last : int }

let directives tokens =
  List.filter_map
    (fun (t : Lexer.token) ->
      match t.kind with
      | Lexer.Comment text ->
        let body = String.trim text in
        if starts_with "lint:" body then
          let rest = drop_prefix "lint:" body in
          if starts_with "allow" rest then
            let newlines =
              String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text
            in
            Some
              { ids = split_ids (drop_prefix "allow" rest);
                first = t.line;
                last = t.line + newlines + 1 }
          else None
        else None
      | _ -> None)
    tokens

let suppressed ds (f : finding) =
  List.exists
    (fun d -> f.line >= d.first && f.line <= d.last && List.mem f.rule d.ids)
    ds

(* ------------------------------------------------------------------ *)
(* Linting                                                             *)
(* ------------------------------------------------------------------ *)

let normalize_path p =
  let p = if starts_with "./" p then String.sub p 2 (String.length p - 2) else p in
  String.concat "/" (List.filter (fun s -> s <> "") (String.split_on_char '/' p))

let lint_source ~path ?mli_exists src =
  let path = normalize_path path in
  let tokens = Lexer.tokenize src in
  let ctx = { Rules.path; mli_exists; tokens } in
  let ds = directives tokens in
  Rules.all
  |> List.concat_map (fun (r : Rules.t) ->
         List.map
           (fun (f : Rules.finding) ->
             { rule = r.id;
               severity = r.severity;
               path;
               line = f.line;
               message = f.message;
               hint = r.hint })
           (r.check ctx))
  |> List.filter (fun f -> not (suppressed ds f))
  |> List.sort (fun a b ->
         match Int.compare a.line b.line with
         | 0 -> String.compare a.rule b.rule
         | c -> c)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let rec gather acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc else gather acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files = List.fold_left gather [] paths |> List.sort_uniq String.compare in
  List.concat_map
    (fun file ->
      let mli_exists =
        Sys.file_exists (Filename.chop_suffix file ".ml" ^ ".mli")
      in
      lint_source ~path:file ~mli_exists (read_file file))
    files

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let summary fs =
  let errors =
    List.length (List.filter (fun f -> f.severity = Rules.Error) fs)
  in
  match fs with
  | [] -> "weakkeys-lint: no findings"
  | _ ->
    Printf.sprintf "weakkeys-lint: %d finding%s (%d error%s, %d warning%s)"
      (List.length fs)
      (if List.length fs = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      (List.length fs - errors)
      (if List.length fs - errors = 1 then "" else "s")

let to_text fs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: [%s] %s: %s\n    hint: %s\n" f.path f.line
           (Rules.severity_to_string f.severity)
           f.rule f.message f.hint))
    fs;
  Buffer.add_string buf (summary fs);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json fs =
  let field k v = Printf.sprintf "\"%s\": \"%s\"" k (json_escape v) in
  let one f =
    String.concat ", "
      [ field "rule" f.rule;
        field "severity" (Rules.severity_to_string f.severity);
        field "path" f.path;
        Printf.sprintf "\"line\": %d" f.line;
        field "message" f.message;
        field "hint" f.hint ]
  in
  "[\n" ^ String.concat ",\n" (List.map (fun f -> "  { " ^ one f ^ " }") fs)
  ^ (if fs = [] then "]" else "\n]")
