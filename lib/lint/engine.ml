type finding = {
  rule : string;
  severity : Rules.severity;
  path : string;
  line : int;
  message : string;
  hint : string;
}

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s = Stringx.starts_with ~prefix s

let drop_prefix prefix s =
  String.trim (String.sub s (String.length prefix)
                 (String.length s - String.length prefix))

let index_of_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let split_ids s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun id -> id <> "")

(* A directive [(* lint: allow id1, id2 *)] covers every line the
   comment itself spans plus the line directly below, so it works both
   trailing on the offending line and on its own line above. The
   directive body may carry a justification after an [--] separator:
   [(* lint: allow toplevel-ref -- tuning knob *)]. *)
type directive = { ids : string list; first : int; last : int }

let directives tokens =
  List.filter_map
    (fun (t : Lexer.token) ->
      match t.kind with
      | Lexer.Comment text ->
        let body = String.trim text in
        if starts_with "lint:" body then
          let rest = drop_prefix "lint:" body in
          if starts_with "allow" rest then
            let newlines =
              String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 text
            in
            let ids_part =
              (* Justification prose follows an "--" or "—" separator;
                 free prose without one is tolerated (the audit only
                 considers words naming known rules). *)
              let s = drop_prefix "allow" rest in
              let cut sep s =
                match index_of_sub sep s with
                | Some i -> String.trim (String.sub s 0 i)
                | None -> s
              in
              cut "--" (cut "\xe2\x80\x94" s)
            in
            Some
              { ids = split_ids ids_part;
                first = t.line;
                last = t.line + newlines + 1 }
          else None
        else None
      | _ -> None)
    tokens

let suppressed ds (f : finding) =
  List.exists
    (fun d -> f.line >= d.first && f.line <= d.last && List.mem f.rule d.ids)
    ds

(* ------------------------------------------------------------------ *)
(* Linting                                                             *)
(* ------------------------------------------------------------------ *)

let normalize_path p =
  let p = if starts_with "./" p then String.sub p 2 (String.length p - 2) else p in
  String.concat "/" (List.filter (fun s -> s <> "") (String.split_on_char '/' p))

type source = { src_path : string; mli_exists : bool option; src : string }

let order_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.path b.path with
      | 0 -> (
        match Int.compare a.line b.line with
        | 0 -> String.compare a.rule b.rule
        | c -> c)
      | c -> c)
    fs

let mk_finding (r : Rules.t) path line message =
  { rule = r.id; severity = r.severity; path; line; message; hint = r.hint }

(* The deep rules live in Rules.deep with inert checks; severity and
   hint still come from the catalogue so rendering is uniform. *)
let deep_rule id =
  match Rules.find id with
  | Some r -> r
  | None -> invalid_arg ("deep_rule: unknown rule " ^ id)

let lint_units ?(deep = false) ?cache_dir units =
  let per_file =
    List.map
      (fun u ->
        let u = { u with src_path = normalize_path u.src_path } in
        let tokens = Lexer.tokenize u.src in
        let ctx =
          { Rules.path = u.src_path; mli_exists = u.mli_exists; tokens }
        in
        let raw =
          Rules.all
          |> List.concat_map (fun (r : Rules.t) ->
                 List.map
                   (fun (f : Rules.finding) ->
                     mk_finding r u.src_path f.line f.message)
                   (r.check ctx))
        in
        (u, tokens, directives tokens, raw))
      units
  in
  let deep_findings =
    if not deep then []
    else begin
      let summaries =
        List.map
          (fun (u, _, _, _) ->
            Symbols.summarize_cached ?cache_dir ~path:u.src_path u.src)
          per_file
      in
      let graph = Modgraph.build summaries in
      let layer_rule = deep_rule "layer-violation" in
      let layer =
        Layers.check graph
        |> List.map (fun (l : Layers.finding) ->
               mk_finding layer_rule l.Layers.path l.Layers.line
                 l.Layers.message)
      in
      let infos =
        List.map2
          (fun (u, tokens, _, _) sum ->
            let toks = Structure.code_array tokens in
            Effects.file_info ~path:u.src_path toks (Structure.parse toks) sum)
          per_file summaries
      in
      let env = Effects.build_env graph infos in
      let race_rule = deep_rule "pool-capture-race" in
      let ctx_rule = deep_rule "pass-ctx-mutation" in
      let of_effects r (f : Effects.finding) =
        mk_finding r f.Effects.path f.Effects.line f.Effects.message
      in
      let pool =
        List.concat_map
          (fun fi ->
            List.map (of_effects race_rule) (Effects.check_pool_sites env fi))
          infos
      in
      let ctxm =
        List.concat_map
          (fun fi ->
            List.map (of_effects ctx_rule) (Effects.check_ctx_readonly fi))
          infos
      in
      layer @ pool @ ctxm
    end
  in
  let by_path = Hashtbl.create 16 in
  List.iter
    (fun (u, _, ds, _) -> Hashtbl.replace by_path u.src_path ds)
    per_file;
  let ds_of path = Option.value ~default:[] (Hashtbl.find_opt by_path path) in
  let raw =
    List.concat_map (fun (_, _, _, raw) -> raw) per_file @ deep_findings
  in
  let kept = List.filter (fun f -> not (suppressed (ds_of f.path) f)) raw in
  (* Suppression audit (deep mode): every (directive, rule-id) pair
     must have caught at least one raw finding, else the directive is
     dead weight. Audit findings are themselves unsuppressable — a
     stale allow is fixed by deleting it, not by allowing it. *)
  let audit =
    if not deep then []
    else begin
      let unused_rule = deep_rule "unused-suppression" in
      List.concat_map
        (fun (u, _, ds, _) ->
          List.concat_map
            (fun d ->
              List.filter_map
                (fun id ->
                  if Option.is_none (Rules.find id) then None
                  else
                  let used =
                    List.exists
                      (fun f ->
                        f.path = u.src_path && f.rule = id
                        && f.line >= d.first && f.line <= d.last)
                      raw
                  in
                  if used then None
                  else
                    Some
                      (mk_finding unused_rule u.src_path d.first
                         (Printf.sprintf
                            "suppression `(* lint: allow %s *)` never fires"
                            id)))
                d.ids)
            ds)
        per_file
    end
  in
  order_findings (kept @ audit)

let lint_source ~path ?mli_exists src =
  lint_units [ { src_path = path; mli_exists; src } ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let rec gather acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc else gather acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths ?deep ?cache_dir paths =
  let files = List.fold_left gather [] paths |> List.sort_uniq String.compare in
  let units =
    List.map
      (fun file ->
        { src_path = file;
          mli_exists =
            Some (Sys.file_exists (Filename.chop_suffix file ".ml" ^ ".mli"));
          src = read_file file })
      files
  in
  lint_units ?deep ?cache_dir units

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let summary fs =
  let errors =
    List.length (List.filter (fun f -> f.severity = Rules.Error) fs)
  in
  match fs with
  | [] -> "weakkeys-lint: no findings"
  | _ ->
    Printf.sprintf "weakkeys-lint: %d finding%s (%d error%s, %d warning%s)"
      (List.length fs)
      (if List.length fs = 1 then "" else "s")
      errors
      (if errors = 1 then "" else "s")
      (List.length fs - errors)
      (if List.length fs - errors = 1 then "" else "s")

let to_text fs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: [%s] %s: %s\n    hint: %s\n" f.path f.line
           (Rules.severity_to_string f.severity)
           f.rule f.message f.hint))
    fs;
  Buffer.add_string buf (summary fs);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_json fs =
  let field k v = Printf.sprintf "\"%s\": \"%s\"" k (Json.escape v) in
  let one f =
    String.concat ", "
      [ field "rule" f.rule;
        field "severity" (Rules.severity_to_string f.severity);
        field "path" f.path;
        Printf.sprintf "\"line\": %d" f.line;
        field "message" f.message;
        field "hint" f.hint ]
  in
  "[\n" ^ String.concat ",\n" (List.map (fun f -> "  { " ^ one f ^ " }") fs)
  ^ (if fs = [] then "]" else "\n]")

let findings_of_json s =
  let open Json in
  Result.bind (parse s) (fun j ->
      match to_list j with
      | None -> Error "findings: top level must be a JSON array"
      | Some items ->
        List.fold_left
          (fun acc item ->
            Result.bind acc (fun fs ->
                let str k =
                  match Option.bind (member k item) to_string with
                  | Some s -> Ok s
                  | None ->
                    Error (Printf.sprintf "finding: missing string %S" k)
                in
                Result.bind (str "rule") (fun rule ->
                    Result.bind (str "severity") (fun sev ->
                        Result.bind (str "path") (fun path ->
                            Result.bind (str "message") (fun message ->
                                Result.bind (str "hint") (fun hint ->
                                    match
                                      ( Option.bind (member "line" item) to_int,
                                        sev )
                                    with
                                    | None, _ ->
                                      Error "finding: missing integer `line`"
                                    | Some line, "error" ->
                                      Ok
                                        ({ rule; severity = Rules.Error; path;
                                           line; message; hint }
                                        :: fs)
                                    | Some line, "warning" ->
                                      Ok
                                        ({ rule; severity = Rules.Warning;
                                           path; line; message; hint }
                                        :: fs)
                                    | Some _, other ->
                                      Error
                                        (Printf.sprintf
                                           "finding: unknown severity %S" other))))))))
          (Ok []) items
        |> Result.map List.rev)
