(* Lightweight binding-structure parser over the lint lexer's token
   stream. It recovers just enough shape for the semantic analyses:
   which [let]/[and] bindings exist (at any nesting depth, not only
   column 0), their syntactic parameters, and the token range of each
   bound expression — so "which function encloses this token" has a
   precise answer, and the effects analysis can tell closure-local
   names from captured ones.

   The parser is a single pass with a frame stack. Nesting depth
   counts every bracketing construct ([()], [[]], [{}], [begin]/[end],
   [struct]/[sig]/[object]/[end], [do]/[done]); a [let] opens a frame
   once its [=] is found at the let's own depth, an [in] at that depth
   closes the innermost frame, a column-0 structural keyword closes
   everything. Misparses degrade to over-wide ranges, never crashes. *)

type binding = {
  name : string;  (* "" for unit/pattern/operator bindings *)
  params : string list;
  line : int;
  toplevel : bool;
  start : int;
  body_start : int;
  stop : int;
}

let code_array tokens = Array.of_list (List.filter Lexer.is_code tokens)

let is_lower_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && not (String.contains s '.')

let keywords =
  [ "let"; "and"; "rec"; "in"; "fun"; "function"; "match"; "with"; "type";
    "module"; "open"; "exception"; "if"; "then"; "else"; "begin"; "end";
    "struct"; "sig"; "object"; "do"; "done"; "to"; "downto"; "while"; "for";
    "try"; "when"; "as"; "of"; "mutable"; "lazy"; "assert"; "true"; "false";
    "not"; "or"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "ref";
    "new"; "val"; "method"; "inherit"; "initializer"; "constraint";
    "external"; "include"; "functor" ]

let is_keyword s = List.mem s keywords

let opens_depth = function
  | Lexer.Sym ("(" | "[" | "{") -> true
  | Lexer.Ident ("begin" | "struct" | "sig" | "object" | "do") -> true
  | _ -> false

let closes_depth = function
  | Lexer.Sym (")" | "]" | "}") -> true
  | Lexer.Ident ("end" | "done") -> true
  | _ -> false

(* Column-0 keywords that terminate every open top-level binding. *)
let toplevel_break = function
  | Lexer.Ident
      ("let" | "and" | "type" | "module" | "open" | "exception" | "include"
      | "external" | "class")
  | Lexer.Sym ";;" ->
    true
  | _ -> false

type frame = {
  f_name : string;
  f_params : string list;
  f_line : int;
  f_top : bool;
  f_start : int;
  f_depth : int;
  f_body : int;
}

let parse toks =
  let n = Array.length toks in
  let out = ref [] in
  let stack = ref [] in
  let close idx f =
    out :=
      { name = f.f_name; params = f.f_params; line = f.f_line;
        toplevel = f.f_top; start = f.f_start; body_start = f.f_body;
        stop = idx }
      :: !out
  in
  let close_all idx = List.iter (close idx) !stack; stack := [] in
  let close_deeper idx depth =
    let rec go = function
      | f :: rest when f.f_depth > depth -> close idx f; go rest
      | rest -> stack := rest
    in
    go !stack
  in
  let depth = ref 0 in
  let i = ref 0 in
  while !i < n do
    let t = toks.(!i) in
    (match t.Lexer.kind with
    | Lexer.Ident (("let" | "and") as kw) ->
      let at_top = t.Lexer.col = 0 in
      if at_top then close_all !i
      else if kw = "and" then begin
        (* [and] continues a binding group at the same depth: the
           sibling frame ends here. *)
        match !stack with
        | f :: rest when f.f_depth = !depth ->
          close !i f;
          stack := rest
        | _ -> ()
      end;
      (* Head scan: name, syntactic params, and the [=] that starts
         the bound expression — all at the let's own depth. *)
      let d0 = !depth in
      let j = ref (!i + 1) in
      (if !j < n then
         match toks.(!j).Lexer.kind with
         | Lexer.Ident "rec" -> incr j
         | _ -> ());
      let name =
        if !j < n then
          match toks.(!j).Lexer.kind with
          | Lexer.Ident id when not (is_keyword id) -> id
          | Lexer.Ident "module" ->
            (* [let module M = ... in]: record under the module name so
               the range still nests correctly. *)
            if !j + 1 < n then
              match toks.(!j + 1).Lexer.kind with
              | Lexer.Ident m -> incr j; m
              | _ -> ""
            else ""
          | _ -> ""
        else ""
      in
      if name <> "" then incr j;
      let params = ref [] in
      let d = ref d0 in
      let eq = ref (-1) in
      let bailed = ref false in
      while !eq < 0 && (not !bailed) && !j < n do
        let tk = toks.(!j) in
        (if opens_depth tk.Lexer.kind then incr d
         else if closes_depth tk.Lexer.kind then decr d);
        (match tk.Lexer.kind with
        | Lexer.Sym "=" when !d = d0 -> eq := !j
        | Lexer.Ident "in" when !d = d0 ->
          (* [let open M in ...]: no value is bound; skip the head. *)
          bailed := true
        | Lexer.Ident id when is_lower_ident id && not (is_keyword id) ->
          if not (List.mem id !params) then params := id :: !params
        | _ -> ());
        if !d < d0 then bailed := true else incr j
      done;
      if !eq >= 0 then begin
        stack :=
          { f_name = name; f_params = List.rev !params; f_line = t.Lexer.line;
            f_top = (at_top && kw = "let") || (!stack = [] && t.Lexer.col <= 2);
            f_start = !i; f_depth = d0; f_body = !eq + 1 }
          :: !stack;
        i := !eq + 1
      end
      else i := Stdlib.max (!i + 1) !j
    | Lexer.Ident "in" -> (
      (match !stack with
      | f :: rest when f.f_depth = !depth ->
        close !i f;
        stack := rest
      | _ -> ());
      incr i)
    | k when toplevel_break k && t.Lexer.col = 0 ->
      close_all !i;
      incr i
    | k ->
      if opens_depth k then incr depth
      else if closes_depth k then begin
        depth := Stdlib.max 0 (!depth - 1);
        close_deeper !i !depth
      end;
      incr i)
  done;
  close_all n;
  List.sort (fun a b -> Int.compare a.start b.start) !out

let enclosing bindings idx =
  bindings
  |> List.filter (fun b -> b.body_start <= idx && idx < b.stop)
  |> List.sort (fun a b -> Int.compare b.body_start a.body_start)

(* ------------------------------------------------------------------ *)
(* Local binders                                                       *)
(* ------------------------------------------------------------------ *)

(* Names plausibly bound within [lo, hi): function parameters, let
   bindings, match-arm patterns, [as]/[for] binders. Deliberately an
   over-approximation — treating one extra name as local makes the
   effects analysis miss a capture, never invent one. *)
let binders toks lo hi =
  let n = Array.length toks in
  let hi = Stdlib.min hi n in
  let acc = ref [] in
  let add id =
    if is_lower_ident id && (not (is_keyword id)) && not (List.mem id !acc)
    then acc := id :: !acc
  in
  let collect_until j stop_sym cap =
    let j = ref j and steps = ref 0 in
    while
      !j < hi && !steps < cap
      && (match toks.(!j).Lexer.kind with
         | Lexer.Sym s when s = stop_sym -> false
         | _ -> true)
    do
      (match toks.(!j).Lexer.kind with
      | Lexer.Ident id -> add id
      | _ -> ());
      incr j;
      incr steps
    done
  in
  let i = ref lo in
  while !i < hi do
    (match toks.(!i).Lexer.kind with
    | Lexer.Ident ("fun" | "function") -> collect_until (!i + 1) "->" 50
    | Lexer.Ident ("let" | "and") ->
      let j = ref (!i + 1) in
      (if !j < hi then
         match toks.(!j).Lexer.kind with
         | Lexer.Ident "rec" -> incr j
         | _ -> ());
      collect_until !j "=" 60
    | Lexer.Ident "with" | Lexer.Sym "|" -> collect_until (!i + 1) "->" 50
    | Lexer.Ident ("as" | "for") ->
      if !i + 1 < hi then (
        match toks.(!i + 1).Lexer.kind with
        | Lexer.Ident id -> add id
        | _ -> ())
    | _ -> ());
    incr i
  done;
  !acc
