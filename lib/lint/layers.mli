(** Declarative layering checker over the module graph.

    An ordered layer spec (bottom first) assigns every unit directory
    a height; edges may point sideways or down, never up. Two
    refinements keep the spec honest about the existing architecture:
    an allow-list of individually justified upward edges (pre-existing
    trades like the bignum kernels fanning onto the domain pool), and
    a deny-list of skip-listed edges that are banned even though they
    point downward (the simulator calling attribution techniques). *)

type spec = {
  layers : (string * string list) list;
      (** Ordered bottom-first: layer name, unit directories. *)
  allowed : (string * string * string) list;
      (** Justified exceptions: source dir, target dir, why. *)
  denied : (string * string * string) list;
      (** Banned even when downward: source dir, target dir, why. *)
}

val default : spec
(** The repository's layer cake: bignum → hashes/stringx → parallel →
    corpus → rsa/x509lite → batchgcd → entropy → fingerprint → netsim
    → analysis → core → lint → bin/test/bench. *)

val index_of : spec -> string -> int option
(** Layer height of a unit directory; [None] when unlisted (unlisted
    directories are not checked). *)

val layer_name : spec -> string -> string option

type finding = { path : string; line : int; message : string }

val check : ?spec:spec -> Modgraph.t -> finding list
(** Every upward or skip-listed cross-unit edge, reported at the first
    referencing line in the offending file. *)
