(** The weakkeys-lint rule set.

    Each rule is a purely lexical check over one compilation unit. See
    LINTING.md at the repository root for the full catalogue with
    rationale and examples. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type finding = { line : int; message : string }

type ctx = {
  path : string;  (** Repo-relative path, ['/']-separated, no leading [./]. *)
  mli_exists : bool option;
      (** Whether a sibling [.mli] exists; [None] when unknown (e.g.
          linting an in-memory snippet without a filesystem). *)
  tokens : Lexer.token list;
}

type t = {
  id : string;
  severity : severity;
  doc : string;  (** One-line rationale, shown by [--list-rules]. *)
  hint : string;  (** How to fix or legitimately suppress. *)
  check : ctx -> finding list;
}

val all : t list
(** Every per-file lexical rule, in catalogue order (rule ids are
    stable). *)

val deep : t list
(** The whole-program analyses ([layer-violation],
    [pool-capture-race], [pass-ctx-mutation], [unused-suppression]).
    Their [check] functions return nothing — the engine computes their
    findings from the module graph and effect inference and attributes
    them to these ids for severity, doc and suppression handling. *)

val find : string -> t option
(** Lookup across [all] and [deep]. *)
