(* Minimal JSON reader for the linter's own machine formats: the
   --json findings output and lint-baseline.json. Covers exactly the
   subset those emit — objects, arrays, double-quoted strings with the
   escapes Engine.json_escape produces, integers, floats, booleans and
   null — and reports the byte offset of the first error. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

type cursor = { src : string; len : int; mutable i : int }

let error cur msg = raise (Parse_error (cur.i, msg))

let peek cur = if cur.i < cur.len then Some cur.src.[cur.i] else None

let skip_ws cur =
  while
    cur.i < cur.len
    && (match cur.src.[cur.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.i <- cur.i + 1
  done

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some c' when c' = c -> cur.i <- cur.i + 1
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if cur.i + n <= cur.len && String.sub cur.src cur.i n = word then begin
    cur.i <- cur.i + n;
    value
  end
  else error cur (Printf.sprintf "expected `%s`" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if cur.i >= cur.len then error cur "unterminated string"
    else
      let c = cur.src.[cur.i] in
      cur.i <- cur.i + 1;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if cur.i >= cur.len then error cur "unterminated escape"
         else
           let e = cur.src.[cur.i] in
           cur.i <- cur.i + 1;
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if cur.i + 4 > cur.len then error cur "truncated \\u escape";
             let hex = String.sub cur.src cur.i 4 in
             cur.i <- cur.i + 4;
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> error cur "malformed \\u escape"
             in
             (* The linter only ever emits \u00XX control escapes; read
                anything in the BMP as UTF-8 so round-trips stay exact. *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf
                 (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> error cur "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let parse_number cur =
  let start = cur.i in
  let is_num_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while cur.i < cur.len && is_num_char cur.src.[cur.i] do
    cur.i <- cur.i + 1
  done;
  let text = String.sub cur.src start (cur.i - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error cur "malformed number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | Some '"' -> String (parse_string cur)
  | Some '{' ->
    cur.i <- cur.i + 1;
    skip_ws cur;
    if peek cur = Some '}' then begin
      cur.i <- cur.i + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws cur;
        let key = parse_string cur in
        expect cur ':';
        let v = parse_value cur in
        fields := (key, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' -> cur.i <- cur.i + 1; members ()
        | Some '}' -> cur.i <- cur.i + 1
        | _ -> error cur "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    cur.i <- cur.i + 1;
    skip_ws cur;
    if peek cur = Some ']' then begin
      cur.i <- cur.i + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' -> cur.i <- cur.i + 1; elements ()
        | Some ']' -> cur.i <- cur.i + 1
        | _ -> error cur "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | _ -> error cur "expected a JSON value"

let parse src =
  let cur = { src; len = String.length src; i = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.i < cur.len then Error "trailing content after JSON value"
    else Ok v
  | exception Parse_error (off, msg) ->
    Error (Printf.sprintf "offset %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* Typed accessors                                                     *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_string = function String s -> Some s | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_list = function List vs -> Some vs | _ -> None

(* Escaping for emitters (Baseline.save and friends) — the exact dual
   of the string parser above. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
