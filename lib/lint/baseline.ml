(* Committed finding baseline — the ratchet.

   A baseline is a list of accepted findings keyed on (rule, path,
   message) with an occurrence count and a human justification. Line
   numbers are deliberately absent from the key: unrelated edits above
   a baselined finding must not churn the file. Comparing a run
   against the baseline partitions into new findings (fail), matched
   findings (accepted, silent), and stale entries — baselined findings
   that no longer occur, which also fail so the baseline only ever
   shrinks by being edited, never by rotting. *)

type entry = {
  rule : string;
  path : string;
  message : string;
  count : int;
  justification : string;
}

type t = entry list

let key e = e.rule ^ "\x00" ^ e.path ^ "\x00" ^ e.message

let finding_key ~rule ~path ~message = rule ^ "\x00" ^ path ^ "\x00" ^ message

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let of_json j =
  match j with
  | Json.List items ->
    let entry = function
      | Json.Obj _ as o ->
        let str k =
          match Json.member k o with
          | Some (Json.String s) -> Ok s
          | _ -> Error (Printf.sprintf "baseline entry: missing string %S" k)
        in
        let count =
          match Json.member "count" o with
          | Some (Json.Int n) when n > 0 -> Ok n
          | None -> Ok 1
          | _ -> Error "baseline entry: `count` must be a positive integer"
        in
        Result.bind (str "rule") (fun rule ->
            Result.bind (str "path") (fun path ->
                Result.bind (str "message") (fun message ->
                    Result.bind count (fun count ->
                        let justification =
                          match Json.member "justification" o with
                          | Some (Json.String s) -> s
                          | _ -> ""
                        in
                        Ok { rule; path; message; count; justification }))))
      | _ -> Error "baseline: entries must be objects"
    in
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun entries ->
            Result.map (fun e -> e :: entries) (entry item)))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "baseline: top level must be a JSON array"

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | src -> Result.bind (Json.parse src) of_json

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  {";
      Printf.bprintf buf "\"rule\": \"%s\", " (Json.escape e.rule);
      Printf.bprintf buf "\"path\": \"%s\", " (Json.escape e.path);
      Printf.bprintf buf "\"message\": \"%s\", " (Json.escape e.message);
      Printf.bprintf buf "\"count\": %d, " e.count;
      Printf.bprintf buf "\"justification\": \"%s\"}"
        (Json.escape e.justification))
    t;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save file t =
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t))

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type comparison = {
  fresh : (string * string * string) list;
      (* (rule, path, message) not in the baseline, deduplicated *)
  stale : entry list;  (* baselined but no longer occurring *)
}

let compare_run t findings =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (rule, path, message) ->
      let k = finding_key ~rule ~path ~message in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    findings;
  let baselined = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace baselined (key e) e) t;
  let fresh =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (rule, path, message) ->
        let k = finding_key ~rule ~path ~message in
        if Hashtbl.mem baselined k || Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      findings
  in
  let stale =
    List.filter (fun e -> not (Hashtbl.mem counts (key e))) t
  in
  { fresh; stale }

let of_findings ?(justification = "accepted pre-existing finding") findings =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (rule, path, message) ->
      let k = finding_key ~rule ~path ~message in
      match Hashtbl.find_opt tbl k with
      | Some e -> Hashtbl.replace tbl k { e with count = e.count + 1 }
      | None ->
        order := k :: !order;
        Hashtbl.replace tbl k { rule; path; message; count = 1; justification })
    findings;
  List.rev_map (fun k -> Hashtbl.find tbl k) !order
