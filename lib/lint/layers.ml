(* Declarative layering checker over the module graph.

   The spec is an ordered list of layers (bottom first); a unit
   directory may depend on any directory in the same or a lower
   layer. Upward edges are violations, as are explicitly skip-listed
   edges even when they point downward. A short allow-list grants
   individually justified exceptions for pre-existing architectural
   trades (each carries its justification, printed with the rule's
   hint), so the checker can be strict about everything new without a
   flag day for the old. *)

type spec = {
  layers : (string * string list) list;  (* bottom first *)
  allowed : (string * string * string) list;  (* src dir, dst dir, why *)
  denied : (string * string * string) list;  (* src dir, dst dir, why *)
}

(* The repository's layer cake. The four allowed upward edges are
   deliberate, pre-existing trades:
   - corpus-arena -> bignum: the arena stores raw limb images;
     Nat.of_limbs/to_limbs is its only crossing, and pinning the
     storage layer below bignum keeps every other dependency out of
     the mmap-restored corpus substrate.
   - bignum -> parallel: the PR 3 in-multiply parallelism fans
     Karatsuba/Toom-3 pointwise products onto the domain pool from
     inside the kernel ladder.
   - rsa -> entropy: keygen consumes the modeled boot-time entropy
     stream (Device_rng) so weak-key cohorts reproduce the paper.
   - fingerprint -> netsim: Pass.Ctx carries scan snapshots typed in
     Netsim.Scanner; inverting this (a scan-facts record owned by
     corpus) is future work.
   The denied edges are downward but architecturally banned: the
   simulator must never invoke attribution techniques, and entropy
   modeling must never reach into key generation. *)
let default =
  {
    layers =
      [
        ("corpus-arena", [ "lib/corpus" ]);
        ("bignum", [ "lib/bignum" ]);
        ("text+hash", [ "lib/hashes"; "lib/stringx" ]);
        ("parallel", [ "lib/parallel" ]);
        ("keys", [ "lib/rsa"; "lib/x509lite" ]);
        ("batchgcd", [ "lib/batchgcd" ]);
        ("entropy", [ "lib/entropy" ]);
        ("fingerprint", [ "lib/fingerprint" ]);
        ("netsim", [ "lib/netsim" ]);
        ("analysis", [ "lib/analysis" ]);
        ("core", [ "lib/core" ]);
        ("tooling", [ "lib/lint" ]);
        ("entry", [ "bin"; "test"; "bench"; "examples" ]);
      ];
    allowed =
      [
        ( "lib/corpus", "lib/bignum",
          "the arena stores raw limb images; Nat.of_limbs/to_limbs is \
           the storage layer's only crossing" );
        ( "lib/bignum", "lib/parallel",
          "in-multiply parallelism: kernel ladder fans pointwise products \
           onto the pool (PR 3)" );
        ( "lib/rsa", "lib/entropy",
          "keygen consumes the modeled boot-time entropy stream by design" );
        ( "lib/fingerprint", "lib/netsim",
          "Pass.Ctx carries scan snapshots typed in Netsim.Scanner; \
           inversion is future work" );
      ];
    denied =
      [
        ( "lib/netsim", "lib/fingerprint",
          "the simulator plants anomalies; it must never run attribution \
           techniques on itself" );
        ( "lib/entropy", "lib/rsa",
          "entropy modeling feeds keygen, never the reverse" );
      ];
  }

let index_of spec dir =
  let rec go i = function
    | [] -> None
    | (_, dirs) :: rest ->
      if List.mem dir dirs then Some i else go (i + 1) rest
  in
  go 0 spec.layers

let layer_name spec dir =
  List.find_map
    (fun (name, dirs) -> if List.mem dir dirs then Some name else None)
    spec.layers

type finding = { path : string; line : int; message : string }

let edge_in list src dst =
  List.find_map
    (fun (s, d, why) -> if s = src && d = dst then Some why else None)
    list

let check ?(spec = default) graph =
  List.filter_map
    (fun (e : Modgraph.edge) ->
      let violation kind =
        Some
          { path = e.Modgraph.src_path;
            line = e.Modgraph.line;
            message =
              Printf.sprintf
                "%s: `%s` (%s) must not depend on %s via `%s`" kind
                e.Modgraph.src_dir
                (Option.value ~default:"?" (layer_name spec e.Modgraph.src_dir))
                e.Modgraph.dst_dir e.Modgraph.via }
      in
      match edge_in spec.denied e.Modgraph.src_dir e.Modgraph.dst_dir with
      | Some _ -> violation "skip-listed edge"
      | None -> (
        if edge_in spec.allowed e.Modgraph.src_dir e.Modgraph.dst_dir <> None
        then None
        else
          match
            (index_of spec e.Modgraph.src_dir, index_of spec e.Modgraph.dst_dir)
          with
          | Some src, Some dst when dst > src -> violation "upward edge"
          | _ -> None))
    (Modgraph.edges graph)
