type kind =
  | Ident of string
  | Sym of string
  | Number of string
  | String_lit
  | Char_lit
  | Comment of string

type token = { kind : kind; line : int; col : int }

let is_code t = match t.kind with Comment _ -> false | _ -> true

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Number continuation: covers hex/octal/binary literals, underscores
   and the mantissa dot. Exponent signs split off as operators, which
   is harmless for lint purposes. *)
let is_number_char c =
  is_digit c || is_ident_start c || c = '.'

let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c

(* State threaded through the scan. [line]/[bol] give the position of
   any index cheaply without a second pass. *)
type cursor = { src : string; len : int; mutable i : int; mutable line : int; mutable bol : int }

let peek cur k = if cur.i + k < cur.len then Some cur.src.[cur.i + k] else None

let advance cur =
  (if cur.i < cur.len && cur.src.[cur.i] = '\n' then begin
     cur.line <- cur.line + 1;
     cur.bol <- cur.i + 1
   end);
  cur.i <- cur.i + 1

(* Skip a double-quoted string body; [cur.i] is on the opening quote. *)
let skip_string cur =
  advance cur;
  let rec go () =
    match peek cur 0 with
    | None -> ()
    | Some '\\' -> advance cur; advance cur; go ()
    | Some '"' -> advance cur
    | Some _ -> advance cur; go ()
  in
  go ()

(* [{id|...|id}] quoted strings: returns true (and consumes) when the
   brace at [cur.i] really opens one. *)
let try_quoted_string cur =
  let j = ref (cur.i + 1) in
  while
    !j < cur.len
    && (let c = cur.src.[!j] in (c >= 'a' && c <= 'z') || c = '_')
  do incr j done;
  if !j < cur.len && cur.src.[!j] = '|' then begin
    let id = String.sub cur.src (cur.i + 1) (!j - cur.i - 1) in
    let closing = "|" ^ id ^ "}" in
    let clen = String.length closing in
    (* move past "{id|" *)
    while cur.i <= !j do advance cur done;
    let matched = ref false in
    while (not !matched) && cur.i < cur.len do
      if cur.i + clen <= cur.len && String.sub cur.src cur.i clen = closing
      then begin
        for _ = 1 to clen do advance cur done;
        matched := true
      end
      else advance cur
    done;
    true
  end
  else false

(* Comment body with nesting; strings inside comments are honoured so
   a ["*)"] literal cannot close the comment early. [cur.i] is on the
   '(' of "(*". Returns the comment text without delimiters. *)
let scan_comment cur =
  let start = cur.i + 2 in
  advance cur; advance cur;
  let depth = ref 1 in
  while !depth > 0 && cur.i < cur.len do
    match peek cur 0, peek cur 1 with
    | Some '(', Some '*' -> incr depth; advance cur; advance cur
    | Some '*', Some ')' -> decr depth; advance cur; advance cur
    | Some '"', _ -> skip_string cur
    | Some _, _ -> advance cur
    | None, _ -> ()
  done;
  let stop = if !depth = 0 then cur.i - 2 else cur.i in
  String.sub cur.src start (Stdlib.max 0 (stop - start))

(* Identifier, joined across '.' into a qualified path when the next
   segment starts like an identifier. *)
let scan_ident cur =
  let start = cur.i in
  let rec segment () =
    while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
      advance cur
    done;
    match peek cur 0, peek cur 1 with
    | Some '.', Some c when is_ident_start c -> advance cur; segment ()
    | _ -> ()
  in
  segment ();
  String.sub cur.src start (cur.i - start)

let scan_number cur =
  let start = cur.i in
  while (match peek cur 0 with Some c -> is_number_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.i - start)

let scan_op cur =
  let start = cur.i in
  while (match peek cur 0 with Some c -> is_op_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.i - start)

(* After a quote: char literal ['a'] / ['\n'] / ['\xFF'], or a type
   variable ['a]. Distinguished by looking for the closing quote. *)
let scan_quote cur =
  match peek cur 1 with
  | Some '\\' ->
    advance cur; advance cur;
    let rec go () =
      match peek cur 0 with
      | Some '\'' -> advance cur
      | Some _ -> advance cur; go ()
      | None -> ()
    in
    go ();
    Some Char_lit
  | Some _ when peek cur 2 = Some '\'' ->
    advance cur; advance cur; advance cur;
    Some Char_lit
  | _ ->
    (* type variable or standalone quote: skip the variable name *)
    advance cur;
    while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
      advance cur
    done;
    None

let tokenize src =
  let cur = { src; len = String.length src; i = 0; line = 1; bol = 0 } in
  let out = ref [] in
  let emit ~line ~col kind = out := { kind; line; col } :: !out in
  while cur.i < cur.len do
    let line = cur.line and col = cur.i - cur.bol in
    let c = cur.src.[cur.i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance cur
    else if c = '(' && peek cur 1 = Some '*' then
      let text = scan_comment cur in
      emit ~line ~col (Comment text)
    else if c = '"' then begin
      skip_string cur;
      emit ~line ~col String_lit
    end
    else if c = '{' && try_quoted_string cur then emit ~line ~col String_lit
    else if c = '\'' then begin
      match scan_quote cur with
      | Some k -> emit ~line ~col k
      | None -> ()
    end
    else if is_ident_start c then emit ~line ~col (Ident (scan_ident cur))
    else if is_digit c then emit ~line ~col (Number (scan_number cur))
    else if is_op_char c then emit ~line ~col (Sym (scan_op cur))
    else begin
      advance cur;
      emit ~line ~col (Sym (String.make 1 c))
    end
  done;
  List.rev !out
