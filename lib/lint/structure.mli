(** Binding-structure parser for the deep analyses.

    Recovers the [let]/[and] binding tree — at every nesting depth,
    not just column 0 — from the lint lexer's token stream: binding
    names, syntactic parameters, and the token range of each bound
    expression. This is what lets [failwith-outside-exn] see nested
    [let ... in] helpers and the effects analysis distinguish a
    closure's own locals from captured state.

    The parser is heuristic (no compiler-libs): misparses degrade to
    over-wide body ranges or missing bindings, never exceptions. *)

type binding = {
  name : string;  (** [""] for unit, pattern and operator bindings. *)
  params : string list;
      (** Lowercase identifiers between the name and the [=] — an
          over-approximation of the parameter list (type annotations
          and tuple components are included, which is harmless for the
          consumers here). [[]] for plain value bindings. *)
  line : int;
  toplevel : bool;  (** Column-0 structure item. *)
  start : int;  (** Token index of the [let]/[and] keyword. *)
  body_start : int;  (** Token index just after the binding's [=]. *)
  stop : int;  (** Exclusive token index ending the bound expression. *)
}

val code_array : Lexer.token list -> Lexer.token array
(** Code tokens only (comments dropped), as the array every consumer
    of token indices shares. *)

val parse : Lexer.token array -> binding list
(** All bindings in the unit, sorted by [start]. Ranges are properly
    nested: an inner binding's [body_start, stop) lies inside its
    enclosing binding's range. *)

val enclosing : binding list -> int -> binding list
(** Bindings whose bound expression contains the given token index,
    innermost first. *)

val keywords : string list
(** OCaml keywords and keyword-like identifiers, as the lexer emits
    them ([Ident] tokens); shared by every analysis that must not
    mistake a keyword for a name. *)

val opens_depth : Lexer.kind -> bool
(** Tokens that push a nesting frame: [( [ { begin struct sig object
    do]. *)

val closes_depth : Lexer.kind -> bool
(** Tokens that pop one: [) \] } end done]. *)

val binders : Lexer.token array -> int -> int -> string list
(** Names plausibly bound locally within the token range [lo, hi):
    parameters, [let] binders, match-arm pattern names. Deliberately
    an over-approximation (extra names make the effects analysis miss
    a capture, never invent one). *)
