(* Per-file symbol summary: what a compilation unit defines at top
   level, which modules it opens or aliases, and every qualified
   module reference it makes. These summaries are the raw material of
   the module graph and the layering checker.

   Summaries are cached content-addressed, like Stage.run_cached for
   pipeline artifacts: the cache key is a SHA-256 of the summary
   format version plus the file bytes, so edits (or a format change)
   miss and recompute while untouched files restore for free. Cache
   IO failures of any kind degrade to recomputation, never errors. *)

type t = {
  path : string;
  modname : string;
  defines : (string * int) list;
  opens : (string * int) list;
  aliases : (string * string * int) list;
  refs : (string * int) list;
}

(* Bump when the summary shape or extraction logic changes: stale
   cache entries from an older linter must never be restored. *)
let version = "weakkeys-lint-symbols/1"

let modname_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  if base = "" then ""
  else String.make 1 (Char.uppercase_ascii base.[0])
       ^ String.sub base 1 (String.length base - 1)

let is_module_path s =
  String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let root_of s =
  match String.index_opt s '.' with
  | Some i -> String.sub s 0 i
  | None -> s

let summarize ~path src =
  let toks = Structure.code_array (Lexer.tokenize src) in
  let bindings = Structure.parse toks in
  let defines =
    List.filter_map
      (fun (b : Structure.binding) ->
        if b.Structure.toplevel && b.Structure.name <> ""
           && b.Structure.name <> "_"
        then Some (b.Structure.name, b.Structure.line)
        else None)
      bindings
  in
  let n = Array.length toks in
  let opens = ref [] and aliases = ref [] and refs = ref [] in
  for i = 0 to n - 1 do
    match toks.(i).Lexer.kind with
    | Lexer.Ident "open" ->
      if i + 1 < n then (
        match toks.(i + 1).Lexer.kind with
        | Lexer.Ident m when is_module_path m ->
          opens := (m, toks.(i).Lexer.line) :: !opens
        | _ -> ())
    | Lexer.Ident "module" ->
      (* [module A = Path] — an alias when the right-hand side is a
         module path (not [struct], not a functor application). *)
      if i + 3 < n then (
        match
          ( toks.(i + 1).Lexer.kind,
            toks.(i + 2).Lexer.kind,
            toks.(i + 3).Lexer.kind )
        with
        | Lexer.Ident a, Lexer.Sym "=", Lexer.Ident target
          when is_module_path a && is_module_path target ->
          aliases := (a, target, toks.(i).Lexer.line) :: !aliases
        | _ -> ())
    | Lexer.Ident s when is_module_path s && String.contains s '.' ->
      refs := (s, toks.(i).Lexer.line) :: !refs
    | _ -> ()
  done;
  { path;
    modname = modname_of_path path;
    defines;
    opens = List.rev !opens;
    aliases = List.rev !aliases;
    refs = List.rev !refs }

(* ------------------------------------------------------------------ *)
(* Content-addressed cache                                             *)
(* ------------------------------------------------------------------ *)

let cache_key src = Hashes.Sha256.hexdigest (version ^ "\x00" ^ src)

let cache_file dir key = Filename.concat dir (key ^ ".sum")

let load_cached dir key =
  let file = cache_file dir key in
  if not (Sys.file_exists file) then None
  else
    match
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> (Marshal.from_channel ic : string * t))
    with
    | v, t when v = version -> Some t
    | _ -> None
    | exception (Sys_error _ | End_of_file | Failure _) -> None

let store_cached dir key t =
  match
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let tmp = cache_file dir (key ^ ".tmp") in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Marshal.to_channel oc (version, t) []);
    Sys.rename tmp (cache_file dir key)
  with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) -> ()

let summarize_cached ?cache_dir ~path src =
  match cache_dir with
  | None -> summarize ~path src
  | Some dir -> (
    let key = cache_key (path ^ "\x00" ^ src) in
    match load_cached dir key with
    | Some t -> t
    | None ->
      let t = summarize ~path src in
      store_cached dir key t;
      t)
