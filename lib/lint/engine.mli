(** Driver for the weakkeys-lint rule set: runs every rule over source
    files, honours inline [(* lint: allow <rule-id> *)] suppressions,
    optionally runs the whole-program deep analyses, and renders
    findings as text or JSON. *)

type finding = {
  rule : string;
  severity : Rules.severity;
  path : string;
  line : int;
  message : string;
  hint : string;
}

type source = {
  src_path : string;
      (** Repo-relative path used for rule scoping; need not exist on
          disk. *)
  mli_exists : bool option;
  src : string;
}

val lint_units :
  ?deep:bool -> ?cache_dir:string -> source list -> finding list
(** Lint a set of compilation units given in memory. With
    [deep:true], additionally builds the cross-file symbol table and
    module graph over the whole set and runs the deep analyses:
    [layer-violation] (ordered layer spec over unit directories),
    [pool-capture-race] and [pass-ctx-mutation] (interprocedural
    effect inference), and [unused-suppression] (every directive must
    catch at least one raw finding; audit findings are themselves
    unsuppressable). [cache_dir] enables the content-addressed symbol
    cache. Findings are sorted by path, line, rule. *)

val lint_source : path:string -> ?mli_exists:bool -> string -> finding list
(** Lint one compilation unit given as a string (lexical rules only).
    A suppression comment covers its own line(s) and the line directly
    below it, and may name several rules separated by commas or
    spaces; justification prose after [--] or an em-dash is ignored. *)

val lint_paths :
  ?deep:bool -> ?cache_dir:string -> string list -> finding list
(** Lint files and/or directories (recursed; [_build], [.git] and
    other dot-directories are skipped; only [.ml] files are read).
    Sibling [.mli] presence is checked on disk for the [missing-mli]
    rule. Findings are sorted by path, then line. Raises
    [Sys_error] on unreadable paths. *)

val to_text : finding list -> string
(** One [path:line: [severity] rule: message] block per finding, with
    the fix hint, plus a summary line. *)

val to_json : finding list -> string
(** A JSON array of finding objects. *)

val findings_of_json : string -> (finding list, string) result
(** Parse {!to_json} output back into findings — the machine-format
    round-trip the tests and the baseline workflow rely on. *)
