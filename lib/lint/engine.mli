(** Driver for the weakkeys-lint rule set: runs every rule over source
    files, honours inline [(* lint: allow <rule-id> *)] suppressions,
    and renders findings as text or JSON. *)

type finding = {
  rule : string;
  severity : Rules.severity;
  path : string;
  line : int;
  message : string;
  hint : string;
}

val lint_source : path:string -> ?mli_exists:bool -> string -> finding list
(** Lint one compilation unit given as a string. [path] is the
    repo-relative path used for rule scoping ([lib/...], [test/...]);
    it does not have to exist on disk. Findings are sorted by line.
    A suppression comment covers its own line(s) and the line directly
    below it, and may name several rules separated by commas or
    spaces. *)

val lint_paths : string list -> finding list
(** Lint files and/or directories (recursed; [_build], [.git] and
    other dot-directories are skipped; only [.ml] files are read).
    Sibling [.mli] presence is checked on disk for the [missing-mli]
    rule. Findings are sorted by path, then line. Raises
    [Sys_error] on unreadable paths. *)

val to_text : finding list -> string
(** One [path:line: [severity] rule: message] block per finding, with
    the fix hint, plus a summary line. *)

val to_json : finding list -> string
(** A JSON array of finding objects. *)
