(** Per-file symbol and module-reference summaries.

    One summary per compilation unit: top-level value definitions,
    [open]ed modules, [module A = B] aliases, and every dot-qualified
    module reference with its line. The module graph
    ({!Modgraph.build}) and layering checker consume these.

    Summaries can be cached content-addressed (SHA-256 of a format
    version plus the file bytes), in the spirit of [Stage.run_cached]:
    untouched files restore from the cache directory, edited files
    recompute, and any cache IO failure silently degrades to
    recomputation. *)

type t = {
  path : string;  (** Repo-relative path. *)
  modname : string;  (** Capitalised basename, e.g. ["Nat"]. *)
  defines : (string * int) list;
      (** Named top-level [let] bindings, with line. *)
  opens : (string * int) list;  (** [open M] module paths, with line. *)
  aliases : (string * string * int) list;
      (** [module A = Target] aliases: alias, target path, line. *)
  refs : (string * int) list;
      (** Dot-qualified uppercase-rooted identifiers ([Bignum.Nat.mul],
          [Pool.map]), with line, in source order. *)
}

val modname_of_path : string -> string
(** ["lib/bignum/nat.ml"] → ["Nat"]. *)

val root_of : string -> string
(** Leading path segment: ["Bignum.Nat.mul"] → ["Bignum"]. *)

val summarize : path:string -> string -> t
(** Extract the summary from source text. *)

val summarize_cached : ?cache_dir:string -> path:string -> string -> t
(** Like {!summarize}, restoring from / populating [cache_dir] when
    given. The cache is keyed on path and content; corrupt or
    version-mismatched entries recompute. *)
