(* Cross-file symbol and module-dependency graph.

   Built from the per-file Symbols summaries: every compilation unit
   is a node; a qualified reference, [open], or module alias whose
   root resolves to another unit directory is a cross-unit edge.
   Resolution mirrors how dune wraps libraries: [lib/bignum] is the
   module [Bignum] (capitalised last path segment, with an override
   table for libraries whose dune name differs from the directory,
   like [lib/core] = [Weakkeys]); a root that names a sibling module
   in the same directory resolves locally first, exactly as OCaml
   scoping would inside a wrapped library. Unresolved roots (stdlib,
   external deps like [Bechamel]) produce no edge. *)

type edge = {
  src_path : string;
  src_dir : string;
  dst_dir : string;
  via : string;  (* the referenced module path as written *)
  line : int;
}

type t = {
  dirs : string list;
  root_dir : (string, string) Hashtbl.t;
  dir_mods : (string, string) Hashtbl.t;  (* "dir/Modname" -> path *)
  edges : edge list;
}

let default_overrides = [ ("Weakkeys", "lib/core") ]

let dir_of_path path =
  match String.split_on_char '/' path with
  | "lib" :: sub :: _ :: _ -> "lib/" ^ sub
  | top :: _ :: _ -> top
  | _ -> Filename.dirname path

let lib_root dir =
  match String.split_on_char '/' dir with
  | [ "lib"; name ] when name <> "" ->
    Some
      (String.make 1 (Char.uppercase_ascii name.[0])
      ^ String.sub name 1 (String.length name - 1))
  | _ -> None

let dir_mod_key dir modname = dir ^ "/" ^ modname

(* One-step alias expansion: the root of [path], rewritten through the
   file's [module A = B] aliases when it names one. *)
let expand_root (sum : Symbols.t) path =
  let root = Symbols.root_of path in
  match
    List.find_opt (fun (a, _, _) -> a = root) sum.Symbols.aliases
  with
  | Some (_, target, _) -> Symbols.root_of target
  | None -> root

let resolve t (sum : Symbols.t) path =
  let root = expand_root sum path in
  let own_dir = dir_of_path sum.Symbols.path in
  if Hashtbl.mem t.dir_mods (dir_mod_key own_dir root) then Some own_dir
  else Hashtbl.find_opt t.root_dir root

let build ?(overrides = default_overrides) summaries =
  let root_dir = Hashtbl.create 32 in
  let dir_mods = Hashtbl.create 256 in
  let dirs = Hashtbl.create 32 in
  List.iter
    (fun (s : Symbols.t) ->
      let dir = dir_of_path s.Symbols.path in
      if not (Hashtbl.mem dirs dir) then Hashtbl.replace dirs dir ();
      Hashtbl.replace dir_mods (dir_mod_key dir s.Symbols.modname)
        s.Symbols.path)
    summaries;
  Hashtbl.iter
    (fun dir () ->
      match
        List.find_opt (fun (_, d) -> d = dir) overrides
      with
      | Some (root, _) -> Hashtbl.replace root_dir root dir
      | None -> (
        match lib_root dir with
        | Some root -> Hashtbl.replace root_dir root dir
        | None -> ()))
    dirs;
  let t =
    { dirs = List.sort String.compare
               (Hashtbl.fold (fun d () acc -> d :: acc) dirs []);
      root_dir; dir_mods; edges = [] }
  in
  (* Cross-unit edges, deduplicated per (file, target dir) keeping the
     first reference in source order. *)
  let seen = Hashtbl.create 256 in
  let edges = ref [] in
  List.iter
    (fun (s : Symbols.t) ->
      let src_dir = dir_of_path s.Symbols.path in
      let note path line =
        match resolve t s path with
        | Some dst when dst <> src_dir ->
          let key = s.Symbols.path ^ "->" ^ dst in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            edges :=
              { src_path = s.Symbols.path; src_dir; dst_dir = dst;
                via = path; line }
              :: !edges
          end
        | _ -> ()
      in
      List.iter (fun (m, line) -> note m line) s.Symbols.opens;
      List.iter (fun (_, target, line) -> note target line) s.Symbols.aliases;
      List.iter (fun (r, line) -> note r line) s.Symbols.refs)
    summaries;
  { t with edges = List.rev !edges }

let edges t = t.edges

let dirs t = t.dirs

let file_of t ~dir ~modname = Hashtbl.find_opt t.dir_mods (dir_mod_key dir modname)

let dir_of_root t root = Hashtbl.find_opt t.root_dir root
