(** Cross-file module-dependency graph over {!Symbols} summaries.

    Nodes are compilation units grouped into unit directories
    ([lib/bignum], [bin], [test], ...); edges are qualified
    references, [open]s, or aliases whose root resolves to another
    unit directory. Resolution follows dune's library wrapping:
    [lib/foo] answers to the module root [Foo] (with an override table
    for [lib/core] = [Weakkeys]); sibling modules in the same
    directory shadow library roots, as OCaml scoping does inside a
    wrapped library; stdlib and external roots resolve to nothing and
    produce no edge. *)

type edge = {
  src_path : string;  (** Referencing file. *)
  src_dir : string;  (** Its unit directory. *)
  dst_dir : string;  (** Referenced unit directory. *)
  via : string;  (** The module path as written at the reference. *)
  line : int;
}

type t

val default_overrides : (string * string) list
(** Module root → unit directory pairs where the dune library name
    differs from the directory name: [("Weakkeys", "lib/core")]. *)

val dir_of_path : string -> string
(** ["lib/bignum/nat.ml"] → ["lib/bignum"]; ["bin/x.ml"] → ["bin"]. *)

val build : ?overrides:(string * string) list -> Symbols.t list -> t
(** Build the graph. Cross-unit edges are deduplicated per (file,
    target directory), keeping the first reference in source order. *)

val edges : t -> edge list

val dirs : t -> string list
(** Every unit directory present, sorted. *)

val resolve : t -> Symbols.t -> string -> string option
(** [resolve t summary path] is the unit directory the module path
    refers to from within [summary]'s file — sibling first, then
    library root, [None] for stdlib/external — after one step of
    alias expansion through the file's [module A = B] aliases. *)

val file_of : t -> dir:string -> modname:string -> string option
(** The file defining [modname] inside [dir], if any. *)

val dir_of_root : t -> string -> string option
(** The unit directory a library root answers to ([Bignum] →
    [lib/bignum]), [None] for stdlib/external roots. *)
