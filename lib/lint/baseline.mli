(** Committed finding baseline — the ratchet.

    Accepted findings keyed on (rule, path, message) with an
    occurrence count and a justification; line numbers are absent from
    the key so unrelated edits don't churn the file. A run compared
    against the baseline fails on findings not in it AND on stale
    entries (baselined findings that no longer occur), so the baseline
    only shrinks deliberately. *)

type entry = {
  rule : string;
  path : string;
  message : string;
  count : int;
  justification : string;
}

type t = entry list

val load : string -> (t, string) result
(** Read and parse a baseline file; [Error] carries a description
    (missing file, malformed JSON, wrong shape). *)

val of_json : Json.t -> (t, string) result
(** Decode an already-parsed JSON document (a [load] without the
    IO). *)

val to_json : t -> string

val save : string -> t -> unit

type comparison = {
  fresh : (string * string * string) list;
      (** (rule, path, message) triples not covered by the baseline,
          deduplicated, in run order. *)
  stale : entry list;  (** Baselined but no longer occurring. *)
}

val compare_run : t -> (string * string * string) list -> comparison
(** Partition a run's (rule, path, message) triples against the
    baseline. *)

val of_findings :
  ?justification:string -> (string * string * string) list -> t
(** Build a baseline from a run, counting duplicates, preserving first
    appearance order. *)
