(** Tiny stage-graph runner for the measurement pipeline.

    {!Pipeline.of_scans} is a linear chain of named stages
    (scan → intern → batchgcd → fingerprint → label → index); this
    module times each stage, reports progress, and — for the expensive
    ones — serializes the stage artifact to a checkpoint directory so
    a rerun (or {!Pipeline.extend}) can restore instead of recompute.

    Checkpoints are content-addressed: each file starts with a caller
    supplied key (a digest of the stage's inputs); {!run_cached} only
    restores when the stored key matches, so a stale checkpoint from a
    different corpus silently falls back to recomputation. Writes go
    through a temp file + rename, so a crash mid-write never leaves a
    truncated checkpoint behind. *)

type timing = {
  stage : string;
  seconds : float;
  restored : bool;  (** artifact came from a checkpoint, not computed *)
}

type ctx

val ctx : ?progress:(string -> unit) -> ?dir:string -> unit -> ctx
(** [dir] is the checkpoint directory (created on first write); without
    it {!run_cached} degrades to {!run}. *)

val run : ctx -> string -> (unit -> 'a) -> 'a
(** [run ctx name f] executes [f], records its wall-clock timing under
    [name] and emits a progress line. *)

val run_cached :
  ctx ->
  string ->
  key:string ->
  save:(out_channel -> 'a -> unit) ->
  load:(in_channel -> 'a) ->
  (unit -> 'a) ->
  'a
(** Like {!run}, but first tries [dir/name.ckpt]: when the file exists
    and its stored key equals [key], the artifact is restored with
    [load] (timing recorded with [restored = true]). Otherwise [f]
    runs and the artifact is written atomically with [save]. [load]
    failures ({!Corpus.Io.Corrupt}, truncation) count as a miss, not
    an error. *)

val note : ctx -> string -> seconds:float -> unit
(** Record an externally-timed step (e.g. one attribution pass whose
    wall clock the scheduler already measured) in the timing table. *)

val timings_named : string -> timing list -> timing list
(** Timings whose stage name starts with the given prefix, in
    execution order — e.g. ["pass:"] for the attribution passes. *)

val timings : ctx -> timing list
(** Stages in execution order. *)
