module Sc = Netsim.Scanner
module Date = X509lite.Date
module Ts = Analysis.Timeseries

let line = String.make 72 '-' ^ "\n"

let header title = Printf.sprintf "%s%s\n%s" line title line

let vulnerable t = Pipeline.is_vulnerable t
let vendor_label t r = Pipeline.vendor_of_record t r
let model_label t r = Pipeline.model_of_record t r

let vendor_series t name =
  Ts.vendor ~label:(vendor_label t) ~vulnerable:(vulnerable t) t.Pipeline.monthly
    name

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1 t =
  let stats = Analysis.Dataset.stats_of_scans t.Pipeline.scans in
  let vulnerable_moduli = List.length t.Pipeline.findings in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Table 1: dataset summary");
  List.iter
    (fun (label, v) -> Buffer.add_string buf (Printf.sprintf "  %-38s %12d\n" label v))
    [
      ("HTTPS host records", stats.Analysis.Dataset.host_records);
      ("Distinct HTTPS certificates", stats.Analysis.Dataset.distinct_certs);
      ("Distinct HTTPS moduli", Array.length t.Pipeline.https_moduli);
      ("Total distinct RSA moduli", Array.length t.Pipeline.corpus);
      ("Vulnerable RSA moduli", vulnerable_moduli);
      ("Vulnerable HTTPS host records", Pipeline.vulnerable_https_host_records t);
      ("Vulnerable HTTPS certificates", Pipeline.vulnerable_https_certs t);
    ];
  Buffer.add_string buf
    (Printf.sprintf "  %-38s %11.2f%%\n" "Vulnerable fraction of moduli"
       (100.0
       *. Float.of_int vulnerable_moduli
       /. Float.of_int (Stdlib.max 1 (Array.length t.Pipeline.corpus))));
  Buffer.contents buf

let table2 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (header "Table 2: vendor notification responses (2012 disclosure)");
  List.iter
    (fun resp ->
      let vs =
        List.filter
          (fun v -> v.Netsim.Vendor.response = resp)
          Netsim.Vendor.table2
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-18s (%2d): %s\n"
           (Netsim.Vendor.response_to_string resp)
           (List.length vs)
           (String.concat ", " (List.map (fun v -> v.Netsim.Vendor.name) vs)))
    )
    [
      Netsim.Vendor.Public_advisory;
      Netsim.Vendor.Private_response;
      Netsim.Vendor.Auto_response;
      Netsim.Vendor.No_response;
    ];
  Buffer.contents buf

let table3 t =
  let earliest =
    List.find (fun s -> s.Sc.scan_source = Sc.Eff) t.Pipeline.scans
  in
  let latest =
    List.fold_left
      (fun acc s ->
        if s.Sc.scan_source = Sc.Censys then Some s else acc)
      None t.Pipeline.scans
  in
  let row s =
    let st = Analysis.Dataset.stats_of_scans [ s ] in
    ( st.Analysis.Dataset.host_records,
      st.Analysis.Dataset.distinct_certs,
      st.Analysis.Dataset.distinct_moduli )
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Table 3: earliest vs latest scan");
  (match latest with
  | Some latest ->
    let h1, c1, m1 = row earliest and h2, c2, m2 = row latest in
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %14s %14s\n" ""
         (Date.month_label earliest.Sc.scan_date ^ " (EFF)")
         (Date.month_label latest.Sc.scan_date ^ " (Censys)"));
    List.iter
      (fun (label, a, b) ->
        Buffer.add_string buf (Printf.sprintf "  %-24s %14d %14d\n" label a b))
      [
        ("TLS handshakes", h1, h2);
        ("Distinct certificates", c1, c2);
        ("Distinct RSA keys", m1, m2);
      ]
  | None -> Buffer.add_string buf "  (no Censys scan in corpus)\n");
  Buffer.contents buf

let table4 t =
  let vuln = Pipeline.vulnerable_by_protocol t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Table 4: protocol snapshots");
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %-12s %12s %12s %12s\n" "Proto" "Scanned"
       "Total hosts" "RSA hosts" "Vulnerable");
  List.iter
    (fun (p : Sc.protocol_snapshot) ->
      let v = List.assoc p.Sc.protocol vuln in
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %-12s %12d %12d %12d\n"
           (Sc.protocol_name p.Sc.protocol)
           (Date.to_string p.Sc.snap_date)
           p.Sc.total_hosts p.Sc.rsa_hosts v))
    t.Pipeline.protocol_snapshots;
  Buffer.contents buf

let table5 t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (header "Table 5: OpenSSL prime fingerprint by vendor");
  match Pipeline.openssl_table t with
  | None ->
    Buffer.add_string buf "  (openssl-fingerprint pass not run)\n";
    Buffer.contents buf
  | Some rows ->
  Buffer.add_string buf
    (Printf.sprintf "  (random-prime baseline: %.1f%% satisfy)\n"
       (100.0 *. Fingerprint.Openssl_fp.satisfy_probability_random ()));
  let bucket verdict =
    List.filter_map
      (fun (v, w, n) -> if w = verdict then Some (Printf.sprintf "%s(%d)" v n) else None)
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf "  Satisfy fingerprint:  %s\n"
       (String.concat ", " (bucket Fingerprint.Openssl_fp.Satisfies)));
  Buffer.add_string buf
    (Printf.sprintf "  Do not satisfy:       %s\n"
       (String.concat ", " (bucket Fingerprint.Openssl_fp.Does_not_satisfy)));
  Buffer.add_string buf
    (Printf.sprintf "  Inconclusive:         %s\n"
       (String.concat ", " (bucket Fingerprint.Openssl_fp.Inconclusive)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let figure1 t =
  (* All scans, not the monthly representatives: the per-source
     methodology artifacts (coverage steps at source boundaries,
     double scans in overlap months) are part of what the paper's
     Figure 1 shows. *)
  let sorted =
    List.sort
      (fun a b -> Date.compare a.Sc.scan_date b.Sc.scan_date)
      t.Pipeline.scans
  in
  let s = Ts.overall ~vulnerable:(vulnerable t) sorted in
  let sources =
    String.concat " "
      (List.map
         (fun src ->
           Printf.sprintf "%s:%d" (Sc.source_name src)
             (List.length (Sc.schedule src)))
         Sc.all_sources)
  in
  header "Figure 1: hosts and vulnerable hosts over time (all sources)"
  ^ Printf.sprintf "scans per source: %s\n" sources
  ^ Analysis.Ascii_plot.two_panel ~title:"All HTTPS hosts" s

let figure2 t =
  let n = Array.length t.Pipeline.corpus in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (header "Figure 2: k-subset batch GCD (algorithm structure)");
  Buffer.add_string buf
    (Printf.sprintf
       "  corpus: %d distinct moduli; k = 16 subsets; 16x16 = 256 reduction\n\
       \  jobs executed on a domain pool. Total work grows ~quadratically\n\
       \  in k while the per-node tree shrinks, trading work for\n\
       \  parallelism exactly as in the paper's cluster run (86 min on 22\n\
       \  machines vs 500 min on one).\n"
       n);
  let sub = Stdlib.min n 2000 in
  let sample = Array.sub t.Pipeline.corpus 0 sub in
  (* Through the backend registry (the batchgcd-outside-backend lint
     boundary): [tree] is factor_batch, [ksubset_k 4] the k-subset
     split — same findings, so the rendered text is unchanged. *)
  let a = Batchgcd.Backend.factor Batchgcd.Backend.tree sample in
  let b = Batchgcd.Backend.factor (Batchgcd.Backend.ksubset_k 4) sample in
  Buffer.add_string buf
    (Printf.sprintf
       "  equivalence check on a %d-modulus sample: single-tree and k=4\n\
       \  subset results %s (%d findings).\n"
       sub
       (if Batchgcd.Batch_gcd.findings_equal a b then "IDENTICAL" else "DIFFER")
       (List.length a));
  Buffer.contents buf

let annotated_vendor_figure t ~fig ~vendor_name ~notes =
  let s = vendor_series t vendor_name in
  let drop =
    match Ts.largest_vulnerable_drop s with
    | Some (d, k) ->
      Printf.sprintf "largest vulnerable-host drop: %d hosts into %s\n" k
        (Date.month_label d)
    | None -> "no vulnerable-host drop observed\n"
  in
  header fig
  ^ Analysis.Ascii_plot.two_panel ~title:vendor_name s
  ^ drop ^ notes

let figure3 t =
  let tr =
    Analysis.Transitions.for_vendor ~label:(vendor_label t)
      ~vulnerable:(vulnerable t) t.Pipeline.monthly "Juniper"
  in
  let notes =
    Printf.sprintf
      "advisory: 04/2012 (Security Bulletin), 07/2012 (out-of-cycle notice)\n\
       transitions: %d IPs ever, %d ever vulnerable, %d vuln->ok, %d\n\
       ok->vuln, %d flapping\n"
      tr.Analysis.Transitions.ips_ever tr.Analysis.Transitions.ips_vulnerable_ever
      tr.Analysis.Transitions.to_ok tr.Analysis.Transitions.to_vulnerable
      tr.Analysis.Transitions.flapping
  in
  annotated_vendor_figure t ~fig:"Figure 3: Juniper" ~vendor_name:"Juniper"
    ~notes

let figure4 t =
  annotated_vendor_figure t ~fig:"Figure 4: Innominate mGuard"
    ~vendor_name:"Innominate" ~notes:"advisory: 06/2012\n"

let figure5 t =
  let clique_info =
    match Fingerprint.Attribution.cliques t.Pipeline.attribution with
    | Some (c :: _) ->
      Printf.sprintf "largest prime-pool clique: %d moduli from %d primes\n"
        (List.length c.Fingerprint.Ibm_clique.moduli)
        (List.length c.Fingerprint.Ibm_clique.primes)
    | Some [] -> "no prime-pool clique detected\n"
    | None -> "(ibm-clique pass not run)\n"
  in
  annotated_vendor_figure t ~fig:"Figure 5: IBM RSA-II / BladeCenter"
    ~vendor_name:"IBM"
    ~notes:(clique_info ^ "advisory: 09/2012 (CVE-2012-2187)\n")

let figure6 t =
  annotated_vendor_figure t ~fig:"Figure 6: Cisco small business"
    ~vendor_name:"Cisco" ~notes:"responded privately; no public advisory\n"

let figure7 t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header "Figure 7: Cisco end-of-life dates vs device population");
  List.iter
    (fun (m : Netsim.Device_model.t) ->
      match m.Netsim.Device_model.dynamics.Netsim.Device_model.eol with
      | None -> ()
      | Some eol ->
        let s =
          Ts.model ~model_label:(model_label t) ~vulnerable:(vulnerable t)
            t.Pipeline.monthly m.Netsim.Device_model.id
        in
        let peak = Ts.peak_total s in
        let at_end =
          match List.rev s.Ts.points with
          | p :: _ -> p.Ts.total
          | [] -> 0
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %-18s EoL announced %s, end-of-sale %s: peak %4d -> final %4d  %s\n"
             m.Netsim.Device_model.label
             (Date.month_label eol.Netsim.Device_model.announce)
             (Date.month_label eol.Netsim.Device_model.end_of_sale)
             peak at_end
             (Analysis.Ascii_plot.sparkline
                (List.map (fun p -> p.Ts.total) s.Ts.points))))
    Netsim.Device_model.cisco_eol_models;
  Buffer.contents buf

let figure8 t =
  annotated_vendor_figure t ~fig:"Figure 8: HP iLO" ~vendor_name:"HP"
    ~notes:"HP iLO cards reportedly crashed when scanned for Heartbleed\n"

let figure9 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (header "Figure 9: vendors that never responded to notification");
  List.iter
    (fun vendor_name ->
      let s = vendor_series t vendor_name in
      Buffer.add_string buf
        (Printf.sprintf "  %-14s total:%s  vulnerable:%s  (peaks %d / %d)\n"
           vendor_name
           (Analysis.Ascii_plot.sparkline (List.map (fun p -> p.Ts.total) s.Ts.points))
           (Analysis.Ascii_plot.sparkline
              (List.map (fun p -> p.Ts.vulnerable) s.Ts.points))
           (Ts.peak_total s) (Ts.peak_vulnerable s)))
    [
      "Technicolor"; "AVM"; "Linksys"; "Fortinet"; "ZyXEL"; "Dell"; "Kronos";
      "Xerox"; "McAfee"; "TP-Link";
    ];
  Buffer.contents buf

let figure10 t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (header "Figure 10: newly vulnerable products since 2012");
  List.iter
    (fun (vendor_name, first_vuln) ->
      let s = vendor_series t vendor_name in
      let before =
        List.fold_left
          (fun acc p ->
            if Date.(p.Ts.date < first_vuln) then Stdlib.max acc p.Ts.vulnerable
            else acc)
          0 s.Ts.points
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-16s vulnerable:%s  (pre-%s max %d, overall peak %d)\n"
           vendor_name
           (Analysis.Ascii_plot.sparkline
              (List.map (fun p -> p.Ts.vulnerable) s.Ts.points))
           (Date.month_label first_vuln) before (Ts.peak_vulnerable s)))
    [
      ("ADTRAN", Date.of_ymd 2015 1 1);
      ("D-Link", Date.of_ymd 2012 9 1);
      ("Huawei", Date.of_ymd 2015 4 1);
      ("Sangfor", Date.of_ymd 2014 6 1);
      ("Schmid Telecom", Date.of_ymd 2013 1 1);
    ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Extra sections                                                      *)
(* ------------------------------------------------------------------ *)

let rimon_section t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (header "Section 3.3.3: ISP man-in-the-middle key substitution");
  (match Fingerprint.Attribution.mitm t.Pipeline.attribution with
  | None -> Buffer.add_string buf "  (mitm-substitution pass not run)\n"
  | Some [] -> Buffer.add_string buf "  no substituted keys detected\n"
  | Some ds ->
    List.iter
      (fun (d : Fingerprint.Rimon.detection) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  one key at %d distinct IPs, %d distinct subjects, %.0f%%\n\
             \  invalid signatures -> middlebox substitution (Internet Rimon\n\
             \  pattern)\n"
             (List.length d.Fingerprint.Rimon.ips)
             d.Fingerprint.Rimon.distinct_subjects
             (100. *. d.Fingerprint.Rimon.invalid_signature_fraction)))
      ds);
  Buffer.contents buf

let bit_error_section t =
  header "Section 3.3.5: non-well-formed moduli (bit errors)"
  ^
  match Pipeline.bit_error_summary t with
  | None -> "  (bit-errors pass not run)\n"
  | Some (suspects, near_corpus) ->
    Printf.sprintf
      "  flagged moduli that are not well-formed RSA moduli: %d\n\
      \  of which one bit-flip away from a corpus modulus:   %d\n\
      \  (set aside; not treated as flawed implementations)\n"
      suspects near_corpus

let overlap_section t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header "Section 3.3.2: cross-vendor shared primes");
  (match Pipeline.shared t with
  | None -> Buffer.add_string buf "  (shared-prime pass not run)\n"
  | Some shared ->
    (match Fingerprint.Shared_prime.overlaps shared with
    | [] -> Buffer.add_string buf "  no cross-vendor overlaps\n"
    | os ->
      List.iter
        (fun (a, b, _p) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s and %s share a prime factor\n" a b))
        os);
    let extrapolated = Fingerprint.Shared_prime.extrapolated shared in
    Buffer.add_string buf
      (Printf.sprintf "  certificates labeled only via shared primes: %d\n"
         (List.length extrapolated)));
  Buffer.contents buf

let response_correlation_section t =
  let vendors =
    [
      "Juniper"; "Innominate"; "IBM"; "Cisco"; "HP"; "Technicolor"; "AVM";
      "Linksys"; "Fortinet"; "ZyXEL"; "Dell"; "Kronos"; "Xerox"; "McAfee";
      "TP-Link"; "D-Link";
    ]
  in
  let outs =
    Analysis.Response_correlation.outcomes ~label:(vendor_label t)
      ~vulnerable:(vulnerable t) t.Pipeline.monthly vendors
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (header "Section 5.2: vendor response vs end-user outcome");
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %-18s %6s %6s %9s\n" "Vendor" "Response" "peak"
       "final" "decline");
  List.iter
    (fun (o : Analysis.Response_correlation.outcome) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %-18s %6d %6d %8.0f%%\n"
           o.Analysis.Response_correlation.vendor
           (Netsim.Vendor.response_to_string
              o.Analysis.Response_correlation.response)
           o.Analysis.Response_correlation.peak_vulnerable
           o.Analysis.Response_correlation.final_vulnerable
           (100. *. o.Analysis.Response_correlation.decline_fraction)))
    outs;
  List.iter
    (fun (resp, mean, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  mean decline for %-18s %5.0f%%  (%d vendors)\n"
           (Netsim.Vendor.response_to_string resp)
           (100. *. mean) n))
    (Analysis.Response_correlation.by_category outs);
  let rho = Analysis.Response_correlation.spearman outs in
  Buffer.add_string buf
    (Printf.sprintf
       "  Spearman rank correlation (response strength vs decline): %+.2f\n\
       \  (the paper: \"no correlation between ... vendor response and\n\
       \  end-user vulnerability rates\")\n"
       rho);
  Buffer.contents buf

let full_report t =
  String.concat "\n"
    [
      table1 t; table2 (); table3 t; table4 t; table5 t; figure1 t; figure2 t;
      figure3 t; figure4 t; figure5 t; figure6 t; figure7 t; figure8 t;
      figure9 t; figure10 t; rimon_section t; bit_error_section t;
      overlap_section t; response_correlation_section t;
    ]
