(** The end-to-end study: simulate the internet, aggregate six years of
    scans, batch-GCD the full key corpus, fingerprint implementations,
    and expose labeled, queryable results. This is the library's main
    entry point; {!Report} renders every table and figure from it. *)

type t = {
  world : Netsim.World.t;
  scans : Netsim.Scanner.scan list;  (** all raw scans *)
  monthly : Netsim.Scanner.scan list;
      (** one representative, chain-excluded scan per month *)
  protocol_snapshots : Netsim.Scanner.protocol_snapshot list;
  https_moduli : Bignum.Nat.t array;  (** distinct, from HTTPS scans *)
  corpus : Bignum.Nat.t array;
      (** distinct moduli fed to batch GCD: HTTPS + SSH + mail *)
  findings : Batchgcd.Batch_gcd.finding list;
  factored : Fingerprint.Factored.t list;
  unrecovered : Bignum.Nat.t list;
      (** flagged moduli that did not split into two primes *)
  cliques : Fingerprint.Ibm_clique.clique list;
  shared : Fingerprint.Shared_prime.t;
  rimon : Fingerprint.Rimon.detection list;
  (* Precomputed indexes (caches; use the query functions below). *)
  vuln_index : (int array, unit) Hashtbl.t;
  cert_label_index : (string, Fingerprint.Rules.label option) Hashtbl.t;
  subject_label_index : (int array, string) Hashtbl.t;
  factored_index : (int array, Fingerprint.Factored.t) Hashtbl.t;
  clique_index : (int array, unit) Hashtbl.t;
  fp_cache : (X509lite.Certificate.t, string) Hashtbl.t;
      (** per-run certificate-fingerprint memo; bounded by this run's
          certificate population, unlike the former process global *)
}

val run :
  ?progress:(string -> unit) ->
  ?k:int ->
  ?domains:int ->
  Netsim.World.config -> t
(** Build the world and run the whole measurement pipeline. [k] is the
    subset count for the distributed batch GCD (default 16, the
    paper's value; clamped to the corpus size). [domains] sizes the
    persistent {!Parallel.Pool} used for key generation, the k-subset
    fan-out and the level-parallel tree kernels (default: the
    hardware's recommended domain count, overridable via the
    [WEAKKEYS_DOMAINS] environment variable). *)

val of_world :
  ?progress:(string -> unit) -> ?k:int -> ?domains:int ->
  Netsim.World.t -> t
(** Same, reusing an already-built world. *)

(** {1 Queries} *)

val is_vulnerable : t -> Bignum.Nat.t -> bool
(** Membership in the batch-GCD-flagged modulus set. *)

val vendor_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Full labeling: subject rules (with page content), then the IBM
    clique, then shared-prime extrapolation. *)

val model_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Product-line id when determinable from the subject. *)

val vulnerable_https_host_records : t -> int
val vulnerable_https_certs : t -> int

val vulnerable_by_protocol :
  t -> (Netsim.Scanner.protocol * int) list
(** Vulnerable host counts per protocol snapshot (Table 4). *)

val labeled_factored :
  t -> (Fingerprint.Factored.t * string option) list
(** Factored moduli with their final vendor labels. *)

val suspected_bit_errors : t -> Bignum.Nat.t list
(** Flagged moduli that are not well-formed RSA moduli. *)
