(** The end-to-end study: simulate the internet, aggregate six years of
    scans, batch-GCD the full key corpus, fingerprint implementations,
    and expose labeled, queryable results. This is the library's main
    entry point; {!Report} renders every table and figure from it.

    The pipeline is a chain of named stages
    (scan → intern → batchgcd → fingerprint → label → index) run
    through the {!Stage} graph runner: every distinct modulus is
    interned to a dense id in a {!Corpus.Store} and downstream indexes
    are id-keyed arrays and bitsets; the expensive GCD stage keeps its
    product-tree forest ({!Batchgcd.Incremental.t}) and can checkpoint
    it to disk; {!extend} folds a fresh scan snapshot into an existing
    pipeline paying only for the delta. *)

type t = {
  world : Netsim.World.t;
  scans : Netsim.Scanner.scan list;  (** all raw scans *)
  monthly : Netsim.Scanner.scan list;
      (** one representative, chain-excluded scan per month *)
  protocol_snapshots : Netsim.Scanner.protocol_snapshot list;
  https_moduli : Bignum.Nat.t array;  (** distinct, from HTTPS scans *)
  store : Corpus.Store.t;
      (** modulus → dense id; ids are corpus positions *)
  corpus : Bignum.Nat.t array;
      (** distinct moduli fed to batch GCD (HTTPS + SSH + mail), in
          store-id order: [corpus.(id)] is the modulus with that id *)
  inc : Batchgcd.Incremental.t;
      (** cached GCD state: segment forest + findings; feed to
          {!extend} or serialize via {!Batchgcd.Incremental.save} *)
  findings : Batchgcd.Batch_gcd.finding list;
  factored : Fingerprint.Factored.t list;
  unrecovered : Bignum.Nat.t list;
      (** flagged moduli that did not split into two primes *)
  cliques : Fingerprint.Ibm_clique.clique list;
  shared : Fingerprint.Shared_prime.t;
  rimon : Fingerprint.Rimon.detection list;
  (* Precomputed id-keyed indexes (caches; use the query functions
     below). *)
  vuln_index : Corpus.Id_set.t;
  cert_label_index : (string, Fingerprint.Rules.label option) Hashtbl.t;
  subject_label_index : string option array;  (** per store id *)
  factored_index : Fingerprint.Factored.t option array;  (** per store id *)
  clique_index : Corpus.Id_set.t;
  fp_cache : (X509lite.Certificate.t, string) Hashtbl.t;
      (** per-run certificate-fingerprint memo; bounded by this run's
          certificate population, unlike the former process global *)
  timings : Stage.timing list;  (** per-stage wall clock, in order *)
}

val run :
  ?progress:(string -> unit) ->
  ?k:int ->
  ?domains:int ->
  ?checkpoint_dir:string ->
  Netsim.World.config -> t
(** Build the world and run the whole measurement pipeline. [k] is the
    subset count for the distributed batch GCD (default 16, the
    paper's value; clamped to the corpus size). [domains] sizes the
    persistent {!Parallel.Pool} used for key generation, the k-subset
    fan-out and the level-parallel tree kernels (default: the
    hardware's recommended domain count, overridable via the
    [WEAKKEYS_DOMAINS] environment variable). [checkpoint_dir] enables
    checkpoint/resume for the GCD stage: the finished
    {!Batchgcd.Incremental} state is written there, and a rerun over
    the identical corpus restores it instead of recomputing. *)

val of_world :
  ?progress:(string -> unit) -> ?k:int -> ?domains:int ->
  ?checkpoint_dir:string ->
  Netsim.World.t -> t
(** Same, reusing an already-built world. *)

val of_scans :
  ?progress:(string -> unit) -> ?k:int -> ?domains:int ->
  ?checkpoint_dir:string ->
  Netsim.World.t -> Netsim.Scanner.scan list -> t
(** Same, from an explicit scan list (the snapshot-ingest entry point:
    pair with {!extend} to fold in later snapshots). *)

val extend :
  ?progress:(string -> unit) -> ?domains:int ->
  ?checkpoint_dir:string ->
  t -> Netsim.Scanner.scan list -> t
(** [extend t new_scans] folds a fresh batch of scans into the
    pipeline: new distinct moduli are interned after the existing ids,
    the cached product-tree forest is extended with one delta tree
    ({!Batchgcd.Incremental.extend} — no old tree is rebuilt), and the
    fingerprint/label/index stages rerun over the combined corpus.
    Findings are exactly those of a from-scratch run over the union.
    [t] itself is not mutated and remains usable. *)

(** {1 Queries} *)

val is_vulnerable : t -> Bignum.Nat.t -> bool
(** Membership in the batch-GCD-flagged modulus set. *)

val vendor_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Full labeling: subject rules (with page content), then the IBM
    clique, then shared-prime extrapolation. *)

val model_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Product-line id when determinable from the subject. *)

val vulnerable_https_host_records : t -> int
val vulnerable_https_certs : t -> int

val vulnerable_by_protocol :
  t -> (Netsim.Scanner.protocol * int) list
(** Vulnerable host counts per protocol snapshot (Table 4). *)

val labeled_factored :
  t -> (Fingerprint.Factored.t * string option) list
(** Factored moduli with their final vendor labels. *)

val suspected_bit_errors : t -> Bignum.Nat.t list
(** Flagged moduli that are not well-formed RSA moduli. *)

val majority_vendor : (string * int) list -> string option
(** Winner of a vendor vote tally: highest count, ties broken by the
    lexicographically smallest vendor name — deterministic no matter
    the ballot order. Exposed for the tie-break regression test. *)
