(** The end-to-end study: simulate the internet, aggregate six years of
    scans, batch-GCD the full key corpus, run the attribution passes,
    and expose labeled, queryable results. This is the library's main
    entry point; {!Report} renders every table and figure from it.

    The pipeline is a chain of named stages
    (scan → intern → batchgcd → fingerprint → index → attribution) run
    through the {!Stage} graph runner: every distinct modulus is
    interned to a dense id in a {!Corpus.Store} and downstream indexes
    are id-keyed arrays and bitsets; the expensive GCD stage keeps its
    product-tree forest ({!Batchgcd.Incremental.t}) and can checkpoint
    it to disk; {!extend} folds a fresh scan snapshot into an existing
    pipeline paying only for the delta.

    The attribution stage replaces the former hand-written
    fingerprint/label chain: every technique is a registered
    {!Fingerprint.Pass.t} ({!Fingerprint.Registry.builtin}),
    topologically scheduled by declared deps, run concurrently on the
    {!Parallel.Pool} where independent, and merged into one typed
    {!Fingerprint.Attribution.t} evidence table. Per-pass wall clocks
    appear in {!type-t.timings} as ["pass:NAME"] entries, and with a
    checkpoint directory the whole table is content-addressed and
    restorable like the GCD artifact. *)

type gcd_state =
  | Flat of Batchgcd.Incremental.t
      (** the classic single-address-space segment forest *)
  | Sharded of Batchgcd.Sharded.t
      (** id-range-sharded arena-backed driver (runs with [?shards]) *)
(** The cached GCD artifact. {!extend} continues in whichever mode the
    state is in; findings are exactly equal either way. *)

val gcd_corpus_size : gcd_state -> int
val gcd_segment_count : gcd_state -> int

type t = {
  world : Netsim.World.t;
  scans : Netsim.Scanner.scan list;  (** all raw scans *)
  monthly : Netsim.Scanner.scan list;
      (** one representative, chain-excluded scan per month *)
  protocol_snapshots : Netsim.Scanner.protocol_snapshot list;
  https_moduli : Bignum.Nat.t array;  (** distinct, from HTTPS scans *)
  store : Corpus.Store.t;
      (** modulus → dense id; ids are corpus positions *)
  corpus : Bignum.Nat.t array;
      (** distinct moduli fed to batch GCD (HTTPS + SSH + mail), in
          store-id order: [corpus.(id)] is the modulus with that id *)
  gcd : gcd_state;
      (** cached GCD state: segment forest(s) + findings; feed to
          {!extend} or serialize via {!Batchgcd.Incremental.save} /
          {!Batchgcd.Sharded.save} *)
  findings : Batchgcd.Batch_gcd.finding list;
  factored : Fingerprint.Factored.t list;
  unrecovered : Bignum.Nat.t list;
      (** flagged moduli that did not split into two primes *)
  attribution : Fingerprint.Attribution.t;
      (** the merged evidence table every query below reads *)
  (* Precomputed id-keyed indexes (caches; use the query functions
     below). *)
  vuln_index : Corpus.Id_set.t;
  factored_index : Fingerprint.Factored.t option array;  (** per store id *)
  cert_fp : X509lite.Certificate.t -> string;
      (** per-run memoized certificate fingerprint (mutex-protected,
          safe from pool domains); bounded by this run's certificate
          population, unlike the former process global *)
  timings : Stage.timing list;  (** per-stage wall clock, in order *)
}

val run :
  ?progress:(string -> unit) ->
  ?k:int ->
  ?shards:int ->
  ?domains:int ->
  ?backend:string ->
  ?checkpoint_dir:string ->
  ?only_passes:string list ->
  Netsim.World.config -> t
(** Build the world and run the whole measurement pipeline. [k] is the
    subset count for the distributed batch GCD (default 16, the
    paper's value; clamped to the corpus size). [shards] switches the
    GCD stage to the id-range-sharded arena driver
    ({!Batchgcd.Sharded}, [k] is then ignored): the corpus is split
    into at most that many power-of-two-stride shards, swept two-tier
    with per-shard trees as independent pool jobs — findings are
    exactly those of the unsharded path. [domains] sizes the
    persistent {!Parallel.Pool} used for key generation, the k-subset
    fan-out, the level-parallel tree kernels and the attribution
    passes (default: the hardware's recommended domain count,
    overridable via the [WEAKKEYS_DOMAINS] environment variable).
    [checkpoint_dir] enables checkpoint/resume for the GCD and
    attribution stages: finished artifacts are written there, and a
    rerun over the identical inputs restores them instead of
    recomputing. [only_passes] restricts the attribution stage to the
    named passes closed over their deps
    ({!Fingerprint.Registry.select}); report sections whose pass did
    not run render as explicitly skipped.
    @raise Fingerprint.Registry.Unknown_pass on an unknown pass name. *)

val of_world :
  ?progress:(string -> unit) -> ?k:int -> ?shards:int -> ?domains:int ->
  ?backend:string -> ?checkpoint_dir:string -> ?only_passes:string list ->
  Netsim.World.t -> t
(** Same, reusing an already-built world. *)

val of_scans :
  ?progress:(string -> unit) -> ?k:int -> ?shards:int -> ?domains:int ->
  ?backend:string -> ?checkpoint_dir:string -> ?only_passes:string list ->
  Netsim.World.t -> Netsim.Scanner.scan list -> t
(** Same, from an explicit scan list (the snapshot-ingest entry point:
    pair with {!extend} to fold in later snapshots). *)

val extend :
  ?progress:(string -> unit) -> ?domains:int -> ?backend:string ->
  ?checkpoint_dir:string -> ?only_passes:string list ->
  t -> Netsim.Scanner.scan list -> t
(** [extend t new_scans] folds a fresh batch of scans into the
    pipeline: new distinct moduli are interned after the existing ids,
    the cached product-tree forest is extended with one delta tree
    ({!Batchgcd.Incremental.extend} — no old tree is rebuilt; a
    sharded state goes through {!Batchgcd.Sharded.extend}, one delta
    tree per touched shard), and the
    fingerprint/index/attribution stages rerun over the combined
    corpus. Findings are exactly those of a from-scratch run over the
    union. [t] itself is not mutated and remains usable. *)

(** {1 Queries} *)

val is_vulnerable : t -> Bignum.Nat.t -> bool
(** Membership in the batch-GCD-flagged modulus set. *)

val id_of : t -> Bignum.Nat.t -> int option
(** Store id of a modulus seen by this pipeline. *)

val vendor_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Full labeling: subject rules (with page content), then — for
    certificates matching no rule — what the record's modulus itself
    proves: IBM-clique membership, then shared-prime extrapolation. *)

val model_of_record :
  t -> Netsim.Scanner.host_record -> string option
(** Product-line id when determinable from the subject. *)

val vulnerable_https_host_records : t -> int
val vulnerable_https_certs : t -> int

val vulnerable_by_protocol :
  t -> (Netsim.Scanner.protocol * int) list
(** Vulnerable host counts per protocol snapshot (Table 4). *)

val labeled_factored :
  t -> (Fingerprint.Factored.t * string option) list
(** Factored moduli with their final vendor labels (full
    {!Fingerprint.Attribution.vendor_of} merge). *)

val suspected_bit_errors : t -> Bignum.Nat.t list
(** Flagged moduli that are not well-formed RSA moduli (empty when the
    [bit-errors] pass did not run). *)

val bit_error_summary : t -> (int * int) option
(** (suspect count, near-corpus count) from the bit-error triage
    artifact; [None] when the pass did not run. *)

(** {1 Derived views}

    What used to be bespoke pipeline fields, read from the pass
    artifacts in the attribution table. Option-returning views are
    [None] when the owning pass was excluded via [only_passes]. *)

val cliques : t -> Fingerprint.Ibm_clique.clique list
val shared : t -> Fingerprint.Shared_prime.t option
val rimon : t -> Fingerprint.Rimon.detection list

val openssl_table :
  t -> (string * Fingerprint.Openssl_fp.verdict * int) list option

val passes_run : t -> Stage.timing list
(** The ["pass:NAME"] timing entries, in execution order. *)

val majority_vendor : (string * int) list -> string option
(** Winner of a vendor vote tally: highest count, ties broken by the
    lexicographically smallest vendor name — deterministic no matter
    the ballot order (re-exported from {!Fingerprint.Attribution}). *)
