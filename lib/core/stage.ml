type timing = { stage : string; seconds : float; restored : bool }

type ctx = {
  progress : string -> unit;
  dir : string option;
  mutable timings : timing list; (* reverse execution order *)
}

let ctx ?(progress = fun _ -> ()) ?dir () = { progress; dir; timings = [] }
let timings ctx = List.rev ctx.timings

let record ctx stage seconds restored =
  ctx.timings <- { stage; seconds; restored } :: ctx.timings;
  ctx.progress
    (Printf.sprintf "stage %-12s %s%.2fs" stage
       (if restored then "restored from checkpoint in " else "")
       seconds)

let note ctx stage ~seconds = record ctx stage seconds false

let timings_named prefix timings =
  List.filter
    (fun t -> Stringx.starts_with ~prefix t.stage)
    timings

let run ctx name f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  record ctx name (Unix.gettimeofday () -. t0) false;
  v

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Restore attempt: [None] on any miss — no file, key mismatch, or a
   truncated/corrupt record (a crash mid-write leaves only the .tmp
   behind, but defend anyway). *)
let restore path ~key ~load =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          if String.equal (Corpus.Io.read_string ic) key then Some (load ic)
          else None
        with Corpus.Io.Corrupt _ | End_of_file -> None)
  end

let run_cached ctx name ~key ~save ~load f =
  match ctx.dir with
  | None -> run ctx name f
  | Some dir ->
    let path = Filename.concat dir (name ^ ".ckpt") in
    let t0 = Unix.gettimeofday () in
    (match restore path ~key ~load with
     | Some v ->
       record ctx name (Unix.gettimeofday () -. t0) true;
       v
     | None ->
       let v = f () in
       mkdir_p dir;
       let tmp = path ^ ".tmp" in
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
           Corpus.Io.write_string oc key;
           save oc v);
       Sys.rename tmp path;
       record ctx name (Unix.gettimeofday () -. t0) false;
       v)
