module N = Bignum.Nat
module Sc = Netsim.Scanner
module Cert = X509lite.Certificate
module BG = Batchgcd.Batch_gcd
module Inc = Batchgcd.Incremental
module Sh = Batchgcd.Sharded
module Io = Corpus.Io
module Fp = Fingerprint.Factored
module Evidence = Fingerprint.Evidence
module Attribution = Fingerprint.Attribution
module FPass = Fingerprint.Pass
module Registry = Fingerprint.Registry
module Store = Corpus.Store
module Id_set = Corpus.Id_set

(* The cached GCD artifact: the classic single-address-space segment
   forest, or the id-range-sharded arena-backed driver when the run
   asked for [shards]. Both carry the forest and the findings; extend
   continues in whichever mode the state is in. *)
type gcd_state = Flat of Inc.t | Sharded of Sh.t

let gcd_findings = function
  | Flat inc -> Inc.findings inc
  | Sharded sh -> Sh.findings sh

let gcd_corpus_size = function
  | Flat inc -> Inc.corpus_size inc
  | Sharded sh -> Sh.corpus_size sh

let gcd_segment_count = function
  | Flat inc -> Inc.segment_count inc
  | Sharded sh -> Sh.segment_count sh

let save_gcd oc = function
  | Flat inc ->
    Io.write_string oc "flat";
    Inc.save oc inc
  | Sharded sh ->
    Io.write_string oc "sharded";
    Sh.save oc sh

let load_gcd ic =
  match Io.read_string ic with
  | "flat" -> Flat (Inc.load ic)
  | "sharded" -> Sharded (Sh.load ic)
  | _ -> raise (Io.Corrupt "unknown GCD artifact kind")

(* Power-of-two stride giving at most [shards] shards over [n] ids. *)
let stride_for ~shards n =
  if shards < 1 then invalid_arg "Pipeline: shards must be >= 1";
  let per = (Stdlib.max n 1 + shards - 1) / shards in
  let rec pow2 s = if s >= per then s else pow2 (2 * s) in
  pow2 1

type t = {
  world : Netsim.World.t;
  scans : Sc.scan list;
  monthly : Sc.scan list;
  protocol_snapshots : Sc.protocol_snapshot list;
  https_moduli : N.t array;
  store : Store.t;
  corpus : N.t array;
  gcd : gcd_state;
  findings : BG.finding list;
  factored : Fp.t list;
  unrecovered : N.t list;
  attribution : Attribution.t;
  vuln_index : Id_set.t;
  factored_index : Fp.t option array;
  cert_fp : Cert.t -> string;
  timings : Stage.timing list;
}

let modulus_of_record (r : Sc.host_record) =
  r.Sc.cert.Cert.public_key.Rsa.Keypair.n

(* Certificates are shared across every record that observed them, and
   the report renders dozens of series over millions of records:
   memoize the (SHA-256) fingerprint per certificate value. The memo
   lives in the pipeline value (not a process global) and is handed to
   the attribution passes through their context, so its lifetime is
   bounded by the run that owns the certificates it keys on. A mutex
   keeps it safe for passes running concurrently on the pool. *)
let cert_fp_memo () =
  let cache : (Cert.t, string) Hashtbl.t = Hashtbl.create 65536 in
  let lock = Mutex.create () in
  fun c ->
    Mutex.lock lock;
    match Hashtbl.find_opt cache c with
    | Some fp ->
      Mutex.unlock lock;
      fp
    | None ->
      (* Hash outside the lock; a duplicate computation is harmless
         and both domains store the same digest. *)
      Mutex.unlock lock;
      let fp = Cert.fingerprint c in
      Mutex.lock lock;
      Hashtbl.replace cache c fp;
      Mutex.unlock lock;
      fp

let majority_vendor = Attribution.majority_vendor

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let intern_all store moduli =
  Array.iter (fun m -> ignore (Store.intern store m)) moduli

(* Corpus assembly: HTTPS moduli in first-observation order, then the
   other protocols' — the same order the pre-interning corpus used, so
   batch-GCD finding indexes are store ids. *)
let stage_intern store scans protocol_snapshots =
  let https_moduli = Analysis.Dataset.distinct_moduli scans in
  intern_all store https_moduli;
  List.iter
    (fun (p : Sc.protocol_snapshot) ->
      if p.Sc.protocol <> Sc.Https then intern_all store p.Sc.rsa_moduli)
    protocol_snapshots;
  https_moduli

(* Checkpoint key: the GCD artifact is valid only for the exact corpus
   (content and order) and driver parameters that produced it. *)
let corpus_key corpus tag =
  let buf = Buffer.create 65536 in
  Array.iter
    (fun m ->
      let b = N.to_bytes_be m in
      Buffer.add_string buf (string_of_int (String.length b));
      Buffer.add_char buf ':';
      Buffer.add_string buf b)
    corpus;
  Buffer.add_string buf tag;
  Hashes.Sha256.hexdigest (Buffer.contents buf)

(* The attribution table additionally depends on the scan records the
   labeling passes read (certificates, page titles, IPs): digest them
   so a checkpoint from a different scan history never restores. *)
let scans_digest cert_fp scans =
  let h = Hashes.Sha256.init () in
  List.iter
    (fun (s : Sc.scan) ->
      Hashes.Sha256.update h (Sc.source_name s.Sc.scan_source);
      Hashes.Sha256.update h (X509lite.Date.to_string s.Sc.scan_date);
      Hashes.Sha256.update h (string_of_int (Array.length s.Sc.records));
      Array.iter
        (fun (r : Sc.host_record) ->
          Hashes.Sha256.update h (Netsim.Ipv4.to_string r.Sc.ip);
          Hashes.Sha256.update h (cert_fp r.Sc.cert);
          Hashes.Sha256.update h (if r.Sc.is_intermediate then "i" else "-");
          Hashes.Sha256.update h (Option.value ~default:"" r.Sc.page_title))
        s.Sc.records)
    scans;
  Hashes.Sha256.to_hex (Hashes.Sha256.finalize h)

let stage_index store findings factored =
  let n = Store.size store in
  let vuln_index = Id_set.create ~size:n () in
  List.iter (fun (f : BG.finding) -> Id_set.add vuln_index f.BG.index) findings;
  let factored_index = Array.make n None in
  List.iter
    (fun (f : Fp.t) ->
      match Store.find store f.Fp.modulus with
      | Some id -> factored_index.(id) <- Some f
      | None -> ())
    factored;
  (vuln_index, factored_index)

(* The attribution engine: every registered pass scheduled over one
   shared context, merged into the evidence table ({!Registry.run}).
   Per-pass wall clocks land in the stage timing table as "pass:NAME";
   with a checkpoint dir the whole table is content-addressed like the
   GCD artifact. *)
let stage_attribution sctx ~checkpointed ?pool ?only_passes world scans store
    corpus findings factored factored_index unrecovered cert_fp =
  let bits = (Netsim.World.config world).Netsim.World.modulus_bits in
  let compute () =
    let ctx =
      {
        FPass.Ctx.store;
        corpus;
        findings;
        factored;
        factored_index;
        unrecovered;
        scans;
        page_titles = Analysis.Dataset.page_title_index scans;
        cert_fp;
        modulus_bits = bits;
      }
    in
    let attr, times = Registry.run ?pool ?only:only_passes ctx Registry.builtin in
    List.iter
      (fun (name, seconds) -> Stage.note sctx ("pass:" ^ name) ~seconds)
      times;
    attr
  in
  if not checkpointed then Stage.run sctx "attribution" compute
  else begin
    let selected =
      List.map
        (fun p -> p.FPass.name)
        (Registry.select ?only:only_passes Registry.builtin)
    in
    let tag =
      Printf.sprintf "/attribution/bits=%d/passes=%s/scans=%s" bits
        (String.concat "," selected)
        (scans_digest cert_fp scans)
    in
    Stage.run_cached sctx "attribution" ~key:(corpus_key corpus tag)
      ~save:Attribution.save ~load:Attribution.load compute
  end

(* Downstream of the GCD artifact, of_scans and extend are identical:
   recover factorizations, index, and run the attribution passes. *)
let finish sctx ?pool ?only_passes ~checkpointed world scans monthly
    protocol_snapshots https_moduli store corpus gcd =
  let findings = gcd_findings gcd in
  let factored, unrecovered =
    Stage.run sctx "fingerprint" (fun () -> Fp.recover findings)
  in
  (* Findings carry corpus indexes, and corpus order is store insertion
     order, so a finding's index is its store id directly. *)
  let vuln_index, factored_index =
    Stage.run sctx "index" (fun () -> stage_index store findings factored)
  in
  let cert_fp = cert_fp_memo () in
  let attribution =
    stage_attribution sctx ~checkpointed ?pool ?only_passes world scans store
      corpus findings factored factored_index unrecovered cert_fp
  in
  {
    world;
    scans;
    monthly;
    protocol_snapshots;
    https_moduli;
    store;
    corpus;
    gcd;
    findings;
    factored;
    unrecovered;
    attribution;
    vuln_index;
    factored_index;
    cert_fp;
    timings = Stage.timings sctx;
  }

(* The backend name is part of the checkpoint identity: artifacts are
   findings-equal across backends, but the cached forest shape is not,
   and a key must never restore a different shape than the caller
   asked for. The default (no [backend]) keeps the historical tags so
   existing checkpoints stay restorable. *)
let backend_tag = function
  | None -> ""
  | Some name -> "/backend=" ^ name

let check_backend = function
  | None -> ()
  | Some name -> ignore (Batchgcd.Backend.get name : Batchgcd.Backend.t)

let of_scans ?progress ?(k = 16) ?shards ?domains ?backend ?checkpoint_dir
    ?only_passes world scans =
  check_backend backend;
  let sctx = Stage.ctx ?progress ?dir:checkpoint_dir () in
  let say = match progress with Some f -> f | None -> fun _ -> () in
  let monthly, protocol_snapshots =
    Stage.run sctx "scan" (fun () ->
        ( Analysis.Dataset.representative_monthly scans,
          Sc.protocol_snapshots world ))
  in
  let store = Store.create ~size:4096 () in
  let https_moduli =
    Stage.run sctx "intern" (fun () ->
        stage_intern store scans protocol_snapshots)
  in
  let corpus = Store.to_array store in
  (* One persistent pool for the whole pipeline run; [domains] sizes
     it, defaulting to the hardware (or WEAKKEYS_DOMAINS). *)
  let pool = Parallel.Pool.get ?domains () in
  let gcd =
    match shards with
    | None ->
      say
        (Printf.sprintf
           "batch GCD over %d distinct moduli (k=%d%s, %d domains)"
           (Array.length corpus) k
           (match backend with None -> "" | Some b -> ", backend=" ^ b)
           (Parallel.Pool.size pool));
      Stage.run_cached sctx "batchgcd"
        ~key:
          (corpus_key corpus
             (Printf.sprintf "/k=%d%s" k (backend_tag backend)))
        ~save:save_gcd ~load:load_gcd
        (fun () -> Flat (Inc.create ~pool ?backend ~k corpus))
    | Some shards ->
      let stride = stride_for ~shards (Array.length corpus) in
      say
        (Printf.sprintf
           "sharded batch GCD over %d distinct moduli (stride=%d, %d domains)"
           (Array.length corpus) stride (Parallel.Pool.size pool));
      Stage.run_cached sctx "batchgcd"
        ~key:
          (corpus_key corpus
             (Printf.sprintf "/stride=%d%s" stride (backend_tag backend)))
        ~save:save_gcd ~load:load_gcd
        (fun () -> Sharded (Sh.create ~pool ?backend ~stride corpus))
  in
  say (Printf.sprintf "%d moduli factored" (List.length (gcd_findings gcd)));
  finish sctx ~pool ?only_passes
    ~checkpointed:(checkpoint_dir <> None)
    world scans monthly protocol_snapshots https_moduli store corpus gcd

let of_world ?progress ?k ?shards ?domains ?backend ?checkpoint_dir
    ?only_passes world =
  (match progress with Some f -> f "running scan campaigns" | None -> ());
  let scans = Sc.run_all world in
  of_scans ?progress ?k ?shards ?domains ?backend ?checkpoint_dir ?only_passes
    world scans

let run ?progress ?k ?shards ?domains ?backend ?checkpoint_dir ?only_passes
    config =
  let world = Netsim.World.build ?progress config in
  of_world ?progress ?k ?shards ?domains ?backend ?checkpoint_dir ?only_passes
    world

let extend ?progress ?domains ?backend ?checkpoint_dir ?only_passes t new_scans =
  check_backend backend;
  let sctx = Stage.ctx ?progress ?dir:checkpoint_dir () in
  let scans, monthly =
    Stage.run sctx "scan" (fun () ->
        let scans = List.concat [ t.scans; new_scans ] in
        (scans, Analysis.Dataset.representative_monthly scans))
  in
  (* A fresh store seeded with the old corpus (same ids), so the input
     pipeline value stays fully usable after this call. *)
  let store = Store.create ~size:(2 * Array.length t.corpus) () in
  intern_all store t.corpus;
  let https_moduli, fresh =
    Stage.run sctx "intern" (fun () ->
        let https = Analysis.Dataset.distinct_moduli scans in
        let before = Store.size store in
        let fresh = ref [] in
        Array.iter
          (fun m -> if Store.intern store m >= before then fresh := m :: !fresh)
          https;
        (https, Array.of_list (List.rev !fresh)))
  in
  let corpus = Store.to_array store in
  let pool = Parallel.Pool.get ?domains () in
  (match progress with
  | Some f ->
    f
      (Printf.sprintf "delta batch GCD: %d new moduli against %d cached"
         (Array.length fresh) (gcd_corpus_size t.gcd))
  | None -> ());
  let gcd =
    Stage.run_cached sctx "batchgcd"
      ~key:
        (corpus_key corpus
           ((match t.gcd with
            | Flat _ -> "/extend"
            | Sharded sh ->
              Printf.sprintf "/extend/stride=%d" (Sh.stride sh))
           ^ backend_tag backend))
      ~save:save_gcd ~load:load_gcd
      (fun () ->
        match t.gcd with
        | Flat inc -> Flat (Inc.extend ~pool ?backend inc fresh)
        | Sharded sh -> Sharded (Sh.extend ~pool ?backend sh fresh))
  in
  finish sctx ~pool ?only_passes
    ~checkpointed:(checkpoint_dir <> None)
    t.world scans monthly t.protocol_snapshots https_moduli store corpus gcd

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let id_of t n = Store.find t.store n

let is_vulnerable t n =
  match id_of t n with
  | Some id -> Id_set.mem t.vuln_index id
  | None -> false

(* Derived views over the attribution table: what used to be bespoke
   pipeline fields is each pass's artifact now. *)
let cliques t = Option.value ~default:[] (Attribution.cliques t.attribution)
let shared t = Attribution.shared t.attribution
let rimon t = Option.value ~default:[] (Attribution.mitm t.attribution)
let openssl_table t = Attribution.openssl_table t.attribution
let passes_run t = Stage.timings_named "pass:" t.timings

let cert_label t fp =
  match Attribution.cert_labels t.attribution with
  | None -> None
  | Some labels -> (
    match Hashtbl.find_opt labels fp with Some l -> l | None -> None)

let vendor_of_record t (r : Sc.host_record) =
  match cert_label t (t.cert_fp r.Sc.cert) with
  | Some { Fingerprint.Rules.vendor; _ } -> Some vendor
  | None -> (
    match id_of t (modulus_of_record r) with
    | None -> None
    | Some id ->
      (* The certificate matched no rule: fall back to what the
         modulus itself proves — clique membership, then shared-prime
         pools — never the subject majority of other certificates. *)
      Attribution.vendor_of
        ~use:[ Evidence.Prime_clique; Evidence.Shared_prime ]
        t.attribution id)

let model_of_record t (r : Sc.host_record) =
  match cert_label t (t.cert_fp r.Sc.cert) with
  | Some { Fingerprint.Rules.model_id = Some m; _ } -> Some m
  | _ -> None

let vulnerable_https_host_records t =
  List.fold_left
    (fun acc (s : Sc.scan) ->
      Array.fold_left
        (fun acc r ->
          if is_vulnerable t (modulus_of_record r) then acc + 1 else acc)
        acc s.Sc.records)
    0 t.scans

let vulnerable_https_certs t =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          if is_vulnerable t (modulus_of_record r) then
            Hashtbl.replace seen (t.cert_fp r.Sc.cert) ())
        s.Sc.records)
    t.scans;
  Hashtbl.length seen

let vulnerable_by_protocol t =
  List.map
    (fun (p : Sc.protocol_snapshot) ->
      let v =
        Array.fold_left
          (fun acc m -> if is_vulnerable t m then acc + 1 else acc)
          0 p.Sc.rsa_moduli
      in
      (p.Sc.protocol, v))
    t.protocol_snapshots

let labeled_factored t =
  List.map
    (fun (f : Fp.t) ->
      let label =
        match id_of t f.Fp.modulus with
        | None -> None
        | Some id -> Attribution.vendor_of t.attribution id
      in
      (f, label))
    t.factored

let suspected_bit_errors t =
  match Attribution.bit_error_triage t.attribution with
  | Some (suspects, _) -> suspects
  | None -> []

let bit_error_summary t =
  match Attribution.bit_error_triage t.attribution with
  | Some (suspects, near) -> Some (List.length suspects, near)
  | None -> None
