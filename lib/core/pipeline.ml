module N = Bignum.Nat
module Sc = Netsim.Scanner
module Cert = X509lite.Certificate
module BG = Batchgcd.Batch_gcd
module Fp = Fingerprint.Factored

type t = {
  world : Netsim.World.t;
  scans : Sc.scan list;
  monthly : Sc.scan list;
  protocol_snapshots : Sc.protocol_snapshot list;
  https_moduli : N.t array;
  corpus : N.t array;
  findings : BG.finding list;
  factored : Fp.t list;
  unrecovered : N.t list;
  cliques : Fingerprint.Ibm_clique.clique list;
  shared : Fingerprint.Shared_prime.t;
  rimon : Fingerprint.Rimon.detection list;
  vuln_index : (int array, unit) Hashtbl.t;
  cert_label_index : (string, Fingerprint.Rules.label option) Hashtbl.t;
  subject_label_index : (int array, string) Hashtbl.t;
  factored_index : (int array, Fingerprint.Factored.t) Hashtbl.t;
  clique_index : (int array, unit) Hashtbl.t;
  fp_cache : (Cert.t, string) Hashtbl.t;
}

let modulus_of_record (r : Sc.host_record) =
  r.Sc.cert.Cert.public_key.Rsa.Keypair.n

(* Certificates are shared across every record that observed them, and
   the report renders dozens of series over millions of records:
   memoize the (SHA-256) fingerprint per certificate value. The cache
   lives in the pipeline value (not a process global), so its lifetime
   is bounded by the run that owns the certificates it keys on and
   repeated runs in one process do not accumulate dead worlds. *)
let cert_fingerprint cache c =
  match Hashtbl.find_opt cache c with
  | Some fp -> fp
  | None ->
    let fp = Cert.fingerprint c in
    Hashtbl.replace cache c fp;
    fp

let limb_set moduli =
  let tbl = Hashtbl.create (List.length moduli * 2) in
  List.iter (fun m -> Hashtbl.replace tbl (N.to_limbs m) ()) moduli;
  tbl

(* Subject/content labels per distinct certificate fingerprint. *)
let build_cert_labels fp_cache scans =
  let titles = Analysis.Dataset.page_title_index scans in
  let labels : (string, Fingerprint.Rules.label option) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = cert_fingerprint fp_cache r.Sc.cert in
          if not (Hashtbl.mem labels fp) then begin
            let page_title = Hashtbl.find_opt titles fp in
            Hashtbl.replace labels fp
              (Fingerprint.Rules.of_certificate ?page_title r.Sc.cert)
          end)
        s.Sc.records)
    scans;
  labels

(* Majority subject label per modulus, from the certificates that
   carry it. *)
let build_modulus_subject_labels fp_cache scans cert_labels =
  let votes : (int array, (string, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = cert_fingerprint fp_cache r.Sc.cert in
          match Hashtbl.find_opt cert_labels fp with
          | Some (Some { Fingerprint.Rules.vendor; _ }) ->
            let k = N.to_limbs (modulus_of_record r) in
            let tally =
              match Hashtbl.find_opt votes k with
              | Some t -> t
              | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace votes k t;
                t
            in
            Hashtbl.replace tally vendor
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally vendor))
          | _ -> ())
        s.Sc.records)
    scans;
  let best = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun k tally ->
      let winner =
        Hashtbl.fold
          (fun v c acc ->
            match acc with Some (_, c') when c' >= c -> acc | _ -> Some (v, c))
          tally None
      in
      match winner with
      | Some (v, _) -> Hashtbl.replace best k v
      | None -> ())
    votes;
  best

let of_world ?(progress = fun _ -> ()) ?(k = 16) ?domains world =
  progress "running scan campaigns";
  let scans = Sc.run_all world in
  let monthly = Analysis.Dataset.representative_monthly scans in
  let protocol_snapshots = Sc.protocol_snapshots world in
  progress "assembling key corpus";
  let https_moduli = Analysis.Dataset.distinct_moduli scans in
  let other_moduli =
    List.concat_map
      (fun (p : Sc.protocol_snapshot) ->
        if p.Sc.protocol = Sc.Https then []
        else Array.to_list p.Sc.rsa_moduli)
      protocol_snapshots
  in
  let corpus =
    BG.dedup (Array.append https_moduli (Array.of_list other_moduli))
  in
  (* One persistent pool for the whole pipeline run; [domains] sizes
     it, defaulting to the hardware (or WEAKKEYS_DOMAINS). *)
  let pool = Parallel.Pool.get ?domains () in
  progress
    (Printf.sprintf "batch GCD over %d distinct moduli (k=%d, %d domains)"
       (Array.length corpus) k (Parallel.Pool.size pool));
  let findings = BG.factor_subsets ~pool ~k corpus in
  progress (Printf.sprintf "%d moduli factored" (List.length findings));
  let factored, unrecovered = Fp.recover findings in
  let cliques = Fingerprint.Ibm_clique.detect factored in
  progress "fingerprinting implementations";
  let fp_cache : (Cert.t, string) Hashtbl.t = Hashtbl.create 65536 in
  let cert_labels = build_cert_labels fp_cache scans in
  let subject_labels =
    build_modulus_subject_labels fp_cache scans cert_labels
  in
  (* Clique moduli with no subject label are IBM (prior knowledge from
     the 2012 study: the nine-prime implementation is the IBM card). *)
  let clique_members = limb_set (List.concat_map (fun c -> c.Fingerprint.Ibm_clique.moduli) cliques) in
  let entry (f : Fp.t) =
    let key = N.to_limbs f.Fp.modulus in
    let label =
      match Hashtbl.find_opt subject_labels key with
      | Some v -> Some v
      | None -> if Hashtbl.mem clique_members key then Some "IBM" else None
    in
    (f, label)
  in
  let entries = List.map entry factored in
  let shared = Fingerprint.Shared_prime.build entries in
  let rimon = Fingerprint.Rimon.detect scans in
  let vuln_index = limb_set (List.map (fun f -> f.BG.modulus) findings) in
  let factored_index = Hashtbl.create 1024 in
  List.iter
    (fun (f : Fp.t) ->
      Hashtbl.replace factored_index (N.to_limbs f.Fp.modulus) f)
    factored;
  {
    world;
    scans;
    monthly;
    protocol_snapshots;
    https_moduli;
    corpus;
    findings;
    factored;
    unrecovered;
    cliques;
    shared;
    rimon;
    vuln_index;
    cert_label_index = cert_labels;
    subject_label_index = subject_labels;
    factored_index;
    clique_index = clique_members;
    fp_cache;
  }

let run ?progress ?k ?domains config =
  let world = Netsim.World.build ?progress config in
  of_world ?progress ?k ?domains world

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let is_vulnerable t n = Hashtbl.mem t.vuln_index (N.to_limbs n)

let vendor_of_record t (r : Sc.host_record) =
  let fp = cert_fingerprint t.fp_cache r.Sc.cert in
  match Hashtbl.find_opt t.cert_label_index fp with
  | Some (Some { Fingerprint.Rules.vendor; _ }) -> Some vendor
  | _ -> begin
    let key = N.to_limbs (modulus_of_record r) in
    if Hashtbl.mem t.clique_index key then Some "IBM"
    else
      match Hashtbl.find_opt t.factored_index key with
      | Some f -> Fingerprint.Shared_prime.label_modulus t.shared f
      | None -> None
  end

let model_of_record t (r : Sc.host_record) =
  let fp = cert_fingerprint t.fp_cache r.Sc.cert in
  match Hashtbl.find_opt t.cert_label_index fp with
  | Some (Some { Fingerprint.Rules.model_id = Some m; _ }) -> Some m
  | _ -> None

let vulnerable_https_host_records t =
  List.fold_left
    (fun acc (s : Sc.scan) ->
      Array.fold_left
        (fun acc r ->
          if is_vulnerable t (modulus_of_record r) then acc + 1 else acc)
        acc s.Sc.records)
    0 t.scans

let vulnerable_https_certs t =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          if is_vulnerable t (modulus_of_record r) then
            Hashtbl.replace seen (cert_fingerprint t.fp_cache r.Sc.cert) ())
        s.Sc.records)
    t.scans;
  Hashtbl.length seen

let vulnerable_by_protocol t =
  List.map
    (fun (p : Sc.protocol_snapshot) ->
      let v =
        Array.fold_left
          (fun acc m -> if is_vulnerable t m then acc + 1 else acc)
          0 p.Sc.rsa_moduli
      in
      (p.Sc.protocol, v))
    t.protocol_snapshots

let labeled_factored t =
  List.map
    (fun (f : Fp.t) ->
      let key = N.to_limbs f.Fp.modulus in
      let label =
        match Hashtbl.find_opt t.subject_label_index key with
        | Some v -> Some v
        | None ->
          if Hashtbl.mem t.clique_index key then Some "IBM"
          else Fingerprint.Shared_prime.label_modulus t.shared f
      in
      (f, label))
    t.factored

let suspected_bit_errors t =
  let bits = (Netsim.World.config t.world).Netsim.World.modulus_bits in
  List.filter
    (fun n -> Fingerprint.Bit_errors.suspicious ~bits n)
    (List.map (fun f -> f.BG.modulus) t.findings)
