module N = Bignum.Nat
module Sc = Netsim.Scanner
module Cert = X509lite.Certificate
module BG = Batchgcd.Batch_gcd
module Inc = Batchgcd.Incremental
module Fp = Fingerprint.Factored
module Store = Corpus.Store
module Id_set = Corpus.Id_set

type t = {
  world : Netsim.World.t;
  scans : Sc.scan list;
  monthly : Sc.scan list;
  protocol_snapshots : Sc.protocol_snapshot list;
  https_moduli : N.t array;
  store : Store.t;
  corpus : N.t array;
  inc : Inc.t;
  findings : BG.finding list;
  factored : Fp.t list;
  unrecovered : N.t list;
  cliques : Fingerprint.Ibm_clique.clique list;
  shared : Fingerprint.Shared_prime.t;
  rimon : Fingerprint.Rimon.detection list;
  vuln_index : Id_set.t;
  cert_label_index : (string, Fingerprint.Rules.label option) Hashtbl.t;
  subject_label_index : string option array;
  factored_index : Fp.t option array;
  clique_index : Id_set.t;
  fp_cache : (Cert.t, string) Hashtbl.t;
  timings : Stage.timing list;
}

let modulus_of_record (r : Sc.host_record) =
  r.Sc.cert.Cert.public_key.Rsa.Keypair.n

(* Certificates are shared across every record that observed them, and
   the report renders dozens of series over millions of records:
   memoize the (SHA-256) fingerprint per certificate value. The cache
   lives in the pipeline value (not a process global), so its lifetime
   is bounded by the run that owns the certificates it keys on and
   repeated runs in one process do not accumulate dead worlds. *)
let cert_fingerprint cache c =
  match Hashtbl.find_opt cache c with
  | Some fp -> fp
  | None ->
    let fp = Cert.fingerprint c in
    Hashtbl.replace cache c fp;
    fp

(* Subject/content labels per distinct certificate fingerprint. *)
let build_cert_labels fp_cache scans =
  let titles = Analysis.Dataset.page_title_index scans in
  let labels : (string, Fingerprint.Rules.label option) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = cert_fingerprint fp_cache r.Sc.cert in
          if not (Hashtbl.mem labels fp) then begin
            let page_title = Hashtbl.find_opt titles fp in
            Hashtbl.replace labels fp
              (Fingerprint.Rules.of_certificate ?page_title r.Sc.cert)
          end)
        s.Sc.records)
    scans;
  labels

(* Majority winner; ties broken by vendor name (lexicographically
   smallest wins) so the result does not depend on tally iteration
   order — Hashtbl.fold order used to decide ties here. *)
let majority_vendor votes =
  let best =
    List.fold_left
      (fun acc (v, c) ->
        match acc with
        | Some (v', c') when c' > c || (c' = c && String.compare v' v <= 0) ->
          acc
        | _ -> Some (v, c))
      None votes
  in
  Option.map fst best

(* Majority subject label per modulus id, from the certificates that
   carry the modulus. *)
let build_modulus_subject_labels fp_cache store scans cert_labels =
  let votes : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = cert_fingerprint fp_cache r.Sc.cert in
          match Hashtbl.find_opt cert_labels fp with
          | Some (Some { Fingerprint.Rules.vendor; _ }) ->
            let id = Store.intern store (modulus_of_record r) in
            let tally =
              match Hashtbl.find_opt votes id with
              | Some t -> t
              | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.replace votes id t;
                t
            in
            Hashtbl.replace tally vendor
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally vendor))
          | _ -> ())
        s.Sc.records)
    scans;
  let best : (int, string) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun id tally ->
      let ballot = Hashtbl.fold (fun v c acc -> (v, c) :: acc) tally [] in
      match majority_vendor ballot with
      | Some v -> Hashtbl.replace best id v
      | None -> ())
    votes;
  best

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let intern_all store moduli =
  Array.iter (fun m -> ignore (Store.intern store m)) moduli

(* Corpus assembly: HTTPS moduli in first-observation order, then the
   other protocols' — the same order the pre-interning corpus used, so
   batch-GCD finding indexes are store ids. *)
let stage_intern store scans protocol_snapshots =
  let https_moduli = Analysis.Dataset.distinct_moduli scans in
  intern_all store https_moduli;
  List.iter
    (fun (p : Sc.protocol_snapshot) ->
      if p.Sc.protocol <> Sc.Https then intern_all store p.Sc.rsa_moduli)
    protocol_snapshots;
  https_moduli

(* Checkpoint key: the GCD artifact is valid only for the exact corpus
   (content and order) and driver parameters that produced it. *)
let corpus_key corpus tag =
  let buf = Buffer.create 65536 in
  Array.iter
    (fun m ->
      let b = N.to_bytes_be m in
      Buffer.add_string buf (string_of_int (String.length b));
      Buffer.add_char buf ':';
      Buffer.add_string buf b)
    corpus;
  Buffer.add_string buf tag;
  Hashes.Sha256.hexdigest (Buffer.contents buf)

let stage_fingerprint findings =
  let factored, unrecovered = Fp.recover findings in
  let cliques = Fingerprint.Ibm_clique.detect factored in
  (factored, unrecovered, cliques)

let stage_label fp_cache store scans cliques factored =
  let cert_labels = build_cert_labels fp_cache scans in
  let subject_labels =
    build_modulus_subject_labels fp_cache store scans cert_labels
  in
  (* Clique moduli with no subject label are IBM (prior knowledge from
     the 2012 study: the nine-prime implementation is the IBM card). *)
  let clique_index = Id_set.create ~size:(Store.size store) () in
  List.iter
    (fun (c : Fingerprint.Ibm_clique.clique) ->
      List.iter
        (fun m ->
          match Store.find store m with
          | Some id -> Id_set.add clique_index id
          | None -> ())
        c.Fingerprint.Ibm_clique.moduli)
    cliques;
  let entry (f : Fp.t) =
    let label =
      match Store.find store f.Fp.modulus with
      | None -> None
      | Some id -> (
        match Hashtbl.find_opt subject_labels id with
        | Some v -> Some v
        | None -> if Id_set.mem clique_index id then Some "IBM" else None)
    in
    (f, label)
  in
  let shared = Fingerprint.Shared_prime.build (List.map entry factored) in
  let rimon = Fingerprint.Rimon.detect scans in
  (cert_labels, subject_labels, clique_index, shared, rimon)

(* Findings carry corpus indexes, and corpus order is store insertion
   order, so a finding's index is its store id directly. *)
let stage_index store findings subject_labels factored =
  let n = Store.size store in
  let vuln_index = Id_set.create ~size:n () in
  List.iter (fun (f : BG.finding) -> Id_set.add vuln_index f.BG.index) findings;
  let subject_label_index = Array.make n None in
  Hashtbl.iter (fun id v -> subject_label_index.(id) <- Some v) subject_labels;
  let factored_index = Array.make n None in
  List.iter
    (fun (f : Fp.t) ->
      match Store.find store f.Fp.modulus with
      | Some id -> factored_index.(id) <- Some f
      | None -> ())
    factored;
  (vuln_index, subject_label_index, factored_index)

(* Downstream of the GCD artifact, of_scans and extend are identical:
   fingerprint, label and index over the current corpus. *)
let finish sctx world scans monthly protocol_snapshots https_moduli store
    corpus inc =
  let findings = Inc.findings inc in
  let factored, unrecovered, cliques =
    Stage.run sctx "fingerprint" (fun () -> stage_fingerprint findings)
  in
  let fp_cache : (Cert.t, string) Hashtbl.t = Hashtbl.create 65536 in
  let cert_labels, subject_labels, clique_index, shared, rimon =
    Stage.run sctx "label" (fun () ->
        stage_label fp_cache store scans cliques factored)
  in
  let vuln_index, subject_label_index, factored_index =
    Stage.run sctx "index" (fun () ->
        stage_index store findings subject_labels factored)
  in
  {
    world;
    scans;
    monthly;
    protocol_snapshots;
    https_moduli;
    store;
    corpus;
    inc;
    findings;
    factored;
    unrecovered;
    cliques;
    shared;
    rimon;
    vuln_index;
    cert_label_index = cert_labels;
    subject_label_index;
    factored_index;
    clique_index;
    fp_cache;
    timings = Stage.timings sctx;
  }

let of_scans ?progress ?(k = 16) ?domains ?checkpoint_dir world scans =
  let sctx = Stage.ctx ?progress ?dir:checkpoint_dir () in
  let say = match progress with Some f -> f | None -> fun _ -> () in
  let monthly, protocol_snapshots =
    Stage.run sctx "scan" (fun () ->
        ( Analysis.Dataset.representative_monthly scans,
          Sc.protocol_snapshots world ))
  in
  let store = Store.create ~size:4096 () in
  let https_moduli =
    Stage.run sctx "intern" (fun () ->
        stage_intern store scans protocol_snapshots)
  in
  let corpus = Store.to_array store in
  (* One persistent pool for the whole pipeline run; [domains] sizes
     it, defaulting to the hardware (or WEAKKEYS_DOMAINS). *)
  let pool = Parallel.Pool.get ?domains () in
  say
    (Printf.sprintf "batch GCD over %d distinct moduli (k=%d, %d domains)"
       (Array.length corpus) k (Parallel.Pool.size pool));
  let inc =
    Stage.run_cached sctx "batchgcd"
      ~key:(corpus_key corpus (Printf.sprintf "/k=%d" k))
      ~save:Inc.save ~load:Inc.load
      (fun () -> Inc.create ~pool ~k corpus)
  in
  say (Printf.sprintf "%d moduli factored" (List.length (Inc.findings inc)));
  finish sctx world scans monthly protocol_snapshots https_moduli store corpus
    inc

let of_world ?progress ?k ?domains ?checkpoint_dir world =
  (match progress with Some f -> f "running scan campaigns" | None -> ());
  let scans = Sc.run_all world in
  of_scans ?progress ?k ?domains ?checkpoint_dir world scans

let run ?progress ?k ?domains ?checkpoint_dir config =
  let world = Netsim.World.build ?progress config in
  of_world ?progress ?k ?domains ?checkpoint_dir world

let extend ?progress ?domains ?checkpoint_dir t new_scans =
  let sctx = Stage.ctx ?progress ?dir:checkpoint_dir () in
  let scans, monthly =
    Stage.run sctx "scan" (fun () ->
        let scans = List.concat [ t.scans; new_scans ] in
        (scans, Analysis.Dataset.representative_monthly scans))
  in
  (* A fresh store seeded with the old corpus (same ids), so the input
     pipeline value stays fully usable after this call. *)
  let store = Store.create ~size:(2 * Array.length t.corpus) () in
  intern_all store t.corpus;
  let https_moduli, fresh =
    Stage.run sctx "intern" (fun () ->
        let https = Analysis.Dataset.distinct_moduli scans in
        let before = Store.size store in
        let fresh = ref [] in
        Array.iter
          (fun m -> if Store.intern store m >= before then fresh := m :: !fresh)
          https;
        (https, Array.of_list (List.rev !fresh)))
  in
  let corpus = Store.to_array store in
  let pool = Parallel.Pool.get ?domains () in
  (match progress with
   | Some f ->
     f
       (Printf.sprintf "delta batch GCD: %d new moduli against %d cached"
          (Array.length fresh) (Inc.corpus_size t.inc))
   | None -> ());
  let inc =
    Stage.run_cached sctx "batchgcd"
      ~key:(corpus_key corpus "/extend")
      ~save:Inc.save ~load:Inc.load
      (fun () -> Inc.extend ~pool t.inc fresh)
  in
  finish sctx t.world scans monthly t.protocol_snapshots https_moduli store
    corpus inc

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let id_of t n = Store.find t.store n

let is_vulnerable t n =
  match id_of t n with
  | Some id -> Id_set.mem t.vuln_index id
  | None -> false

let vendor_of_record t (r : Sc.host_record) =
  let fp = cert_fingerprint t.fp_cache r.Sc.cert in
  match Hashtbl.find_opt t.cert_label_index fp with
  | Some (Some { Fingerprint.Rules.vendor; _ }) -> Some vendor
  | _ -> (
    match id_of t (modulus_of_record r) with
    | None -> None
    | Some id ->
      if Id_set.mem t.clique_index id then Some "IBM"
      else (
        match t.factored_index.(id) with
        | Some f -> Fingerprint.Shared_prime.label_modulus t.shared f
        | None -> None))

let model_of_record t (r : Sc.host_record) =
  let fp = cert_fingerprint t.fp_cache r.Sc.cert in
  match Hashtbl.find_opt t.cert_label_index fp with
  | Some (Some { Fingerprint.Rules.model_id = Some m; _ }) -> Some m
  | _ -> None

let vulnerable_https_host_records t =
  List.fold_left
    (fun acc (s : Sc.scan) ->
      Array.fold_left
        (fun acc r ->
          if is_vulnerable t (modulus_of_record r) then acc + 1 else acc)
        acc s.Sc.records)
    0 t.scans

let vulnerable_https_certs t =
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          if is_vulnerable t (modulus_of_record r) then
            Hashtbl.replace seen (cert_fingerprint t.fp_cache r.Sc.cert) ())
        s.Sc.records)
    t.scans;
  Hashtbl.length seen

let vulnerable_by_protocol t =
  List.map
    (fun (p : Sc.protocol_snapshot) ->
      let v =
        Array.fold_left
          (fun acc m -> if is_vulnerable t m then acc + 1 else acc)
          0 p.Sc.rsa_moduli
      in
      (p.Sc.protocol, v))
    t.protocol_snapshots

let labeled_factored t =
  List.map
    (fun (f : Fp.t) ->
      let label =
        match id_of t f.Fp.modulus with
        | None -> None
        | Some id -> (
          match t.subject_label_index.(id) with
          | Some v -> Some v
          | None ->
            if Id_set.mem t.clique_index id then Some "IBM"
            else Fingerprint.Shared_prime.label_modulus t.shared f)
      in
      (f, label))
    t.factored

let suspected_bit_errors t =
  let bits = (Netsim.World.config t.world).Netsim.World.modulus_bits in
  List.filter
    (fun n -> Fingerprint.Bit_errors.suspicious ~bits n)
    (List.map (fun f -> f.BG.modulus) t.findings)
