module Date = X509lite.Date
module Dn = X509lite.Dn
module Cert = X509lite.Certificate
module K = Rsa.Keypair
module N = Bignum.Nat
module Rng = Entropy.Device_rng

type config = {
  seed : string;
  scale : float;
  modulus_bits : int;
  rimon_frac : float;
  domains : int option;
}

let default_config =
  {
    seed = "weakkeys-imc16";
    scale = 1.0;
    modulus_bits = 96;
    rimon_frac = 0.0012;
    domains = None;
  }

type epoch = { from_date : Date.t; key : K.private_key; cert : Cert.t }

type device = {
  dev_id : string;
  model : Device_model.t;
  deploy : Date.t;
  death : Date.t option;
  weak_unit : bool;
  epochs : epoch array;
  ips : (Date.t * Ipv4.t) array;
  ssh_key : K.private_key option;
}

type t = {
  cfg : config;
  devs : device array;
  ca : K.private_key;
  ca_certificate : Cert.t;
  rimon : K.private_key;
  primes : Corpus.Store.t;  (** ground-truth primes, interned *)
  prime_counts : (int, int) Hashtbl.t;
      (** prime id -> number of distinct moduli using it *)
  moduli : N.t array;  (** distinct TLS moduli *)
}

let start_date = Date.of_ymd 2005 1 1
let end_date = Date.of_ymd 2016 5 31
let heartbleed_date = Date.of_ymd 2014 4 7
let ssh_snapshot_date = Date.of_ymd 2015 10 29

(* ------------------------------------------------------------------ *)
(* Phase A: population dynamics                                        *)
(* ------------------------------------------------------------------ *)

type proto = {
  p_id : string;
  p_model : Device_model.t;
  p_deploy : Date.t;
  mutable p_death : Date.t option;
  mutable p_regens : Date.t list; (* newest first *)
  mutable p_ips : Date.t list; (* IP-change months, newest first *)
}

(* Probabilistic rounding keeps small expected values from always
   truncating to zero. *)
let prob_round key x =
  let f = Float.of_int (int_of_float (floor x)) in
  int_of_float f + (if Det.float key < x -. f then 1 else 0)

let target_population cfg (m : Device_model.t) date =
  let dyn = m.Device_model.dynamics in
  let msi = Date.months_between date dyn.Device_model.intro in
  if msi < 0 then 0
  else begin
    let ramp =
      Float.min 1.0
        (Float.of_int (msi + 1) /. Float.of_int (Stdlib.max 1 dyn.ramp_months))
    in
    let decline =
      match dyn.decline_start with
      | None -> 1.0
      | Some ds ->
        let k = Date.months_between date ds in
        if k <= 0 then 1.0 else (1.0 -. dyn.decline_monthly) ** Float.of_int k
    in
    let shock =
      if dyn.heartbleed_shock > 0. && Date.(heartbleed_date <= date) then
        1.0 -. dyn.heartbleed_shock
      else 1.0
    in
    int_of_float
      (Float.round (cfg.scale *. Float.of_int dyn.peak *. ramp *. decline *. shock))
  end

(* Retire [k] devices chosen by deterministic per-device draws. *)
let retire_some ~salt date k alive =
  if k <= 0 then alive
  else begin
    let scored =
      List.map
        (fun p ->
          (Det.float (p.p_id ^ "/" ^ salt ^ "/" ^ Date.to_string date), p))
        alive
    in
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) scored in
    List.iteri (fun i (_, p) -> if i < k then p.p_death <- Some date) sorted;
    List.filter_map (fun (_, p) -> if p.p_death = None then Some p else None)
      sorted
  end

let simulate_model cfg (m : Device_model.t) =
  let dyn = m.Device_model.dynamics in
  let all = ref [] in
  let alive = ref [] in
  let counter = ref 0 in
  let spawn date k =
    for _ = 1 to k do
      let p =
        {
          p_id = Printf.sprintf "%s#%d" m.Device_model.id !counter;
          p_model = m;
          p_deploy = date;
          p_death = None;
          p_regens = [];
          p_ips = [];
        }
      in
      incr counter;
      all := p :: !all;
      alive := p :: !alive
    done
  in
  let month = ref (Date.first_of_month dyn.Device_model.intro) in
  while Date.(!month <= end_date) do
    let date = !month in
    let ds = Date.to_string date in
    let target = target_population cfg m date in
    let n = List.length !alive in
    if n < target then spawn date (target - n)
    else if n > target then alive := retire_some ~salt:"shrink" date (n - target) !alive;
    (* Churn: retire a slice and replace it with new units. *)
    let churn =
      prob_round
        (m.Device_model.id ^ "/churn/" ^ ds)
        (dyn.churn_monthly *. Float.of_int (List.length !alive))
    in
    if churn > 0 then begin
      alive := retire_some ~salt:"churn" date churn !alive;
      spawn date churn
    end;
    (* Certificate regeneration and IP churn. *)
    List.iter
      (fun p ->
        if Det.bool (p.p_id ^ "/regen/" ^ ds) ~p:dyn.regen_monthly then
          p.p_regens <- date :: p.p_regens;
        if Det.bool (p.p_id ^ "/ipmove/" ^ ds) ~p:dyn.ip_churn_monthly then
          p.p_ips <- date :: p.p_ips)
      !alive;
    month := Date.add_months date 1
  done;
  List.rev !all

(* ------------------------------------------------------------------ *)
(* Phase B: key material                                               *)
(* ------------------------------------------------------------------ *)

let ten_years = 3653

(* The boot-state space is a firmware property, not a population one:
   when the world is scaled down, the space must shrink with it or the
   collision rate (the thing the study measures) would vanish. *)
let scaled_bits cfg bits =
  if cfg.scale >= 1.0 then bits
  else
    Stdlib.max 1
      (bits + int_of_float (Float.round (Float.log cfg.scale /. Float.log 2.)))

let scaled_profile cfg (p : Rng.profile) =
  Rng.vulnerable_shared_prime p.Rng.name
    ~bits:(scaled_bits cfg p.Rng.boot_entropy_bits)

let gen_key cfg (m : Device_model.t) ~dev_path ~weak_unit ~epoch_idx =
  let bits = cfg.modulus_bits in
  let path = Printf.sprintf "%s/%s/key/%d" cfg.seed dev_path epoch_idx in
  if not weak_unit then K.generate ~style:K.Plain ~gen:(Det.gen_fn path) ~bits ()
  else
    match m.Device_model.keygen with
    | Device_model.Ibm_keygen -> Rsa.Ibm.generate ~gen:(Det.gen_fn path) ~bits
    | Device_model.Profile_keygen { weak_profile; style } ->
      let rng =
        Rng.boot (scaled_profile cfg weak_profile) ~device_unique:dev_path
          ~boot_state:(Det.int (path ^ "/boot") (1 lsl 30))
      in
      K.generate_on_device ~style ~rng ~bits ()

let make_cert cfg ~ca ~ca_dn (m : Device_model.t) ~dev_path ~epoch_idx ~date key
    =
  let subject, sans = m.Device_model.identity ~seed:(cfg.seed ^ "/" ^ dev_path) in
  let serial =
    N.of_bytes_be (Det.bytes (cfg.seed ^ "/" ^ dev_path ^ "/serial/"
                              ^ string_of_int epoch_idx) 8)
  in
  let not_before = date and not_after = Date.add_days date ten_years in
  (* Only the generic population carries CA-signed certificates; the
     vulnerable devices in the paper were almost all self-signed. *)
  if
    m.Device_model.id = "generic-web"
    && Det.bool (cfg.seed ^ "/" ^ dev_path ^ "/casigned") ~p:0.3
  then
    Cert.sign_with ~serial ~subject ~subject_alt_names:sans ~not_before
      ~not_after ~subject_key:key.K.pub ~issuer:ca_dn ~issuer_key:ca ()
  else
    Cert.self_sign ~serial ~subject ~subject_alt_names:sans ~not_before
      ~not_after ~key ()

(* Set WEAKKEYS_DEBUG_DEVICES=1 to trace device materialization (used
   to localize pathological inputs). *)
let debug_devices = Sys.getenv_opt "WEAKKEYS_DEBUG_DEVICES" <> None

let materialize cfg ~ca ~ca_dn (p : proto) =
  (* lint: allow lib-stdout — env-gated stderr trace, off by default *)
  if debug_devices then Printf.eprintf "dev %s\n%!" p.p_id;
  let m = p.p_model in
  let weak_unit =
    Device_model.is_weak_at m p.p_deploy
    && Det.float (cfg.seed ^ "/" ^ p.p_id ^ "/weakdraw")
       < m.Device_model.weak_frac
  in
  let epoch_dates = p.p_deploy :: List.rev p.p_regens in
  let epochs =
    Array.of_list
      (List.mapi
         (fun i date ->
           let key = gen_key cfg m ~dev_path:p.p_id ~weak_unit ~epoch_idx:i in
           let cert =
             make_cert cfg ~ca ~ca_dn m ~dev_path:p.p_id ~epoch_idx:i ~date key
           in
           { from_date = date; key; cert })
         epoch_dates)
  in
  let ips =
    let moves = List.rev p.p_ips in
    Array.of_list
      ((p.p_deploy, Ipv4.of_key (cfg.seed ^ "/" ^ p.p_id ^ "/ip0"))
      :: List.mapi
           (fun i d ->
             (d, Ipv4.of_key (Printf.sprintf "%s/%s/ip%d" cfg.seed p.p_id (i + 1))))
           moves)
  in
  let alive_at_ssh =
    Date.(p.p_deploy <= ssh_snapshot_date)
    && match p.p_death with None -> true | Some dd -> Date.(ssh_snapshot_date < dd)
  in
  let ssh_key =
    if m.Device_model.serves_ssh && alive_at_ssh then begin
      let path = cfg.seed ^ "/" ^ p.p_id ^ "/ssh" in
      if not weak_unit then
        Some (K.generate ~style:K.Plain ~gen:(Det.gen_fn path)
                ~bits:cfg.modulus_bits ())
      else
        match m.Device_model.keygen with
        | Device_model.Ibm_keygen ->
          Some (Rsa.Ibm.generate ~gen:(Det.gen_fn path) ~bits:cfg.modulus_bits)
        | Device_model.Profile_keygen { weak_profile; style } ->
          let ssh_profile =
            Rng.vulnerable_shared_prime
              (weak_profile.Rng.name ^ "-ssh")
              ~bits:(scaled_bits cfg weak_profile.Rng.boot_entropy_bits)
          in
          let rng =
            Rng.boot ssh_profile ~device_unique:p.p_id
              ~boot_state:(Det.int (path ^ "/boot") (1 lsl 30))
          in
          Some (K.generate_on_device ~style ~rng ~bits:cfg.modulus_bits ())
    end
    else None
  in
  {
    dev_id = p.p_id;
    model = m;
    deploy = p.p_deploy;
    death = p.p_death;
    weak_unit;
    epochs;
    ips;
    ssh_key;
  }

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

let build ?(progress = fun _ -> ()) cfg =
  progress "simulating population dynamics";
  let protos =
    List.concat_map (simulate_model cfg) Device_model.catalog |> Array.of_list
  in
  progress (Printf.sprintf "materializing %d devices" (Array.length protos));
  let ca =
    K.generate ~style:K.Plain ~gen:(Det.gen_fn (cfg.seed ^ "/ca"))
      ~bits:cfg.modulus_bits ()
  in
  let ca_dn = Dn.make ~cn:"TrustCo Issuing CA" ~o:"TrustCo" () in
  let ca_certificate =
    Cert.self_sign
      ~serial:(N.of_int 1)
      ~subject:ca_dn
      ~not_before:start_date
      ~not_after:(Date.add_days end_date ten_years)
      ~key:ca ()
  in
  let rimon =
    K.generate ~style:K.Plain ~gen:(Det.gen_fn (cfg.seed ^ "/rimon"))
      ~bits:cfg.modulus_bits ()
  in
  (* Force the shared IBM prime pool before fanning out: the memo
     table is mutex-guarded, but populating it once here keeps the
     expensive pool generation off the workers entirely. *)
  ignore (Rsa.Ibm.primes ~bits:(cfg.modulus_bits / 2));
  let devs = Parallel.Pool.map ?domains:cfg.domains
      (materialize cfg ~ca ~ca_dn) protos
  in
  progress "indexing ground truth";
  (* Count distinct moduli per prime over TLS epochs and SSH keys;
     primes are interned to dense ids, counts keyed on the id. *)
  let primes = Corpus.Store.create ~size:65536 () in
  let prime_counts : (int, int) Hashtbl.t = Hashtbl.create 65536 in
  let seen_moduli = Corpus.Store.create ~size:65536 () in
  let moduli = ref [] in
  let note_key (k : K.private_key) =
    let n = k.K.pub.K.n in
    if not (Corpus.Store.mem seen_moduli n) then begin
      ignore (Corpus.Store.intern seen_moduli n);
      List.iter
        (fun pr ->
          let id = Corpus.Store.intern primes pr in
          Hashtbl.replace prime_counts id
            (1 + Option.value ~default:0 (Hashtbl.find_opt prime_counts id)))
        [ k.K.p; k.K.q ]
    end
  in
  Array.iter
    (fun d ->
      Array.iter (fun e -> note_key e.key) d.epochs;
      (match d.ssh_key with Some k -> note_key k | None -> ()))
    devs;
  (* Distinct TLS moduli only (SSH keys are folded into the GCD corpus
     separately by the pipeline, as the paper did). *)
  let seen_tls = Corpus.Store.create ~size:65536 () in
  Array.iter
    (fun d ->
      Array.iter
        (fun e ->
          let n = e.key.K.pub.K.n in
          if not (Corpus.Store.mem seen_tls n) then begin
            ignore (Corpus.Store.intern seen_tls n);
            moduli := n :: !moduli
          end)
        d.epochs)
    devs;
  {
    cfg;
    devs;
    ca;
    ca_certificate;
    rimon;
    primes;
    prime_counts;
    moduli = Array.of_list (List.rev !moduli);
  }

let config t = t.cfg
let devices t = t.devs
let ca_key t = t.ca
let ca_cert t = t.ca_certificate
let rimon_public t = t.rimon.K.pub

let is_rimon_customer t d =
  d.model.Device_model.id = "generic-web"
  && Det.float (t.cfg.seed ^ "/" ^ d.dev_id ^ "/rimon") < t.cfg.rimon_frac

let alive d date =
  Date.(d.deploy <= date)
  && match d.death with None -> true | Some dd -> Date.(date < dd)

let cert_at d date =
  if not (alive d date) then None
  else begin
    let best = ref None in
    Array.iter
      (fun e -> if Date.(e.from_date <= date) then best := Some e.cert)
      d.epochs;
    !best
  end

let key_at d date =
  if not (alive d date) then None
  else begin
    let best = ref None in
    Array.iter
      (fun e -> if Date.(e.from_date <= date) then best := Some e.key)
      d.epochs;
    !best
  end

let ip_at d date =
  let best = ref (snd d.ips.(0)) in
  Array.iter (fun (from, ip) -> if Date.(from <= date) then best := ip) d.ips;
  !best

let all_tls_moduli t = Array.copy t.moduli

let prime_sharing_count t p =
  match Corpus.Store.find t.primes p with
  | Some id -> Option.value ~default:0 (Hashtbl.find_opt t.prime_counts id)
  | None -> 0

let factor_table t =
  (* modulus id -> its two primes, over every key in the corpus *)
  let store = Corpus.Store.create ~size:65536 () in
  let factors : (int, N.t * N.t) Hashtbl.t = Hashtbl.create 65536 in
  let note (k : K.private_key) =
    Hashtbl.replace factors (Corpus.Store.intern store k.K.pub.K.n)
      (k.K.p, k.K.q)
  in
  Array.iter
    (fun d ->
      Array.iter (fun e -> note e.key) d.epochs;
      match d.ssh_key with Some k -> note k | None -> ())
    t.devs;
  fun n ->
    match Corpus.Store.find store n with
    | Some id -> Hashtbl.find_opt factors id
    | None -> None

let factors_of t = factor_table t

let factorable_ground_truth t =
  let factors = factor_table t in
  fun n ->
    match factors n with
    | None -> false
    | Some (p, q) ->
      prime_sharing_count t p >= 2 || prime_sharing_count t q >= 2
