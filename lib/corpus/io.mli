(** Binary channel serialization helpers for checkpoint files.

    Minimal length-prefixed encodings shared by the incremental-GCD
    checkpoint ({!Batchgcd.Incremental}) and the stage runner
    ([Weakkeys.Stage]). All integers are written with
    [output_binary_int] (big-endian 32-bit), bignums as
    length-prefixed big-endian bytes. Readers raise {!Corrupt} on any
    malformed record rather than returning garbage. *)

exception Corrupt of string

val write_int : out_channel -> int -> unit
(** @raise Invalid_argument outside the 32-bit non-negative range. *)

val read_int : in_channel -> int
(** @raise Corrupt on a negative value (truncated / not ours).
    @raise End_of_file at end of channel. *)

val write_string : out_channel -> string -> unit
val read_string : in_channel -> string

val write_nat : out_channel -> Bignum.Nat.t -> unit
val read_nat : in_channel -> Bignum.Nat.t
