(** Append-only limb heap backed by a contiguous int32 {!Bigarray}.

    Each stored natural occupies a [offset, offset+len) slice of one
    shared limb buffer; a second buffer holds the offset table.  The
    on-disk checkpoint is byte-identical to the runtime buffers, so
    {!load} is a single [Unix.map_file] — opening an arena costs O(1)
    in the number of stored values.  Little-endian hosts only (the
    limb region is written through a native-order int32 mapping). *)

type t

val create : ?values:int -> ?limbs:int -> unit -> t
(** Fresh in-memory arena. [values]/[limbs] are capacity hints. *)

val count : t -> int
(** Number of stored values. *)

val limb_count : t -> int
(** Total limbs stored across all values. *)

val is_mapped : t -> bool
(** [true] while the arena is a read-only file mapping (no append has
    happened since {!load}). *)

val append : t -> Bignum.Nat.t -> int
(** Store a value; returns its dense local index.  Appending to a
    mapped arena first copies it into private buffers (thaw). *)

val get : t -> int -> Bignum.Nat.t
(** Materialise the value at an index.  Raises [Invalid_argument] on
    out-of-range indices and {!Io.Corrupt} if a mapped offset table is
    inconsistent. *)

val length : t -> int -> int
(** Limb count of the value at an index, without materialising it. *)

val matches : t -> int -> int array -> bool
(** [matches t i limbs] compares the stored value against a limb
    array (as produced by [Nat.to_limbs]) without materialising it. *)

val iter : (int -> Bignum.Nat.t -> unit) -> t -> unit

val save : t -> string -> unit
(** Write the arena to a file (atomic tmp+rename).  A no-op when the
    arena is still an unmodified mapping of that same file. *)

val load : string -> t
(** Map an arena file read-only.  Raises {!Io.Corrupt} on a bad magic,
    negative counts, a truncated file, or an inconsistent offset
    table. *)
