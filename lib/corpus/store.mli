(** Interning store for moduli (and other bignums).

    Maps each distinct [Nat.t] to a dense [int] id, assigned in
    insertion order starting at 0. The id doubles as an index into
    per-id arrays and bitsets ({!Id_set}), which replaces the
    [(int array, _) Hashtbl.t] tables keyed on [Nat.to_limbs] that
    used to be scattered across the pipeline, fingerprint and analysis
    layers (see the [limbs-keyed-hashtbl] lint rule).

    Values live unboxed in id-range-sharded limb arenas ({!Shard} over
    {!Arena}), so {!save}/{!load} move whole shards: a restored store
    is a set of read-only file mappings and opens in O(shard count).

    Stores are single-writer: interleaving [intern] calls from several
    domains is not supported. Lookups are safe once building stops —
    but note a store restored by {!load} builds its intern index
    lazily, so run one [find]/[intern] from a single domain before
    sharing it. *)

type t

val create : ?size:int -> ?stride:int -> unit -> t
(** Fresh empty store. [size] is a capacity hint; [stride] (default
    65536, power of two) is the id-range width of each shard. *)

val size : t -> int
(** Number of distinct values interned so far. Ids are exactly
    [0 .. size - 1]. *)

val stride : t -> int
val shard_count : t -> int

val intern : t -> Bignum.Nat.t -> int
(** [intern t n] returns the id of [n], assigning the next dense id
    ([size t] before the call) if [n] has not been seen. *)

val find : t -> Bignum.Nat.t -> int option
(** Id of [n] if already interned, without inserting. *)

val mem : t -> Bignum.Nat.t -> bool

val get : t -> int -> Bignum.Nat.t
(** Value for an id. @raise Invalid_argument if the id was never
    assigned. *)

val to_array : t -> Bignum.Nat.t array
(** All interned values in id order (a fresh array). *)

val iter : (int -> Bignum.Nat.t -> unit) -> t -> unit
(** Iterate in id order. *)

val save : t -> string -> unit
(** Checkpoint the backing shards into a directory ([meta] plus one
    arena file per shard). Unmodified mapped shards are skipped. *)

val load : string -> t
(** Reopen a checkpoint directory by mapping each shard arena
    read-only. Raises {!Io.Corrupt} on damaged files. *)
