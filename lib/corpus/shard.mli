(** Id-range sharding over {!Arena} limb heaps.

    Global ids are dense insertion-order integers; with a power-of-two
    [stride], id [g] lives at local slot [g land (stride-1)] of shard
    [g lsr log2 stride].  Shards fill sequentially, so only the tail
    shard is ever partially full. *)

type t

val create : ?stride:int -> unit -> t
(** [stride] (default 65536) must be a power of two; it is the
    capacity of every shard but the last. *)

val stride : t -> int
val count : t -> int
val shard_count : t -> int

val shard_of_id : t -> int -> int
val local_of_id : t -> int -> int

val append : t -> Bignum.Nat.t -> int
(** Store a value in the tail shard (opening a new one when full);
    returns its dense global id. *)

val get : t -> int -> Bignum.Nat.t
val matches : t -> int -> int array -> bool
val iter : (int -> Bignum.Nat.t -> unit) -> t -> unit

val save : t -> string -> unit
(** Write [dir/meta] plus one [dir/shard-NNNN.arena] per shard.
    Arenas still mapped from their own files are skipped. *)

val load : string -> t
(** Map every shard arena read-only: O(shard count), not O(values).
    Raises {!Io.Corrupt} on bad meta or shard-size disagreement. *)
