module N = Bignum.Nat

exception Corrupt of string

let write_int oc n =
  if n < 0 || n > 0x3FFFFFFF then invalid_arg "Corpus.Io.write_int: out of range";
  output_binary_int oc n

let read_int ic =
  let n = input_binary_int ic in
  if n < 0 then raise (Corrupt "negative length field");
  n

let write_string oc s =
  write_int oc (String.length s);
  output_string oc s

let read_string ic =
  let len = read_int ic in
  (* A fuzzed or truncated header can claim up to a gigabyte: compare
     the prefix against what is actually left in the channel before
     attempting the allocation. Checkpoint channels are always files;
     a non-seekable channel (Sys_error from the length probe) falls
     back to the End_of_file check below. *)
  (match in_channel_length ic with
  | total ->
    if len > total - pos_in ic then
      raise (Corrupt "length prefix overruns remaining input")
  | exception Sys_error _ -> ());
  try really_input_string ic len
  with End_of_file -> raise (Corrupt "truncated string record")

let write_nat oc n = write_string oc (N.to_bytes_be n)
let read_nat ic = N.of_bytes_be (read_string ic)
