module N = Bignum.Nat
module A1 = Bigarray.Array1

(* One contiguous int32 Bigarray per region: limbs are 31-bit, so each
   fits an int32 exactly and the checkpoint bytes are the runtime
   representation (no per-modulus boxing, no parse on restore). *)
type buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t

type t = {
  mutable offs : buf; (* count+1 used entries; offs.{0} = 0 *)
  mutable limbs : buf;
  mutable count : int;
  mutable limb_count : int;
  mutable source : string option;
      (* file the arena is currently a read-only mapping of; cleared by
         the copy-on-first-append thaw *)
}

let magic = "wkarena1"
let header_bytes = 16

let mk_buf n : buf =
  A1.create Bigarray.int32 Bigarray.c_layout (Stdlib.max 1 n)

let create ?(values = 64) ?(limbs = 256) () =
  let offs = mk_buf (values + 1) in
  A1.set offs 0 0l;
  { offs; limbs = mk_buf limbs; count = 0; limb_count = 0; source = None }

let count t = t.count
let limb_count t = t.limb_count
let is_mapped t = t.source <> None

(* Copy a mapped (or full) region into a fresh buffer with headroom. *)
let respace (b : buf) used need =
  let cap = Stdlib.max need (Stdlib.max 8 (2 * used)) in
  let b' = mk_buf cap in
  if used > 0 then A1.blit (A1.sub b 0 used) (A1.sub b' 0 used);
  b'

let thaw t =
  if t.source <> None then begin
    t.offs <- respace t.offs (t.count + 1) (t.count + 2);
    t.limbs <- respace t.limbs t.limb_count (t.limb_count + 1);
    t.source <- None
  end

let append t n =
  thaw t;
  let ls = N.to_limbs n in
  let len = Array.length ls in
  if t.count + 2 > A1.dim t.offs then
    t.offs <- respace t.offs (t.count + 1) (t.count + 2);
  if t.limb_count + len > A1.dim t.limbs then
    t.limbs <- respace t.limbs t.limb_count (t.limb_count + len);
  for k = 0 to len - 1 do
    A1.set t.limbs (t.limb_count + k) (Int32.of_int ls.(k))
  done;
  t.limb_count <- t.limb_count + len;
  t.count <- t.count + 1;
  A1.set t.offs t.count (Int32.of_int t.limb_count);
  t.count - 1

(* Offset-table reads go through one validating bounds check: a mapped
   arena's table is untrusted file content, and a bad entry must fail
   as Corrupt, not as a Bigarray bounds crash. *)
let span t i =
  if i < 0 || i >= t.count then invalid_arg "Corpus.Arena.get: out of range";
  let a = Int32.to_int (A1.get t.offs i)
  and b = Int32.to_int (A1.get t.offs (i + 1)) in
  if a < 0 || b < a || b > t.limb_count then
    raise (Io.Corrupt "arena offset table corrupt");
  (a, b - a)

let length t i = snd (span t i)

let get t i =
  let off, len = span t i in
  let ls = Array.init len (fun k -> Int32.to_int (A1.get t.limbs (off + k))) in
  match N.of_limbs ls with
  | n -> n
  | exception Invalid_argument _ -> raise (Io.Corrupt "arena limb corrupt")

let matches t i ls =
  let off, len = span t i in
  len = Array.length ls
  &&
  let rec go k =
    k >= len || (Int32.to_int (A1.get t.limbs (off + k)) = ls.(k) && go (k + 1))
  in
  go 0

let iter f t =
  for i = 0 to t.count - 1 do
    f i (get t i)
  done

let write_header fd count limb_count =
  let hdr = Bytes.create header_bytes in
  Bytes.blit_string magic 0 hdr 0 8;
  Bytes.set_int32_le hdr 8 (Int32.of_int count);
  Bytes.set_int32_le hdr 12 (Int32.of_int limb_count);
  if Unix.write fd hdr 0 header_bytes <> header_bytes then
    raise (Sys_error "Corpus.Arena: short header write")

let map fd ~shared total =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int header_bytes) Bigarray.int32
       Bigarray.c_layout shared [| total |])

let save t path =
  (* A still-mapped arena *is* its file: nothing to write. *)
  if t.source <> Some path then begin
    if t.count > 0x3FFFFFFF || t.limb_count > 0x3FFFFFFF then
      invalid_arg "Corpus.Arena.save: arena too large for one shard";
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_header fd t.count t.limb_count;
        let m = map fd ~shared:true (t.count + 1 + t.limb_count) in
        A1.blit (A1.sub t.offs 0 (t.count + 1)) (A1.sub m 0 (t.count + 1));
        if t.limb_count > 0 then
          A1.blit
            (A1.sub t.limbs 0 t.limb_count)
            (A1.sub m (t.count + 1) t.limb_count));
    Sys.rename tmp path
  end

let really_read fd buf len =
  let rec go o =
    if o < len then begin
      let r = Unix.read fd buf o (len - o) in
      if r = 0 then raise (Io.Corrupt "arena file too short");
      go (o + r)
    end
  in
  go 0

let load path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let hdr = Bytes.create header_bytes in
      really_read fd hdr header_bytes;
      if Bytes.sub_string hdr 0 8 <> magic then
        raise (Io.Corrupt "not an arena file");
      let count = Int32.to_int (Bytes.get_int32_le hdr 8) in
      let limb_count = Int32.to_int (Bytes.get_int32_le hdr 12) in
      if count < 0 || limb_count < 0 then
        raise (Io.Corrupt "negative arena counts");
      let total = count + 1 + limb_count in
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_bytes + (4 * total) then
        raise (Io.Corrupt "arena file truncated");
      let m = map fd ~shared:false total in
      let offs = A1.sub m 0 (count + 1) in
      let limbs = A1.sub m (count + 1) limb_count in
      if
        Int32.to_int (A1.get offs 0) <> 0
        || Int32.to_int (A1.get offs count) <> limb_count
      then raise (Io.Corrupt "arena offset table corrupt");
      { offs; limbs; count; limb_count; source = Some path })
