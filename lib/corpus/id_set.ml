type t = { mutable bits : Bytes.t; mutable cardinal : int }

let create ?(size = 64) () =
  { bits = Bytes.make (Stdlib.max ((size + 7) / 8) 1) '\000'; cardinal = 0 }

let ensure t id =
  let need = (id / 8) + 1 in
  let cap = Bytes.length t.bits in
  if need > cap then begin
    let bits = Bytes.make (Stdlib.max need (2 * cap)) '\000' in
    Bytes.blit t.bits 0 bits 0 cap;
    t.bits <- bits
  end

let add t id =
  if id < 0 then invalid_arg "Corpus.Id_set.add: negative id";
  ensure t id;
  let byte = Char.code (Bytes.get t.bits (id / 8)) in
  let bit = 1 lsl (id mod 8) in
  if byte land bit = 0 then begin
    Bytes.set t.bits (id / 8) (Char.chr (byte lor bit));
    t.cardinal <- t.cardinal + 1
  end

let mem t id =
  id >= 0
  && id / 8 < Bytes.length t.bits
  && Char.code (Bytes.get t.bits (id / 8)) land (1 lsl (id mod 8)) <> 0

let cardinal t = t.cardinal
