(** Growable bitset over dense {!Store} ids.

    The int-keyed replacement for the membership Hashtbls the pipeline
    used to key on modulus limbs: one bit per interned id. *)

type t

val create : ?size:int -> unit -> t
(** Empty set. [size] is a capacity hint in ids. *)

val add : t -> int -> unit
(** @raise Invalid_argument on a negative id. *)

val mem : t -> int -> bool
(** [false] for ids never added (including ids past the capacity). *)

val cardinal : t -> int
(** Number of distinct ids added. *)
