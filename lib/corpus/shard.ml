(* Id-range sharding over limb arenas.  The stride is a power of two,
   so global id <-> (shard, local) routing is two bit operations:
   shard = id lsr bits, local = id land (stride - 1).  Shards fill
   sequentially, keeping global ids dense in insertion order — the
   same contract the unsharded store had. *)

type t = {
  stride : int;
  bits : int; (* log2 stride *)
  mutable arenas : Arena.t array; (* one per shard, in id order *)
  mutable count : int; (* total values across shards *)
}

let magic = "weakkeys-shards/1"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go b m = if m >= n then b else go (b + 1) (m * 2) in
  go 0 1

let default_stride = 65536

let create ?(stride = default_stride) () =
  if not (is_pow2 stride) then
    invalid_arg "Corpus.Shard.create: stride must be a power of two";
  { stride; bits = log2 stride; arenas = [||]; count = 0 }

let stride t = t.stride
let count t = t.count
let shard_count t = Array.length t.arenas
let shard_of_id t id = id lsr t.bits
let local_of_id t id = id land (t.stride - 1)

let fresh_arena t =
  let values = Stdlib.min t.stride 4096 in
  Arena.create ~values ~limbs:(values * 4) ()

let append t n =
  let s = t.count lsr t.bits in
  if s = Array.length t.arenas then
    t.arenas <- Array.append t.arenas [| fresh_arena t |];
  let local = Arena.append t.arenas.(s) n in
  if local <> local_of_id t t.count then
    invalid_arg "Corpus.Shard.append: shard fill invariant broken";
  t.count <- t.count + 1;
  t.count - 1

let check t id name =
  if id < 0 || id >= t.count then invalid_arg name

let get t id =
  check t id "Corpus.Shard.get: id out of range";
  Arena.get t.arenas.(shard_of_id t id) (local_of_id t id)

let matches t id limbs =
  check t id "Corpus.Shard.matches: id out of range";
  Arena.matches t.arenas.(shard_of_id t id) (local_of_id t id) limbs

let iter f t =
  for id = 0 to t.count - 1 do
    f id (get t id)
  done

let shard_file dir s = Filename.concat dir (Printf.sprintf "shard-%04d.arena" s)
let meta_file dir = Filename.concat dir "meta"

let save t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Array.iteri (fun s arena -> Arena.save arena (shard_file dir s)) t.arenas;
  let tmp = meta_file dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Io.write_string oc magic;
      Io.write_int oc t.stride;
      Io.write_int oc t.count);
  Sys.rename tmp (meta_file dir)

let load dir =
  let ic = open_in_bin (meta_file dir) in
  let stride, count =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        if Io.read_string ic <> magic then
          raise (Io.Corrupt "not a shard directory");
        let stride = Io.read_int ic in
        if not (is_pow2 stride) then
          raise (Io.Corrupt "shard stride is not a power of two");
        (stride, Io.read_int ic))
  in
  let nshards = (count + stride - 1) / stride in
  let arenas =
    Array.init nshards (fun s ->
        let a = Arena.load (shard_file dir s) in
        let want =
          if s = nshards - 1 then count - (s * stride) else stride
        in
        if Arena.count a <> want then
          raise (Io.Corrupt "shard size disagrees with meta");
        a)
  in
  { stride; bits = log2 stride; arenas; count }
