module N = Bignum.Nat

(* Values live unboxed in sharded limb arenas ({!Shard}); the store
   keeps only an open-addressing intern index over them.  Buckets hold
   [id + 1] (0 = empty) and probe linearly; per-id hashes are memoized
   so resizes and probe rejections never materialise a Nat.  A store
   restored from disk starts with an empty index ([buckets = [||]])
   and builds it on the first [find]/[intern] — pure id-based reads
   ([get]/[iter]/[to_array]) never pay for it. *)
type t = {
  shard : Shard.t;
  mutable buckets : int array; (* id + 1; 0 = empty; [||] = not built *)
  mutable hashes : int array; (* per-id N.hash, valid for ids < count *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(size = 64) ?stride () =
  {
    shard = Shard.create ?stride ();
    buckets = Array.make (pow2_at_least (2 * (size + 1)) 16) 0;
    hashes = Array.make (Stdlib.max size 16) 0;
  }

let size t = Shard.count t.shard
let stride t = Shard.stride t.shard
let shard_count t = Shard.shard_count t.shard

let set_hash t id h =
  let cap = Array.length t.hashes in
  if id >= cap then begin
    let hashes = Array.make (Stdlib.max (2 * cap) (id + 1)) 0 in
    Array.blit t.hashes 0 hashes 0 cap;
    t.hashes <- hashes
  end;
  t.hashes.(id) <- h

(* Insert an id already known absent; buckets must have a free slot. *)
let insert_bucket t h id =
  let mask = Array.length t.buckets - 1 in
  let rec probe j =
    if t.buckets.(j) = 0 then t.buckets.(j) <- id + 1
    else probe ((j + 1) land mask)
  in
  probe (h land mask)

let rebuild t cap =
  t.buckets <- Array.make cap 0;
  for id = 0 to size t - 1 do
    insert_bucket t t.hashes.(id) id
  done

let ensure_index t =
  if Array.length t.buckets = 0 then begin
    (* First lookup after a load: hash every stored value once.  Each
       Nat is materialised transiently; only the int hash is kept. *)
    let n = size t in
    for id = 0 to n - 1 do
      set_hash t id (N.hash (Shard.get t.shard id))
    done;
    rebuild t (pow2_at_least (2 * (n + 1)) 16)
  end

let lookup t h limbs =
  let mask = Array.length t.buckets - 1 in
  let rec probe j =
    match t.buckets.(j) with
    | 0 -> None
    | slot ->
        let id = slot - 1 in
        if t.hashes.(id) = h && Shard.matches t.shard id limbs then Some id
        else probe ((j + 1) land mask)
  in
  probe (h land mask)

let find t n =
  ensure_index t;
  lookup t (N.hash n) (N.to_limbs n)

let mem t n = find t n <> None

let intern t n =
  ensure_index t;
  let h = N.hash n in
  let limbs = N.to_limbs n in
  match lookup t h limbs with
  | Some id -> id
  | None ->
      if 2 * (size t + 1) >= Array.length t.buckets then
        rebuild t (2 * Array.length t.buckets);
      let id = Shard.append t.shard n in
      set_hash t id h;
      insert_bucket t h id;
      id

let get t id =
  if id < 0 || id >= size t then
    invalid_arg "Corpus.Store.get: id out of range";
  Shard.get t.shard id

let to_array t = Array.init (size t) (fun id -> Shard.get t.shard id)
let iter f t = Shard.iter f t.shard
let save t dir = Shard.save t.shard dir

let load dir =
  { shard = Shard.load dir; buckets = [||]; hashes = [||] }
