module N = Bignum.Nat

module H = Hashtbl.Make (struct
  type t = N.t

  let equal = N.equal
  let hash = N.hash
end)

type t = {
  ids : int H.t;
  mutable values : N.t array; (* dense id -> value; slots >= count unused *)
  mutable count : int;
}

let create ?(size = 64) () =
  { ids = H.create size; values = Array.make (Stdlib.max size 1) N.zero; count = 0 }

let size t = t.count

let grow t =
  let cap = Array.length t.values in
  if t.count = cap then begin
    let values = Array.make (2 * cap) N.zero in
    Array.blit t.values 0 values 0 cap;
    t.values <- values
  end

let intern t n =
  match H.find_opt t.ids n with
  | Some id -> id
  | None ->
      let id = t.count in
      grow t;
      t.values.(id) <- n;
      t.count <- id + 1;
      H.add t.ids n id;
      id

let find t n = H.find_opt t.ids n
let mem t n = H.mem t.ids n

let get t id =
  if id < 0 || id >= t.count then invalid_arg "Corpus.Store.get: id out of range";
  t.values.(id)

let to_array t = Array.sub t.values 0 t.count

let iter f t =
  for id = 0 to t.count - 1 do
    f id t.values.(id)
  done
