(* Montgomery arithmetic over raw base-2^31 limb arrays (CIOS method,
   Koç-Acar-Kaliski "Analyzing and Comparing Montgomery Multiplication
   Algorithms"). The word size keeps every (carry, sum) accumulation
   below 2^62, so native ints suffice.

   Internal values are fixed-width little-endian arrays of exactly
   [s] limbs (s = limb count of the modulus), NOT normalized Nat
   values; conversion happens at the API boundary. *)

let limb_bits = 31
let mask = (1 lsl limb_bits) - 1

type ctx = {
  n : Nat.t;
  nl : int array; (* modulus limbs, length s *)
  s : int;
  n0' : int; (* -n^-1 mod 2^31 *)
  r2 : int array; (* R^2 mod n, as s limbs *)
}

let fixed_limbs s x =
  let l = Nat.to_limbs x in
  let out = Array.make s 0 in
  Array.blit l 0 out 0 (Stdlib.min s (Array.length l));
  out

let nat_of_limbs l = Nat.of_limbs l

(* Inverse of an odd w modulo 2^31 by Newton iteration:
   x <- x * (2 - w*x), doubling correct bits each step. *)
let inv_mod_word w =
  let x = ref w (* correct to 3 bits *) in
  for _ = 1 to 5 do
    x := !x * (2 - (w * !x)) land mask
  done;
  !x

let create n =
  if Nat.is_even n || Nat.compare n (Nat.of_int 3) < 0 then None
  else begin
    let nl_norm = Nat.to_limbs n in
    let s = Array.length nl_norm in
    let n0' = mask land - (inv_mod_word nl_norm.(0)) land mask in
    let r = Nat.rem (Nat.shift_left Nat.one (s * limb_bits)) n in
    let r2 = Nat.rem (Nat.mul r r) n in
    Some
      {
        n;
        nl = nl_norm;
        s;
        n0';
        r2 = fixed_limbs s r2;
      }
  end

let modulus ctx = ctx.n

(* Compare t (s limbs) with n; subtract n in place when t >= n. *)
let reduce_once ctx t =
  let s = ctx.s in
  let ge =
    let rec go i =
      if i < 0 then true
      else if t.(i) > ctx.nl.(i) then true
      else if t.(i) < ctx.nl.(i) then false
      else go (i - 1)
    in
    go (s - 1)
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to s - 1 do
      let d = t.(i) - ctx.nl.(i) - !borrow in
      if d < 0 then begin
        t.(i) <- d + (mask + 1);
        borrow := 1
      end
      else begin
        t.(i) <- d;
        borrow := 0
      end
    done
  end

(* CIOS: t <- a*b*R^-1 mod n, result written into a fresh array. *)
let cios ctx a b =
  let s = ctx.s and nl = ctx.nl in
  let t = Array.make (s + 2) 0 in
  for i = 0 to s - 1 do
    let bi = b.(i) in
    let c = ref 0 in
    for j = 0 to s - 1 do
      let v = t.(j) + (a.(j) * bi) + !c in
      t.(j) <- v land mask;
      c := v lsr limb_bits
    done;
    let v = t.(s) + !c in
    t.(s) <- v land mask;
    t.(s + 1) <- v lsr limb_bits;
    let m = t.(0) * ctx.n0' land mask in
    let v = t.(0) + (m * nl.(0)) in
    let c = ref (v lsr limb_bits) in
    for j = 1 to s - 1 do
      let v = t.(j) + (m * nl.(j)) + !c in
      t.(j - 1) <- v land mask;
      c := v lsr limb_bits
    done;
    let v = t.(s) + !c in
    t.(s - 1) <- v land mask;
    t.(s) <- t.(s + 1) + (v lsr limb_bits);
    t.(s + 1) <- 0
  done;
  let out = Array.sub t 0 s in
  (* t.(s) is 0 or 1 here; a set bit means out + 2^(31s) >= n, so one
     conditional subtraction suffices because out < 2n. *)
  if t.(s) <> 0 then begin
    let borrow = ref 0 in
    for i = 0 to s - 1 do
      let d = out.(i) - ctx.nl.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + (mask + 1);
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done
  end
  else reduce_once ctx out;
  out

let to_mont ctx x =
  let x = Nat.rem x ctx.n in
  nat_of_limbs (cios ctx (fixed_limbs ctx.s x) ctx.r2)

let from_mont_raw ctx x =
  let one = Array.make ctx.s 0 in
  one.(0) <- 1;
  cios ctx x one

let from_mont ctx x = nat_of_limbs (from_mont_raw ctx (fixed_limbs ctx.s x))

let mul ctx x y =
  nat_of_limbs (cios ctx (fixed_limbs ctx.s x) (fixed_limbs ctx.s y))

let pow_mod ctx b e =
  if Nat.is_one ctx.n then Nat.zero
  else begin
    let nb = Nat.num_bits e in
    if nb = 0 then Nat.rem Nat.one ctx.n
    else begin
      let b = fixed_limbs ctx.s (Nat.rem b ctx.n) in
      let bm = cios ctx b ctx.r2 in
      (* Left-to-right binary ladder in the Montgomery domain. *)
      let acc = ref (Array.copy bm) in
      for i = nb - 2 downto 0 do
        acc := cios ctx !acc !acc;
        if Nat.testbit e i then acc := cios ctx !acc bm
      done;
      nat_of_limbs (from_mont_raw ctx !acc)
    end
  end

let pow_mod_nat b e m =
  match create m with
  | Some ctx -> pow_mod ctx b e
  | None -> Nat.pow_mod b e m
