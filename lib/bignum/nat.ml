(* Arbitrary-precision natural numbers over base-2^31 limbs.

   Representation invariant: a value is an [int array] of limbs in
   little-endian order, each limb in [0, 2^31), with no trailing zero
   limb. Zero is the empty array. The base is chosen so that a limb
   product plus two limb-sized carries stays below 2^62 and therefore
   fits in OCaml's native 63-bit [int] without overflow:
     mask^2 + 2*mask = 2^62 - 1. *)

type t = int array

let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1

(* Deliberate tuning knobs: set once by bench/main.ml calibration and
   restored afterwards, never written on the computation paths. *)
let karatsuba_threshold = ref 24 (* lint: allow toplevel-ref *)
let burnikel_ziegler_threshold = ref 40 (* lint: allow toplevel-ref *)
let toom3_threshold = ref 96 (* lint: allow toplevel-ref *)
let ntt_threshold = ref 2048 (* lint: allow toplevel-ref *)
let recip_threshold = ref 64 (* lint: allow toplevel-ref *)
let barrett_threshold = ref 48 (* lint: allow toplevel-ref *)
let parallel_mul_threshold = ref 512 (* lint: allow toplevel-ref *)
let hgcd_threshold = ref 8 (* lint: allow toplevel-ref *)

(* Threshold sweeps (EXPERIMENTS.md) tune the dispatch ladder from the
   environment, mirroring WEAKKEYS_DOMAINS, so a bench run does not
   need a rebuild per candidate value. [floor] keeps values that would
   break the recursion invariants (e.g. a 1-limb Karatsuba split never
   terminating) out entirely. *)
let env_threshold name ~floor r =
  match Sys.getenv_opt name with
  | None -> ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= floor -> r := n
    | _ ->
      invalid_arg
        (Printf.sprintf "%s: expected an integer >= %d" name floor))

let () =
  env_threshold "WEAKKEYS_KARATSUBA_THRESHOLD" ~floor:2 karatsuba_threshold;
  env_threshold "WEAKKEYS_TOOM_THRESHOLD" ~floor:4 toom3_threshold;
  env_threshold "WEAKKEYS_NTT_THRESHOLD" ~floor:1 ntt_threshold;
  env_threshold "WEAKKEYS_BZ_THRESHOLD" ~floor:2 burnikel_ziegler_threshold;
  env_threshold "WEAKKEYS_RECIP_THRESHOLD" ~floor:1 recip_threshold;
  env_threshold "WEAKKEYS_BARRETT_THRESHOLD" ~floor:2 barrett_threshold;
  env_threshold "WEAKKEYS_PARMUL_THRESHOLD" ~floor:2 parallel_mul_threshold;
  env_threshold "WEAKKEYS_HGCD_THRESHOLD" ~floor:1 hgcd_threshold

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

(* Trim trailing zero limbs, reusing the array when already normal. *)
let norm (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let l = top n in
  if l = n then a else Array.sub a 0 l

(* A non-negative native int has at most 62 value bits, i.e. exactly
   two limbs; [n lsr limb_bits <= mask] always holds. *)
let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative"
  else if n = 0 then zero
  else if n < base then [| n |]
  else [| n land mask; n lsr limb_bits |]

let one = of_int 1
let two = of_int 2

let to_int (a : t) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | _ -> None (* three normalized limbs exceed 62 bits *)

let to_int_exn a =
  match to_int a with
  | Some i -> i
  | None -> failwith "Nat.to_int_exn: does not fit in int"

let of_limbs limbs =
  Array.iter
    (fun l ->
      if l < 0 || l > mask then invalid_arg "Nat.of_limbs: limb out of range")
    limbs;
  norm (Array.copy limbs)

let to_limbs (a : t) = Array.copy a

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0
let is_one (a : t) = Array.length a = 1 && a.(0) = 1
let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0
let is_odd a = not (is_even a)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash (a : t) =
  Array.fold_left (fun acc l -> (acc * 1000003) lxor l) 5381 a

(* ------------------------------------------------------------------ *)
(* Bit-level operations                                                *)
(* ------------------------------------------------------------------ *)

let bits_of_limb l =
  let rec go l acc = if l = 0 then acc else go (l lsr 1) (acc + 1) in
  go l 0

let num_bits (a : t) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * limb_bits) + bits_of_limb a.(n - 1)

let size_limbs (a : t) = Array.length a

let testbit (a : t) i =
  if i < 0 then invalid_arg "Nat.testbit: negative index"
  else
    let limb = i / limb_bits and off = i mod limb_bits in
    limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift"
  else if is_zero a || k = 0 then a
  else
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(i + limbs) <- v land mask;
        carry := v lsr limb_bits
      done;
      r.(la + limbs) <- !carry
    end;
    norm r

let shift_right (a : t) k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift"
  else if is_zero a || k = 0 then a
  else
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limbs) lsr bits in
          let hi =
            if i + limbs + 1 < la then
              (a.(i + limbs + 1) lsl (limb_bits - bits)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      norm r

(* ------------------------------------------------------------------ *)
(* Addition and subtraction                                            *)
(* ------------------------------------------------------------------ *)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else
    let lmax = Stdlib.max la lb in
    let r = Array.make (lmax + 1) 0 in
    let carry = ref 0 in
    for i = 0 to lmax - 1 do
      let x = if i < la then a.(i) else 0
      and y = if i < lb then b.(i) else 0 in
      let s = x + y + !carry in
      r.(i) <- s land mask;
      carry := s lsr limb_bits
    done;
    r.(lmax) <- !carry;
    norm r

let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if lb = 0 then a
  else if compare a b < 0 then invalid_arg "Nat.sub: negative result"
  else
    let r = Array.make la 0 in
    let borrow = ref 0 in
    for i = 0 to la - 1 do
      let y = if i < lb then b.(i) else 0 in
      let d = a.(i) - y - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    norm r

let add_int a k =
  if k < 0 then invalid_arg "Nat.add_int: negative"
  else if k = 0 then a
  else add a (of_int k)

let sub_int a k =
  if k < 0 then invalid_arg "Nat.sub_int: negative"
  else if k = 0 then a
  else sub a (of_int k)

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

(* Schoolbook product of [a] and [b] into a fresh array.
   Inner-loop bound: r + a_i*b_j + carry <= mask + mask^2 + mask
   = 2^62 - 1, which fits in a native int. *)
let mul_school (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    end
  done;
  norm r

(* Split [a] at limb [k]: low part [a mod base^k], high part [a / base^k]. *)
let split_at (a : t) k =
  let la = Array.length a in
  if k >= la then (a, zero)
  else (norm (Array.sub a 0 k), norm (Array.sub a k (la - k)))

let shift_limbs (a : t) k =
  if is_zero a || k = 0 then a
  else
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r

(* r <- r + x * base^off, in place. The caller guarantees the final
   accumulated value fits in r, so the trailing carry cannot run off
   the end of the buffer. *)
let add_into (r : int array) (x : t) off =
  let lx = Array.length x in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let t = r.(off + i) + x.(i) + !carry in
    r.(off + i) <- t land mask;
    carry := t lsr limb_bits
  done;
  let i = ref (off + lx) in
  while !carry <> 0 do
    let t = r.(!i) + !carry in
    r.(!i) <- t land mask;
    carry := t lsr limb_bits;
    incr i
  done

(* Fan one node's independent sub-products (Karatsuba's 3, Toom-3's 5)
   onto the process-wide domain pool. Only multiplies whose smaller
   operand reaches [parallel_mul_threshold] pay the dispatch cost, and
   the pool's DLS nesting guard runs re-entrant calls inline, so at
   most one level of any multiply tree fans out: the giant serial
   nodes at the top of a product tree finally occupy every domain,
   while level-parallel tree code and deeper recursion stay sequential
   within their worker. *)
let run_products wide (fs : (unit -> t) array) : t array =
  if wide then Parallel.Pool.map ~chunk:1 (fun f -> f ()) fs
  else Array.map (fun f -> f ()) fs

(* Exact single-limb division by 3, used only by Toom-3 interpolation
   where divisibility is guaranteed; asserts exactness. *)
let div3_exact (a : t) : t =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / 3;
    r := cur mod 3
  done;
  assert (!r = 0);
  norm q

(* Signed values for Toom-3 evaluation/interpolation: a pair of a sign
   flag and a magnitude, normalised so zero is always (false, zero).
   Only the interpolation intermediates can go negative; every final
   coefficient of the product polynomial is non-negative. *)
let s_norm ((neg, m) as s) = if neg && is_zero m then (false, m) else s
let s_pos m = (false, m)

let s_add (na, a) (nb, b) =
  if na = nb then (na, add a b)
  else if compare a b >= 0 then s_norm (na, sub a b)
  else (nb, sub b a)

let s_sub a (nb, b) = s_add a (s_norm (not nb, b))
let s_half (n, m) = (n, shift_right m 1)
let s_double (n, m) = (n, shift_left m 1)
let s_third (n, m) = (n, div3_exact m)

let s_nonneg (neg, m) =
  assert ((not neg) || is_zero m);
  m

(* Evaluate the split operand a0 + a1*x + a2*x^2 at x = 1, -1, -2
   (Bodrato's evaluation points; 0 and infinity are a0 and a2). *)
let toom3_eval a0 a1 a2 =
  let t02 = add a0 a2 in
  let p1 = add t02 a1 in
  let m1 = s_sub (s_pos t02) (s_pos a1) in
  let m2 = s_sub (s_double (s_add m1 (s_pos a2))) (s_pos a0) in
  (p1, m1, m2)

(* Bodrato's interpolation sequence: recover c1..c3 of the degree-4
   product polynomial from the five pointwise products. The divisions
   (one halving twice, one exact division by 3) are exact, and c0 = z0,
   c4 = zinf need no work. *)
let toom3_interp ~z0 ~z1 ~zm1 ~zm2 ~zinf =
  let t3 = s_third (s_sub zm2 (s_pos z1)) in
  let t1 = s_half (s_sub (s_pos z1) zm1) in
  let t2 = s_sub zm1 (s_pos z0) in
  let c3 = s_add (s_half (s_sub t2 t3)) (s_pos (shift_left zinf 1)) in
  let c2 = s_sub (s_add t2 t1) (s_pos zinf) in
  let c1 = s_sub t1 c3 in
  (s_nonneg c1, s_nonneg c2, s_nonneg c3)

(* Accumulate the five coefficients at limb offsets 0, k, .., 4k. Each
   c_i * base^(i*k) is at most the full product, so no carry escapes
   the [lr] result limbs. *)
let toom3_assemble ~lr ~k z0 c1 c2 c3 zinf =
  let r = Array.make lr 0 in
  add_into r z0 0;
  add_into r c1 k;
  add_into r c2 (2 * k);
  add_into r c3 (3 * k);
  add_into r zinf (4 * k);
  norm r

(* ------------------------------------------------------------------ *)
(* Number-theoretic transform tier                                     *)
(* ------------------------------------------------------------------ *)

(* Two-prime CRT NTT over native ints (DESIGN.md § Bignum kernels for
   the full rationale). The operands are re-split from 31-bit limbs
   into 15-bit pieces, convolved modulo two NTT-friendly primes just
   under 2^31, and the true coefficients recovered by CRT: with pieces
   below 2^15 and at most 2^26 of them, every coefficient is below
   2^56 < p1*p2 ~ 2^61.7, and every intermediate product (piece*piece,
   twiddle*value, p1*CRT-lift) stays under 2^62, inside the native
   63-bit int — the same headroom argument the limb base rests on. *)
let ntt_piece_bits = 15
let ntt_piece_mask = (1 lsl ntt_piece_bits) - 1

(* p1 = 27*2^26 + 1 < p2 = 15*2^27 + 1, both with 2-adicity >= 26, so
   transforms up to 2^26 points (~1 Gbit products) are supported; the
   ordering p1 < p2 keeps the CRT difference c2 - c1 within one
   conditional add of [0, p2). The generators were verified against
   the factorizations of p-1. *)
let ntt_p1 = 1_811_939_329
let ntt_g1 = 13
let ntt_p2 = 2_013_265_921
let ntt_g2 = 31
let ntt_max_log = 26
let ntt_p1_inv_p2 = 10 (* p1^-1 mod p2, for the CRT lift *)

let pow_mod_int b e p =
  let r = ref 1 and b = ref (b mod p) and e = ref e in
  while !e > 0 do
    if !e land 1 = 1 then r := !r * !b mod p;
    b := !b * !b mod p;
    e := !e asr 1
  done;
  !r

(* Per-stage twiddle tables: stage s (butterfly half-width 2^s) uses
   the canonical root of order 2^(s+1), w = g^((p-1)/2^(s+1)), with a
   Shoup companion floor(w * 2^31 / p) per entry so the butterfly
   multiply needs no division: q = (v*w') >> 31, r = v*w - q*p is in
   [0, 2p). Tables are rebuilt per multiplication — the build is O(n)
   against the transform's O(n log n), and owning the arrays locally
   keeps the kernel free of shared mutable state, so concurrent
   multiplies from pool workers need no locking and stay visible to
   the pool-capture race lint as pure. *)
let ntt_stage_tables p g ~inverse lg =
  Array.init lg (fun s ->
      let h = 1 lsl s in
      let w0 = pow_mod_int g ((p - 1) / (2 * h)) p in
      let w0 = if inverse then pow_mod_int w0 (p - 2) p else w0 in
      let tw = Array.make h 1 and ts = Array.make h 0 in
      let w = ref 1 in
      for k = 0 to h - 1 do
        tw.(k) <- !w;
        ts.(k) <- (!w lsl limb_bits) / p;
        w := !w * w0 mod p
      done;
      (tw, ts))

let ntt_bitrev (a : int array) =
  let n = Array.length a in
  let j = ref 0 in
  for i = 1 to n - 1 do
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit;
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end
  done

(* In-place iterative decimation-in-time transform. With the inverse
   stage tables this computes n times the inverse transform; the
   caller folds in n^-1 mod p. The butterfly loop is the single
   hottest path of an NTT multiply (n/2 * log n iterations), so it
   uses unsafe accesses: every index is base + k (+ h) with
   base + 2h <= n by the loop bounds, and k < h = length of both
   twiddle tables by construction. *)
let ntt_pass p (stages : (int array * int array) array) (a : int array) =
  let n = Array.length a in
  ntt_bitrev a;
  let s = ref 0 in
  let h = ref 1 in
  while !h < n do
    let tw, ts = stages.(!s) in
    let h' = !h in
    let step = 2 * h' in
    let base = ref 0 in
    while !base < n do
      let b = !base in
      for k = 0 to h' - 1 do
        let j0 = b + k in
        let j1 = j0 + h' in
        let u = Array.unsafe_get a j0 in
        let v = Array.unsafe_get a j1 in
        let q = (v * Array.unsafe_get ts k) lsr limb_bits in
        let m = (v * Array.unsafe_get tw k) - (q * p) in
        (* Branchless reductions: Shoup leaves m in [0, 2p); subtract
           p and add it back under the sign mask (asr 62 is all-ones
           exactly when negative). Data-dependent branches here
           mispredict ~50% on transform-domain values, and the three
           of them would dominate the butterfly. *)
        let m = m - p in
        let m = m + (p land (m asr 62)) in
        let x = u + m - p in
        Array.unsafe_set a j0 (x + (p land (x asr 62)));
        let y = u - m in
        Array.unsafe_set a j1 (y + (p land (y asr 62)))
      done;
      base := b + step
    done;
    incr s;
    h := step
  done

(* Re-split the limb array into 15-bit pieces, zero-padded to the
   transform length. *)
let ntt_pieces (a : t) n =
  let la = Array.length a in
  let np = (num_bits a + ntt_piece_bits - 1) / ntt_piece_bits in
  let r = Array.make n 0 in
  for j = 0 to np - 1 do
    let bit = j * ntt_piece_bits in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let lo = a.(limb) lsr off in
    let hi =
      if off > limb_bits - ntt_piece_bits && limb + 1 < la then
        a.(limb + 1) lsl (limb_bits - off)
      else 0
    in
    r.(j) <- (lo lor hi) land ntt_piece_mask
  done;
  r

(* One prime's cyclic convolution of the piece vectors: forward
   transforms, pointwise product (or square), inverse transform,
   n^-1 scaling. Self-contained per prime, so the two primes run as
   independent pool jobs on wide operands. *)
let ntt_convolve p g n lg (a : t) (b : t option) : int array =
  let fwd = ntt_stage_tables p g ~inverse:false lg in
  let xa = ntt_pieces a n in
  ntt_pass p fwd xa;
  (match b with
  | Some b ->
    let xb = ntt_pieces b n in
    ntt_pass p fwd xb;
    for i = 0 to n - 1 do
      xa.(i) <- xa.(i) * xb.(i) mod p
    done
  | None ->
    for i = 0 to n - 1 do
      xa.(i) <- xa.(i) * xa.(i) mod p
    done);
  ntt_pass p (ntt_stage_tables p g ~inverse:true lg) xa;
  let ninv = pow_mod_int n (p - 2) p in
  for i = 0 to n - 1 do
    xa.(i) <- xa.(i) * ninv mod p
  done;
  xa

(* Whether a product of [l] total limbs fits the supported transform
   sizes: ceil(31*l / 15) + 2 pieces, capped at 2^26 by the primes'
   2-adicity. Beyond it the dispatcher stays on Toom-3. *)
let ntt_fits l = (l * limb_bits / ntt_piece_bits) + 2 <= 1 lsl ntt_max_log

let mul_ntt_gen (a : t) (b : t option) : t =
  let la = Array.length a in
  let lb = match b with Some b -> Array.length b | None -> la in
  let pa = (num_bits a + ntt_piece_bits - 1) / ntt_piece_bits in
  let pb =
    match b with
    | Some b -> (num_bits b + ntt_piece_bits - 1) / ntt_piece_bits
    | None -> pa
  in
  let need = pa + pb in
  let lg = ref 0 in
  while 1 lsl !lg < need do
    incr lg
  done;
  let lg = !lg in
  assert (lg <= ntt_max_log);
  let n = 1 lsl lg in
  let jobs =
    [| (fun () -> ntt_convolve ntt_p1 ntt_g1 n lg a b);
       (fun () -> ntt_convolve ntt_p2 ntt_g2 n lg a b) |]
  in
  let cs =
    if Stdlib.min la lb >= !parallel_mul_threshold then
      Parallel.Pool.map ~chunk:1 (fun f -> f ()) jobs
    else Array.map (fun f -> f ()) jobs
  in
  let c1 = cs.(0) and c2 = cs.(1) in
  (* CRT lift per coefficient, then carry-propagate the base-2^15
     digit stream and re-pack it into 31-bit limbs. c < p1*p2 ~ 2^61.7
     and carry <= c >> 15, so the running sum stays under 2^62. *)
  let lr = la + lb in
  let out = Array.make lr 0 in
  let carry = ref 0 in
  let acc = ref 0 and accbits = ref 0 and oi = ref 0 in
  let push_digit d =
    acc := !acc lor (d lsl !accbits);
    accbits := !accbits + ntt_piece_bits;
    if !accbits >= limb_bits then begin
      if !oi < lr then out.(!oi) <- !acc land mask;
      incr oi;
      acc := !acc lsr limb_bits;
      accbits := !accbits - limb_bits
    end
  in
  for j = 0 to n - 1 do
    let d = c2.(j) - c1.(j) in
    let d = if d < 0 then d + ntt_p2 else d in
    let c = c1.(j) + (ntt_p1 * (d * ntt_p1_inv_p2 mod ntt_p2)) in
    let s = c + !carry in
    push_digit (s land ntt_piece_mask);
    carry := s asr ntt_piece_bits
  done;
  while !carry <> 0 do
    push_digit (!carry land ntt_piece_mask);
    carry := !carry asr ntt_piece_bits
  done;
  if !accbits > 0 && !oi < lr then out.(!oi) <- !acc land mask;
  norm out

let mul_ntt (a : t) (b : t) : t = mul_ntt_gen a (Some b)
let sqr_ntt (a : t) : t = mul_ntt_gen a None

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let lmin = Stdlib.min la lb and lmax = Stdlib.max la lb in
    if lmin < !karatsuba_threshold then mul_school a b
    else if lmin >= !ntt_threshold && 2 * lmin > lmax && ntt_fits (la + lb)
    then mul_ntt a b
    else if lmin >= !toom3_threshold && 2 * lmin > lmax then mul_toom3 a b
    else mul_karatsuba a b
  end

and mul_karatsuba (a : t) (b : t) : t =
  (* Karatsuba: split both operands at half the longer length. The
     middle product uses (a0+a1)(b0+b1) - z0 - z2, which never goes
     negative over the naturals. The three partial products are
     accumulated into a single result buffer; each partial sum is at
     most a*b, so no carry escapes the la+lb limbs. *)
  let la = Array.length a and lb = Array.length b in
  let k = (Stdlib.max la lb + 1) / 2 in
  let a0, a1 = split_at a k and b0, b1 = split_at b k in
  let zs =
    run_products
      (Stdlib.min la lb >= !parallel_mul_threshold)
      [| (fun () -> mul a0 b0);
         (fun () -> mul a1 b1);
         (fun () -> mul (add a0 a1) (add b0 b1)) |]
  in
  let z0 = zs.(0) and z2 = zs.(1) in
  let z1 = sub zs.(2) (add z0 z2) in
  let r = Array.make (la + lb) 0 in
  add_into r z0 0;
  add_into r z1 k;
  add_into r z2 (2 * k);
  norm r

and mul_toom3 (a : t) (b : t) : t =
  (* Toom-Cook-3: split each operand into three k-limb pieces, evaluate
     both polynomials at {0, 1, -1, -2, inf}, multiply pointwise (five
     products of ~n/3 limbs instead of Karatsuba's three of ~n/2), and
     interpolate. Only reached for near-balanced operands: the mul
     dispatcher requires 2*min > max, so every piece is nonempty-ish
     and the O(n^1.465) exponent actually pays off. *)
  let la = Array.length a and lb = Array.length b in
  let k = (Stdlib.max la lb + 2) / 3 in
  let a0, ahi = split_at a k in
  let a1, a2 = split_at ahi k in
  let b0, bhi = split_at b k in
  let b1, b2 = split_at bhi k in
  let pa1, (na1, ma1), (na2, ma2) = toom3_eval a0 a1 a2 in
  let pb1, (nb1, mb1), (nb2, mb2) = toom3_eval b0 b1 b2 in
  let zs =
    run_products
      (Stdlib.min la lb >= !parallel_mul_threshold)
      [| (fun () -> mul a0 b0);
         (fun () -> mul pa1 pb1);
         (fun () -> mul ma1 mb1);
         (fun () -> mul ma2 mb2);
         (fun () -> mul a2 b2) |]
  in
  let z0 = zs.(0) and zinf = zs.(4) in
  let zm1 = s_norm (na1 <> nb1, zs.(2)) in
  let zm2 = s_norm (na2 <> nb2, zs.(3)) in
  let c1, c2, c3 = toom3_interp ~z0 ~z1:zs.(1) ~zm1 ~zm2 ~zinf in
  toom3_assemble ~lr:(la + lb) ~k z0 c1 c2 c3 zinf

(* Schoolbook squaring: accumulate each cross product a_i*a_j (j > i)
   once, double the whole accumulator with a one-bit shift, then add
   the diagonal a_i^2 terms. Doubling the limb products directly would
   overflow the native int (2*mask^2 > 2^62), hence the separate
   doubling pass over sub-base limbs. Saves close to half the inner
   multiplies of mul_school. *)
let sqr_school (a : t) : t =
  let la = Array.length a in
  let r = Array.make (2 * la) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = i + 1 to la - 1 do
        let t = r.(i + j) + (ai * a.(j)) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr limb_bits
      done;
      r.(i + la) <- !carry
    end
  done;
  let carry = ref 0 in
  for i = 0 to (2 * la) - 1 do
    let t = (r.(i) lsl 1) lor !carry in
    r.(i) <- t land mask;
    carry := t lsr limb_bits
  done;
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let t0 = r.(2 * i) + (a.(i) * a.(i)) + !carry in
    r.(2 * i) <- t0 land mask;
    let t1 = r.((2 * i) + 1) + (t0 lsr limb_bits) in
    r.((2 * i) + 1) <- t1 land mask;
    carry := t1 lsr limb_bits
  done;
  norm r

let rec sqr (a : t) : t =
  let la = Array.length a in
  if la = 0 then zero
  else if la < !karatsuba_threshold then sqr_school a
  else if la >= !ntt_threshold && ntt_fits (2 * la) then sqr_ntt a
  else if la >= !toom3_threshold then sqr_toom3 a
  else sqr_karatsuba a

and sqr_karatsuba (a : t) : t =
  (* Karatsuba squaring: the middle term 2*a0*a1 is recovered as
     (a0+a1)^2 - a0^2 - a1^2, so all three recursive products are
     themselves squarings. *)
  let la = Array.length a in
  let k = (la + 1) / 2 in
  let a0, a1 = split_at a k in
  let zs =
    run_products
      (la >= !parallel_mul_threshold)
      [| (fun () -> sqr a0);
         (fun () -> sqr a1);
         (fun () -> sqr (add a0 a1)) |]
  in
  let z0 = zs.(0) and z2 = zs.(1) in
  let z1 = sub zs.(2) (add z0 z2) in
  let r = Array.make (2 * la) 0 in
  add_into r z0 0;
  add_into r z1 k;
  add_into r z2 (2 * k);
  norm r

and sqr_toom3 (a : t) : t =
  (* Toom-3 squaring: signs vanish under squaring ((-m)^2 = m^2), so
     all five pointwise products are squarings of the evaluation
     magnitudes and the interpolation inputs are all non-negative. *)
  let la = Array.length a in
  let k = (la + 2) / 3 in
  let a0, ahi = split_at a k in
  let a1, a2 = split_at ahi k in
  let p1, (_, m1), (_, m2) = toom3_eval a0 a1 a2 in
  let zs =
    run_products
      (la >= !parallel_mul_threshold)
      [| (fun () -> sqr a0);
         (fun () -> sqr p1);
         (fun () -> sqr m1);
         (fun () -> sqr m2);
         (fun () -> sqr a2) |]
  in
  let z0 = zs.(0) and zinf = zs.(4) in
  let c1, c2, c3 =
    toom3_interp ~z0 ~z1:zs.(1) ~zm1:(s_pos zs.(2)) ~zm2:(s_pos zs.(3)) ~zinf
  in
  toom3_assemble ~lr:(2 * la) ~k z0 c1 c2 c3 zinf

let mul_int (a : t) k =
  if k < 0 then invalid_arg "Nat.mul_int: negative"
  else if k = 0 || is_zero a then zero
  else if k = 1 then a
  else if k <= mask then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * k) + !carry in
      r.(i) <- t land mask;
      carry := t lsr limb_bits
    done;
    r.(la) <- !carry land mask;
    r.(la + 1) <- !carry lsr limb_bits;
    norm r
  end
  else mul a (of_int k)

(* ------------------------------------------------------------------ *)
(* Division: single-limb, Knuth Algorithm D, Burnikel-Ziegler          *)
(* ------------------------------------------------------------------ *)

let divmod_int (a : t) d =
  if d <= 0 then invalid_arg "Nat.divmod_int: divisor must be positive"
  else if d > mask then
    invalid_arg "Nat.divmod_int: divisor exceeds one limb"
  else begin
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      (* !r < d <= mask, so the two-limb numerator fits in 62 bits. *)
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (norm q, !r)
  end

let mod_int a d = snd (divmod_int a d)

(* Knuth Algorithm D (TAOCP 4.3.1). Requires len b >= 2; the caller
   handles single-limb divisors. When [want_q] is false the quotient
   array is neither allocated nor written, so the remainder-only hot
   path of the remainder-tree descent skips materialising quotients
   entirely. *)
let knuth_core ~want_q (a : t) (b : t) : t option * t =
  let n = Array.length b in
  (* Normalize so the divisor's top limb has its high bit set. *)
  let s = limb_bits - bits_of_limb b.(n - 1) in
  let v = shift_left b s in
  let la = Array.length a in
  (* Limb length of [a lsl s], without materialising it. *)
  let lu = if la = 0 then 0 else (num_bits a + s + limb_bits - 1) / limb_bits in
  let m = lu - n in
  if m < 0 then ((if want_q then Some zero else None), a)
  else begin
    (* Shift the dividend straight into the working buffer (with one
       extra high limb), instead of shift_left followed by a copy. *)
    let u = Array.make (lu + 1) 0 in
    if s = 0 then Array.blit a 0 u 0 la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let x = (a.(i) lsl s) lor !carry in
        u.(i) <- x land mask;
        carry := x lsr limb_bits
      done;
      u.(la) <- !carry
    end;
    let q = if want_q then Array.make (m + 1) 0 else [||] in
    let vtop = v.(n - 1) and vsnd = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      if !qhat > mask then begin
        qhat := mask;
        rhat := num - (mask * vtop)
      end;
      let continue = ref true in
      while
        !continue && !rhat <= mask
        && !qhat * vsnd > (!rhat lsl limb_bits) lor u.(j + n - 2)
      do
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat > mask then continue := false
      done;
      (* Multiply-and-subtract qhat * v from u[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = u.(i + j) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back once. *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s2 = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s2 land mask;
          c := s2 lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land mask
      end
      else u.(j + n) <- d;
      if want_q then q.(j) <- !qhat
    done;
    let r = norm (Array.sub u 0 n) in
    ((if want_q then Some (norm q) else None), shift_right r s)
  end

let divmod_knuth (a : t) (b : t) : t * t =
  match knuth_core ~want_q:true a b with
  | Some q, r -> (q, r)
  | None, _ -> assert false

let rem_knuth (a : t) (b : t) : t = snd (knuth_core ~want_q:false a b)

(* Burnikel-Ziegler style recursive division, after Modern Computer
   Arithmetic, Algorithm 1.8 (RecursiveDivRem). [recursive_divrem a b]
   requires b normalized (top bit of top limb set), len a - len b = m
   with m <= len b, and a < b * base^m. Falls back to Knuth D below the
   threshold. *)
let rec recursive_divrem (a : t) (b : t) : t * t =
  let n = Array.length b in
  let m = Array.length a - n in
  if m <= 0 then
    if compare a b < 0 then (zero, a) else divmod_knuth a b
  else if m < !burnikel_ziegler_threshold then divmod_knuth a b
  else begin
    let k = m / 2 in
    let b0, b1 = split_at b k in
    (* Step 1: divide the high part of [a] by the high half of [b]. *)
    let alo2k, ahi = split_at a (2 * k) in
    let q1, r1 = unbalanced_divrem ahi b1 in
    (* A' = r1 * base^2k + alo2k - q1 * b0 * base^k, with corrections
       applied before subtracting so we stay in the naturals. *)
    let t = ref (add (shift_limbs r1 (2 * k)) alo2k) in
    let s = ref (shift_limbs (mul q1 b0) k) in
    let q1 = ref q1 in
    while compare !t !s < 0 do
      q1 := sub !q1 one;
      t := add !t (shift_limbs b k)
    done;
    let a' = sub !t !s in
    (* Step 2: same again one level down. *)
    let alok, ahi' = split_at a' k in
    let q0, r0 = unbalanced_divrem ahi' b1 in
    let t2 = ref (add (shift_limbs r0 k) alok) in
    s := mul q0 b0;
    let q0 = ref q0 in
    while compare !t2 !s < 0 do
      q0 := sub !q0 one;
      t2 := add !t2 b
    done;
    let r = sub !t2 !s in
    (add (shift_limbs !q1 k) !q0, r)
  end

(* Handle len a - len b > len b by peeling quotient blocks of len b
   limbs from the top (MCA 1.4.4, UnbalancedDivision). *)
and unbalanced_divrem (a : t) (b : t) : t * t =
  let n = Array.length b in
  let m = Array.length a - n in
  if m <= n then recursive_divrem a b
  else begin
    let alo, ahi = split_at a (m - n) in
    (* ahi has 2n limbs: one block of quotient. *)
    let qhi, rhi = recursive_divrem ahi b in
    let qlo, r = unbalanced_divrem (norm (add (shift_limbs rhi (m - n)) alo)) b in
    (add (shift_limbs qhi (m - n)) qlo, r)
  end

let divmod (a : t) (b : t) : t * t =
  let n = Array.length b in
  if n = 0 then raise Division_by_zero
  else if n = 1 then
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  else if compare a b < 0 then (zero, a)
  else if n < !burnikel_ziegler_threshold then divmod_knuth a b
  else begin
    (* Normalize for the recursive algorithm, then shift back. *)
    let s = limb_bits - bits_of_limb b.(n - 1) in
    let a' = shift_left a s and b' = shift_left b s in
    let q, r = unbalanced_divrem a' b' in
    (q, shift_right r s)
  end

let div a b = fst (divmod a b)

(* Remainder-only entry point: below the Burnikel-Ziegler threshold the
   quotient is never materialised. Above it the recursion needs its
   intermediate quotients, so it falls back to full division. *)
let rem (a : t) (b : t) : t =
  let n = Array.length b in
  if n = 0 then raise Division_by_zero
  else if n = 1 then of_int (snd (divmod_int a b.(0)))
  else if compare a b < 0 then a
  else if n < !burnikel_ziegler_threshold then rem_knuth a b
  else snd (divmod a b)

(* ------------------------------------------------------------------ *)
(* Newton reciprocal and Barrett reduction                             *)
(* ------------------------------------------------------------------ *)

(* a / base^k without materialising the low part (split_at allocates
   both halves; the reciprocal hot path only ever wants the top). *)
let drop_limbs (a : t) k =
  let la = Array.length a in
  if k <= 0 then a
  else if k >= la then zero
  else norm (Array.sub a k (la - k))

(* recip_core b n = floor(base^(2n) / b) for b of exactly n limbs with
   a nonzero top limb. Newton-Raphson on the shifted reciprocal,
   walked iteratively up a precision ladder n, ceil(n/2), ... down to
   [recip_threshold]. The seed is one short Knuth division at the base
   precision; each level lifts the previous estimate and applies one
   quadratically convergent step against the top m limbs of b. The
   step's correction multiply runs on a truncated error window (the
   dropped low limbs cannot reach the kept result limbs), and no
   per-level exact repair is done: the estimate drifts by a bounded
   number of limbs per level, all repaired at once by the closing
   short division at full precision — which is exact for any positive
   estimate, so the drift only ever costs time, never correctness.
   Division is therefore used once at the seed and once at the end,
   and the cost is dominated by the two top-level half-size
   multiplies. *)
(* x * y for y roughly twice as long as x (the reciprocal ladder's
   shape): split y into |x|-limb blocks so every block multiply runs
   balanced -- the generic [mul] pads its unbalanced path and loses
   about a third here. Near-balanced operands go straight through. *)
let mul_blocks (x : t) (y : t) : t =
  let lx = Array.length x and ly = Array.length y in
  if lx = 0 || ly = 0 then zero
    (* Block-splitting pays when both operands are wide but unbalanced
       (each block multiply runs the balanced fast path). For a narrow
       [x] the schoolbook row is already O(lx*ly) with one result
       allocation, while ly/lx blocks would re-allocate the running
       sum per block — O(ly^2/lx) words of garbage. *)
  else if ly <= lx + lx / 4 || lx < 2 * !karatsuba_threshold then mul x y
  else begin
    let acc = ref zero in
    let off = ref 0 in
    while !off < ly do
      let len = Stdlib.min lx (ly - !off) in
      let blk = norm (Array.sub y !off len) in
      if not (is_zero blk) then
        acc := add !acc (shift_limbs (mul x blk) !off);
      off := !off + lx
    done;
    !acc
  end

let recip_core (b : t) n : t =
  if n <= !recip_threshold then div (shift_limbs one (2 * n)) b
  else begin
    (* Precision ladder, seed size first. The seed division costs
       ~s^1.47 while every lift level carries a fixed overhead on top
       of its multiplies, so descending far below n is a loss: stop
       near n/5 (2-3 lifts) and pay one slightly larger — still
       cheap — exact short division instead. *)
    let stop = Stdlib.max !recip_threshold (n / 5) in
    let rec ladder acc m =
      if m <= stop then m :: acc else ladder (m :: acc) ((m + 1) / 2)
    in
    let sizes = ladder [] n in
    let s = List.hd sizes in
    (* One-shot seed: exact short division at the base precision. *)
    let x = ref (div (shift_limbs one (2 * s))
                   (norm (Array.sub b (n - s) s))) in
    let h = ref s in
    (* Residual bookkeeping: after the last level,
       base^(2n) - x1*b = e -+ t*b (sign by branch), so the closing
       repair reuses the level's exact e instead of multiplying
       x1 * b from scratch. *)
    let last_e = ref zero and last_t = ref zero and last_neg = ref false in
    List.iter
      (fun m ->
        let xh = !x in
        let bm = if m = n then b else norm (Array.sub b (n - m) m) in
        (* x0 = xh * base^(m-h) lifts the level-h estimate; the Newton
           step is x1 = x0 +- x0*e/base^(2m) for e = |base^(2m) - x0*bm|,
           computed exactly (e is a cancellation down to scale
           base^(2m-h): bm's low limbs all reach it). x0's trailing
           zero limbs never enter a multiply. *)
        let p0 = shift_limbs (mul_blocks xh bm) (m - !h) in
        let beta2m = shift_limbs one (2 * m) in
        let neg = compare p0 beta2m > 0 in
        let e = if neg then sub p0 beta2m else sub beta2m p0 in
        (* Only the top window of e reaches the kept limbs of the
           correction t = xh*e/base^(m+h): dropping e's low m-4 limbs
           perturbs t by under a unit. *)
        let de = Stdlib.max 0 (m - 4) in
        let t = drop_limbs (mul xh (drop_limbs e de)) (m + !h - de) in
        let x0 = shift_limbs xh (m - !h) in
        let x1, t_applied =
          if not neg then (add x0 t, t)
          else if compare t x0 < 0 then (sub x0 t, t)
          else (x0, zero) (* degenerate drift; repaired below *)
        in
        last_e := e;
        last_t := t_applied;
        last_neg := neg;
        x := x1;
        h := m)
      (List.tl sizes);
    (* Exact closing repair from the threaded residual: the ladder's
       accumulated drift is a few limbs at scale base^n, so the
       closing divmod is of a short number by b and costs O(M(n)) not
       O(n^2). *)
    let x1 = !x in
    let tb = mul_blocks !last_t b in
    let pos_part, neg_part =
      if !last_neg then (tb, !last_e) else (!last_e, tb) in
    if compare pos_part neg_part >= 0 then
      let q, _ = divmod (sub pos_part neg_part) b in
      add x1 q
    else begin
      let q, r = divmod (sub neg_part pos_part) b in
      let x = sub x1 q in
      if is_zero r then x else sub x one
    end
  end

let recip (b : t) : t =
  let n = Array.length b in
  if n = 0 then raise Division_by_zero else recip_core b n

(* Precomputed divisor state for repeated reduction by the same
   modulus. Below [barrett_threshold] the reciprocal would cost more
   than it saves, so [pc_mu] is omitted and rem_precomp falls back to
   plain [rem] -- the cached divisor itself is still worth having when
   the caller would otherwise recompute it (e.g. squared tree nodes). *)
type precomp = { pc_d : t; pc_mu : t option; pc_n : int }

let precompute (b : t) : precomp =
  let n = Array.length b in
  if n = 0 then raise Division_by_zero
  else if n < !barrett_threshold then { pc_d = b; pc_mu = None; pc_n = n }
  else { pc_d = b; pc_mu = Some (recip_core b n); pc_n = n }

let precomp_divisor p = p.pc_d

(* One Barrett step (HAC 14.42): for a < base^(2n), the estimate
   qhat = floor(floor(a / base^(n-1)) * mu / base^(n+1)) satisfies
   q - 2 <= qhat <= q, so after subtracting qhat*b at most two
   corrective subtractions remain. *)
let barrett_step ~mu ~b ~n (a : t) : t =
  if compare a b < 0 then a
  else begin
    let qhat = drop_limbs (mul (drop_limbs a (n - 1)) mu) (n + 1) in
    let r = ref (sub a (mul qhat b)) in
    while compare !r b >= 0 do
      r := sub !r b
    done;
    !r
  end

let rem_precomp (a : t) (p : precomp) : t =
  match p.pc_mu with
  | None -> rem a p.pc_d
  | Some mu ->
    let b = p.pc_d and n = p.pc_n in
    let la = Array.length a in
    if compare a b < 0 then a
    else if la <= 2 * n then barrett_step ~mu ~b ~n a
    else begin
      (* Fold base^n-sized blocks from the top down, maintaining
         r < b so each step's input r*base^n + block < b*base^n
         <= base^(2n) stays within Barrett's domain. *)
      let nblocks = (la + n - 1) / n in
      let r = ref (norm (Array.sub a ((nblocks - 1) * n)
                           (la - ((nblocks - 1) * n)))) in
      for i = nblocks - 2 downto 0 do
        let lr = Array.length !r in
        let x = Array.make (n + lr) 0 in
        Array.blit a (i * n) x 0 n;
        Array.blit !r 0 x n lr;
        r := barrett_step ~mu ~b ~n (norm x)
      done;
      !r
    end

(* ------------------------------------------------------------------ *)
(* Powers, roots                                                       *)
(* ------------------------------------------------------------------ *)

let pow (b : t) e =
  if e < 0 then invalid_arg "Nat.pow: negative exponent"
  else begin
    let r = ref one and b = ref b and e = ref e in
    while !e > 0 do
      if !e land 1 = 1 then r := mul !r !b;
      e := !e lsr 1;
      if !e > 0 then b := sqr !b
    done;
    !r
  end

let sqrt (a : t) =
  if is_zero a then zero
  else begin
    (* Newton iteration from an overestimate; monotonically decreasing,
       stops at floor(sqrt a). *)
    let x = ref (shift_left one ((num_bits a + 1) / 2)) in
    let continue = ref true in
    while !continue do
      let y = shift_right (add !x (div a !x)) 1 in
      if compare y !x < 0 then x := y else continue := false
    done;
    !x
  end

(* ------------------------------------------------------------------ *)
(* GCD                                                                 *)
(* ------------------------------------------------------------------ *)

let gcd_euclid a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

let trailing_zeros (a : t) =
  let rec limb i = if a.(i) = 0 then limb (i + 1) else i in
  if is_zero a then 0
  else
    let i = limb 0 in
    let rec bit l c = if l land 1 = 1 then c else bit (l lsr 1) (c + 1) in
    (i * limb_bits) + bit a.(i) 0

let gcd_binary a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    (* One Euclidean step first to balance very unequal sizes, then
       the binary (Stein) loop which needs only shifts and subtraction. *)
    let a, b = if compare a b >= 0 then (a, b) else (b, a) in
    let a = rem a b in
    if is_zero a then b
    else begin
      let za = trailing_zeros a and zb = trailing_zeros b in
      let common = Stdlib.min za zb in
      let a = ref (shift_right a za) and b = ref (shift_right b zb) in
      while not (is_zero !b) do
        if compare !a !b > 0 then begin
          let t = !a in
          a := !b;
          b := t
        end;
        b := sub !b !a;
        if not (is_zero !b) then b := shift_right !b (trailing_zeros !b)
      done;
      shift_left !a common
    end
  end

(* Lehmer's GCD with double-limb leading-digit simulation (HAC 14.57,
   Knuth 4.5.2L). Each round extracts the top 62 bits of both operands
   at a shared shift, runs single-precision extended Euclid on those
   leading digits while the bracketing-quotient test certifies every
   quotient is the true multiprecision one, and then applies the
   accumulated 2x2 cofactor matrix to the full operands — replacing
   dozens of O(n) binary-GCD passes with four mul_int and two sub.

   The signed cofactors (A, B; C, D) of HAC are carried as magnitudes
   (ua, ub; uc, ud) plus a step-parity flag: signs alternate in a
   checkerboard, so A - qC etc. never cancel and the magnitude update
   is ua + q*uc. The simulation stops when a quotient fails the
   bracket test *or* a cofactor would exceed one limb: capping the
   matrix at single-limb entries keeps every product inside the
   native-int headroom (q*uc <= mask^2, matrix-apply via the mul_int
   fast path) at ~30 bits of progress per round, which is why the
   cofactor-matrix form needs no multiprecision scratch state, unlike
   a recursive half-GCD. *)
let gcd_lehmer a0 b0 =
  let x = ref a0 and y = ref b0 in
  (* Invariant: x >= y. *)
  while Array.length !y > !hgcd_threshold do
    if num_bits !x - num_bits !y > limb_bits then begin
      (* Too unbalanced for the leading digits to share a window: one
         full Euclidean step, as in the binary path. *)
      let r = rem !x !y in
      x := !y;
      y := r
    end
    else begin
      let s = Stdlib.max 0 (num_bits !x - (2 * limb_bits)) in
      let xh = ref (to_int_exn (shift_right !x s))
      and yh = ref (to_int_exn (shift_right !y s)) in
      let ua = ref 1 and ub = ref 0 and uc = ref 0 and ud = ref 1 in
      let even = ref true in
      let steps = ref 0 in
      let continue = ref true in
      while !continue do
        (* Bracketing quotients (x~+A)/(y~+C) and (x~+B)/(y~+D) with
           signs resolved by parity. Non-positive denominators mean
           the approximation window is exhausted; a negative numerator
           can only produce a quotient below the true q >= 1, so plain
           truncating division cannot fake an agreement. *)
        let d1 = if !even then !yh - !uc else !yh + !uc
        and d2 = if !even then !yh + !ud else !yh - !ud in
        if d1 <= 0 || d2 <= 0 then continue := false
        else begin
          let n1 = if !even then !xh + !ua else !xh - !ua
          and n2 = if !even then !xh - !ub else !xh + !ub in
          let q = n1 / d1 in
          if q <> n2 / d2 || q > mask then continue := false
          else begin
            let ta = !ua + (q * !uc) and tb = !ub + (q * !ud) in
            if ta > mask || tb > mask then continue := false
            else begin
              ua := !uc;
              uc := ta;
              ub := !ud;
              ud := tb;
              let r = !xh - (q * !yh) in
              xh := !yh;
              yh := r;
              even := not !even;
              incr steps
            end
          end
        end
      done;
      if !steps = 0 then begin
        (* No single-precision progress possible (HAC's B = 0 case):
           take one exact multiprecision division step instead. *)
        let r = rem !x !y in
        x := !y;
        y := r
      end
      else begin
        (* (x', y') = (|A*x + B*y|, |C*x + D*y|) — the true Euclidean
           remainders r_{k-1}, r_k, so both subtractions are exact
           over the naturals with the parity picking the order. *)
        let pxa = mul_int !x !ua and pyb = mul_int !y !ub in
        let pxc = mul_int !x !uc and pyd = mul_int !y !ud in
        let x', y' =
          if !even then (sub pxa pyb, sub pyd pxc)
          else (sub pyb pxa, sub pxc pyd)
        in
        x := x';
        y := y';
        if compare !x !y < 0 then begin
          let t = !x in
          x := !y;
          y := t
        end
      end
    end
  done;
  gcd_binary !x !y

let gcd a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    let a, b = if compare a b >= 0 then (a, b) else (b, a) in
    if Array.length b <= !hgcd_threshold then gcd_binary a b
    else gcd_lehmer a b
  end

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let pow_mod (b : t) (e : t) (m : t) =
  if is_zero m then raise Division_by_zero
  else if is_one m then zero
  else begin
    let nb = num_bits e in
    let r = ref one and b = ref (rem b m) in
    for i = 0 to nb - 1 do
      if testbit e i then r := rem (mul !r !b) m;
      if i < nb - 1 then b := rem (sqr !b) m
    done;
    !r
  end

let invert_mod (a : t) (m : t) =
  if is_zero m || is_one m then None
  else begin
    (* Extended Euclid tracking only the coefficient of [a], with signs
       carried explicitly: old_s * a = old_r (mod m). *)
    let old_r = ref (rem a m) and r = ref m in
    let old_s = ref one and s = ref zero in
    let old_neg = ref false and neg = ref false in
    while not (is_zero !r) do
      let q, rr = divmod !old_r !r in
      old_r := !r;
      r := rr;
      (* new_s = old_s - q * s, in signed arithmetic *)
      let qs = mul q !s in
      let ns, nneg =
        if !old_neg = !neg then
          if compare !old_s qs >= 0 then (sub !old_s qs, !old_neg)
          else (sub qs !old_s, not !old_neg)
        else (add !old_s qs, !old_neg)
      in
      old_s := !s;
      old_neg := !neg;
      s := ns;
      neg := nneg
    done;
    if not (is_one !old_r) then None
    else
      let x = rem !old_s m in
      if is_zero x then Some x
      else if !old_neg then Some (sub m x)
      else Some x
  end

(* ------------------------------------------------------------------ *)
(* Conversions: strings and bytes                                      *)
(* ------------------------------------------------------------------ *)

let of_bytes_be s =
  let n = String.length s in
  let nlimbs = ((n * 8) / limb_bits) + 1 in
  let r = Array.make nlimbs 0 in
  let acc = ref 0 and nbits = ref 0 and li = ref 0 in
  for i = n - 1 downto 0 do
    acc := !acc lor (Char.code s.[i] lsl !nbits);
    nbits := !nbits + 8;
    if !nbits >= limb_bits then begin
      r.(!li) <- !acc land mask;
      incr li;
      acc := !acc lsr limb_bits;
      nbits := !nbits - limb_bits
    end
  done;
  if !acc <> 0 then r.(!li) <- !acc;
  norm r

let to_bytes_be (a : t) =
  let nb = num_bits a in
  if nb = 0 then ""
  else begin
    let nbytes = (nb + 7) / 8 in
    let buf = Bytes.make nbytes '\000' in
    let byte_at k =
      (* byte k counts from the least-significant end *)
      let bit = k * 8 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let lo = a.(limb) lsr off in
      let hi =
        if off > limb_bits - 8 && limb + 1 < Array.length a then
          a.(limb + 1) lsl (limb_bits - off)
        else 0
      in
      (lo lor hi) land 0xff
    in
    for k = 0 to nbytes - 1 do
      Bytes.set buf (nbytes - 1 - k) (Char.chr (byte_at k))
    done;
    Bytes.to_string buf
  end

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_string: bad hex digit"

let of_hex_body s start =
  let acc = ref zero in
  for i = start to String.length s - 1 do
    if s.[i] <> '_' then acc := add_int (mul_int !acc 16) (hex_digit s.[i])
  done;
  !acc

let chunk_base = 1_000_000_000 (* 10^9 per decimal chunk *)

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Nat.of_string: empty"
  else if n >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex_body s 2
  else begin
    let acc = ref zero and chunk = ref 0 and ndig = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' ->
          chunk := (!chunk * 10) + (Char.code c - Char.code '0');
          incr ndig;
          if !ndig = 9 then begin
            acc := add_int (mul_int !acc chunk_base) !chunk;
            chunk := 0;
            ndig := 0
          end
        | '_' -> ()
        | _ -> invalid_arg "Nat.of_string: bad decimal digit")
      s;
    if !ndig > 0 then begin
      let scale =
        let rec go p k = if k = 0 then p else go (p * 10) (k - 1) in
        go 1 !ndig
      in
      acc := add_int (mul_int !acc scale) !chunk
    end;
    !acc
  end

let to_string (a : t) =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur chunk_base in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let nb = num_bits a in
    let ndig = (nb + 3) / 4 in
    let buf = Buffer.create ndig in
    for k = ndig - 1 downto 0 do
      let bit = k * 4 in
      let limb = bit / limb_bits and off = bit mod limb_bits in
      let lo = a.(limb) lsr off in
      let hi =
        if off > limb_bits - 4 && limb + 1 < Array.length a then
          a.(limb + 1) lsl (limb_bits - off)
        else 0
      in
      Buffer.add_char buf "0123456789abcdef".[(lo lor hi) land 0xf]
    done;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

(* ------------------------------------------------------------------ *)
(* Randomness                                                          *)
(* ------------------------------------------------------------------ *)

let random_bits gen n =
  if n < 0 then invalid_arg "Nat.random_bits: negative"
  else if n = 0 then zero
  else begin
    let nbytes = (n + 7) / 8 in
    let s = gen nbytes in
    if String.length s <> nbytes then
      invalid_arg "Nat.random_bits: generator returned wrong length";
    let extra = (nbytes * 8) - n in
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land (0xff lsr extra)));
    of_bytes_be (Bytes.to_string b)
  end

let random_below gen bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound"
  else begin
    let n = num_bits bound in
    let rec draw () =
      let x = random_bits gen n in
      if compare x bound < 0 then x else draw ()
    in
    draw ()
  end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( mod ) = rem
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
