(** Arbitrary-precision natural numbers.

    Values are immutable. The representation is a little-endian array of
    31-bit limbs (base [2^31]) with no trailing zero limb, so that limb
    products fit comfortably in OCaml's 63-bit native integers.

    This module exists because the reproduction container has no zarith /
    GMP binding; it provides everything the batch-GCD pipeline needs:
    schoolbook and Karatsuba multiplication, Knuth Algorithm-D and
    Burnikel-Ziegler division, binary and Euclidean GCD, and modular
    exponentiation. *)

type t

val limb_bits : int
(** Bits per limb (31). The representation base is [2 ^ limb_bits]. *)

val zero : t
val one : t
val two : t

(** {1 Construction and conversion} *)

val of_int : int -> t
(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int : t -> int option
(** [to_int n] is [Some i] when [n] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit. *)

val of_limbs : int array -> t
(** Build from little-endian base-[2^31] limbs; copies and normalizes.
    @raise Invalid_argument on out-of-range limbs. *)

val to_limbs : t -> int array
(** Little-endian limbs, no trailing zero. [to_limbs zero = [||]]. *)

val of_string : string -> t
(** Decimal, or hexadecimal with a ["0x"] prefix. Underscores allowed.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val to_hex : t -> string
(** Lowercase hexadecimal, no prefix, ["0"] for zero. *)

val of_bytes_be : string -> t
(** Interpret a byte string as a big-endian unsigned integer. *)

val to_bytes_be : t -> string
(** Minimal-length big-endian bytes; [""] for zero. *)

(** {1 Comparison and predicates} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Bit-level operations} *)

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val size_limbs : t -> int
(** Number of limbs in the normalized representation;
    [size_limbs zero = 0]. Equals [ceil (num_bits / limb_bits)]. *)

val testbit : t -> int -> bool
val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val sub_int : t -> int -> t

val mul : t -> t -> t
(** Schoolbook below [karatsuba_threshold] limbs, Karatsuba above,
    Toom-Cook-3 once both operands reach [toom3_threshold] limbs and
    are near-balanced, and a two-prime CRT number-theoretic transform
    (quasi-linear) once they reach [ntt_threshold] limbs. Past
    [parallel_mul_threshold] limbs the independent sub-products of one
    recursion level (or the NTT's per-prime convolutions) fan out onto
    {!Parallel.Pool}; the pool's nesting guard keeps recursive and
    tree-level parallel calls inline, so this composes with
    [Product_tree]/[Remainder_tree] level parallelism deadlock-free. *)

val mul_int : t -> int -> t

val sqr : t -> t
(** Dedicated squaring: schoolbook with the symmetric cross products
    computed once below [karatsuba_threshold] limbs, Karatsuba with
    three recursive squarings above, Toom-3 with five recursive
    squarings above [toom3_threshold], and the NTT tier (one forward
    transform per prime instead of two) above [ntt_threshold] —
    measurably cheaper than [mul a a] on the remainder tree's
    mod-square descent. Parallelises like {!mul}. *)

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r] and [0 <= r < b].
    Knuth Algorithm D below [burnikel_ziegler_threshold] limbs in the
    divisor, Burnikel-Ziegler recursive division above.
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t

val rem : t -> t -> t
(** Remainder only. Below the Burnikel-Ziegler threshold this runs a
    dedicated Algorithm-D variant that never allocates or writes the
    quotient. *)

val divmod_int : t -> int -> t * int
val mod_int : t -> int -> int

(** {1 Precomputed reduction}

    Bernstein's scaled-remainder trick for the remainder-tree descent:
    compute the shifted reciprocal of a divisor once, then replace each
    division by it with two multiplies (Barrett reduction). *)

val recip : t -> t
(** [recip b] is [floor (base^(2n) / b)] for [n = size_limbs b],
    computed by Newton-Raphson iteration on the top halves (so its cost
    is a constant number of multiplies at each size, inheriting the
    subquadratic kernels) with an exact final correction.
    @raise Division_by_zero if [b] is zero. *)

type precomp
(** A divisor together with its cached Barrett state. *)

val precompute : t -> precomp
(** [precompute b] caches [b] and, when [size_limbs b >=
    !barrett_threshold], its shifted reciprocal.
    @raise Division_by_zero if [b] is zero. *)

val precomp_divisor : precomp -> t
(** The divisor the precomp was built from. *)

val rem_precomp : t -> precomp -> t
(** [rem_precomp a p = rem a (precomp_divisor p)], via Barrett block
    reduction when the reciprocal is cached (any dividend length; large
    dividends fold base^n blocks from the top), plain {!rem} otherwise. *)

val pow : t -> int -> t
(** [pow b e] with a non-negative native exponent. *)

val sqrt : t -> t
(** Integer square root (floor). *)

(** {1 Number theory} *)

val gcd : t -> t -> t
(** Lehmer/half-GCD above [hgcd_threshold] limbs: single-precision
    extended Euclid on the top 62 bits of both operands accumulates a
    2x2 cofactor matrix that is applied to the full values once per
    round, so each O(n) pass retires ~30 quotient bits instead of the
    binary loop's one or two. At or below the threshold this is the
    binary (Stein) GCD with a Euclidean first step for unbalanced
    sizes. *)

val gcd_binary : t -> t -> t
(** The binary (Stein) GCD the dispatcher falls back to, exposed for
    the ablation bench and cross-kernel equivalence tests. *)

val gcd_euclid : t -> t -> t
(** Pure Euclidean GCD, kept for the ablation bench. *)

val pow_mod : t -> t -> t -> t
(** [pow_mod b e m] is [b^e mod m]. @raise Division_by_zero if [m] is 0. *)

val invert_mod : t -> t -> t option
(** [invert_mod a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1]. *)

(** {1 Randomness}

    Sampling is driven by an explicit byte generator so device-RNG
    simulations control every bit that enters key generation. *)

val random_bits : (int -> string) -> int -> t
(** [random_bits gen n]: [gen k] must return [k] uniform random bytes;
    the result is uniform in [\[0, 2^n)]. *)

val random_below : (int -> string) -> t -> t
(** Uniform in [\[0, bound)] by rejection sampling.
    @raise Invalid_argument if the bound is zero. *)

(** {1 Tuning}

    Kernel dispatch thresholds, in limbs. Each can be overridden at
    startup from the environment (EXPERIMENTS.md threshold-sweep
    recipe): [WEAKKEYS_KARATSUBA_THRESHOLD], [WEAKKEYS_TOOM_THRESHOLD],
    [WEAKKEYS_NTT_THRESHOLD], [WEAKKEYS_BZ_THRESHOLD],
    [WEAKKEYS_RECIP_THRESHOLD], [WEAKKEYS_BARRETT_THRESHOLD],
    [WEAKKEYS_PARMUL_THRESHOLD] and [WEAKKEYS_HGCD_THRESHOLD];
    malformed or dangerously small values raise [Invalid_argument] at
    module initialisation, mirroring [WEAKKEYS_DOMAINS]. *)

val karatsuba_threshold : int ref
val burnikel_ziegler_threshold : int ref

val toom3_threshold : int ref
(** Minimum limb count of the {e smaller} operand before [mul]/[sqr]
    switch from Karatsuba to Toom-3 (default 96). *)

val ntt_threshold : int ref
(** Minimum limb count of the {e smaller} operand before near-balanced
    [mul]/[sqr] switch from Toom-3 to the two-prime CRT NTT (default
    2048). Products too large for the primes' 2-adicity (~1 Gbit)
    stay on Toom-3 regardless. *)

val hgcd_threshold : int ref
(** Maximum limb count of the smaller operand for which {!gcd} runs
    the plain binary loop; above it the Lehmer leading-digit rounds
    drive the reduction (default 8). *)

val recip_threshold : int ref
(** Divisor size (limbs) at or below which {!recip} just divides; also
    the seed precision of the Newton ladder above it (default 64). *)

val barrett_threshold : int ref
(** Minimum divisor size (limbs) for {!precompute} to cache a
    reciprocal; smaller divisors reduce via plain {!rem} (default 48). *)

val parallel_mul_threshold : int ref
(** Minimum size (limbs) of the smaller operand before one level of
    [mul]/[sqr] recursion fans its sub-products onto the domain pool
    (default 512). *)

val pp : Format.formatter -> t -> unit

(** Infix operators, meant to be used via [Nat.Infix]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( mod ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
