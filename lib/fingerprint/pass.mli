(** The attribution pass interface.

    A pass is one fingerprinting technique packaged behind a uniform
    surface: a name, the names of the passes whose evidence it needs,
    and a [run] over a shared read-only {!Ctx.t}. Adding a technique
    to the study means writing one pass and registering it
    ({!Registry}) — the pipeline, report and CLI pick it up without
    modification. *)

module Ctx : sig
  (** Everything a technique may read, assembled once by the pipeline
      before any pass runs. Passes execute concurrently on the domain
      pool, so treat every component as read-only; private scratch
      state (local stores, tables) is fine. *)
  type t = {
    store : Corpus.Store.t;  (** interned corpus: modulus -> dense id *)
    corpus : Bignum.Nat.t array;  (** [corpus.(id)] is the modulus *)
    findings : Batchgcd.Batch_gcd.finding list;
        (** batch-GCD output; a finding's [index] is its store id *)
    factored : Factored.t list;  (** findings split into p * q *)
    factored_index : Factored.t option array;  (** per store id *)
    unrecovered : Bignum.Nat.t list;
        (** flagged moduli that did not split into two primes *)
    scans : Netsim.Scanner.scan list;  (** all raw scans *)
    page_titles : (string, string) Hashtbl.t;
        (** certificate fingerprint -> an observed page title *)
    cert_fp : X509lite.Certificate.t -> string;
        (** memoized certificate fingerprint; safe to call from
            concurrently running passes *)
    modulus_bits : int;  (** the world's RSA modulus size *)
  }
end

type result = {
  evidence : Evidence.t list;
      (** claims to merge into the attribution table; emit these in a
          deterministic order — the scheduler inserts them verbatim *)
  artifacts : Attribution.artifact list;
      (** whole-technique outputs for the report (at most one each) *)
}

type t = {
  name : string;  (** unique registry key, kebab-case *)
  deps : string list;
      (** passes whose evidence must be in the table before [run];
          the scheduler orders and parallelizes from these *)
  doc : string;  (** one-line description for [weakkeys_cli passes] *)
  run : Ctx.t -> Attribution.t -> result;
      (** [run ctx attr]: [attr] holds the evidence of every completed
          dependency (and possibly unrelated passes); read it via the
          query functions, never mutate it — the scheduler owns all
          writes *)
}

val empty_result : result
