(** The per-store-id attribution table.

    Passes ({!Pass}, {!Registry}) deposit typed {!Evidence.t} claims
    and whole-technique artifacts here; everything downstream
    (pipeline queries, the report, the CLI) reads attributions from
    this table instead of from per-technique pipeline fields.

    {2 Merge policy}

    {!vendor_of} resolves an id deterministically: among the
    vendor-bearing evidence for the id, the technique with the
    smallest {!Evidence.rank} wins (subject rules > prime clique >
    shared-prime extrapolation > heuristics — the precedence the
    hand-written labeling chain applied); within that technique the
    per-vendor vote weights are summed and {!majority_vendor} picks
    the heaviest vendor, ties broken by the lexicographically
    smallest name. The result is independent of evidence insertion
    order. *)

type t

val create : ?size:int -> unit -> t
(** [size] is a hint for the initial id capacity. *)

val add : t -> Evidence.t -> unit
(** Record one claim. Growable: any non-negative subject id works. *)

val evidence : t -> int -> Evidence.t list
(** All evidence for a store id, in insertion order. *)

val evidence_count : t -> int
(** Total number of claims in the table. *)

val attributed : t -> Corpus.Id_set.t
(** Ids carrying at least one vendor-bearing claim (fresh set). *)

val majority_vendor : (string * int) list -> string option
(** Winner of a vendor vote tally: highest count, ties broken by the
    lexicographically smallest vendor name — deterministic no matter
    the ballot order. *)

val vendor_of : ?use:Evidence.technique list -> t -> int -> string option
(** Merged vendor for an id, per the policy above. [use] restricts
    the vote to the given techniques (default: all) — e.g.
    [~use:[Prime_clique; Shared_prime]] reproduces the labeling
    fallback for records whose certificate matched no subject rule. *)

val model_of : t -> int -> string option
(** Product-line claim accompanying the winning vendor, when any
    (lexicographically smallest across the winning evidence). *)

(** {2 Artifacts}

    Whole-technique outputs that are not per-modulus claims: the
    report renders these directly. A pass deposits at most one of its
    artifact; re-deposits shadow earlier ones. *)

type artifact =
  | Cert_labels of (string, Rules.label option) Hashtbl.t
      (** certificate fingerprint -> subject/content rule label *)
  | Cliques of Ibm_clique.clique list
  | Shared of Shared_prime.t
  | Mitm of Rimon.detection list
  | Bit_error_triage of { suspects : Bignum.Nat.t list; near_corpus : int }
      (** non-well-formed flagged moduli, and how many sit one bit
          flip from a corpus member *)
  | Openssl_table of (string * Openssl_fp.verdict * int) list

val add_artifact : t -> artifact -> unit

val cert_labels : t -> (string, Rules.label option) Hashtbl.t option
val cliques : t -> Ibm_clique.clique list option
val shared : t -> Shared_prime.t option
val mitm : t -> Rimon.detection list option
val bit_error_triage : t -> (Bignum.Nat.t list * int) option
val openssl_table : t -> (string * Openssl_fp.verdict * int) list option

(** {2 Equality and serialization} *)

val equal_evidence : t -> t -> bool
(** Per-id evidence lists are structurally equal (artifacts are not
    compared — they are deterministic functions of the same inputs).
    Used to assert pooled pass execution equals sequential. *)

val save : out_channel -> t -> unit

val load : in_channel -> t
(** @raise Corpus.Io.Corrupt on malformed input. *)
