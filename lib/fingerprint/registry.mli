(** The pass registry and scheduler.

    {!builtin} holds the six techniques of the paper's Section 3.3/4
    as {!Pass.t} values; {!run} executes any pass list over a shared
    {!Pass.Ctx.t}: passes are topologically ordered by their declared
    deps into waves, each wave's passes run concurrently on the
    {!Parallel.Pool}, and every pass's evidence and artifacts are
    merged into one {!Attribution.t} in registration order — so the
    resulting table is identical at any domain count.

    Built-in dependency graph:
    {v
    subject-rules ──┬────────────────┐
    ibm-clique ─────┼─> shared-prime ┼─> openssl-fingerprint
    bit-errors      │                │
    mitm-substitution (independent)  │
    v}
    (wave 1: subject-rules, ibm-clique, bit-errors, mitm-substitution;
    wave 2: shared-prime; wave 3: openssl-fingerprint.) *)

exception Unknown_pass of string
(** A requested or depended-on pass name is not in the given list. *)

val builtin : Pass.t list
(** The six paper techniques, in canonical (merge) order. *)

val find : string -> Pass.t option
(** Look up a builtin pass by name. *)

val select : ?only:string list -> Pass.t list -> Pass.t list
(** [select ~only passes] restricts to the named passes {e closed
    over their deps} (a requested pass always gets the evidence it
    declared it needs), preserving the original order. Without
    [only], the identity.
    @raise Unknown_pass on a name not in [passes]. *)

val schedule : Pass.t list -> Pass.t list list
(** Topological waves: each wave's passes depend only on earlier
    waves, so they may run concurrently. Order within a wave follows
    the input list.
    @raise Unknown_pass on a dep not in the list.
    @raise Invalid_argument on a dependency cycle. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?only:string list ->
  Pass.Ctx.t ->
  Pass.t list ->
  Attribution.t * (string * float) list
(** Execute the (selected) passes and return the merged attribution
    table plus per-pass wall-clock seconds in execution order. With a
    [pool] of size >= 2, waves with several passes run them
    concurrently; the merge is always sequential in registration
    order, so the table is the same either way. *)
