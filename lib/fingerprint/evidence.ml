type technique =
  | Subject_rule
  | Prime_clique
  | Shared_prime
  | Openssl_fingerprint
  | Bit_error
  | Mitm_substitution

let technique_name = function
  | Subject_rule -> "subject-rule"
  | Prime_clique -> "prime-clique"
  | Shared_prime -> "shared-prime"
  | Openssl_fingerprint -> "openssl-fingerprint"
  | Bit_error -> "bit-error"
  | Mitm_substitution -> "mitm-substitution"

let rank = function
  | Subject_rule -> 0
  | Prime_clique -> 1
  | Shared_prime -> 2
  | Openssl_fingerprint -> 3
  | Bit_error -> 4
  | Mitm_substitution -> 5

type t = {
  subject : int;
  technique : technique;
  vendor : string option;
  model_id : string option;
  confidence : float;
  weight : int;
  witnesses : int list;
}

let make ~subject ~technique ?vendor ?model_id ?(confidence = 1.0)
    ?(weight = 1) ?(witnesses = []) () =
  { subject; technique; vendor; model_id; confidence; weight; witnesses }

let equal_opt a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> String.equal a b
  | _ -> false

let equal a b =
  Int.equal a.subject b.subject
  && a.technique = b.technique
  && equal_opt a.vendor b.vendor
  && equal_opt a.model_id b.model_id
  && Float.equal a.confidence b.confidence
  && Int.equal a.weight b.weight
  && List.length a.witnesses = List.length b.witnesses
  && List.for_all2 Int.equal a.witnesses b.witnesses
