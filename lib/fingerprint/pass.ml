module Ctx = struct
  type t = {
    store : Corpus.Store.t;
    corpus : Bignum.Nat.t array;
    findings : Batchgcd.Batch_gcd.finding list;
    factored : Factored.t list;
    factored_index : Factored.t option array;
    unrecovered : Bignum.Nat.t list;
    scans : Netsim.Scanner.scan list;
    page_titles : (string, string) Hashtbl.t;
    cert_fp : X509lite.Certificate.t -> string;
    modulus_bits : int;
  }
end

type result = {
  evidence : Evidence.t list;
  artifacts : Attribution.artifact list;
}

type t = {
  name : string;
  deps : string list;
  doc : string;
  run : Ctx.t -> Attribution.t -> result;
}

let empty_result = { evidence = []; artifacts = [] }
