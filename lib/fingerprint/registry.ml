module Sc = Netsim.Scanner
module Cert = X509lite.Certificate
module Store = Corpus.Store
module BG = Batchgcd.Batch_gcd

exception Unknown_pass of string

let modulus_of_record (r : Sc.host_record) =
  r.Sc.cert.Cert.public_key.Rsa.Keypair.n

(* ------------------------------------------------------------------ *)
(* subject-rules: certificate subject / page-content labeling          *)
(* ------------------------------------------------------------------ *)

(* One rule evaluation per distinct certificate fingerprint. *)
let build_cert_labels (ctx : Pass.Ctx.t) =
  let labels : (string, Rules.label option) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = ctx.Pass.Ctx.cert_fp r.Sc.cert in
          if not (Hashtbl.mem labels fp) then begin
            let page_title = Hashtbl.find_opt ctx.Pass.Ctx.page_titles fp in
            Hashtbl.replace labels fp
              (Rules.of_certificate ?page_title r.Sc.cert)
          end)
        s.Sc.records)
    ctx.Pass.Ctx.scans;
  labels

let subject_run (ctx : Pass.Ctx.t) _attr =
  let labels = build_cert_labels ctx in
  (* Vote per (modulus id, vendor): one vote per host record whose
     certificate matched a rule, exactly the tally the majority label
     used. A model id rides along when any voting certificate carries
     one (smallest lexicographically, for determinism). *)
  let votes : (int, (string, int * string option) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          let fp = ctx.Pass.Ctx.cert_fp r.Sc.cert in
          match Hashtbl.find_opt labels fp with
          | Some (Some { Rules.vendor; model_id }) -> (
            match Store.find ctx.Pass.Ctx.store (modulus_of_record r) with
            | None -> ()
            | Some id ->
              let tally =
                match Hashtbl.find_opt votes id with
                | Some t -> t
                | None ->
                  let t = Hashtbl.create 4 in
                  Hashtbl.replace votes id t;
                  t
              in
              let count, model =
                Option.value ~default:(0, None)
                  (Hashtbl.find_opt tally vendor)
              in
              let model =
                match (model, model_id) with
                | None, m -> m
                | Some a, Some m when String.compare m a < 0 -> Some m
                | m, _ -> m
              in
              Hashtbl.replace tally vendor (count + 1, model))
          | _ -> ())
        s.Sc.records)
    ctx.Pass.Ctx.scans;
  let evidence =
    Hashtbl.fold
      (fun id tally acc ->
        Hashtbl.fold
          (fun vendor (count, model) acc ->
            Evidence.make ~subject:id ~technique:Evidence.Subject_rule ~vendor
              ?model_id:model ~weight:count ()
            :: acc)
          tally acc)
      votes []
  in
  let evidence =
    List.sort
      (fun (a : Evidence.t) (b : Evidence.t) ->
        match Int.compare a.Evidence.subject b.Evidence.subject with
        | 0 ->
          String.compare
            (Option.value ~default:"" a.Evidence.vendor)
            (Option.value ~default:"" b.Evidence.vendor)
        | c -> c)
      evidence
  in
  { Pass.evidence; artifacts = [ Attribution.Cert_labels labels ] }

let subject_rules =
  {
    Pass.name = "subject-rules";
    deps = [];
    doc = "certificate subject and page-content rules (Section 3.3.1)";
    run = subject_run;
  }

(* ------------------------------------------------------------------ *)
(* ibm-clique: tiny-prime-pool detection                               *)
(* ------------------------------------------------------------------ *)

let clique_run (ctx : Pass.Ctx.t) _attr =
  let cliques = Ibm_clique.detect ctx.Pass.Ctx.factored in
  (* Clique membership implies the nine-prime implementation — prior
     knowledge from the 2012 study: the tiny-pool generator is the
     IBM remote management card. *)
  let evidence =
    List.concat_map
      (fun (c : Ibm_clique.clique) ->
        let ids =
          List.filter_map (Store.find ctx.Pass.Ctx.store)
            c.Ibm_clique.moduli
        in
        List.map
          (fun id ->
            let witnesses = List.filter (fun w -> w <> id) ids in
            Evidence.make ~subject:id ~technique:Evidence.Prime_clique
              ~vendor:"IBM" ~confidence:0.95 ~witnesses ())
          ids)
      cliques
  in
  { Pass.evidence; artifacts = [ Attribution.Cliques cliques ] }

let ibm_clique =
  {
    Pass.name = "ibm-clique";
    deps = [];
    doc = "both-primes-shared clique detection, IBM RSA-II (Section 4.1)";
    run = clique_run;
  }

(* ------------------------------------------------------------------ *)
(* bit-errors: non-well-formed modulus triage                          *)
(* ------------------------------------------------------------------ *)

let bit_errors_run (ctx : Pass.Ctx.t) _attr =
  let bits = ctx.Pass.Ctx.modulus_bits in
  let suspects =
    List.filter
      (fun (f : BG.finding) -> Bit_errors.suspicious ~bits f.BG.modulus)
      ctx.Pass.Ctx.findings
  in
  let known n = Store.mem ctx.Pass.Ctx.store n in
  let near_corpus =
    List.length
      (List.filter
         (fun (f : BG.finding) ->
           Bit_errors.bitflip_neighbor ~known f.BG.modulus <> None)
         suspects)
  in
  let evidence =
    List.map
      (fun (f : BG.finding) ->
        (* No vendor claim: the observation excludes the modulus from
           implementation attribution rather than making one. *)
        Evidence.make ~subject:f.BG.index ~technique:Evidence.Bit_error
          ~confidence:0.9 ())
      suspects
  in
  {
    Pass.evidence;
    artifacts =
      [
        Attribution.Bit_error_triage
          {
            suspects = List.map (fun (f : BG.finding) -> f.BG.modulus) suspects;
            near_corpus;
          };
      ];
  }

let bit_errors =
  {
    Pass.name = "bit-errors";
    deps = [];
    doc = "non-well-formed modulus triage, set aside (Section 3.3.5)";
    run = bit_errors_run;
  }

(* ------------------------------------------------------------------ *)
(* mitm-substitution: ISP key substitution                             *)
(* ------------------------------------------------------------------ *)

let mitm_run (ctx : Pass.Ctx.t) _attr =
  let detections = Rimon.detect ctx.Pass.Ctx.scans in
  let evidence =
    List.filter_map
      (fun (d : Rimon.detection) ->
        match Store.find ctx.Pass.Ctx.store d.Rimon.modulus with
        | None -> None
        | Some id ->
          Some
            (Evidence.make ~subject:id ~technique:Evidence.Mitm_substitution
               ~confidence:d.Rimon.invalid_signature_fraction
               ~weight:(List.length d.Rimon.ips) ()))
      detections
  in
  { Pass.evidence; artifacts = [ Attribution.Mitm detections ] }

let mitm_substitution =
  {
    Pass.name = "mitm-substitution";
    deps = [];
    doc = "one key at many IPs with broken signatures (Section 3.3.3)";
    run = mitm_run;
  }

(* ------------------------------------------------------------------ *)
(* shared-prime: pool extrapolation                                    *)
(* ------------------------------------------------------------------ *)

let shared_prime_run (ctx : Pass.Ctx.t) attr =
  (* The pools are seeded with the labels the stronger techniques
     assigned — subject rules first, clique membership second — which
     is why this pass declares both as deps. *)
  let label_of id =
    Attribution.vendor_of
      ~use:[ Evidence.Subject_rule; Evidence.Prime_clique ]
      attr id
  in
  let entries =
    List.map
      (fun (f : Factored.t) ->
        let label =
          match Store.find ctx.Pass.Ctx.store f.Factored.modulus with
          | None -> None
          | Some id -> label_of id
        in
        (f, label))
      ctx.Pass.Ctx.factored
  in
  let shared = Shared_prime.build entries in
  (* Witness map: prime -> (vendor, donor id) for every labeled entry,
     so each extrapolated claim can cite the moduli whose label it
     inherits. *)
  let primes = Store.create ~size:1024 () in
  let donors : (int, (string * int) list) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun ((f : Factored.t), label) ->
      match label with
      | None -> ()
      | Some vendor -> (
        match Store.find ctx.Pass.Ctx.store f.Factored.modulus with
        | None -> ()
        | Some id ->
          List.iter
            (fun p ->
              let pid = Store.intern primes p in
              let prev = Option.value ~default:[] (Hashtbl.find_opt donors pid) in
              Hashtbl.replace donors pid ((vendor, id) :: prev))
            [ f.Factored.p; f.Factored.q ]))
    entries;
  let evidence =
    List.filter_map
      (fun (f : Factored.t) ->
        match Shared_prime.label_modulus shared f with
        | None -> None
        | Some vendor -> (
          match Store.find ctx.Pass.Ctx.store f.Factored.modulus with
          | None -> None
          | Some id ->
            let witnesses =
              List.concat_map
                (fun p ->
                  match Store.find primes p with
                  | None -> []
                  | Some pid ->
                    List.filter_map
                      (fun (v, w) ->
                        if String.equal v vendor && w <> id then Some w
                        else None)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt donors pid)))
                [ f.Factored.p; f.Factored.q ]
            in
            let witnesses = List.sort_uniq Int.compare witnesses in
            Some
              (Evidence.make ~subject:id ~technique:Evidence.Shared_prime
                 ~vendor ~confidence:0.9 ~witnesses ())))
      ctx.Pass.Ctx.factored
  in
  { Pass.evidence; artifacts = [ Attribution.Shared shared ] }

let shared_prime =
  {
    Pass.name = "shared-prime";
    deps = [ "subject-rules"; "ibm-clique" ];
    doc = "shared-prime pool extrapolation of known labels (Section 3.3.2)";
    run = shared_prime_run;
  }

(* ------------------------------------------------------------------ *)
(* openssl-fingerprint: prime-structure classification                 *)
(* ------------------------------------------------------------------ *)

let openssl_run (ctx : Pass.Ctx.t) attr =
  (* Classify each vendor's prime pool under the final merged labels,
     hence the dep on every labeling pass. *)
  let entries =
    List.map
      (fun (f : Factored.t) ->
        let label =
          match Store.find ctx.Pass.Ctx.store f.Factored.modulus with
          | None -> None
          | Some id -> Attribution.vendor_of attr id
        in
        (f, label))
      ctx.Pass.Ctx.factored
  in
  let rows = Openssl_fp.classify_vendors entries in
  { Pass.evidence = []; artifacts = [ Attribution.Openssl_table rows ] }

let openssl_fingerprint =
  {
    Pass.name = "openssl-fingerprint";
    deps = [ "subject-rules"; "ibm-clique"; "shared-prime" ];
    doc = "Mironov OpenSSL prime fingerprint per vendor (Table 5)";
    run = openssl_run;
  }

(* ------------------------------------------------------------------ *)
(* Registry + scheduler                                                *)
(* ------------------------------------------------------------------ *)

let builtin =
  [
    subject_rules; ibm_clique; bit_errors; mitm_substitution; shared_prime;
    openssl_fingerprint;
  ]

let find name =
  List.find_opt (fun p -> String.equal p.Pass.name name) builtin

let select ?only passes =
  match only with
  | None -> passes
  | Some names ->
    let lookup name =
      match List.find_opt (fun p -> String.equal p.Pass.name name) passes with
      | Some p -> p
      | None -> raise (Unknown_pass name)
    in
    let wanted = Hashtbl.create 8 in
    let rec require name =
      if not (Hashtbl.mem wanted name) then begin
        let p = lookup name in
        Hashtbl.replace wanted name ();
        List.iter require p.Pass.deps
      end
    in
    List.iter require names;
    List.filter (fun p -> Hashtbl.mem wanted p.Pass.name) passes

let schedule passes =
  let names = List.map (fun p -> p.Pass.name) passes in
  List.iter
    (fun p ->
      List.iter
        (fun d ->
          if not (List.exists (String.equal d) names) then
            raise (Unknown_pass d))
        p.Pass.deps)
    passes;
  let placed = Hashtbl.create 8 in
  let rec waves remaining =
    if remaining = [] then []
    else begin
      let ready, blocked =
        List.partition
          (fun p -> List.for_all (Hashtbl.mem placed) p.Pass.deps)
          remaining
      in
      if ready = [] then
        invalid_arg "Registry.schedule: dependency cycle among passes";
      List.iter (fun p -> Hashtbl.replace placed p.Pass.name ()) ready;
      ready :: waves blocked
    end
  in
  waves passes

let run ?pool ?only ctx passes =
  let passes = select ?only passes in
  let waves = schedule passes in
  let attr =
    Attribution.create ~size:(Store.size ctx.Pass.Ctx.store) ()
  in
  let times = ref [] in
  List.iter
    (fun wave ->
      let exec p =
        let t0 = Unix.gettimeofday () in
        let r = p.Pass.run ctx attr in
        (p, r, Unix.gettimeofday () -. t0)
      in
      (* Concurrency is per wave: the merge below is sequential and in
         registration order, so the table (and everything derived from
         it) is identical at any pool size. *)
      let results =
        match pool with
        | Some pool when Parallel.Pool.size pool > 1 && List.length wave > 1
          ->
          Array.to_list (Parallel.Pool.map ~pool exec (Array.of_list wave))
        | _ -> List.map exec wave
      in
      List.iter
        (fun (p, (r : Pass.result), dt) ->
          List.iter (Attribution.add attr) r.Pass.evidence;
          List.iter (Attribution.add_artifact attr) r.Pass.artifacts;
          times := (p.Pass.name, dt) :: !times)
        results)
    waves;
  (attr, List.rev !times)
