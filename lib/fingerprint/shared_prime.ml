module Store = Corpus.Store

type t = {
  entries : (Factored.t * string option) list;
  primes : Store.t; (* prime -> dense id *)
  pools : string list array; (* prime id -> vendors *)
}

let build entries =
  (* Intern every prime of every labeled modulus, then tally vendors
     into a dense per-id array. *)
  let primes = Store.create ~size:1024 () in
  List.iter
    (fun ((f : Factored.t), label) ->
      match label with
      | None -> ()
      | Some _ ->
        ignore (Store.intern primes f.Factored.p);
        ignore (Store.intern primes f.Factored.q))
    entries;
  let pools = Array.make (Stdlib.max 1 (Store.size primes)) [] in
  List.iter
    (fun ((f : Factored.t), label) ->
      match label with
      | None -> ()
      | Some vendor ->
        List.iter
          (fun p ->
            let id = Store.intern primes p in
            if not (List.mem vendor pools.(id)) then
              pools.(id) <- vendor :: pools.(id))
          [ f.Factored.p; f.Factored.q ])
    entries;
  { entries; primes; pools }

let vendors_of_prime t p =
  match Store.find t.primes p with Some id -> t.pools.(id) | None -> []

let label_modulus t (f : Factored.t) =
  let vs =
    (* rev_append keeps this allocation-linear; order is irrelevant
       under the sort_uniq *)
    List.sort_uniq compare
      (List.rev_append
         (vendors_of_prime t f.Factored.p)
         (vendors_of_prime t f.Factored.q))
  in
  match vs with [ v ] -> Some v | [] | _ :: _ -> None

let extrapolated t =
  List.filter_map
    (fun (f, label) ->
      match label with
      | Some _ -> None
      | None -> Option.map (fun v -> (f, v)) (label_modulus t f))
    t.entries

let overlaps t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  for id = 0 to Store.size t.primes - 1 do
    let sorted = List.sort compare t.pools.(id) in
    let rec pairs = function
      | a :: rest ->
        List.iter
          (fun b ->
            if not (Hashtbl.mem seen (a, b)) then begin
              Hashtbl.replace seen (a, b) ();
              out := (a, b, Store.get t.primes id) :: !out
            end)
          rest;
        pairs rest
      | [] -> ()
    in
    pairs sorted
  done;
  !out

let entries t = t.entries
