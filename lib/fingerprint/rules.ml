module Dn = X509lite.Dn
module Cert = X509lite.Certificate

type label = { vendor : string; model_id : string option }

let contains = Stringx.contains

let cisco_model ou =
  match ou with
  | "RV082" -> Some "cisco-rv082"
  | "RV120W" -> Some "cisco-rv120w"
  | "RV220W" -> Some "cisco-rv220w"
  | "RV180/180W" -> Some "cisco-rv180"
  | "SA520/540" -> Some "cisco-sa520"
  | _ -> None

let of_certificate ?page_title cert =
  let subject = cert.Cert.subject in
  let cn = Option.value ~default:"" (Dn.common_name subject) in
  let o = Option.value ~default:"" (Dn.organization subject) in
  let ou = Option.value ~default:"" (Dn.organizational_unit subject) in
  let sans = cert.Cert.subject_alt_names in
  let v vendor = Some { vendor; model_id = None } in
  let vm vendor model_id = Some { vendor; model_id = Some model_id } in
  if contains o "Cisco Systems" then
    Some { vendor = "Cisco"; model_id = cisco_model ou }
  else if cn = "system generated" then v "Juniper"
  else if contains o "Hewlett-Packard" then vm "HP" "hp-ilo"
  else if contains o "Innominate" then vm "Innominate" "innominate-mguard"
  else if contains o "Siemens Building Automation" then v "Siemens"
  else if contains o "THOMSON" then vm "Technicolor" "thomson-tg"
  else if
    List.exists (fun s -> contains s "fritz.box") sans
    || Stringx.ends_with ~suffix:".myfritz.net" cn
  then vm "AVM" "fritzbox"
  else if contains o "Cisco-Linksys" then vm "Linksys" "linksys-wrv"
  else if contains o "Fortinet" then vm "Fortinet" "fortinet-fgt"
  else if contains o "ZyXEL" then vm "ZyXEL" "zyxel-zywall"
  else if contains ou "Dell Imaging Group" then vm "Dell" "dell-imaging"
  else if contains o "Kronos" then vm "Kronos" "kronos-intouch"
  else if contains o "Xerox" then vm "Xerox" "xerox-workcentre"
  else if contains o "TP-LINK" then vm "TP-Link" "tplink-tlr"
  else if contains o "ADTRAN" then vm "ADTRAN" "adtran-netvanta"
  else if contains o "D-Link" then vm "D-Link" "dlink-dsr"
  else if contains o "Huawei" then vm "Huawei" "huawei-bu"
  else if contains o "SANGFOR" then vm "Sangfor" "sangfor-m"
  else if contains o "Schmid Telecom" then vm "Schmid Telecom" "schmid-watson"
  else begin
    (* Subject carries nothing; fall back to served content, the way
       the paper identified McAfee SnapGear consoles. *)
    match page_title with
    | Some t when contains t "SnapGear" ->
      vm "McAfee" "mcafee-snapgear"
    | _ -> None
  end

let of_record (r : Netsim.Scanner.host_record) =
  of_certificate ?page_title:r.Netsim.Scanner.page_title
    r.Netsim.Scanner.cert
