module N = Bignum.Nat
module Sc = Netsim.Scanner
module Cert = X509lite.Certificate

type detection = {
  modulus : N.t;
  ips : Netsim.Ipv4.t list;
  distinct_subjects : int;
  invalid_signature_fraction : float;
}

let detect ?(min_ips = 10) scans =
  let store = Corpus.Store.create ~size:4096 () in
  let by_modulus : (int, Sc.host_record list) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          if not r.Sc.is_intermediate then begin
            let id =
              Corpus.Store.intern store r.Sc.cert.Cert.public_key.Rsa.Keypair.n
            in
            Hashtbl.replace by_modulus id
              (r :: Option.value ~default:[] (Hashtbl.find_opt by_modulus id))
          end)
        s.Sc.records)
    scans;
  let out = ref [] in
  Hashtbl.iter
    (fun id records ->
      let ips =
        List.sort_uniq Netsim.Ipv4.compare (List.map (fun r -> r.Sc.ip) records)
      in
      if List.length ips >= min_ips then begin
        let subjects =
          List.sort_uniq compare
            (List.map
               (fun r -> X509lite.Dn.to_string r.Sc.cert.Cert.subject)
               records)
        in
        if List.length subjects >= 2 then begin
          (* Signature check against the certificate's own key: a
             substituted key cannot verify the original signature. *)
          let total = List.length records in
          let invalid =
            List.fold_left
              (fun acc r ->
                if Cert.verify_signature r.Sc.cert r.Sc.cert.Cert.public_key
                then acc
                else acc + 1)
              0 records
          in
          let frac = Float.of_int invalid /. Float.of_int total in
          if frac > 0.5 then
            out :=
              {
                modulus = Corpus.Store.get store id;
                ips;
                distinct_subjects = List.length subjects;
                invalid_signature_fraction = frac;
              }
              :: !out
        end
      end)
    by_modulus;
  List.sort
    (fun a b -> compare (List.length b.ips) (List.length a.ips))
    !out
