(** Shared-prime extrapolation (paper Section 3.3.2): pool the prime
    factors of certificates already identified by subject rules, then
    label any factored modulus built from a pooled prime with the
    pool's vendor. This is how the paper labeled the IP-octet
    Fritz!Box certificates and the vendorless McAfee consoles, and how
    the Dell/Xerox and IBM/Siemens overlaps surfaced. *)

type t

val build : (Factored.t * string option) list -> t
(** [build entries]: each factored modulus with its subject-rule
    vendor, if any. *)

val vendors_of_prime : t -> Bignum.Nat.t -> string list
(** Vendors whose pool contains the prime (usually 0 or 1; 2+ is an
    overlap). *)

val label_modulus : t -> Factored.t -> string option
(** The pool vendor for a factored modulus: the unique vendor owning
    either prime. [None] when unlabeled or ambiguous. *)

val extrapolated : t -> (Factored.t * string) list
(** Every entry that had no subject label but gains one through the
    pools. *)

val overlaps : t -> (string * string * Bignum.Nat.t) list
(** Vendor pairs that share a prime, with a witness prime — the
    Dell/Xerox and IBM/Siemens stories. Each unordered pair reported
    once. *)

val entries : t -> (Factored.t * string option) list
(** The labeled input entries, as given to {!build} — the pools are a
    deterministic function of these, so serializing a pool table means
    serializing its entries and rebuilding. *)
