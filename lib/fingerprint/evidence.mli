(** Typed attribution evidence.

    Every fingerprinting technique reports its conclusions as
    {!t} values — "this store id belongs to this vendor (and maybe
    product line), according to this technique, with these witnesses"
    — which the {!Attribution} table merges under a fixed precedence.
    A technique with nothing vendor-shaped to say (bit-error triage,
    MITM detection) still emits evidence with [vendor = None]: the
    observation is recorded against the modulus but never wins a
    vendor vote. *)

type technique =
  | Subject_rule  (** certificate subject / page-content rules *)
  | Prime_clique  (** tiny-prime-pool clique membership (IBM RSA-II) *)
  | Shared_prime  (** shared-prime pool extrapolation *)
  | Openssl_fingerprint  (** Mironov prime-structure fingerprint *)
  | Bit_error  (** non-well-formed modulus triage *)
  | Mitm_substitution  (** ISP key-substitution detection *)

val technique_name : technique -> string

val rank : technique -> int
(** Merge precedence; smaller is stronger. Subject rules beat clique
    membership beat shared-prime extrapolation beat the remaining
    heuristics — the order the hand-written labeling chain applied. *)

type t = {
  subject : int;  (** store id of the modulus the claim is about *)
  technique : technique;
  vendor : string option;  (** vendor claim; [None] = observation only *)
  model_id : string option;  (** product-line claim, when determinable *)
  confidence : float;
      (** informational strength in [0, 1]; the merge uses technique
          rank and vote weight, never this number *)
  weight : int;  (** vote weight (e.g. host records seen), >= 1 *)
  witnesses : int list;
      (** store ids of moduli supporting the claim (clique co-members,
          pool mates); [] for direct observations *)
}

val make :
  subject:int ->
  technique:technique ->
  ?vendor:string ->
  ?model_id:string ->
  ?confidence:float ->
  ?weight:int ->
  ?witnesses:int list ->
  unit ->
  t
(** Defaults: [confidence = 1.0], [weight = 1], [witnesses = []]. *)

val equal : t -> t -> bool
(** Structural equality, field by field. *)
