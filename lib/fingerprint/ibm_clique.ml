module N = Bignum.Nat
module Store = Corpus.Store

type clique = { primes : N.t list; moduli : N.t list }

(* Union-find over interned prime ids; each factored modulus unions
   its two primes. A component is a tiny-pool clique when several
   moduli have BOTH primes shared with other component members — in
   the shared-first-prime pattern every modulus owns a fresh second
   prime, so no modulus has both primes shared. *)
let detect ?(min_moduli = 3) (factored : Factored.t list) =
  let primes = Store.create ~size:256 () in
  List.iter
    (fun (f : Factored.t) ->
      ignore (Store.intern primes f.Factored.p);
      ignore (Store.intern primes f.Factored.q))
    factored;
  let n = Store.size primes in
  let parent = Array.init n (fun i -> i) in
  let rec find k =
    if parent.(k) = k then k
    else begin
      let root = find parent.(k) in
      parent.(k) <- root;
      root
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  (* Count, per prime, how many factored moduli use it. *)
  let usage = Array.make (Stdlib.max 1 n) 0 in
  List.iter
    (fun (f : Factored.t) ->
      let ip = Store.intern primes f.Factored.p in
      let iq = Store.intern primes f.Factored.q in
      union ip iq;
      usage.(ip) <- usage.(ip) + 1;
      usage.(iq) <- usage.(iq) + 1)
    factored;
  let shared id = usage.(id) >= 2 in
  (* Collect, per component root, the moduli with both primes shared. *)
  let members : (int, Factored.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Factored.t) ->
      let ip = Store.intern primes f.Factored.p in
      let iq = Store.intern primes f.Factored.q in
      if shared ip && shared iq then begin
        let root = find ip in
        Hashtbl.replace members root
          (f :: Option.value ~default:[] (Hashtbl.find_opt members root))
      end)
    factored;
  let cliques = ref [] in
  Hashtbl.iter
    (fun _root (fs : Factored.t list) ->
      let moduli =
        List.sort_uniq N.compare (List.map (fun f -> f.Factored.modulus) fs)
      in
      if List.length moduli >= min_moduli then begin
        let primes =
          List.sort_uniq N.compare
            (List.concat_map
               (fun (f : Factored.t) -> [ f.Factored.p; f.Factored.q ])
               fs)
        in
        cliques := { primes; moduli } :: !cliques
      end)
    members;
  List.sort
    (fun a b -> compare (List.length b.moduli) (List.length a.moduli))
    !cliques
