module Io = Corpus.Io
module Id_set = Corpus.Id_set

type artifact =
  | Cert_labels of (string, Rules.label option) Hashtbl.t
  | Cliques of Ibm_clique.clique list
  | Shared of Shared_prime.t
  | Mitm of Rimon.detection list
  | Bit_error_triage of { suspects : Bignum.Nat.t list; near_corpus : int }
  | Openssl_table of (string * Openssl_fp.verdict * int) list

type t = {
  mutable table : Evidence.t list array; (* reverse insertion order per id *)
  mutable max_id : int; (* 1 + highest subject id seen *)
  mutable count : int;
  mutable artifacts : artifact list; (* newest first *)
}

let create ?(size = 1024) () =
  { table = Array.make (Stdlib.max 1 size) []; max_id = 0; count = 0;
    artifacts = [] }

let ensure t id =
  let n = Array.length t.table in
  if id >= n then begin
    let table = Array.make (Stdlib.max (id + 1) (2 * n)) [] in
    Array.blit t.table 0 table 0 n;
    t.table <- table
  end

let add t (e : Evidence.t) =
  if e.Evidence.subject < 0 then
    invalid_arg "Attribution.add: negative subject id";
  ensure t e.Evidence.subject;
  t.table.(e.Evidence.subject) <- e :: t.table.(e.Evidence.subject);
  t.count <- t.count + 1;
  if e.Evidence.subject >= t.max_id then t.max_id <- e.Evidence.subject + 1

let evidence t id =
  if id < 0 || id >= Array.length t.table then []
  else List.rev t.table.(id)

let evidence_count t = t.count

let attributed t =
  let s = Id_set.create ~size:t.max_id () in
  for id = 0 to t.max_id - 1 do
    if List.exists (fun e -> e.Evidence.vendor <> None) t.table.(id) then
      Id_set.add s id
  done;
  s

(* Highest count wins; equal counts fall to the lexicographically
   smallest vendor name, so the result does not depend on ballot
   order. *)
let majority_vendor votes =
  let best =
    List.fold_left
      (fun acc (v, c) ->
        match acc with
        | Some (v', c') when c' > c || (c' = c && String.compare v' v <= 0) ->
          acc
        | _ -> Some (v, c))
      None votes
  in
  Option.map fst best

(* (vendor, weight-sum) tally preserving first-seen vendor order (the
   order does not affect the majority, but a stable ballot makes the
   function easy to reason about). *)
let tally candidates =
  List.rev
    (List.fold_left
       (fun acc (e, v) ->
         let w = e.Evidence.weight in
         if List.mem_assoc v acc then
           List.map
             (fun (v', c) -> if String.equal v' v then (v', c + w) else (v', c))
             acc
         else (v, w) :: acc)
       [] candidates)

let candidates ?use t id =
  let allowed tech =
    match use with None -> true | Some l -> List.mem tech l
  in
  List.filter_map
    (fun (e : Evidence.t) ->
      match e.Evidence.vendor with
      | Some v when allowed e.Evidence.technique -> Some (e, v)
      | _ -> None)
    (evidence t id)

let best_rank cs =
  List.fold_left
    (fun acc ((e : Evidence.t), _) ->
      Stdlib.min acc (Evidence.rank e.Evidence.technique))
    Stdlib.max_int cs

let vendor_of ?use t id =
  match candidates ?use t id with
  | [] -> None
  | cs ->
    let r = best_rank cs in
    majority_vendor
      (tally
         (List.filter (fun ((e : Evidence.t), _) ->
              Evidence.rank e.Evidence.technique = r)
            cs))

let model_of t id =
  match candidates t id with
  | [] -> None
  | cs -> (
    let r = best_rank cs in
    let cs =
      List.filter (fun ((e : Evidence.t), _) ->
          Evidence.rank e.Evidence.technique = r)
        cs
    in
    match majority_vendor (tally cs) with
    | None -> None
    | Some winner ->
      List.fold_left
        (fun acc ((e : Evidence.t), v) ->
          if not (String.equal v winner) then acc
          else
            match (acc, e.Evidence.model_id) with
            | None, m -> m
            | Some a, Some m when String.compare m a < 0 -> Some m
            | _ -> acc)
        None cs)

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let add_artifact t a = t.artifacts <- a :: t.artifacts

let find_artifact t f =
  List.fold_left
    (fun acc a -> match acc with Some _ -> acc | None -> f a)
    None t.artifacts

let cert_labels t =
  find_artifact t (function Cert_labels h -> Some h | _ -> None)

let cliques t = find_artifact t (function Cliques c -> Some c | _ -> None)
let shared t = find_artifact t (function Shared s -> Some s | _ -> None)
let mitm t = find_artifact t (function Mitm d -> Some d | _ -> None)

let bit_error_triage t =
  find_artifact t (function
    | Bit_error_triage { suspects; near_corpus } -> Some (suspects, near_corpus)
    | _ -> None)

let openssl_table t =
  find_artifact t (function Openssl_table r -> Some r | _ -> None)

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let equal_evidence a b =
  a.count = b.count
  &&
  let n = Stdlib.max a.max_id b.max_id in
  let rec ids id =
    id >= n
    ||
    let ea = evidence a id and eb = evidence b id in
    List.length ea = List.length eb
    && List.for_all2 Evidence.equal ea eb
    && ids (id + 1)
  in
  ids 0

(* ------------------------------------------------------------------ *)
(* Serialization (checkpoint support)                                  *)
(* ------------------------------------------------------------------ *)

let write_opt_string oc = function
  | None -> Io.write_int oc 0
  | Some s ->
    Io.write_int oc 1;
    Io.write_string oc s

let read_opt_string ic =
  match Io.read_int ic with
  | 0 -> None
  | 1 -> Some (Io.read_string ic)
  | k -> raise (Io.Corrupt (Printf.sprintf "bad option tag %d" k))

(* Floats round-trip exactly through the hexadecimal notation. *)
let write_float oc f = Io.write_string oc (Printf.sprintf "%h" f)

let read_float ic =
  let s = Io.read_string ic in
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Io.Corrupt ("bad float " ^ s))

let technique_tag = function
  | Evidence.Subject_rule -> 0
  | Evidence.Prime_clique -> 1
  | Evidence.Shared_prime -> 2
  | Evidence.Openssl_fingerprint -> 3
  | Evidence.Bit_error -> 4
  | Evidence.Mitm_substitution -> 5

let technique_of_tag = function
  | 0 -> Evidence.Subject_rule
  | 1 -> Evidence.Prime_clique
  | 2 -> Evidence.Shared_prime
  | 3 -> Evidence.Openssl_fingerprint
  | 4 -> Evidence.Bit_error
  | 5 -> Evidence.Mitm_substitution
  | k -> raise (Io.Corrupt (Printf.sprintf "bad technique tag %d" k))

let verdict_tag = function
  | Openssl_fp.Satisfies -> 0
  | Openssl_fp.Does_not_satisfy -> 1
  | Openssl_fp.Inconclusive -> 2

let verdict_of_tag = function
  | 0 -> Openssl_fp.Satisfies
  | 1 -> Openssl_fp.Does_not_satisfy
  | 2 -> Openssl_fp.Inconclusive
  | k -> raise (Io.Corrupt (Printf.sprintf "bad verdict tag %d" k))

let write_evidence oc (e : Evidence.t) =
  Io.write_int oc e.Evidence.subject;
  Io.write_int oc (technique_tag e.Evidence.technique);
  write_opt_string oc e.Evidence.vendor;
  write_opt_string oc e.Evidence.model_id;
  write_float oc e.Evidence.confidence;
  Io.write_int oc e.Evidence.weight;
  Io.write_int oc (List.length e.Evidence.witnesses);
  List.iter (Io.write_int oc) e.Evidence.witnesses

let read_evidence ic =
  let subject = Io.read_int ic in
  let technique = technique_of_tag (Io.read_int ic) in
  let vendor = read_opt_string ic in
  let model_id = read_opt_string ic in
  let confidence = read_float ic in
  let weight = Io.read_int ic in
  let nw = Io.read_int ic in
  let witnesses = List.init nw (fun _ -> Io.read_int ic) in
  { Evidence.subject; technique; vendor; model_id; confidence; weight;
    witnesses }

let write_list oc write xs =
  Io.write_int oc (List.length xs);
  List.iter (write oc) xs

let read_list ic read =
  let n = Io.read_int ic in
  List.init n (fun _ -> read ic)

let write_artifact oc = function
  | Cert_labels h ->
    Io.write_int oc 0;
    Io.write_int oc (Hashtbl.length h);
    Hashtbl.iter
      (fun fp label ->
        Io.write_string oc fp;
        match label with
        | None -> Io.write_int oc 0
        | Some { Rules.vendor; model_id } ->
          Io.write_int oc 1;
          Io.write_string oc vendor;
          write_opt_string oc model_id)
      h
  | Cliques cs ->
    Io.write_int oc 1;
    write_list oc
      (fun oc (c : Ibm_clique.clique) ->
        write_list oc Io.write_nat c.Ibm_clique.primes;
        write_list oc Io.write_nat c.Ibm_clique.moduli)
      cs
  | Shared s ->
    Io.write_int oc 2;
    write_list oc
      (fun oc ((f : Factored.t), label) ->
        Io.write_nat oc f.Factored.modulus;
        Io.write_nat oc f.Factored.p;
        Io.write_nat oc f.Factored.q;
        write_opt_string oc label)
      (Shared_prime.entries s)
  | Mitm ds ->
    Io.write_int oc 3;
    write_list oc
      (fun oc (d : Rimon.detection) ->
        Io.write_nat oc d.Rimon.modulus;
        write_list oc
          (fun oc ip -> Io.write_string oc (Netsim.Ipv4.to_string ip))
          d.Rimon.ips;
        Io.write_int oc d.Rimon.distinct_subjects;
        write_float oc d.Rimon.invalid_signature_fraction)
      ds
  | Bit_error_triage { suspects; near_corpus } ->
    Io.write_int oc 4;
    write_list oc Io.write_nat suspects;
    Io.write_int oc near_corpus
  | Openssl_table rows ->
    Io.write_int oc 5;
    write_list oc
      (fun oc (vendor, verdict, n) ->
        Io.write_string oc vendor;
        Io.write_int oc (verdict_tag verdict);
        Io.write_int oc n)
      rows

let read_artifact ic =
  match Io.read_int ic with
  | 0 ->
    let n = Io.read_int ic in
    let h = Hashtbl.create (Stdlib.max 16 n) in
    for _ = 1 to n do
      let fp = Io.read_string ic in
      let label =
        match Io.read_int ic with
        | 0 -> None
        | 1 ->
          let vendor = Io.read_string ic in
          let model_id = read_opt_string ic in
          Some { Rules.vendor; model_id }
        | k -> raise (Io.Corrupt (Printf.sprintf "bad label tag %d" k))
      in
      Hashtbl.replace h fp label
    done;
    Cert_labels h
  | 1 ->
    Cliques
      (read_list ic (fun ic ->
           let primes = read_list ic Io.read_nat in
           let moduli = read_list ic Io.read_nat in
           { Ibm_clique.primes; moduli }))
  | 2 ->
    Shared
      (Shared_prime.build
         (read_list ic (fun ic ->
              let modulus = Io.read_nat ic in
              let p = Io.read_nat ic in
              let q = Io.read_nat ic in
              let label = read_opt_string ic in
              ({ Factored.modulus; p; q }, label))))
  | 3 ->
    Mitm
      (read_list ic (fun ic ->
           let modulus = Io.read_nat ic in
           let ips =
             read_list ic (fun ic -> Netsim.Ipv4.of_string (Io.read_string ic))
           in
           let distinct_subjects = Io.read_int ic in
           let invalid_signature_fraction = read_float ic in
           { Rimon.modulus; ips; distinct_subjects;
             invalid_signature_fraction }))
  | 4 ->
    let suspects = read_list ic Io.read_nat in
    let near_corpus = Io.read_int ic in
    Bit_error_triage { suspects; near_corpus }
  | 5 ->
    Openssl_table
      (read_list ic (fun ic ->
           let vendor = Io.read_string ic in
           let verdict = verdict_of_tag (Io.read_int ic) in
           let n = Io.read_int ic in
           (vendor, verdict, n)))
  | k -> raise (Io.Corrupt (Printf.sprintf "bad artifact tag %d" k))

let save oc t =
  Io.write_int oc t.max_id;
  let nonempty = ref 0 in
  for id = 0 to t.max_id - 1 do
    if t.table.(id) <> [] then incr nonempty
  done;
  Io.write_int oc !nonempty;
  for id = 0 to t.max_id - 1 do
    if t.table.(id) <> [] then begin
      Io.write_int oc id;
      write_list oc write_evidence (evidence t id)
    end
  done;
  write_list oc write_artifact (List.rev t.artifacts)

let load ic =
  let max_id = Io.read_int ic in
  let t = create ~size:(Stdlib.max 1 max_id) () in
  let nonempty = Io.read_int ic in
  for _ = 1 to nonempty do
    let id = Io.read_int ic in
    if id < 0 || id >= Stdlib.max 1 max_id then
      raise (Io.Corrupt (Printf.sprintf "evidence id %d out of range" id));
    List.iter (add t) (read_list ic read_evidence)
  done;
  List.iter (add_artifact t) (read_list ic read_artifact);
  t
