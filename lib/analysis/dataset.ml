module Sc = Netsim.Scanner
module Cert = X509lite.Certificate
module Dn = X509lite.Dn
module Date = X509lite.Date

let exclude_intermediates (scan : Sc.scan) =
  (* Group records by IP; drop any record whose certificate subject is
     the issuer of another certificate at the same address (it is an
     intermediate, not the host certificate). *)
  let by_ip = Hashtbl.create 1024 in
  Array.iter
    (fun (r : Sc.host_record) ->
      Hashtbl.replace by_ip r.Sc.ip
        (r :: Option.value ~default:[] (Hashtbl.find_opt by_ip r.Sc.ip)))
    scan.Sc.records;
  let keep = ref [] in
  Hashtbl.iter
    (fun _ip records ->
      let issuers =
        List.filter_map
          (fun (r : Sc.host_record) ->
            let c = r.Sc.cert in
            if Dn.equal c.Cert.issuer c.Cert.subject then None
            else Some (Dn.to_string c.Cert.issuer))
          records
      in
      (* A record is an intermediate iff its subject is the issuer of
         some other (non-self-signed) certificate at the same IP; the
         detection is purely structural, no [is_intermediate] peeking. *)
      List.iter
        (fun (r : Sc.host_record) ->
          let subj = Dn.to_string r.Sc.cert.Cert.subject in
          if not (List.mem subj issuers) then keep := r :: !keep)
        records)
    by_ip;
  { scan with Sc.records = Array.of_list !keep }

let month_key d =
  let y, m, _ = Date.to_ymd d in
  (y, m)

let source_priority = function
  | Sc.Censys -> 5
  | Sc.Rapid7 -> 4
  | Sc.Ecosystem -> 3
  | Sc.Pq -> 2
  | Sc.Eff -> 1

let representative_monthly scans =
  let best = Hashtbl.create 80 in
  List.iter
    (fun (s : Sc.scan) ->
      let k = month_key s.Sc.scan_date in
      match Hashtbl.find_opt best k with
      | Some (prev : Sc.scan)
        when source_priority prev.Sc.scan_source
             >= source_priority s.Sc.scan_source ->
        ()
      | _ -> Hashtbl.replace best k s)
    scans;
  Hashtbl.fold (fun _ s acc -> s :: acc) best []
  |> List.sort (fun a b -> Date.compare a.Sc.scan_date b.Sc.scan_date)
  |> List.map exclude_intermediates

type stats = {
  host_records : int;
  distinct_certs : int;
  distinct_moduli : int;
}

let fold_records f init scans =
  List.fold_left
    (fun acc (s : Sc.scan) -> Array.fold_left f acc s.Sc.records)
    init scans

let distinct_certs scans =
  let seen = Hashtbl.create 4096 in
  let out = ref [] in
  let n =
    fold_records
      (fun () (r : Sc.host_record) ->
        let fp = Cert.fingerprint r.Sc.cert in
        if not (Hashtbl.mem seen fp) then begin
          Hashtbl.replace seen fp ();
          out := r.Sc.cert :: !out
        end)
      () scans
  in
  ignore n;
  Array.of_list (List.rev !out)

let distinct_moduli scans =
  let seen = Corpus.Store.create ~size:4096 () in
  fold_records
    (fun () (r : Sc.host_record) ->
      ignore (Corpus.Store.intern seen r.Sc.cert.Cert.public_key.Rsa.Keypair.n))
    () scans;
  Corpus.Store.to_array seen

let stats_of_scans scans =
  let host_records =
    List.fold_left (fun acc (s : Sc.scan) -> acc + Array.length s.Sc.records)
      0 scans
  in
  {
    host_records;
    distinct_certs = Array.length (distinct_certs scans);
    distinct_moduli = Array.length (distinct_moduli scans);
  }

let page_title_index scans =
  let tbl = Hashtbl.create 1024 in
  fold_records
    (fun () (r : Sc.host_record) ->
      match r.Sc.page_title with
      | Some t ->
        let fp = Cert.fingerprint r.Sc.cert in
        if not (Hashtbl.mem tbl fp) then Hashtbl.replace tbl fp t
      | None -> ())
    () scans;
  tbl
