type outcome = {
  vendor : string;
  response : Netsim.Vendor.response;
  peak_vulnerable : int;
  final_vulnerable : int;
  decline_fraction : float;
}

let outcomes ~label ~vulnerable scans vendors =
  List.map
    (fun name ->
      let s = Timeseries.vendor ~label ~vulnerable scans name in
      let peak = Timeseries.peak_vulnerable s in
      let final =
        match List.rev s.Timeseries.points with
        | p :: _ -> p.Timeseries.vulnerable
        | [] -> 0
      in
      let decline =
        if peak = 0 then 0.
        else Float.of_int (peak - final) /. Float.of_int peak
      in
      {
        vendor = name;
        response = (Netsim.Vendor.find name).Netsim.Vendor.response;
        peak_vulnerable = peak;
        final_vulnerable = final;
        decline_fraction = decline;
      })
    vendors

let response_strength = function
  | Netsim.Vendor.Public_advisory -> 4.
  | Netsim.Vendor.Private_response -> 3.
  | Netsim.Vendor.Auto_response -> 2.
  | Netsim.Vendor.No_response -> 1.
  | Netsim.Vendor.Not_notified -> 0.

let by_category outs =
  List.filter_map
    (fun resp ->
      let members = List.filter (fun o -> o.response = resp) outs in
      match members with
      | [] -> None
      | _ ->
        let mean =
          List.fold_left (fun acc o -> acc +. o.decline_fraction) 0. members
          /. Float.of_int (List.length members)
        in
        Some (resp, mean, List.length members))
    [
      Netsim.Vendor.Public_advisory;
      Netsim.Vendor.Private_response;
      Netsim.Vendor.Auto_response;
      Netsim.Vendor.No_response;
      Netsim.Vendor.Not_notified;
    ]

(* Average ranks for ties, then Pearson on the ranks. *)
let ranks values =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare values.(a) values.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && values.(order.(!j + 1)) = values.(order.(!i))
    do
      incr j
    done;
    let avg = Float.of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman outs =
  let outs = List.filter (fun o -> o.peak_vulnerable > 0) outs in
  let n = List.length outs in
  if n < 3 then Float.nan
  else begin
    let xs = Array.of_list (List.map (fun o -> response_strength o.response) outs) in
    let ys = Array.of_list (List.map (fun o -> o.decline_fraction) outs) in
    let rx = ranks xs and ry = ranks ys in
    let mean a = Array.fold_left ( +. ) 0. a /. Float.of_int n in
    let mx = mean rx and my = mean ry in
    let cov = ref 0. and vx = ref 0. and vy = ref 0. in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy)
    done;
    if !vx = 0. || !vy = 0. then Float.nan
    else !cov /. Float.sqrt (!vx *. !vy)
  end
