module Sc = Netsim.Scanner
module Date = X509lite.Date

type point = {
  date : Date.t;
  source : Sc.source;
  total : int;
  vulnerable : int;
}

type series = { name : string; points : point list }

let modulus_of (r : Sc.host_record) =
  r.Sc.cert.X509lite.Certificate.public_key.Rsa.Keypair.n

let count ~keep ~vulnerable scans name =
  let points =
    List.map
      (fun (s : Sc.scan) ->
        let total = ref 0 and vuln = ref 0 in
        Array.iter
          (fun (r : Sc.host_record) ->
            if (not r.Sc.is_intermediate) && keep r then begin
              incr total;
              if vulnerable (modulus_of r) then incr vuln
            end)
          s.Sc.records;
        {
          date = s.Sc.scan_date;
          source = s.Sc.scan_source;
          total = !total;
          vulnerable = !vuln;
        })
      scans
  in
  { name; points }

let overall ~vulnerable scans =
  count ~keep:(fun _ -> true) ~vulnerable scans "all hosts"

let vendor ~label ~vulnerable scans vendor_name =
  count
    ~keep:(fun r -> label r = Some vendor_name)
    ~vulnerable scans vendor_name

let model ~model_label ~vulnerable scans model_id =
  count
    ~keep:(fun r -> model_label r = Some model_id)
    ~vulnerable scans model_id

let peak_total s =
  List.fold_left (fun acc p -> Stdlib.max acc p.total) 0 s.points

let peak_vulnerable s =
  List.fold_left (fun acc p -> Stdlib.max acc p.vulnerable) 0 s.points

let value_at s date =
  let best = ref None in
  List.iter
    (fun p ->
      let d = abs (Date.diff_days p.date date) in
      match !best with
      | Some (bd, _) when bd <= d -> ()
      | _ -> if d <= 45 then best := Some (d, p))
    s.points;
  Option.map snd !best

let largest_vulnerable_drop s =
  let rec go prev best = function
    | [] -> best
    | p :: rest ->
      let best =
        match prev with
        | Some q when q.vulnerable - p.vulnerable > 0 -> (
          let drop = q.vulnerable - p.vulnerable in
          match best with
          | Some (_, b) when b >= drop -> best
          | _ -> Some (p.date, drop))
        | _ -> best
      in
      go (Some p) best rest
  in
  go None None s.points
