(* Bechamel-conditions check of the recip bench pair, mirroring
   bench/main.ml's recip_group. *)
module N = Bignum.Nat
open Bechamel

let drbg = Hashes.Drbg.create ~seed:"bench-fixtures" ()
let gen = Hashes.Drbg.gen_fn drbg
let div_den = lazy (N.random_bits gen 150_000)

let with_recip r f =
  let r0 = !N.recip_threshold in
  N.recip_threshold := r;
  Fun.protect ~finally:(fun () -> N.recip_threshold := r0) f

let t name f = Test.make ~name (Staged.stage f)

let () =
  (* correctness first: ladder = division over random sizes *)
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 60 do
    let bits = 2000 + Random.State.int st 12_000 in
    let b = N.random_bits gen bits in
    let b = if N.is_zero b then N.one else b in
    let nl = Array.length (N.to_limbs b) in
    let newton = with_recip 4 (fun () -> N.recip b) in
    let exact = N.div (N.shift_left N.one (2 * nl * N.limb_bits)) b in
    if not (N.equal newton exact) then begin
      Printf.printf "MISMATCH at %d bits\n%!" bits;
      exit 1
    end
  done;
  print_endline "exactness: ok (60 random sizes)";
  ignore (Lazy.force div_den);
  (* simulate the full bench's live heap: retain ~300MB of limb arrays *)
  let ballast =
    if Sys.getenv_opt "BALLAST" = None then [||]
    else Array.init 3000 (fun i ->
        N.random_bits gen (10_000 + (i mod 7) * 1000))
  in
  Printf.printf "ballast: %d nats live\n%!" (Array.length ballast);
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.8) ~kde:None
      ~stabilize:false ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let group =
    Test.make_grouped ~name:"recip"
      [
        t "recip-150kbit-newton" (fun () -> N.recip (Lazy.force div_den));
        t "recip-150kbit-division" (fun () ->
            with_recip max_int (fun () -> N.recip (Lazy.force div_den)));
      ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances group in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name v ->
      let ns =
        match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-32s %8.2f ms\n%!" name (ns /. 1e6))
    results
