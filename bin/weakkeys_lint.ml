(* weakkeys-lint: project-specific static analysis for the weakkeys
   tree. See LINTING.md for the rule catalogue and suppression
   syntax. Exit codes: 0 clean, 1 findings, 2 usage/IO error. *)

let usage =
  "usage: weakkeys_lint [--json] [--list-rules] [path ...]\n\
   \n\
   Lints the given .ml files and directories (recursively). With no\n\
   paths, lints lib, bin, bench and test under the current directory."

let list_rules () =
  List.iter
    (fun (r : Lint.Rules.t) ->
      Printf.printf "%-22s %-7s %s\n    hint: %s\n" r.id
        (Lint.Rules.severity_to_string r.severity)
        r.doc r.hint)
    Lint.Rules.all

let () =
  let json = ref false in
  let listing = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable JSON output");
      ("--list-rules", Arg.Set listing, " print the rule catalogue and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg -> prerr_string msg; exit 2
  | Arg.Help msg -> print_string msg; exit 0);
  if !listing then (list_rules (); exit 0);
  let paths =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]
    | ps -> ps
  in
  match Lint.Engine.lint_paths paths with
  | exception Sys_error msg ->
    Printf.eprintf "weakkeys_lint: %s\n" msg;
    exit 2
  | findings ->
    print_string
      (if !json then Lint.Engine.to_json findings ^ "\n"
       else Lint.Engine.to_text findings);
    exit (if findings = [] then 0 else 1)
