(* weakkeys-lint: project-specific static analysis for the weakkeys
   tree. See LINTING.md for the rule catalogue, the deep analyses and
   the suppression/baseline syntax. Exit codes: 0 clean, 1 findings
   (or stale baseline entries), 2 usage/IO error. *)

let usage =
  "usage: weakkeys_lint [--json] [--list-rules] [--deep]\n\
  \                     [--baseline FILE] [--write-baseline FILE]\n\
  \                     [--cache-dir DIR] [path ...]\n\
   \n\
   Lints the given .ml files and directories (recursively). With no\n\
   paths, lints lib, bin, bench and test under the current directory.\n\
   \n\
   --deep additionally builds the whole-program module graph and runs\n\
   the semantic analyses (layering, pool-capture races, pass-context\n\
   mutation, suppression audit). --baseline compares findings against\n\
   a committed baseline: only findings missing from it — or baselined\n\
   findings that no longer occur (stale entries) — fail the run.\n\
   --write-baseline records the current findings as the new baseline."

let list_rules () =
  List.iter
    (fun (r : Lint.Rules.t) ->
      Printf.printf "%-26s %-7s %s\n    hint: %s\n" r.id
        (Lint.Rules.severity_to_string r.severity)
        r.doc r.hint)
    (Lint.Rules.all @ Lint.Rules.deep)

let triple (f : Lint.Engine.finding) = (f.rule, f.path, f.message)

let () =
  let json = ref false in
  let listing = ref false in
  let deep = ref false in
  let baseline_file = ref "" in
  let write_baseline = ref "" in
  let cache_dir = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " machine-readable JSON output");
      ("--list-rules", Arg.Set listing, " print the rule catalogue and exit");
      ("--deep", Arg.Set deep, " run the whole-program semantic analyses");
      ( "--baseline",
        Arg.Set_string baseline_file,
        "FILE fail only on findings not in FILE, and on stale entries" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE record current findings as the new baseline and exit" );
      ( "--cache-dir",
        Arg.Set_string cache_dir,
        "DIR content-addressed symbol-summary cache (deep mode)" );
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg -> prerr_string msg; exit 2
  | Arg.Help msg -> print_string msg; exit 0);
  if !listing then (list_rules (); exit 0);
  let paths =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]
    | ps -> ps
  in
  let cache_dir = if !cache_dir = "" then None else Some !cache_dir in
  match Lint.Engine.lint_paths ~deep:!deep ?cache_dir paths with
  | exception Sys_error msg ->
    Printf.eprintf "weakkeys_lint: %s\n" msg;
    exit 2
  | findings ->
    if !write_baseline <> "" then begin
      Lint.Baseline.save !write_baseline
        (Lint.Baseline.of_findings
           ~justification:"recorded by --write-baseline; justify or fix"
           (List.map triple findings));
      Printf.printf "weakkeys-lint: wrote %d baseline entr%s to %s\n"
        (List.length findings)
        (if List.length findings = 1 then "y" else "ies")
        !write_baseline;
      exit 0
    end;
    if !baseline_file = "" then begin
      print_string
        (if !json then Lint.Engine.to_json findings ^ "\n"
         else Lint.Engine.to_text findings);
      exit (if findings = [] then 0 else 1)
    end
    else begin
      match Lint.Baseline.load !baseline_file with
      | Error msg ->
        Printf.eprintf "weakkeys_lint: baseline %s: %s\n" !baseline_file msg;
        exit 2
      | Ok base ->
        let cmp = Lint.Baseline.compare_run base (List.map triple findings) in
        let fresh_keys = Hashtbl.create 16 in
        List.iter
          (fun (r, p, m) -> Hashtbl.replace fresh_keys (r, p, m) ())
          cmp.Lint.Baseline.fresh;
        let fresh_findings =
          (* all occurrences of fresh triples, in run order *)
          List.filter (fun f -> Hashtbl.mem fresh_keys (triple f)) findings
        in
        if !json then print_string (Lint.Engine.to_json fresh_findings ^ "\n")
        else begin
          print_string (Lint.Engine.to_text fresh_findings);
          List.iter
            (fun (e : Lint.Baseline.entry) ->
              Printf.printf
                "stale baseline entry: [%s] %s: %s (no longer fires; remove \
                 it)\n"
                e.rule e.path e.message)
            cmp.Lint.Baseline.stale
        end;
        exit
          (if fresh_findings = [] && cmp.Lint.Baseline.stale = [] then 0 else 1)
    end
