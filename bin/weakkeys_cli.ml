(* The weakkeys command-line tool.

   Subcommands:
     report  - run the full study and print every table and figure
     table   - print one of the paper's tables (1-5)
     figure  - print one of the paper's figures (1-10)
     factor  - batch-GCD a file of hex moduli (one per line)
     ingest  - batch-GCD a moduli file and write a checkpoint directory
     extend  - fold new moduli into an existing checkpoint incrementally
     keygen  - generate demonstration keys under an entropy profile
     world   - build the simulated internet and print summary stats *)

module N = Bignum.Nat
let ( let* ) = Result.bind
let _ = ( let* )

open Cmdliner

(* ------------- shared options ------------- *)

let seed_arg =
  let doc = "World seed; everything is a deterministic function of it." in
  Arg.(value & opt string "weakkeys-imc16" & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc =
    "Population scale. 1.0 is the calibrated full world (minutes of \
     compute); 0.05 is a quick look."
  in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"SCALE" ~doc)

let k_arg =
  let doc = "Subset count for the distributed batch GCD." in
  Arg.(value & opt int 16 & info [ "k" ] ~docv:"K" ~doc)

let shards_arg =
  let doc =
    "Run the batch GCD over an id-range-sharded arena corpus with at most \
     this many shards (a power of two). Findings are identical to the \
     unsharded path; checkpoints become mapped arena directories that \
     reopen in O(shards)."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"S" ~doc)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let checked_shards = function
  | None -> None
  | Some s when is_pow2 s -> Some s
  | Some s ->
    Printf.eprintf "weakkeys: --shards %d is not a power of two\n%!" s;
    exit 2

(* Power-of-two stride giving at most [shards] shards over [n] ids. *)
let stride_for ~shards n =
  let per = (Stdlib.max n 1 + shards - 1) / shards in
  let rec pow2 s = if s >= per then s else pow2 (2 * s) in
  pow2 1

let backend_arg =
  let doc =
    "Batch-GCD backend: tree (Bernstein remainder trees), ksubset (the \
     paper's k-subset split), or all_to_all (Pelofske node-pair pruning). \
     Findings are identical across backends; see the 'backends' \
     subcommand. Default: ksubset seeding for flat runs, the per-shard \
     size policy for sharded ones."
  in
  Arg.(value & opt (some string) None & info [ "backend" ] ~docv:"NAME" ~doc)

let checked_backend = function
  | None -> None
  | Some name -> (
    match Batchgcd.Backend.find name with
    | Some _ -> Some name
    | None ->
      Printf.eprintf "weakkeys: unknown backend `%s` (available: %s)\n%!" name
        (String.concat ", " (Batchgcd.Backend.names ()));
      exit 2)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let config_of seed scale =
  { Netsim.World.default_config with Netsim.World.seed; scale }

let progress_of quiet =
  if quiet then fun _ -> () else fun m -> Printf.eprintf "[weakkeys] %s\n%!" m

let run_pipeline ?shards ?backend ?checkpoint_dir ?only_passes seed scale k
    quiet =
  Weakkeys.Pipeline.run ~progress:(progress_of quiet) ~k ?shards ?backend
    ?checkpoint_dir ?only_passes (config_of seed scale)

(* ------------- report ------------- *)

let ckpt_opt_arg =
  let doc =
    "Checkpoint directory. The batch-GCD stage is saved there and restored \
     on a rerun over the identical corpus instead of recomputing."
  in
  Arg.(value & opt (some string) None & info [ "ckpt" ] ~docv:"DIR" ~doc)

let only_pass_arg =
  let doc =
    "Run only the named attribution passes (comma-separated; see the \
     'passes' subcommand), automatically closed over their declared \
     dependencies. Report sections owned by an excluded pass render as \
     skipped."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "only-pass" ] ~docv:"NAME,..." ~doc)

let only_passes_of = function
  | None -> None
  | Some s ->
    Some
      (List.filter_map
         (fun name ->
           let name = String.trim name in
           if name = "" then None else Some name)
         (String.split_on_char ',' s))

let report_cmd =
  let run seed scale k shards backend quiet ckpt only_pass =
    match
      run_pipeline ?shards:(checked_shards shards)
        ?backend:(checked_backend backend) ?checkpoint_dir:ckpt
        ?only_passes:(only_passes_of only_pass) seed scale k quiet
    with
    | exception Fingerprint.Registry.Unknown_pass name ->
      Printf.eprintf
        "weakkeys: unknown attribution pass `%s` (list them with \
         `weakkeys passes`)\n%!"
        name;
      exit 2
    | p ->
      if not quiet then
        List.iter
          (fun (tm : Weakkeys.Stage.timing) ->
            Printf.eprintf "[weakkeys] stage %-12s %6.2fs%s\n%!"
              tm.Weakkeys.Stage.stage tm.Weakkeys.Stage.seconds
              (if tm.Weakkeys.Stage.restored then " (restored)" else ""))
          p.Weakkeys.Pipeline.timings;
      print_string (Weakkeys.Report.full_report p)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Run the full study: every table and figure.")
    Term.(
      const run $ seed_arg $ scale_arg $ k_arg $ shards_arg $ backend_arg
      $ quiet_arg $ ckpt_opt_arg $ only_pass_arg)

(* ------------- table / figure ------------- *)

let table_cmd =
  let idx =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Table 1-5.")
  in
  let run n seed scale k quiet =
    if n = 2 then print_string (Weakkeys.Report.table2 ())
    else begin
      let p = run_pipeline seed scale k quiet in
      let f =
        match n with
        | 1 -> Weakkeys.Report.table1
        | 3 -> Weakkeys.Report.table3
        | 4 -> Weakkeys.Report.table4
        | 5 -> Weakkeys.Report.table5
        | _ -> fun _ -> "no such table (1-5)\n"
      in
      print_string (f p)
    end
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print one of the paper's tables.")
    Term.(const run $ idx $ seed_arg $ scale_arg $ k_arg $ quiet_arg)

let figure_cmd =
  let idx =
    Arg.(
      required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Figure 1-10.")
  in
  let run n seed scale k quiet =
    let p = run_pipeline seed scale k quiet in
    let f =
      match n with
      | 1 -> Weakkeys.Report.figure1
      | 2 -> Weakkeys.Report.figure2
      | 3 -> Weakkeys.Report.figure3
      | 4 -> Weakkeys.Report.figure4
      | 5 -> Weakkeys.Report.figure5
      | 6 -> Weakkeys.Report.figure6
      | 7 -> Weakkeys.Report.figure7
      | 8 -> Weakkeys.Report.figure8
      | 9 -> Weakkeys.Report.figure9
      | 10 -> Weakkeys.Report.figure10
      | _ -> fun _ -> "no such figure (1-10)\n"
    in
    print_string (f p)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Print one of the paper's figures.")
    Term.(const run $ idx $ seed_arg $ scale_arg $ k_arg $ quiet_arg)

(* ------------- factor / ingest / extend ------------- *)

let moduli_file_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"File of moduli, one per line, hex (0x optional) or decimal. \
              Use - for stdin.")

let read_moduli file =
  let ic = if file = "-" then stdin else open_in file in
  let moduli = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         let n =
           if String.length line > 2 && line.[0] = '0' && line.[1] = 'x' then
             N.of_string line
           else if String.exists (function 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) line
           then N.of_string ("0x" ^ line)
           else N.of_string line
         in
         moduli := n :: !moduli
       end
     done
   with End_of_file -> if file <> "-" then close_in ic);
  Array.of_list (List.rev !moduli)

let print_findings ~total findings =
  Printf.printf "# %d of %d moduli share factors\n" (List.length findings) total;
  List.iter
    (fun f ->
      Printf.printf "%s divisor=%s\n"
        (N.to_hex f.Batchgcd.Batch_gcd.modulus)
        (N.to_hex f.Batchgcd.Batch_gcd.divisor))
    findings

let factor_cmd =
  let run file k backend =
    let arr = Batchgcd.Batch_gcd.dedup (read_moduli file) in
    let b =
      match checked_backend backend with
      | None | Some "ksubset" -> Batchgcd.Backend.ksubset_k k
      | Some name -> Batchgcd.Backend.get name
    in
    Printf.eprintf
      "[weakkeys] batch GCD over %d distinct moduli (backend=%s)\n%!"
      (Array.length arr) b.Batchgcd.Backend.name;
    let findings = Batchgcd.Backend.factor b arr in
    print_findings ~total:(Array.length arr) findings
  in
  Cmd.v
    (Cmd.info "factor" ~doc:"Batch-GCD a file of RSA moduli.")
    Term.(const run $ moduli_file_arg $ k_arg $ backend_arg)

(* [ingest] and [extend] keep the product-tree forest of
   [Batchgcd.Incremental] in DIR/incremental.ckpt, so folding next
   month's moduli in costs one delta tree plus remainder descents
   instead of a full recompute. With --shards the state is instead a
   [Batchgcd.Sharded] arena directory (mapped limb arenas + one forest
   checkpoint per shard) that reopens in O(shards); [extend]
   auto-detects which form a directory holds. *)

let ckpt_req_arg =
  let doc = "Checkpoint directory holding the cached batch-GCD state." in
  Arg.(required & opt (some string) None & info [ "ckpt" ] ~docv:"DIR" ~doc)

let state_path dir = Filename.concat dir "incremental.ckpt"

let save_state dir inc =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = state_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Batchgcd.Incremental.save oc inc;
  close_out oc;
  Sys.rename tmp path;
  path

let load_state dir =
  let ic = open_in_bin (state_path dir) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Batchgcd.Incremental.load ic)

let ingest_cmd =
  let run ckpt file k shards backend =
    let arr = Batchgcd.Batch_gcd.dedup (read_moduli file) in
    let backend = checked_backend backend in
    match checked_shards shards with
    | Some shards ->
      let stride = stride_for ~shards (Array.length arr) in
      Printf.eprintf
        "[weakkeys] ingesting %d distinct moduli (sharded, stride=%d)\n%!"
        (Array.length arr) stride;
      let sh = Batchgcd.Sharded.create ?backend ~stride arr in
      List.iter
        (fun (name, jobs) ->
          Printf.eprintf "[weakkeys] shard backend %-10s %d shards\n%!" name
            jobs)
        (Batchgcd.Sharded.backend_uses sh);
      Batchgcd.Sharded.save_dir sh ckpt;
      Printf.eprintf "[weakkeys] wrote %s (%d arena shards)\n%!" ckpt
        (Batchgcd.Sharded.shard_count sh);
      print_findings
        ~total:(Batchgcd.Sharded.corpus_size sh)
        (Batchgcd.Sharded.findings sh)
    | None ->
      Printf.eprintf "[weakkeys] ingesting %d distinct moduli (k=%d%s)\n%!"
        (Array.length arr) k
        (match backend with None -> "" | Some b -> ", backend=" ^ b);
      let inc = Batchgcd.Incremental.create ?backend ~k arr in
      let path = save_state ckpt inc in
      Printf.eprintf "[weakkeys] wrote %s (%d segments)\n%!" path
        (Batchgcd.Incremental.segment_count inc);
      print_findings
        ~total:(Batchgcd.Incremental.corpus_size inc)
        (Batchgcd.Incremental.findings inc)
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Batch-GCD a file of RSA moduli and cache the product-tree forest \
          in a checkpoint directory for later 'extend' runs. With --shards, \
          the corpus is stored as mapped limb arenas sharded by id range.")
    Term.(
      const run $ ckpt_req_arg $ moduli_file_arg $ k_arg $ shards_arg
      $ backend_arg)

let extend_sharded ?backend ckpt file =
  let sh = Batchgcd.Sharded.load_dir ckpt in
  let old_size = Batchgcd.Sharded.corpus_size sh in
  let old_findings = List.length (Batchgcd.Sharded.findings sh) in
  (* Dedup against the mapped corpus directly — no rebuild pass. *)
  let seen = Corpus.Store.create ~size:1024 () in
  let fresh = ref [] in
  Array.iter
    (fun m ->
      if Batchgcd.Sharded.find sh m = None then begin
        let before = Corpus.Store.size seen in
        if Corpus.Store.intern seen m >= before then fresh := m :: !fresh
      end)
    (read_moduli file);
  let fresh = Array.of_list (List.rev !fresh) in
  Printf.eprintf
    "[weakkeys] extending %d-modulus sharded corpus with %d new moduli\n%!"
    old_size (Array.length fresh);
  let sh = Batchgcd.Sharded.extend ?backend sh fresh in
  List.iter
    (fun (name, jobs) ->
      Printf.eprintf "[weakkeys] delta backend %-10s %d chunks\n%!" name jobs)
    (Batchgcd.Sharded.backend_uses sh);
  Batchgcd.Sharded.save_dir sh ckpt;
  Printf.eprintf "[weakkeys] wrote %s (%d arena shards, +%d findings)\n%!" ckpt
    (Batchgcd.Sharded.shard_count sh)
    (List.length (Batchgcd.Sharded.findings sh) - old_findings);
  print_findings
    ~total:(Batchgcd.Sharded.corpus_size sh)
    (Batchgcd.Sharded.findings sh)

let extend_cmd =
  let run ckpt file backend =
    let backend = checked_backend backend in
    if Batchgcd.Sharded.is_dir_checkpoint ckpt then
      extend_sharded ?backend ckpt file
    else begin
      let inc = load_state ckpt in
      let old_size = Batchgcd.Incremental.corpus_size inc in
      let old_findings = List.length (Batchgcd.Incremental.findings inc) in
      (* Dedup the delta against everything already in the corpus. *)
      let store = Corpus.Store.create ~size:(2 * old_size) () in
      Array.iter
        (fun m -> ignore (Corpus.Store.intern store m))
        (Batchgcd.Incremental.corpus inc);
      let fresh = ref [] in
      Array.iter
        (fun m ->
          let before = Corpus.Store.size store in
          if Corpus.Store.intern store m >= before then fresh := m :: !fresh)
        (read_moduli file);
      let fresh = Array.of_list (List.rev !fresh) in
      Printf.eprintf
        "[weakkeys] extending %d-modulus corpus with %d new moduli\n%!"
        old_size (Array.length fresh);
      let inc =
        match Batchgcd.Incremental.extend ?backend inc fresh with
        | inc -> inc
        | exception Invalid_argument msg ->
          Printf.eprintf "weakkeys: %s\n%!" msg;
          exit 2
      in
      let path = save_state ckpt inc in
      Printf.eprintf "[weakkeys] wrote %s (%d segments, +%d findings)\n%!" path
        (Batchgcd.Incremental.segment_count inc)
        (List.length (Batchgcd.Incremental.findings inc) - old_findings);
      print_findings
        ~total:(Batchgcd.Incremental.corpus_size inc)
        (Batchgcd.Incremental.findings inc)
    end
  in
  Cmd.v
    (Cmd.info "extend"
       ~doc:
         "Fold new moduli into a checkpointed corpus via incremental batch \
          GCD; no cached product tree is rebuilt, findings match a \
          from-scratch run over the union. Sharded arena checkpoints are \
          auto-detected and extended in place.")
    Term.(const run $ ckpt_req_arg $ moduli_file_arg $ backend_arg)

(* ------------- keygen ------------- *)

let keygen_cmd =
  let count =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of keys.")
  in
  let bits =
    Arg.(value & opt int 128 & info [ "bits" ] ~docv:"BITS" ~doc:"Modulus size.")
  in
  let entropy =
    Arg.(
      value & opt int 4
      & info [ "boot-entropy" ] ~docv:"BITS"
          ~doc:"Boot entropy bits of the simulated device (64+ = healthy).")
  in
  let run count bits entropy =
    let profile =
      if entropy >= 64 then Entropy.Device_rng.healthy "cli"
      else Entropy.Device_rng.vulnerable_shared_prime "cli" ~bits:entropy
    in
    for i = 1 to count do
      let rng =
        Entropy.Device_rng.boot profile
          ~device_unique:(Printf.sprintf "cli-%d" i)
          ~boot_state:(i * 6151)
      in
      let k = Rsa.Keypair.generate_on_device ~rng ~bits () in
      Printf.printf "%s\n" (N.to_hex k.Rsa.Keypair.pub.Rsa.Keypair.n)
    done
  in
  Cmd.v
    (Cmd.info "keygen"
       ~doc:
         "Generate device keys under an entropy profile (pipe into 'factor' \
          to reproduce the attack).")
    Term.(const run $ count $ bits $ entropy)

(* ------------- export ------------- *)

let export_cmd =
  let out =
    Arg.(
      value & opt string "weakkeys-export"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory (created).")
  in
  let run seed scale k quiet out =
    let p = run_pipeline seed scale k quiet in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let write name content =
      let oc = open_out (Filename.concat out name) in
      output_string oc content;
      close_out oc;
      Printf.eprintf "[weakkeys] wrote %s\n%!" (Filename.concat out name)
    in
    write "host_records.csv"
      (Analysis.Export.host_records_csv p.Weakkeys.Pipeline.scans);
    write "moduli.txt" (Analysis.Export.moduli_lines p.Weakkeys.Pipeline.corpus);
    write "findings.csv" (Analysis.Export.findings_csv p.Weakkeys.Pipeline.findings);
    write "overall.csv"
      (Analysis.Export.series_csv
         (Analysis.Timeseries.overall
            ~vulnerable:(Weakkeys.Pipeline.is_vulnerable p)
            p.Weakkeys.Pipeline.monthly));
    List.iter
      (fun vendor ->
        let fname =
          "vendor_"
          ^ String.map (fun c -> if c = ' ' then '_' else Char.lowercase_ascii c) vendor
          ^ ".csv"
        in
        write fname
          (Analysis.Export.series_csv
             (Analysis.Timeseries.vendor
                ~label:(Weakkeys.Pipeline.vendor_of_record p)
                ~vulnerable:(Weakkeys.Pipeline.is_vulnerable p)
                p.Weakkeys.Pipeline.monthly vendor)))
      [ "Juniper"; "Innominate"; "IBM"; "Cisco"; "HP"; "Technicolor"; "AVM";
        "Linksys"; "Fortinet"; "ZyXEL"; "Dell"; "Kronos"; "Xerox"; "McAfee";
        "TP-Link"; "ADTRAN"; "D-Link"; "Huawei"; "Sangfor"; "Schmid Telecom" ]
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Run the study and export records, moduli, findings and series \
             as CSV/text files.")
    Term.(const run $ seed_arg $ scale_arg $ k_arg $ quiet_arg $ out)

(* ------------- passes ------------- *)

let passes_cmd =
  let run () =
    Printf.printf "%-22s %-38s %s\n" "PASS" "DEPENDS ON" "DESCRIPTION";
    List.iter
      (fun (p : Fingerprint.Pass.t) ->
        Printf.printf "%-22s %-38s %s\n" p.Fingerprint.Pass.name
          (match p.Fingerprint.Pass.deps with
          | [] -> "-"
          | deps -> String.concat ", " deps)
          p.Fingerprint.Pass.doc)
      Fingerprint.Registry.builtin
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:
         "List the registered attribution passes with their dependencies \
          (usable with 'report --only-pass').")
    Term.(const run $ const ())

(* ------------- backends ------------- *)

let backends_cmd =
  let run () =
    Printf.printf "%-11s %-12s %-8s %s\n" "BACKEND" "INCREMENTAL" "SHARDED"
      "DESCRIPTION";
    List.iter
      (fun (b : Batchgcd.Backend.t) ->
        Printf.printf "%-11s %-12s %-8s %s\n" b.Batchgcd.Backend.name
          (if b.Batchgcd.Backend.caps.Batchgcd.Backend.incremental then "yes"
           else "no")
          (if b.Batchgcd.Backend.caps.Batchgcd.Backend.sharded then "yes"
           else "no")
          b.Batchgcd.Backend.doc)
      Batchgcd.Backend.builtin;
    Printf.printf
      "\nSelection (sharded sweeps and extend deltas): --backend, then the\n\
       WEAKKEYS_BACKEND environment variable, then the size threshold —\n\
       all_to_all at or below %d moduli (WEAKKEYS_ALL_TO_ALL_THRESHOLD),\n\
       tree above. Findings are identical across backends.\n"
      (Batchgcd.Backend.all_to_all_threshold ())
  in
  Cmd.v
    (Cmd.info "backends"
       ~doc:
         "List the registered batch-GCD backends with their capability \
          flags (usable with --backend on report/factor/ingest/extend).")
    Term.(const run $ const ())

(* ------------- world ------------- *)

let world_cmd =
  let run seed scale quiet =
    let w = Netsim.World.build ~progress:(progress_of quiet) (config_of seed scale) in
    let devs = Netsim.World.devices w in
    Printf.printf "devices ever: %d\n" (Array.length devs);
    Printf.printf "distinct TLS moduli: %d\n"
      (Array.length (Netsim.World.all_tls_moduli w));
    let truth = Netsim.World.factorable_ground_truth w in
    let weak =
      Array.fold_left
        (fun acc m -> if truth m then acc + 1 else acc)
        0
        (Netsim.World.all_tls_moduli w)
    in
    Printf.printf "ground-truth factorable moduli: %d\n" weak;
    let per_model = Hashtbl.create 32 in
    Array.iter
      (fun d ->
        let id = d.Netsim.World.model.Netsim.Device_model.id in
        Hashtbl.replace per_model id
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_model id)))
      devs;
    Hashtbl.fold (fun id n acc -> (id, n) :: acc) per_model []
    |> List.sort compare
    |> List.iter (fun (id, n) -> Printf.printf "  %-20s %6d\n" id n)
  in
  Cmd.v
    (Cmd.info "world" ~doc:"Build the simulated internet and print stats.")
    Term.(const run $ seed_arg $ scale_arg $ quiet_arg)

let () =
  let doc =
    "Reproduction of 'Weak Keys Remain Widespread in Network Devices' (IMC \
     2016)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "weakkeys" ~version:"1.0.0" ~doc)
          [ report_cmd; table_cmd; figure_cmd; factor_cmd; ingest_cmd;
            extend_cmd; keygen_cmd; passes_cmd; backends_cmd; world_cmd;
            export_cmd ]))
