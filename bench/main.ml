(* Benchmark and reproduction harness.

   Two halves:

   1. Bechamel timing benches — one group per experiment: the Section
      3.2 batch-GCD comparison (naive / single tree / k subsets, and
      the k sweep behind Figure 2), the backend shootout (tree /
      ksubset / all-to-all across corpus size and key size, reduced to
      backend_win_region in the JSON), plus the DESIGN.md ablations
      (Karatsuba threshold, Burnikel-Ziegler vs Knuth division, binary
      vs Euclidean GCD, OpenSSL-style vs plain key generation) and
      substrate throughputs.

   2. Regeneration of every table and figure of the paper, by running
      the full pipeline on the simulated internet and printing the
      same rows/series the paper reports.

   The timing half also emits a machine-readable BENCH_batchgcd.json
   (per-kernel ns plus the sequential-vs-parallel tree speedups and
   the incremental-ingest speedup) so the perf trajectory of the
   batch-GCD kernels is tracked PR over PR.

   Environment knobs:
     WEAKKEYS_BENCH_SCALE   world scale for part 2 (default 0.15)
     WEAKKEYS_BENCH_JSON    output path (default BENCH_batchgcd.json)
     WEAKKEYS_DOMAINS       parallel pool width (see Parallel.Pool)
     WEAKKEYS_BENCH_SKIP_TIMING / WEAKKEYS_BENCH_SKIP_REPORT *)

module N = Bignum.Nat
open Bechamel

let drbg = Hashes.Drbg.create ~seed:"bench-fixtures" ()
let gen = Hashes.Drbg.gen_fn drbg

(* ---------------- fixtures ---------------- *)

let nat_of_bits bits = N.random_bits gen bits

let corpus_at ~bits ~n ~planted =
  let half = Stdlib.max 16 (bits / 2) in
  let shared = Bignum.Prime.generate ~gen ~bits:half in
  Array.init n (fun i ->
      if planted > 0 && i mod (Stdlib.max 1 (n / planted)) = 0 then
        N.mul shared (Bignum.Prime.generate ~gen ~bits:half)
      else
        N.mul
          (Bignum.Prime.generate ~gen ~bits:half)
          (Bignum.Prime.generate ~gen ~bits:half))

let corpus ~n ~planted = corpus_at ~bits:96 ~n ~planted

let moduli_512 = lazy (corpus ~n:512 ~planted:16)
let moduli_2048 = lazy (corpus ~n:2048 ~planted:32)
let moduli_1792 = lazy (Array.sub (Lazy.force moduli_2048) 0 1792)
let delta_256 = lazy (Array.sub (Lazy.force moduli_2048) 1792 256)
let big_a = lazy (nat_of_bits 200_000)
let big_b = lazy (nat_of_bits 200_000)
let div_num = lazy (nat_of_bits 400_000)
let div_den = lazy (nat_of_bits 150_000)
let gcd_a = lazy (nat_of_bits 4096)
let gcd_b = lazy (nat_of_bits 4096)
let msg_1k = String.init 1024 (fun i -> Char.chr (i land 0xff))

(* Pin the kernel dispatch ladder for one timed closure; every knob
   not passed keeps its current (possibly env-overridden) value. *)
let with_kernels ?kara ?toom ?ntt ?bz ?recip ?barrett ?par ?hgcd f =
  let k0 = !N.karatsuba_threshold
  and t0 = !N.toom3_threshold
  and n0 = !N.ntt_threshold
  and b0 = !N.burnikel_ziegler_threshold
  and r0 = !N.recip_threshold
  and ba0 = !N.barrett_threshold
  and p0 = !N.parallel_mul_threshold
  and h0 = !N.hgcd_threshold in
  let set r v = Option.iter (fun v -> r := v) v in
  set N.karatsuba_threshold kara;
  set N.toom3_threshold toom;
  set N.ntt_threshold ntt;
  set N.burnikel_ziegler_threshold bz;
  set N.recip_threshold recip;
  set N.barrett_threshold barrett;
  set N.parallel_mul_threshold par;
  set N.hgcd_threshold hgcd;
  Fun.protect
    ~finally:(fun () ->
      N.karatsuba_threshold := k0;
      N.toom3_threshold := t0;
      N.ntt_threshold := n0;
      N.burnikel_ziegler_threshold := b0;
      N.recip_threshold := r0;
      N.barrett_threshold := ba0;
      N.parallel_mul_threshold := p0;
      N.hgcd_threshold := h0)
    f

let with_thresholds km bz f = with_kernels ~kara:km ~bz f

(* The PR 2 kernel configuration: Karatsuba + Burnikel-Ziegler only,
   no Toom-3, no NTT, no Lehmer GCD, no in-multiply fan-out, no
   Barrett reciprocals. Used for old-vs-new ablations and the
   findings_equal cross-check. *)
let with_pr2_kernels f =
  with_kernels ~kara:24 ~toom:max_int ~ntt:max_int ~bz:40 ~barrett:max_int
    ~par:max_int ~hgcd:max_int f

(* ---------------- timing tests ---------------- *)

let t name f = Test.make ~name (Staged.stage f)

let batchgcd_section_3_2 =
  (* The paper's performance claim: naive pairwise is infeasible; the
     tree algorithm is quasilinear; the k-subset variant adds total
     work but parallelizes. *)
  Test.make_grouped ~name:"sec3.2-batchgcd"
    [
      t "naive-512" (fun () ->
          Batchgcd.Batch_gcd.naive (Lazy.force moduli_512));
      t "tree-512" (fun () ->
          Batchgcd.Batch_gcd.factor_batch (Lazy.force moduli_512));
      t "tree-2048" (fun () ->
          Batchgcd.Batch_gcd.factor_batch (Lazy.force moduli_2048));
      t "subsets-k16-2048-1domain" (fun () ->
          Batchgcd.Batch_gcd.factor_subsets ~domains:1 ~k:16
            (Lazy.force moduli_2048));
      t "subsets-k16-2048-parallel" (fun () ->
          Batchgcd.Batch_gcd.factor_subsets ~k:16 (Lazy.force moduli_2048));
    ]

let figure2_k_sweep =
  Test.make_grouped ~name:"fig2-k-sweep"
    (List.map
       (fun k ->
         t
           (Printf.sprintf "subsets-k%d-2048" k)
           (fun () ->
             Batchgcd.Batch_gcd.factor_subsets ~domains:1 ~k
               (Lazy.force moduli_2048)))
       [ 1; 2; 4; 8; 16; 32 ])

let ablation_multiplication =
  Test.make_grouped ~name:"ablation-mul-threshold"
    [
      t "karatsuba-200kbit" (fun () ->
          with_kernels ~kara:24 ~toom:max_int ~ntt:max_int ~par:max_int
            (fun () -> N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "schoolbook-200kbit" (fun () ->
          with_kernels ~kara:max_int ~toom:max_int ~ntt:max_int ~par:max_int
            (fun () -> N.mul (Lazy.force big_a) (Lazy.force big_b)));
    ]

(* The PR 3 kernel tier: Toom-3 vs Karatsuba at 200k bits (~6.5k
   limbs), serial and with the in-multiply pool fan-out. The NTT rung
   is pinned off so the rows keep measuring what their names say. *)
let toom3_group =
  Test.make_grouped ~name:"toom3"
    [
      t "mul-200kbit-karatsuba" (fun () ->
          with_kernels ~toom:max_int ~ntt:max_int ~par:max_int (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "mul-200kbit-toom3-seq" (fun () ->
          with_kernels ~ntt:max_int ~par:max_int (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "mul-200kbit-toom3-par" (fun () ->
          with_kernels ~ntt:max_int (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "sqr-200kbit-karatsuba" (fun () ->
          with_kernels ~toom:max_int ~ntt:max_int ~par:max_int (fun () ->
              N.sqr (Lazy.force big_a)));
      t "sqr-200kbit-toom3-seq" (fun () ->
          with_kernels ~ntt:max_int ~par:max_int (fun () ->
              N.sqr (Lazy.force big_a)));
      t "sqr-200kbit-toom3-par" (fun () ->
          with_kernels ~ntt:max_int (fun () -> N.sqr (Lazy.force big_a)));
    ]

(* The ISSUE 8 kernel tier: the two-prime CRT NTT vs Toom-3 at the
   product-tree root scale. 200k bits is the root node of the tracked
   2048 x 96-bit corpus; the 600k-bit rows show the gap widening with
   size (the transform is quasi-linear, Toom-3 is O(n^1.465)). The
   -par rows exercise the per-prime convolution fan-out. *)
let huge_a = lazy (nat_of_bits 600_000)
let huge_b = lazy (nat_of_bits 600_000)

let ntt_group =
  Test.make_grouped ~name:"ntt"
    [
      t "mul-200kbit-toom3" (fun () ->
          with_kernels ~ntt:max_int ~par:max_int (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "mul-200kbit-ntt" (fun () ->
          with_kernels ~par:max_int (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "mul-200kbit-ntt-par" (fun () ->
          N.mul (Lazy.force big_a) (Lazy.force big_b));
      t "sqr-200kbit-toom3" (fun () ->
          with_kernels ~ntt:max_int ~par:max_int (fun () ->
              N.sqr (Lazy.force big_a)));
      t "sqr-200kbit-ntt" (fun () ->
          with_kernels ~par:max_int (fun () -> N.sqr (Lazy.force big_a)));
      t "mul-600kbit-toom3" (fun () ->
          with_kernels ~ntt:max_int ~par:max_int (fun () ->
              N.mul (Lazy.force huge_a) (Lazy.force huge_b)));
      t "mul-600kbit-ntt" (fun () ->
          with_kernels ~par:max_int (fun () ->
              N.mul (Lazy.force huge_a) (Lazy.force huge_b)));
    ]

(* Newton reciprocal vs computing the same floor(base^2n / b) by
   division, at the remainder-tree root scale. *)
let recip_group =
  Test.make_grouped ~name:"recip"
    [
      t "recip-150kbit-newton" (fun () -> N.recip (Lazy.force div_den));
      t "recip-150kbit-division" (fun () ->
          with_kernels ~recip:max_int (fun () -> N.recip (Lazy.force div_den)));
    ]

(* Barrett reduction with a cached reciprocal vs plain remainder: the
   per-descent-step trade the remainder tree makes. The precompute
   itself is timed separately — it is paid once per tree node. *)
let rem_precomp_group =
  let pre = lazy (N.precompute (Lazy.force div_den)) in
  Test.make_grouped ~name:"rem_precomp"
    [
      t "rem-400k/150k-plain" (fun () ->
          N.rem (Lazy.force div_num) (Lazy.force div_den));
      t "rem-400k/150k-barrett" (fun () ->
          N.rem_precomp (Lazy.force div_num) (Lazy.force pre));
      t "precompute-150k" (fun () -> N.precompute (Lazy.force div_den));
    ]

let ablation_division =
  Test.make_grouped ~name:"ablation-division"
    [
      t "burnikel-ziegler-400k/150k" (fun () ->
          with_thresholds 24 40 (fun () ->
              N.divmod (Lazy.force div_num) (Lazy.force div_den)));
      t "knuth-400k/150k" (fun () ->
          with_thresholds 24 max_int (fun () ->
              N.divmod (Lazy.force div_num) (Lazy.force div_den)));
    ]

let ablation_powmod =
  let base = lazy (nat_of_bits 255)
  and exp = lazy (nat_of_bits 255)
  and modulus = lazy (N.add (nat_of_bits 256) N.one) in
  Test.make_grouped ~name:"ablation-powmod"
    [
      t "division-ladder-256" (fun () ->
          N.pow_mod (Lazy.force base) (Lazy.force exp) (Lazy.force modulus));
      t "montgomery-256" (fun () ->
          Bignum.Montgomery.pow_mod_nat (Lazy.force base) (Lazy.force exp)
            (Lazy.force modulus));
    ]

(* Leaf-GCD kernel ladder at the 4-kbit operand size of a real
   batch-GCD leaf step (2048-bit modulus vs rem-tree residue), plus a
   16-kbit rung where the Lehmer advantage has saturated. The lehmer
   rows go through the default N.gcd dispatch; binary/euclid call
   their kernels directly, which is what those entry points stay
   exported for. *)
let gcd_a16 = lazy (nat_of_bits 16_384)
let gcd_b16 = lazy (nat_of_bits 16_384)

let ablation_gcd =
  Test.make_grouped ~name:"ablation-gcd"
    [
      t "lehmer-4kbit" (fun () ->
          N.gcd (Lazy.force gcd_a) (Lazy.force gcd_b));
      t "binary-4kbit" (fun () ->
          N.gcd_binary (Lazy.force gcd_a) (Lazy.force gcd_b));
      t "euclid-4kbit" (fun () ->
          N.gcd_euclid (Lazy.force gcd_a) (Lazy.force gcd_b));
      t "lehmer-16kbit" (fun () ->
          N.gcd (Lazy.force gcd_a16) (Lazy.force gcd_b16));
      t "binary-16kbit" (fun () ->
          N.gcd_binary (Lazy.force gcd_a16) (Lazy.force gcd_b16));
    ]

let keygen_styles =
  Test.make_grouped ~name:"keygen"
    [
      t "plain-96" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Plain ~gen ~bits:96 ());
      t "openssl-96" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Openssl ~gen ~bits:96 ());
      t "plain-256" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Plain ~gen ~bits:256 ());
    ]

(* Sequential vs level-parallel tree kernels on one pool each; the
   pools persist across iterations so per-call Domain.spawn cost is
   out of the measurement (that is the point of Parallel.Pool). *)
let pool_seq = lazy (Parallel.Pool.get ~domains:1 ())
let pool_par = lazy (Parallel.Pool.get ())

(* Shared descent fixture, with the Barrett caches prewarmed (in
   force_fixtures, outside any timed region): the descent benches
   measure steady-state cost per descent; the one-time reciprocal
   build is timed separately (rem_precomp group) and amortises over
   the k descents of the distributed driver. *)
let tree_2048 =
  lazy
    (let t =
       Batchgcd.Product_tree.build ~pool:(Lazy.force pool_seq)
         (Lazy.force moduli_2048)
     in
     Batchgcd.Product_tree.precompute ~squares:true t;
     t)

let tree_parallel =
  let seq f = fun () -> f ~pool:(Lazy.force pool_seq) () in
  let par f = fun () -> f ~pool:(Lazy.force pool_par) () in
  let build ~pool () = Batchgcd.Product_tree.build ~pool (Lazy.force moduli_2048) in
  let tree = tree_2048 in
  let descend ~pool () =
    Batchgcd.Remainder_tree.remainders_mod_square ~pool (Lazy.force tree)
      (Batchgcd.Product_tree.root (Lazy.force tree))
  in
  (* The PR 2 division path (no Barrett precomps), for the
     old-vs-new remainder-tree comparison in BENCH_batchgcd.json. *)
  let descend_plain ~pool () =
    Batchgcd.Remainder_tree.remainders_mod_square ~pool ~precomp:false
      (Lazy.force tree)
      (Batchgcd.Product_tree.root (Lazy.force tree))
  in
  let batch ~pool () = Batchgcd.Batch_gcd.factor_batch ~pool (Lazy.force moduli_2048) in
  Test.make_grouped ~name:"tree-parallel"
    [
      t "product-tree-2048-seq" (seq build);
      t "product-tree-2048-par" (par build);
      t "remainder-tree-2048-seq" (seq descend);
      t "remainder-tree-2048-par" (par descend);
      t "remainder-tree-plain-2048-seq" (seq descend_plain);
      t "remainder-tree-plain-2048-par" (par descend_plain);
      t "factor-batch-2048-seq" (seq batch);
      t "factor-batch-2048-par" (par batch);
    ]

(* The incremental-ingest trade (Batchgcd.Incremental): full k-subset
   recompute over all 2048 moduli vs folding the last 256 into a
   cached 1792-modulus forest. Both run on the sequential pool so the
   ratio isolates the algorithmic saving from domain fan-out; the
   cached state is built once in force_fixtures (its Barrett caches
   prewarm on the first extend, also outside the timed region). *)
let inc_1792 =
  lazy
    (Batchgcd.Incremental.create ~pool:(Lazy.force pool_seq) ~k:16
       (Lazy.force moduli_1792))

let delta_ingest =
  Test.make_grouped ~name:"delta-ingest"
    [
      t "full-k16-2048" (fun () ->
          Batchgcd.Batch_gcd.factor_subsets ~pool:(Lazy.force pool_seq) ~k:16
            (Lazy.force moduli_2048));
      t "extend-256-into-1792" (fun () ->
          Batchgcd.Incremental.extend ~pool:(Lazy.force pool_seq)
            (Lazy.force inc_1792) (Lazy.force delta_256));
    ]

let substrate =
  let tree = tree_2048 in
  let pow_base = lazy (nat_of_bits 255)
  and pow_exp = lazy (nat_of_bits 255)
  and pow_mod = lazy (N.add (nat_of_bits 256) N.one) in
  Test.make_grouped ~name:"substrate"
    [
      t "sha256-1KiB" (fun () -> Hashes.Sha256.digest msg_1k);
      t "drbg-64B" (fun () -> Hashes.Drbg.generate drbg 64);
      t "product-tree-2048" (fun () ->
          Batchgcd.Product_tree.build (Lazy.force moduli_2048));
      t "remainder-tree-2048" (fun () ->
          Batchgcd.Remainder_tree.remainders_mod_square (Lazy.force tree)
            (Batchgcd.Product_tree.root (Lazy.force tree)));
      t "pow-mod-256" (fun () ->
          N.pow_mod (Lazy.force pow_base) (Lazy.force pow_exp)
            (Lazy.force pow_mod));
    ]

(* The attribution engine (PR 5): each builtin pass timed in
   isolation against a completed table (so dependent passes read the
   evidence they declared), the evidence/artifact merge on its own,
   and the full Registry.run sequential vs pooled — the latter pair
   feeds passes_parallel_speedup in BENCH_batchgcd.json. The fixture
   is a small but real pipeline world, so pass costs reflect genuine
   scan/corpus shapes rather than synthetic tables. *)
let attr_pipeline =
  lazy
    (Weakkeys.Pipeline.of_world
       (Netsim.World.build
          {
            Netsim.World.default_config with
            Netsim.World.seed = "bench-attr";
            scale = 0.05;
          }))

let attr_ctx =
  lazy
    (let p = Lazy.force attr_pipeline in
     {
       Fingerprint.Pass.Ctx.store = p.Weakkeys.Pipeline.store;
       corpus = p.Weakkeys.Pipeline.corpus;
       findings = p.Weakkeys.Pipeline.findings;
       factored = p.Weakkeys.Pipeline.factored;
       factored_index = p.Weakkeys.Pipeline.factored_index;
       unrecovered = p.Weakkeys.Pipeline.unrecovered;
       scans = p.Weakkeys.Pipeline.scans;
       page_titles =
         Analysis.Dataset.page_title_index p.Weakkeys.Pipeline.scans;
       cert_fp = p.Weakkeys.Pipeline.cert_fp;
       modulus_bits =
         (Netsim.World.config p.Weakkeys.Pipeline.world)
           .Netsim.World.modulus_bits;
     })

let attr_table =
  lazy
    (fst
       (Fingerprint.Registry.run ~pool:(Lazy.force pool_seq)
          (Lazy.force attr_ctx) Fingerprint.Registry.builtin))

let attribution_group =
  let ctx () = Lazy.force attr_ctx in
  let passes = Fingerprint.Registry.builtin in
  let pass_benches =
    List.map
      (fun (p : Fingerprint.Pass.t) ->
        t ("pass-" ^ p.Fingerprint.Pass.name) (fun () ->
            p.Fingerprint.Pass.run (ctx ()) (Lazy.force attr_table)))
      passes
  in
  let results =
    lazy
      (List.map
         (fun (p : Fingerprint.Pass.t) ->
           p.Fingerprint.Pass.run (Lazy.force attr_ctx)
             (Lazy.force attr_table))
         passes)
  in
  let merge () =
    let a = Fingerprint.Attribution.create () in
    List.iter
      (fun (r : Fingerprint.Pass.result) ->
        List.iter (Fingerprint.Attribution.add a) r.Fingerprint.Pass.evidence;
        List.iter
          (Fingerprint.Attribution.add_artifact a)
          r.Fingerprint.Pass.artifacts)
      (Lazy.force results);
    a
  in
  Test.make_grouped ~name:"attribution"
    (pass_benches
    @ [
        t "merge" merge;
        t "registry-run-seq" (fun () ->
            Fingerprint.Registry.run ~pool:(Lazy.force pool_seq) (ctx ())
              Fingerprint.Registry.builtin);
        t "registry-run-par" (fun () ->
            Fingerprint.Registry.run ~pool:(Lazy.force pool_par) (ctx ())
              Fingerprint.Registry.builtin);
      ])

(* The sharded arena driver at the tracked 2048 scale: the two-tier
   sweep (per-shard trees + upper tree + per-shard descents) against
   the flat single-tree run it must reproduce bit-for-bit. *)
let sharded_group =
  Test.make_grouped ~name:"sharded"
    [
      t "sharded-create-2048-stride256" (fun () ->
          Batchgcd.Sharded.create ~pool:(Lazy.force pool_seq) ~stride:256
            (Lazy.force moduli_2048));
    ]

(* ---------------- backend shootout ---------------- *)

(* The three Batchgcd.Backend decompositions head-to-head across
   corpus size (bracketing the all-to-all selection threshold of 48)
   and key size. emit_json reduces these rows to backend_win_region
   (the fastest backend per cell) and cross-checks
   findings_equal_backends on the same fixtures, and demonstrates the
   Sharded selection policy picking trees for a bulk recompute but
   all-to-all for a small fresh delta. *)
let shootout_sizes = [ 32; 256 ]
let shootout_bits = [ 96; 192 ]

let shootout_cells =
  lazy
    (List.concat_map
       (fun n ->
         List.map
           (fun bits ->
             ((n, bits), corpus_at ~bits ~n ~planted:(Stdlib.max 2 (n / 16))))
           shootout_bits)
       shootout_sizes)

let shootout_cell n bits = List.assoc (n, bits) (Lazy.force shootout_cells)
let shootout_delta = lazy (corpus_at ~bits:96 ~n:16 ~planted:2)

let shootout_group =
  Test.make_grouped ~name:"backend-shootout"
    (List.concat_map
       (fun n ->
         List.concat_map
           (fun bits ->
             List.map
               (fun b ->
                 t
                   (Printf.sprintf "%s-n%d-b%d" b.Batchgcd.Backend.name n bits)
                   (fun () ->
                     Batchgcd.Backend.factor b ~pool:(Lazy.force pool_seq)
                       (shootout_cell n bits)))
               Batchgcd.Backend.builtin)
           shootout_bits)
       shootout_sizes)

(* ---------------- million-modulus arena ingest ---------------- *)

(* One-shot (not Bechamel) measurement of the tentpole claim: a
   million ~62-bit semiprimes interned into the sharded Bigarray
   arenas, checkpointed, and reopened by mmap in milliseconds. The
   moduli come from a segmented sieve just above 2^31 — pairing
   consecutive primes keeps every modulus distinct without a single
   Miller-Rabin, so fixture generation is seconds, not hours. Every
   2^16-th modulus instead reuses one planted prime, so the gated
   full sweep (WEAKKEYS_BENCH_MILLION=1) has cross-shard findings to
   recover. Scale with WEAKKEYS_BENCH_MILLION_N; skip with
   WEAKKEYS_BENCH_SKIP_MILLION. *)
let sieve_primes count =
  let lim = 65536 in
  (* base primes to 2^16 > sqrt(2^31 + range) *)
  let composite = Bytes.make (lim + 1) '\000' in
  let base = ref [] in
  for i = 2 to lim do
    if Bytes.get composite i = '\000' then begin
      base := i :: !base;
      let j = ref (i * i) in
      while !j <= lim do
        Bytes.set composite !j '\001';
        j := !j + i
      done
    end
  done;
  let base = Array.of_list (List.rev !base) in
  let primes = Array.make count 0 in
  let found = ref 0 in
  let lo = ref (1 lsl 31) in
  let seg = 1 lsl 20 in
  let buf = Bytes.create seg in
  while !found < count do
    Bytes.fill buf 0 seg '\000';
    Array.iter
      (fun p ->
        let r = !lo mod p in
        let j = ref (if r = 0 then 0 else p - r) in
        while !j < seg do
          Bytes.set buf !j '\001';
          j := !j + p
        done)
      base;
    let i = ref 0 in
    while !i < seg && !found < count do
      if Bytes.get buf !i = '\000' then begin
        primes.(!found) <- !lo + !i;
        incr found
      end;
      incr i
    done;
    lo := !lo + seg
  done;
  primes

let million_n =
  match Sys.getenv_opt "WEAKKEYS_BENCH_MILLION_N" with
  | Some s -> int_of_string s
  | None -> 1_000_000

let million_moduli =
  lazy
    (let primes = sieve_primes ((2 * million_n) + 1) in
     let planted = N.of_int primes.(2 * million_n) in
     Array.init million_n (fun i ->
         if i land 0xffff = 11 then N.mul planted (N.of_int primes.(2 * i))
         else N.mul (N.of_int primes.(2 * i)) (N.of_int primes.((2 * i) + 1))))

type million_stats = {
  m_n : int;
  m_ingest_s : float;
  m_restore_ms : float;
  m_queryable : bool;
  m_sweep : (float * int * bool) option;
      (* seconds, findings, restored sweep equal *)
}

let with_temp_dir f =
  let dir = Filename.temp_file "weakkeys-bench" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let run_million () =
  let moduli = Lazy.force million_moduli in
  let n = Array.length moduli in
  Printf.printf "===== million-modulus arena (%d moduli) =====\n%!" n;
  let t0 = Unix.gettimeofday () in
  let store = Corpus.Store.create ~size:n () in
  Array.iter (fun m -> ignore (Corpus.Store.intern store m)) moduli;
  let ingest_s = Unix.gettimeofday () -. t0 in
  Printf.printf "  ingest: %.2f s (%.0f moduli/s, %d shards)\n%!" ingest_s
    (float_of_int n /. ingest_s)
    (Corpus.Store.shard_count store);
  with_temp_dir (fun dir ->
      let t1 = Unix.gettimeofday () in
      Corpus.Store.save store dir;
      Printf.printf "  save_dir: %.2f s\n%!" (Unix.gettimeofday () -. t1);
      let t2 = Unix.gettimeofday () in
      let restored = Corpus.Store.load dir in
      (* one O(1) arena read proves the mappings are live; the lazy
         intern index is deliberately NOT built here — that is the
         point of the mmap restore *)
      let probe = Corpus.Store.get restored (n - 1) in
      let restore_ms = (Unix.gettimeofday () -. t2) *. 1e3 in
      Printf.printf "  mmap restore: %.1f ms\n%!" restore_ms;
      let st = Stdlib.Random.State.make [| 97 |] in
      let queryable = ref (N.equal probe moduli.(n - 1)) in
      for _ = 1 to 10_000 do
        let i = Stdlib.Random.State.int st n in
        queryable := !queryable && N.equal (Corpus.Store.get restored i) moduli.(i)
      done;
      (* a find exercises the lazily rebuilt intern index *)
      queryable :=
        !queryable && Corpus.Store.find restored moduli.(0) = Some 0;
      Printf.printf "  queryable after restore: %b\n%!" !queryable;
      let sweep =
        if Sys.getenv_opt "WEAKKEYS_BENCH_MILLION" = None then None
        else begin
          let t3 = Unix.gettimeofday () in
          let sh = Batchgcd.Sharded.create moduli in
          let sweep_s = Unix.gettimeofday () -. t3 in
          let found = List.length (Batchgcd.Sharded.findings sh) in
          Printf.printf "  full sweep: %.1f s, %d findings\n%!" sweep_s found;
          with_temp_dir (fun sdir ->
              Batchgcd.Sharded.save_dir sh sdir;
              let equal =
                Batchgcd.Batch_gcd.findings_equal
                  (Batchgcd.Sharded.findings sh)
                  (Batchgcd.Sharded.findings (Batchgcd.Sharded.load_dir sdir))
              in
              Printf.printf "  sweep checkpoint round-trips: %b\n%!" equal;
              Some (sweep_s, found, equal))
        end
      in
      {
        m_n = n;
        m_ingest_s = ingest_s;
        m_restore_ms = restore_ms;
        m_queryable = !queryable;
        m_sweep = sweep;
      })

(* The linter's own cost: one full --deep pass over lib/ — lexical
   rules plus module graph, layering, and effect inference — recorded
   as lint_deep_ms so the semantic pass stays cheap enough to keep
   inside dune runtest. Uncached on purpose: the bench measures the
   cold cost, not the content-addressed replay. *)
let lint_group =
  Test.make_grouped ~name:"lint"
    (if Sys.file_exists "lib" then
       [ t "deep-lib" (fun () -> Lint.Engine.lint_paths ~deep:true [ "lib" ]) ]
     else [])

(* ---------------- runner ---------------- *)

let force_fixtures () =
  (* Fixture generation must not be charged to the first timed run. *)
  ignore (Lazy.force moduli_512);
  ignore (Lazy.force moduli_2048);
  ignore (Lazy.force big_a);
  ignore (Lazy.force big_b);
  ignore (Lazy.force div_num);
  ignore (Lazy.force div_den);
  ignore (Lazy.force gcd_a);
  ignore (Lazy.force gcd_b);
  ignore (Lazy.force gcd_a16);
  ignore (Lazy.force gcd_b16);
  ignore (Lazy.force huge_a);
  ignore (Lazy.force huge_b);
  ignore (Lazy.force tree_2048);
  ignore (Lazy.force attr_table);
  ignore (Lazy.force shootout_cells);
  ignore (Lazy.force shootout_delta);
  (* One throwaway extend fills the cached segments' Barrett
     reciprocals, so the timed runs measure steady-state ingest. *)
  ignore
    (Batchgcd.Incremental.extend ~pool:(Lazy.force pool_seq)
       (Lazy.force inc_1792) (Lazy.force delta_256))

let run_timing () =
  force_fixtures ();
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.8) ~kde:None
      ~stabilize:false ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests =
    [
      batchgcd_section_3_2; figure2_k_sweep; tree_parallel; delta_ingest;
      sharded_group; shootout_group; ablation_multiplication; toom3_group;
      ntt_group;
      recip_group; rem_precomp_group; ablation_division; ablation_powmod;
      ablation_gcd; keygen_styles; substrate; attribution_group; lint_group;
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
      let rows =
        List.map
          (fun (name, result) ->
            let ns =
              match Analyze.OLS.estimates result with
              | Some (e :: _) -> e
              | _ -> Float.nan
            in
            (name, ns))
          (List.sort compare rows)
      in
      List.iter
        (fun (name, ns) ->
          let pretty =
            if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "  %-42s %s/run\n%!" name pretty)
        rows;
      rows)
    tests

(* ---------------- BENCH_batchgcd.json ---------------- *)

(* Machine-readable perf record: every timed kernel, the
   sequential-vs-parallel speedups of the tree group, the
   precomp-vs-division remainder-tree speedup, and findings_equal
   cross-checks (parallel vs sequential, and old PR 2 kernels vs the
   new dispatch ladder, on identical corpora). *)
let emit_json ?million rows =
  let find name = List.assoc_opt name rows in
  let speedup kernel =
    match
      ( find (Printf.sprintf "tree-parallel/%s-2048-seq" kernel),
        find (Printf.sprintf "tree-parallel/%s-2048-par" kernel) )
    with
    | Some s, Some p when p > 0. -> Some (kernel, s /. p)
    | _ -> None
  in
  let precomp_speedup =
    match
      ( find "tree-parallel/remainder-tree-plain-2048-seq",
        find "tree-parallel/remainder-tree-2048-seq" )
    with
    | Some plain, Some pre when pre > 0. -> Some (plain /. pre)
    | _ -> None
  in
  let incremental_speedup =
    match
      ( find "delta-ingest/full-k16-2048",
        find "delta-ingest/extend-256-into-1792" )
    with
    | Some full, Some ext when ext > 0. -> Some (full /. ext)
    | _ -> None
  in
  let new_findings =
    Batchgcd.Batch_gcd.factor_batch ~pool:(Lazy.force pool_seq)
      (Lazy.force moduli_2048)
  in
  let findings_parallel_ok =
    Batchgcd.Batch_gcd.findings_equal new_findings
      (Batchgcd.Batch_gcd.factor_batch ~pool:(Lazy.force pool_par)
         (Lazy.force moduli_2048))
  in
  let findings_kernels_ok =
    Batchgcd.Batch_gcd.findings_equal new_findings
      (with_pr2_kernels (fun () ->
           Batchgcd.Batch_gcd.factor_batch ~pool:(Lazy.force pool_seq)
             (Lazy.force moduli_2048)))
  in
  let findings_incremental_ok =
    Batchgcd.Batch_gcd.findings_equal new_findings
      (Batchgcd.Incremental.findings
         (Batchgcd.Incremental.extend ~pool:(Lazy.force pool_seq)
            (Lazy.force inc_1792) (Lazy.force delta_256)))
  in
  let findings_sharded_ok =
    Batchgcd.Batch_gcd.findings_equal new_findings
      (Batchgcd.Sharded.findings
         (Batchgcd.Sharded.create ~pool:(Lazy.force pool_seq) ~stride:256
            (Lazy.force moduli_2048)))
  in
  (* Shootout reductions: the fastest backend per (corpus size, key
     size) cell, the cross-backend findings_equal check on the same
     fixtures, and the Sharded selection policy caught in the act —
     trees for the bulk sweep, all-to-all for a small fresh delta. *)
  let backend_win_region =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun bits ->
            let best =
              List.fold_left
                (fun acc (b : Batchgcd.Backend.t) ->
                  match
                    find
                      (Printf.sprintf "backend-shootout/%s-n%d-b%d"
                         b.Batchgcd.Backend.name n bits)
                  with
                  | Some ns when not (Float.is_nan ns) -> (
                    match acc with
                    | Some (_, best_ns) when best_ns <= ns -> acc
                    | _ -> Some (b.Batchgcd.Backend.name, ns))
                  | _ -> acc)
                None Batchgcd.Backend.builtin
            in
            Option.map
              (fun (name, _) -> (Printf.sprintf "n%d-b%d" n bits, name))
              best)
          shootout_bits)
      shootout_sizes
  in
  let findings_equal_backends =
    List.for_all
      (fun (_, moduli) ->
        let reference =
          Batchgcd.Batch_gcd.factor_batch ~pool:(Lazy.force pool_seq) moduli
        in
        List.for_all
          (fun b ->
            Batchgcd.Batch_gcd.findings_equal reference
              (Batchgcd.Backend.factor b ~pool:(Lazy.force pool_seq) moduli))
          Batchgcd.Backend.builtin)
      (Lazy.force shootout_cells)
  in
  let backend_bulk_uses, backend_delta_uses =
    let bulk =
      Batchgcd.Sharded.create ~pool:(Lazy.force pool_seq) ~stride:256
        (Lazy.force moduli_2048)
    in
    let bulk_uses = Batchgcd.Sharded.backend_uses bulk in
    let extended =
      Batchgcd.Sharded.extend ~pool:(Lazy.force pool_seq) bulk
        (Lazy.force shootout_delta)
    in
    (bulk_uses, Batchgcd.Sharded.backend_uses extended)
  in
  let findings_ok =
    findings_parallel_ok && findings_kernels_ok && findings_incremental_ok
    && findings_sharded_ok && findings_equal_backends
  in
  let passes_parallel_speedup =
    match
      ( find "attribution/registry-run-seq",
        find "attribution/registry-run-par" )
    with
    | Some s, Some p when p > 0. -> Some (s /. p)
    | _ -> None
  in
  let attributions_equal_passes =
    Fingerprint.Attribution.equal_evidence
      (fst
         (Fingerprint.Registry.run ~pool:(Lazy.force pool_seq)
            (Lazy.force attr_ctx) Fingerprint.Registry.builtin))
      (fst
         (Fingerprint.Registry.run ~pool:(Lazy.force pool_par)
            (Lazy.force attr_ctx) Fingerprint.Registry.builtin))
  in
  let path =
    Option.value ~default:"BENCH_batchgcd.json"
      (Sys.getenv_opt "WEAKKEYS_BENCH_JSON")
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
      Printf.fprintf oc "{\n  \"schema\": \"weakkeys-bench/1\",\n";
      (* Record the machine the numbers came from: on a 1-core host
         the parallel speedups legitimately sit at 1.00, and diffs
         against a wider box should not read that as a regression. *)
      Printf.fprintf oc "  \"domains\": %d,\n"
        (Parallel.Pool.size (Lazy.force pool_par));
      Printf.fprintf oc "  \"host_cores\": %d,\n"
        (Domain.recommended_domain_count ());
      Printf.fprintf oc "  \"corpus\": { \"moduli\": 2048, \"bits\": 96 },\n";
      Printf.fprintf oc "  \"findings_equal\": %b,\n" findings_ok;
      Printf.fprintf oc "  \"findings_equal_parallel\": %b,\n"
        findings_parallel_ok;
      Printf.fprintf oc "  \"findings_equal_kernels\": %b,\n"
        findings_kernels_ok;
      Printf.fprintf oc "  \"findings_equal_incremental\": %b,\n"
        findings_incremental_ok;
      Printf.fprintf oc "  \"findings_equal_sharded\": %b,\n"
        findings_sharded_ok;
      Printf.fprintf oc "  \"findings_equal_backends\": %b,\n"
        findings_equal_backends;
      Printf.fprintf oc "  \"backend_win_region\": {%s},\n"
        (String.concat ", "
           (List.map
              (fun (cell, name) -> Printf.sprintf "\"%s\": \"%s\"" cell name)
              backend_win_region));
      let uses_obj uses =
        String.concat ", "
          (List.map
             (fun (name, count) -> Printf.sprintf "\"%s\": %d" name count)
             uses)
      in
      Printf.fprintf oc "  \"backend_bulk_uses\": {%s},\n"
        (uses_obj backend_bulk_uses);
      Printf.fprintf oc "  \"backend_delta_uses\": {%s},\n"
        (uses_obj backend_delta_uses);
      (match million with
      | Some m ->
        Printf.fprintf oc "  \"million_moduli\": %d,\n" m.m_n;
        Printf.fprintf oc "  \"ingest_throughput\": %.0f,\n"
          (float_of_int m.m_n /. m.m_ingest_s);
        Printf.fprintf oc "  \"arena_restore_ms\": %.1f,\n" m.m_restore_ms;
        Printf.fprintf oc "  \"million_queryable\": %b,\n" m.m_queryable;
        (match m.m_sweep with
        | Some (s, found, equal) ->
          Printf.fprintf oc "  \"million_sweep_s\": %.1f,\n" s;
          Printf.fprintf oc "  \"million_findings\": %d,\n" found;
          Printf.fprintf oc "  \"million_checkpoint_equal\": %b,\n" equal
        | None -> ())
      | None -> ());
      Printf.fprintf oc "  \"attributions_equal_passes\": %b,\n"
        attributions_equal_passes;
      (match passes_parallel_speedup with
      | Some x ->
        Printf.fprintf oc "  \"passes_parallel_speedup\": %.2f,\n" x
      | None -> ());
      (match precomp_speedup with
      | Some x ->
        Printf.fprintf oc "  \"remainder_tree_precomp_speedup\": %.2f,\n" x
      | None -> ());
      (match incremental_speedup with
      | Some x -> Printf.fprintf oc "  \"incremental_speedup\": %.2f,\n" x
      | None -> ());
      (match find "lint/deep-lib" with
      | Some ns when not (Float.is_nan ns) ->
        Printf.fprintf oc "  \"lint_deep_ms\": %.1f,\n" (ns /. 1e6)
      | _ -> ());
      Printf.fprintf oc "  \"speedup\": {%s},\n"
        (String.concat ", "
           (List.filter_map
              (fun k ->
                Option.map
                  (fun (k, x) -> Printf.sprintf "\"%s\": %.2f" k x)
                  (speedup k))
              [
                "product-tree"; "remainder-tree"; "remainder-tree-plain";
                "factor-batch";
              ]));
      Printf.fprintf oc "  \"kernels_ns\": {\n%s\n  }\n}\n"
        (String.concat ",\n"
           (List.map
              (fun (name, ns) -> Printf.sprintf "    \"%s\": %s" name (num ns))
              rows)));
  Printf.printf "wrote %s\n%!" path

let run_report () =
  let scale =
    match Sys.getenv_opt "WEAKKEYS_BENCH_SCALE" with
    | Some s -> float_of_string s
    | None -> 0.15
  in
  let cfg =
    { Netsim.World.default_config with Netsim.World.scale; seed = "bench-world" }
  in
  Printf.printf
    "\n===== paper reproduction: every table and figure (scale %.2f) =====\n%!"
    scale;
  let p =
    Weakkeys.Pipeline.run
      ~progress:(fun m -> Printf.eprintf "[bench] %s\n%!" m)
      cfg
  in
  print_string (Weakkeys.Report.full_report p)

let () =
  if Sys.getenv_opt "WEAKKEYS_BENCH_SKIP_TIMING" = None then begin
    print_endline "===== timing benches (bechamel, ns per run) =====";
    let rows = run_timing () in
    let million =
      if Sys.getenv_opt "WEAKKEYS_BENCH_SKIP_MILLION" = None then
        Some (run_million ())
      else None
    in
    emit_json ?million rows
  end;
  if Sys.getenv_opt "WEAKKEYS_BENCH_SKIP_REPORT" = None then run_report ()
