(* Kernel smoke bench: a tiny-corpus timing pass over the batch-GCD
   tree kernels, fast enough to run on every `dune runtest` (via the
   @bench-smoke alias) — a gross kernel regression or a parallel vs
   sequential divergence breaks the build instead of waiting for the
   nightly Bechamel run.

   Exit codes: 0 ok, 2 on any correctness mismatch. Timings are
   printed for humans; they are not asserted against (CI machines are
   too noisy for that — the full bench tracks the trajectory in
   BENCH_batchgcd.json). *)

module N = Bignum.Nat
module BG = Batchgcd.Batch_gcd
module PT = Batchgcd.Product_tree
module RT = Batchgcd.Remainder_tree
module Pool = Parallel.Pool

let drbg = Hashes.Drbg.create ~seed:"bench-smoke" ()
let gen = Hashes.Drbg.gen_fn drbg

let corpus ~n ~planted =
  let shared = Bignum.Prime.generate ~gen ~bits:48 in
  Array.init n (fun i ->
      if planted > 0 && i mod (Stdlib.max 1 (n / planted)) = 0 then
        N.mul shared (Bignum.Prime.generate ~gen ~bits:48)
      else
        N.mul
          (Bignum.Prime.generate ~gen ~bits:48)
          (Bignum.Prime.generate ~gen ~bits:48))

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "bench-smoke: FAIL %s\n%!" name
  end

let () =
  let moduli = corpus ~n:96 ~planted:8 in
  let seq = Pool.get ~domains:1 () in
  let par = Pool.get () in
  let row name secs = Printf.printf "  %-32s %8.1f ms\n%!" name (secs *. 1e3) in
  Printf.printf "bench-smoke: 96 moduli x 96 bits, %d domain(s)\n%!"
    (Pool.size par);

  let tree_s, dt = timed (fun () -> PT.build ~pool:seq moduli) in
  row "product-tree-seq" dt;
  let tree_p, dt = timed (fun () -> PT.build ~pool:par moduli) in
  row "product-tree-par" dt;
  check "parallel tree root equals sequential"
    (N.equal (PT.root tree_s) (PT.root tree_p));
  check "total_limbs agrees" (PT.total_limbs tree_s = PT.total_limbs tree_p);

  let root = PT.root tree_s in
  let rem_s, dt = timed (fun () -> RT.remainders_mod_square ~pool:seq tree_s root) in
  row "remainder-tree-seq" dt;
  let rem_p, dt = timed (fun () -> RT.remainders_mod_square ~pool:par tree_s root) in
  row "remainder-tree-par" dt;
  check "parallel descent equals sequential"
    (Array.for_all2 N.equal rem_s rem_p);

  (* Barrett-precomp descent vs the plain division path, on the same
     tree (with the cutoff lowered so 96-bit leaves get reciprocals
     too, not just the wide upper levels). *)
  let rem_plain, dt =
    timed (fun () -> RT.remainders_mod_square ~pool:seq ~precomp:false tree_s root)
  in
  row "remainder-tree-plain" dt;
  check "precomp descent equals plain division descent"
    (Array.for_all2 N.equal rem_s rem_plain);
  let b0 = !N.barrett_threshold and r0 = !N.recip_threshold in
  N.barrett_threshold := 2;
  N.recip_threshold := 2;
  let rem_low, dt =
    timed (fun () ->
        RT.remainders_mod_square ~pool:seq (PT.build ~pool:seq moduli) root)
  in
  N.barrett_threshold := b0;
  N.recip_threshold := r0;
  row "remainder-tree-barrett-all" dt;
  check "all-levels-barrett descent equals plain"
    (Array.for_all2 N.equal rem_plain rem_low);

  let fb_s, dt = timed (fun () -> BG.factor_batch ~pool:seq moduli) in
  row "factor-batch-seq" dt;
  let fb_p, dt = timed (fun () -> BG.factor_batch ~pool:par moduli) in
  row "factor-batch-par" dt;
  let fs_p, dt = timed (fun () -> BG.factor_subsets ~pool:par ~k:8 moduli) in
  row "factor-subsets-k8-par" dt;
  check "factor_batch parallel = sequential" (BG.findings_equal fb_s fb_p);
  check "factor_subsets = factor_batch" (BG.findings_equal fb_s fs_p);
  check "planted factors recovered" (List.length fb_s >= 8);

  (* Backend registry probe: a corpus with one freshly planted shared
     prime; every registered backend (tree, ksubset, all-to-all) must
     surface that exact divisor and agree with the flat reference bit
     for bit. *)
  let module Bk = Batchgcd.Backend in
  let planted_p = Bignum.Prime.generate ~gen ~bits:48 in
  let planted_corpus =
    Array.append
      (Array.init 2 (fun _ ->
           N.mul planted_p (Bignum.Prime.generate ~gen ~bits:48)))
      (corpus ~n:30 ~planted:0)
  in
  let reference = BG.factor_batch ~pool:seq planted_corpus in
  check "planted prime is the reference divisor"
    (List.exists (fun f -> N.equal f.BG.divisor planted_p) reference);
  List.iter
    (fun (b : Bk.t) ->
      let fs, dt = timed (fun () -> Bk.factor b ~pool:par planted_corpus) in
      row (Printf.sprintf "backend-%s-32" b.Bk.name) dt;
      check
        (Printf.sprintf "backend %s recovers the planted factor" b.Bk.name)
        (List.exists (fun f -> N.equal f.BG.divisor planted_p) fs);
      check
        (Printf.sprintf "backend %s findings = flat reference" b.Bk.name)
        (BG.findings_equal reference fs))
    Bk.builtin;

  (* findings_equal between the old (PR 2) kernel configuration and
     the full new dispatch ladder, on the identical corpus. *)
  let k0 = !N.karatsuba_threshold
  and t0 = !N.toom3_threshold
  and n0 = !N.ntt_threshold
  and bz0 = !N.burnikel_ziegler_threshold
  and ba0 = !N.barrett_threshold
  and p0 = !N.parallel_mul_threshold
  and h0 = !N.hgcd_threshold in
  N.karatsuba_threshold := 24;
  N.toom3_threshold := max_int;
  N.ntt_threshold := max_int;
  N.burnikel_ziegler_threshold := 40;
  N.barrett_threshold := max_int;
  N.parallel_mul_threshold := max_int;
  N.hgcd_threshold := max_int;
  let fb_old, dt = timed (fun () -> BG.factor_batch ~pool:seq moduli) in
  N.karatsuba_threshold := k0;
  N.toom3_threshold := t0;
  N.ntt_threshold := n0;
  N.burnikel_ziegler_threshold := bz0;
  N.barrett_threshold := ba0;
  N.parallel_mul_threshold := p0;
  N.hgcd_threshold := h0;
  row "factor-batch-pr2-kernels" dt;
  check "old kernels findings = new kernels findings"
    (BG.findings_equal fb_s fb_old);

  (* ISSUE 8 kernel probes: Lehmer vs binary GCD and NTT vs Toom-3 on
     operands small enough for every runtest, with the thresholds
     pinned so both sides of each pair genuinely run their kernel. A
     divergence here fails tier-1 instead of waiting for the nightly
     Bechamel ladder. *)
  let bits n = N.random_bits gen n in
  let ga = bits 4000 and gb = bits 4000 in
  let shared = bits 120 in
  let gsa = N.mul shared (bits 1900) and gsb = N.mul shared (bits 2500) in
  let lehmer a b =
    N.hgcd_threshold := 1;
    Fun.protect ~finally:(fun () -> N.hgcd_threshold := h0) (fun () ->
        N.gcd a b)
  in
  let gl, dt = timed (fun () -> lehmer ga gb) in
  row "gcd-4kbit-lehmer" dt;
  let gbin, dt = timed (fun () -> N.gcd_binary ga gb) in
  row "gcd-4kbit-binary" dt;
  check "lehmer gcd = binary gcd" (N.equal gl gbin);
  check "lehmer recovers a planted shared factor"
    (N.equal (N.rem (lehmer gsa gsb) shared) N.zero
    && N.equal (lehmer gsa gsb) (N.gcd_binary gsa gsb));
  let ma = bits 30_000 and mb = bits 30_000 in
  let with_ntt v f =
    N.ntt_threshold := v;
    Fun.protect ~finally:(fun () -> N.ntt_threshold := n0) f
  in
  let p_toom, dt = timed (fun () -> with_ntt max_int (fun () -> N.mul ma mb)) in
  row "mul-30kbit-toom3" dt;
  let p_ntt, dt = timed (fun () -> with_ntt 8 (fun () -> N.mul ma mb)) in
  row "mul-30kbit-ntt" dt;
  check "ntt mul = toom3 mul" (N.equal p_toom p_ntt);
  check "ntt sqr = toom3 sqr"
    (N.equal
       (with_ntt max_int (fun () -> N.sqr ma))
       (with_ntt 8 (fun () -> N.sqr ma)));

  (* Incremental ingest: create over the first 64 moduli, extend with
     the remaining 32, findings must match the one-shot run; then a
     checkpoint save -> load -> extend round trip through a temp file. *)
  let module Inc = Batchgcd.Incremental in
  let early = Array.sub moduli 0 64 and late = Array.sub moduli 64 32 in
  let inc0, dt = timed (fun () -> Inc.create ~pool:seq ~k:4 early) in
  row "incremental-create-64-k4" dt;
  let inc1, dt = timed (fun () -> Inc.extend ~pool:seq inc0 late) in
  row "incremental-extend-32" dt;
  check "incremental extend findings = one-shot factor_batch"
    (BG.findings_equal fb_s (Inc.findings inc1));
  check "incremental corpus preserves order"
    (Array.for_all2 N.equal moduli (Inc.corpus inc1));
  let ckpt = Filename.temp_file "weakkeys-smoke" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ckpt)
    (fun () ->
      let (), dt =
        timed (fun () ->
            let oc = open_out_bin ckpt in
            Inc.save oc inc0;
            close_out oc)
      in
      row "incremental-save-64" dt;
      let loaded, dt =
        timed (fun () ->
            let ic = open_in_bin ckpt in
            Fun.protect ~finally:(fun () -> close_in ic) (fun () -> Inc.load ic))
      in
      row "incremental-load-64" dt;
      check "checkpoint round trip preserves findings"
        (BG.findings_equal (Inc.findings inc0) (Inc.findings loaded));
      check "extend after checkpoint load = one-shot factor_batch"
        (BG.findings_equal fb_s (Inc.findings (Inc.extend ~pool:seq loaded late))));

  (* Sharded arena driver: the two-tier sweep over a tiny corpus must
     reproduce the flat findings exactly, survive an extend across a
     shard boundary, and round-trip through a directory checkpoint
     (mapped arenas + on-disk forests) with nothing resident until
     the extend forces the lazy loads. *)
  let module Sh = Batchgcd.Sharded in
  let sh, dt = timed (fun () -> Sh.create ~pool:seq ~stride:16 moduli) in
  row "sharded-create-96-stride16" dt;
  check "sharded sweep findings = flat factor_batch"
    (BG.findings_equal fb_s (Sh.findings sh));
  check "sharded shard count" (Sh.shard_count sh = 6);
  let sh_all, dt =
    timed (fun () -> Sh.extend ~pool:seq (Sh.create ~pool:seq ~stride:16 early) late)
  in
  row "sharded-extend-32" dt;
  check "sharded extend across boundary = one-shot"
    (BG.findings_equal fb_s (Sh.findings sh_all));
  let shdir = Filename.temp_file "weakkeys-smoke-shard" "" in
  Sys.remove shdir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists shdir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat shdir f))
          (Sys.readdir shdir);
        Sys.rmdir shdir
      end)
    (fun () ->
      let (), dt = timed (fun () -> Sh.save_dir sh_all shdir) in
      row "sharded-save-dir" dt;
      let restored, dt = timed (fun () -> Sh.load_dir shdir) in
      row "sharded-load-dir" dt;
      check "load_dir leaves forests on disk" (Sh.loaded_shards restored = 0);
      check "restored findings = live"
        (BG.findings_equal (Sh.findings sh_all) (Sh.findings restored));
      let delta = corpus ~n:16 ~planted:0 in
      check "restored extend = flat over union"
        (BG.findings_equal
           (BG.factor_batch ~pool:seq (Array.append moduli delta))
           (Sh.findings (Sh.extend ~pool:seq restored delta))));

  (* Attribution registry: the six builtin passes over a tiny
     synthetic context (no scans, so the corpus-driven passes do the
     work), pooled execution must produce the identical evidence
     table as sequential. A both-primes-shared pool of 4 primes (all 6
     pairings) is appended so the ibm-clique pass fires, which in turn
     feeds the shared-prime pass real labels. *)
  let module FP = Fingerprint in
  let pool_primes =
    Array.init 4 (fun _ -> Bignum.Prime.generate ~gen ~bits:48)
  in
  let clique_mods =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i < j then Some (N.mul pool_primes.(i) pool_primes.(j))
            else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  let attr_moduli = Array.append moduli (Array.of_list clique_mods) in
  let fb_attr, dt = timed (fun () -> BG.factor_batch ~pool:seq attr_moduli) in
  row "attribution-factor-batch" dt;
  let store = Corpus.Store.create ~size:256 () in
  Array.iter (fun m -> ignore (Corpus.Store.intern store m)) attr_moduli;
  let factored, unrecovered = FP.Factored.recover fb_attr in
  let factored_index = Array.make (Corpus.Store.size store) None in
  List.iter
    (fun (f : FP.Factored.t) ->
      match Corpus.Store.find store f.FP.Factored.modulus with
      | Some id -> factored_index.(id) <- Some f
      | None -> ())
    factored;
  let ctx =
    {
      FP.Pass.Ctx.store;
      corpus = attr_moduli;
      findings = fb_attr;
      factored;
      factored_index;
      unrecovered;
      scans = [];
      page_titles = Hashtbl.create 1;
      cert_fp = (fun _ -> "");
      modulus_bits = 96;
    }
  in
  let (a_seq, _), dt =
    timed (fun () -> FP.Registry.run ~pool:seq ctx FP.Registry.builtin)
  in
  row "attribution-passes-seq" dt;
  let (a_par, _), dt =
    timed (fun () -> FP.Registry.run ~pool:par ctx FP.Registry.builtin)
  in
  row "attribution-passes-par" dt;
  check "pooled attribution passes = sequential"
    (FP.Attribution.equal_evidence a_seq a_par);
  (match FP.Attribution.cliques a_seq with
  | Some (c :: _) ->
    check "clique pass found the planted 4-prime pool"
      (List.length c.FP.Ibm_clique.moduli >= 6);
    let member = List.hd c.FP.Ibm_clique.moduli in
    check "clique member attributed to IBM"
      (match Corpus.Store.find store member with
      | Some id -> FP.Attribution.vendor_of a_seq id = Some "IBM"
      | None -> false)
  | _ -> check "clique pass found the planted 4-prime pool" false);

  if !failures > 0 then begin
    Printf.eprintf "bench-smoke: %d check(s) failed\n%!" !failures;
    exit 2
  end;
  print_endline "bench-smoke: all kernel checks passed"
