(* The Mironov OpenSSL prime fingerprint (paper Section 3.3.4).

   OpenSSL's prime generation sieves candidates so that p-1 is never
   divisible by any of the first 2048 (odd) table primes; a uniformly
   random prime has that property only ~7.5% of the time. Given the
   factored primes of a vulnerable implementation, this cleanly
   separates likely-OpenSSL from definitely-not-OpenSSL code.

   Run: dune exec examples/openssl_fingerprint_demo.exe *)

module N = Bignum.Nat
module Pr = Bignum.Prime

let () =
  let drbg = Hashes.Drbg.create ~seed:"fingerprint-demo" () in
  let gen = Hashes.Drbg.gen_fn drbg in

  (* Empirical baseline: how many random primes satisfy the property? *)
  let trials = 200 in
  let satisfied = ref 0 in
  for _ = 1 to trials do
    if Pr.satisfies_openssl_fingerprint (Pr.generate ~gen ~bits:64) then
      incr satisfied
  done;
  Printf.printf
    "random 64-bit primes satisfying the fingerprint: %d/%d (%.1f%%)\n"
    !satisfied trials
    (100. *. Float.of_int !satisfied /. Float.of_int trials);
  Printf.printf "analytic baseline over the table: %.2f%%\n\n"
    (100. *. Fingerprint.Openssl_fp.satisfy_probability_random ());

  (* OpenSSL-style generation always satisfies it. *)
  let openssl = List.init 8 (fun _ -> Pr.generate_openssl_style ~gen ~bits:64) in
  Printf.printf "8 OpenSSL-style primes -> verdict: %s\n"
    (Fingerprint.Openssl_fp.verdict_to_string
       (Fingerprint.Openssl_fp.classify openssl));

  (* Plain generation is caught quickly. *)
  let plain = List.init 8 (fun _ -> Pr.generate ~gen ~bits:64) in
  Printf.printf "8 plain primes          -> verdict: %s\n\n"
    (Fingerprint.Openssl_fp.verdict_to_string
       (Fingerprint.Openssl_fp.classify plain));

  (* The same decision applied per vendor, as in Table 5: factor two
     synthetic vendors' keys via batch GCD and classify their pools. *)
  let make_vendor name style =
    let profile = Entropy.Device_rng.vulnerable_shared_prime name ~bits:3 in
    List.init 10 (fun i ->
        let rng =
          Entropy.Device_rng.boot profile
            ~device_unique:(Printf.sprintf "%s-%d" name i)
            ~boot_state:i
        in
        (Rsa.Keypair.generate_on_device ~style ~rng ~bits:128 ())
          .Rsa.Keypair.pub.Rsa.Keypair.n)
  in
  let a = make_vendor "vendor-openssl" Rsa.Keypair.Openssl in
  let b = make_vendor "vendor-plain" Rsa.Keypair.Plain in
  let moduli = Batchgcd.Batch_gcd.dedup (Array.of_list (a @ b)) in
  let findings = Batchgcd.Batch_gcd.factor_batch moduli in
  let factored, _ = Fingerprint.Factored.recover findings in
  let in_list l (f : Fingerprint.Factored.t) =
    List.exists (N.equal f.Fingerprint.Factored.modulus) l
  in
  let entries =
    List.map
      (fun f ->
        ( f,
          if in_list a f then Some "VendorA (OpenSSL build)"
          else if in_list b f then Some "VendorB (custom RNG)"
          else None ))
      factored
  in
  Printf.printf "Table-5-style classification from %d factored keys:\n"
    (List.length factored);
  List.iter
    (fun (vendor, verdict, n) ->
      Printf.printf "  %-24s %-16s (%d primes examined)\n" vendor
        (Fingerprint.Openssl_fp.verdict_to_string verdict)
        n)
    (Fingerprint.Openssl_fp.classify_vendors entries)
