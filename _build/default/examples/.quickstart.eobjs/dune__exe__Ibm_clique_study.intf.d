examples/ibm_clique_study.mli:
