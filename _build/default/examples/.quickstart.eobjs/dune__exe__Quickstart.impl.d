examples/quickstart.ml: Array Batchgcd Bignum Entropy List Printf Rsa String
