examples/distributed_batchgcd.ml: Array Batchgcd Bignum Hashes List Printf Stdlib Sys Unix
