examples/quickstart.mli:
