examples/vendor_response_study.mli:
