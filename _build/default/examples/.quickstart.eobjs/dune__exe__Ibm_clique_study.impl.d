examples/ibm_clique_study.ml: Array Batchgcd Bignum Fingerprint Hashes List Printf Rsa String
