examples/openssl_fingerprint_demo.ml: Array Batchgcd Bignum Entropy Fingerprint Float Hashes List Printf Rsa
