examples/heartbleed_event.mli:
