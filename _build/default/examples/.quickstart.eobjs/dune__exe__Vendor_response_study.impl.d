examples/vendor_response_study.ml: Analysis Array List Netsim Printf Sys Weakkeys X509lite
