examples/distributed_batchgcd.mli:
