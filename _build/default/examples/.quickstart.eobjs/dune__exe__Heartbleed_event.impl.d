examples/heartbleed_event.ml: Analysis Array Float List Netsim Printf Sys Weakkeys X509lite
