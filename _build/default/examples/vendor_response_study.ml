(* Vendor-response study (paper Section 4): build a scaled-down
   simulated internet, run the full measurement pipeline, and compare
   vulnerable-population trajectories across disclosure-response
   categories — did a public advisory help end users at all?

   Run: dune exec examples/vendor_response_study.exe [scale]
   (default scale 0.1; 1.0 reproduces the calibrated populations) *)

module Date = X509lite.Date
module P = Weakkeys.Pipeline
module Ts = Analysis.Timeseries

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.1
  in
  let cfg =
    { Netsim.World.default_config with Netsim.World.scale; seed = "vendor-study" }
  in
  Printf.printf "building world at scale %.2f and running pipeline...\n%!" scale;
  let p = P.run ~progress:(fun m -> Printf.printf "  %s\n%!" m) cfg in

  let vendors =
    [ "Juniper"; "Innominate"; "IBM"; "Cisco"; "HP"; "ZyXEL"; "TP-Link" ]
  in
  Printf.printf "\n%-12s %-18s %10s %10s %10s %10s\n" "Vendor" "Response"
    "vuln@2012" "vuln@2014" "vuln@2016" "advisory";
  List.iter
    (fun name ->
      let v = Netsim.Vendor.find name in
      let s =
        Ts.vendor ~label:(P.vendor_of_record p)
          ~vulnerable:(P.is_vulnerable p) p.P.monthly name
      in
      let at y m =
        match Ts.value_at s (Date.of_ymd y m 15) with
        | Some pt -> string_of_int pt.Ts.vulnerable
        | None -> "-"
      in
      Printf.printf "%-12s %-18s %10s %10s %10s %10s\n" name
        (Netsim.Vendor.response_to_string v.Netsim.Vendor.response)
        (at 2012 6) (at 2014 3) (at 2016 4)
        (match v.Netsim.Vendor.advisory_date with
        | Some d -> Date.month_label d
        | None -> "never"))
    vendors;

  (* The paper's Juniper deep dive: transition counting. *)
  let tr =
    Analysis.Transitions.for_vendor ~label:(P.vendor_of_record p)
      ~vulnerable:(P.is_vulnerable p) p.P.monthly "Juniper"
  in
  Printf.printf
    "\nJuniper IP transitions over the whole corpus:\n\
    \  %d IPs ever served a Juniper certificate, %d ever vulnerable\n\
    \  %d went vulnerable->ok, %d ok->vulnerable, %d flapped repeatedly\n"
    tr.Analysis.Transitions.ips_ever tr.Analysis.Transitions.ips_vulnerable_ever
    tr.Analysis.Transitions.to_ok tr.Analysis.Transitions.to_vulnerable
    tr.Analysis.Transitions.flapping;
  print_newline ();
  print_string (Weakkeys.Report.figure3 p);
  print_string (Weakkeys.Report.figure4 p);
  print_string
    "Conclusion (matching the paper): vendor response category shows no\n\
     visible correlation with end-user vulnerability trajectories; the\n\
     populations decline only through device churn and the Heartbleed\n\
     shock, not through patching.\n"
