(* The k-subset distributed batch GCD (paper Section 3.2, Figure 2).

   The single-tree algorithm bottlenecks on one giant product at the
   tree root; the paper's modification splits the input into k subsets
   and reduces every subset product through every subset tree — k^2
   jobs of k-times-smaller numbers, embarrassingly parallel across a
   cluster (here: across OCaml domains), at the price of more total
   work. This example verifies the equivalence and reports timings
   across k.

   Run: dune exec examples/distributed_batchgcd.exe [n_moduli] *)

module N = Bignum.Nat
module BG = Batchgcd.Batch_gcd

let time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000 in
  let drbg = Hashes.Drbg.create ~seed:"distributed-demo" () in
  let gen = Hashes.Drbg.gen_fn drbg in
  Printf.printf "generating %d moduli (with 40 planted shared-prime keys)...\n%!" n;
  let shared_prime = Bignum.Prime.generate ~gen ~bits:48 in
  let moduli =
    Array.init n (fun i ->
        if i mod (n / 40) = 0 then
          N.mul shared_prime (Bignum.Prime.generate ~gen ~bits:48)
        else
          N.mul
            (Bignum.Prime.generate ~gen ~bits:48)
            (Bignum.Prime.generate ~gen ~bits:48))
  in
  let reference, t_single = wall (fun () -> BG.factor_batch moduli) in
  Printf.printf "single product tree:        %5.2fs wall, %d findings\n%!"
    t_single (List.length reference);
  List.iter
    (fun k ->
      let (r, t_wall) = wall (fun () -> BG.factor_subsets ~k moduli) in
      let (_, t_cpu) = time (fun () -> BG.factor_subsets ~domains:1 ~k moduli) in
      Printf.printf
        "k=%-3d subsets:              %5.2fs wall, %5.2fs 1-domain cpu, %s\n%!"
        k t_wall t_cpu
        (if BG.findings_equal r reference then "IDENTICAL results"
         else "RESULTS DIFFER (bug!)"))
    [ 2; 4; 8; 16 ];
  let naive_n = Stdlib.min n 600 in
  let sub = Array.sub moduli 0 naive_n in
  let ref_small = BG.factor_batch sub in
  let naive, t_naive = wall (fun () -> BG.naive sub) in
  Printf.printf
    "naive O(n^2) on %d moduli:  %5.2fs wall (%s) — the reason batch GCD\n\
     exists: extrapolating quadratically to the paper's 81M keys gives\n\
     millennia, vs 1089 CPU-hours for the tree algorithm.\n"
    naive_n t_naive
    (if BG.findings_equal naive ref_small then "matches tree results"
     else "MISMATCH (bug!)")
