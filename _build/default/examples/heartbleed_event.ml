(* Heartbleed event study (paper Sections 1, 4.1-4.2): the single
   largest drop in the vulnerable population coincides with the April
   2014 Heartbleed disclosure — not with any weak-key advisory. This
   example locates the drop per vendor and measures how much of the
   total population disappeared with it.

   Run: dune exec examples/heartbleed_event.exe [scale] *)

module Date = X509lite.Date
module P = Weakkeys.Pipeline
module Ts = Analysis.Timeseries

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.1
  in
  let cfg =
    {
      Netsim.World.default_config with
      Netsim.World.scale;
      seed = "heartbleed-study";
    }
  in
  Printf.printf "building world at scale %.2f...\n%!" scale;
  let p = P.run ~progress:(fun m -> Printf.printf "  %s\n%!" m) cfg in

  let overall = Ts.overall ~vulnerable:(P.is_vulnerable p) p.P.monthly in
  (match Ts.largest_vulnerable_drop overall with
  | Some (d, k) ->
    Printf.printf
      "\nLargest vulnerable-host drop in the whole corpus: %d hosts,\n\
       landing in %s %s\n" k (Date.month_label d)
      (let y, m, _ = Date.to_ymd d in
       if y = 2014 && (m = 4 || m = 5) then
         "— the Heartbleed window, as in the paper"
       else "— NOT the Heartbleed window (unexpected)")
  | None -> print_endline "no drop found");

  Printf.printf "\n%-10s %18s %18s %14s\n" "Vendor" "total 03->05/2014"
    "vulnerable 03->05" "shock";
  List.iter
    (fun name ->
      let s =
        Ts.vendor ~label:(P.vendor_of_record p)
          ~vulnerable:(P.is_vulnerable p) p.P.monthly name
      in
      match
        ( Ts.value_at s (Date.of_ymd 2014 3 15),
          Ts.value_at s (Date.of_ymd 2014 5 15) )
      with
      | Some b, Some a ->
        let pct x y =
          if x = 0 then "-"
          else Printf.sprintf "-%.0f%%" (100. *. Float.of_int (x - y) /. Float.of_int x)
        in
        Printf.printf "%-10s %8d -> %7d %8d -> %7d %14s\n" name b.Ts.total
          a.Ts.total b.Ts.vulnerable a.Ts.vulnerable (pct b.Ts.total a.Ts.total)
      | _ -> Printf.printf "%-10s (no data around the event)\n" name)
    [ "Juniper"; "HP"; "IBM"; "Cisco"; "Innominate"; "AVM" ];

  print_newline ();
  print_string (Weakkeys.Report.figure1 p);
  print_string
    "Reading (as in the paper): the drop is concentrated in device\n\
     families whose HTTPS interfaces crashed or were taken offline when\n\
     the world scanned for Heartbleed — publicity moved users where\n\
     years of weak-key advisories had not.\n"
