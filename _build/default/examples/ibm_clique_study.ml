(* The IBM nine-prime clique (paper Sections 3.3.1 / 4.1).

   IBM Remote Supervisor Adapter II and BladeCenter Management Module
   firmware generated RSA keys from only nine possible primes: 36
   possible public keys across the whole product line. Because the
   certificates carry customer-organization subjects, nothing in the
   DN says "IBM" — the devices are identified purely from the key
   structure. This example reproduces that identification and the
   Siemens overlap.

   Run: dune exec examples/ibm_clique_study.exe *)

module N = Bignum.Nat
module K = Rsa.Keypair

let () =
  let bits = 128 in
  (* A fleet of IBM cards plus unrelated weak devices, as a scan would
     deliver them: moduli only. *)
  let gen = Hashes.Drbg.gen_fn (Hashes.Drbg.create ~seed:"ibm-study" ()) in
  let ibm_fleet = List.init 30 (fun _ -> (Rsa.Ibm.generate ~gen ~bits).K.pub.K.n) in
  let shared = Bignum.Prime.generate ~gen ~bits:(bits / 2) in
  let star_fleet =
    List.init 10 (fun _ ->
        N.mul shared (Bignum.Prime.generate ~gen ~bits:(bits / 2)))
  in
  let healthy =
    List.init 40 (fun _ -> (K.generate ~gen ~bits ()).K.pub.K.n)
  in
  let moduli =
    Batchgcd.Batch_gcd.dedup (Array.of_list (ibm_fleet @ star_fleet @ healthy))
  in
  Printf.printf "scanned %d distinct moduli (30 IBM cards -> %d distinct keys)\n"
    (Array.length moduli)
    (List.length (List.sort_uniq N.compare ibm_fleet));

  let findings = Batchgcd.Batch_gcd.factor_batch moduli in
  let factored, _ = Fingerprint.Factored.recover findings in
  Printf.printf "batch GCD factored %d moduli\n" (List.length factored);

  (* Clique detection separates the pool implementation from the
     ordinary shared-first-prime star. *)
  (match Fingerprint.Ibm_clique.detect factored with
  | [] -> print_endline "no clique found (unexpected)"
  | c :: _ ->
    Printf.printf
      "detected a prime-pool implementation: %d moduli built from only %d\n\
       primes -> the IBM signature (every key is a pair from the pool)\n"
      (List.length c.Fingerprint.Ibm_clique.moduli)
      (List.length c.Fingerprint.Ibm_clique.primes);
    let in_clique n =
      List.exists (N.equal n) c.Fingerprint.Ibm_clique.moduli
    in
    let true_pos = List.length (List.filter in_clique (List.sort_uniq N.compare ibm_fleet)) in
    let false_pos = List.length (List.filter in_clique star_fleet) in
    Printf.printf
      "identification vs ground truth: %d/%d IBM keys captured, %d/%d star\n\
       keys misattributed\n"
      true_pos
      (List.length (List.sort_uniq N.compare ibm_fleet))
      false_pos (List.length star_fleet));

  (* The Siemens overlap: a Siemens-labeled device serving an IBM pool
     modulus shows up as a cross-vendor shared prime. *)
  let siemens_modulus = (Rsa.Ibm.generate ~gen ~bits).K.pub.K.n in
  let all = Batchgcd.Batch_gcd.dedup (Array.append moduli [| siemens_modulus |]) in
  let factored, _ =
    Fingerprint.Factored.recover (Batchgcd.Batch_gcd.factor_batch all)
  in
  let entries =
    List.map
      (fun (f : Fingerprint.Factored.t) ->
        if N.equal f.Fingerprint.Factored.modulus siemens_modulus then
          (f, Some "Siemens")
        else if List.exists (N.equal f.Fingerprint.Factored.modulus) ibm_fleet
        then (f, Some "IBM")
        else (f, None))
      factored
  in
  let pools = Fingerprint.Shared_prime.build entries in
  List.iter
    (fun (a, b, p) ->
      Printf.printf
        "cross-vendor overlap: %s and %s share prime %s... (the paper's\n\
         Siemens building-automation interfaces embed the IBM module)\n"
        a b
        (String.sub (N.to_hex p) 0 12))
    (Fingerprint.Shared_prime.overlaps pools)
