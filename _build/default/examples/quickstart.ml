(* Quickstart: the whole vulnerability in 80 lines.

   1. Boot a fleet of simulated headless devices whose entropy pool has
      only a few bits of boot-time state (the paper's failure mode).
   2. Collect their public RSA keys, as an internet scan would.
   3. Run batch GCD and factor the keys that share a prime.
   4. Recover a full private key from one GCD hit and decrypt traffic.

   Run: dune exec examples/quickstart.exe *)

module N = Bignum.Nat
module K = Rsa.Keypair
module Rng = Entropy.Device_rng

let () =
  (* A vulnerable product line: 4 bits of boot entropy, second prime
     diverges after boot (so keys differ but first primes collide). *)
  let profile = Rng.vulnerable_shared_prime "example-router" ~bits:4 in
  Printf.printf "Booting 24 devices of a model with %d boot-entropy bits...\n"
    profile.Rng.boot_entropy_bits;
  let devices =
    List.init 24 (fun i ->
        let rng =
          Rng.boot profile
            ~device_unique:(Printf.sprintf "serial-%04d" i)
            ~boot_state:(i * 7919) (* whatever the clock happened to be *)
        in
        K.generate_on_device ~rng ~bits:128 ())
  in
  (* The scan sees only public moduli. *)
  let moduli =
    Batchgcd.Batch_gcd.dedup
      (Array.of_list (List.map (fun k -> k.K.pub.K.n) devices))
  in
  Printf.printf "Collected %d distinct public moduli.\n" (Array.length moduli);

  (* Batch GCD: quasilinear, no private information needed. *)
  let findings = Batchgcd.Batch_gcd.factor_batch moduli in
  Printf.printf "Batch GCD factored %d of them:\n" (List.length findings);
  List.iter
    (fun f ->
      Printf.printf "  modulus %s... shares prime %s...\n"
        (String.sub (N.to_hex f.Batchgcd.Batch_gcd.modulus) 0 12)
        (String.sub (N.to_hex f.Batchgcd.Batch_gcd.divisor) 0 12))
    findings;

  (* The attacker's payoff: rebuild a private key and decrypt. *)
  match findings with
  | [] -> print_endline "No weak keys this time (try more devices)."
  | f :: _ ->
    let pub = { K.n = f.Batchgcd.Batch_gcd.modulus; e = K.default_e } in
    (match K.recover_private pub ~factor:f.Batchgcd.Batch_gcd.divisor with
    | None -> print_endline "Divisor was composite; split it further."
    | Some priv ->
      let secret = N.of_string "428998846089" in
      let ciphertext = K.encrypt pub secret in
      let plaintext = K.decrypt priv ciphertext in
      Printf.printf
        "Recovered the private key; decrypted %s back to %s -> %s\n"
        (N.to_string ciphertext) (N.to_string plaintext)
        (if N.equal secret plaintext then "ATTACK WORKS" else "mismatch?!"))
