(* Shared simulated worlds for the test suite. Built lazily once and
   reused by the netsim, fingerprint, analysis and pipeline tests. *)

let small_config =
  {
    Netsim.World.default_config with
    Netsim.World.seed = "test-world";
    scale = 0.05;
  }

let small = lazy (Netsim.World.build small_config)
let small_scans = lazy (Netsim.Scanner.run_all (Lazy.force small))
let small_pipeline = lazy (Weakkeys.Pipeline.of_world (Lazy.force small))

let gen_of seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))
