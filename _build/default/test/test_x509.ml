(* Tests for dates, distinguished names, and the certificate model. *)

module D = X509lite.Date
module Dn = X509lite.Dn
module C = X509lite.Certificate
module K = Rsa.Keypair
module N = Bignum.Nat

let date = Alcotest.testable D.pp D.equal

let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

(* One shared key for certificate tests; 512 bits fits SHA-256 EMSA. *)
let key = lazy (K.generate ~gen:(mk_gen 99) ~bits:512 ())

let mk_cert ?(cn = "system generated") ?(san = []) () =
  let key = Lazy.force key in
  C.self_sign
    ~serial:(N.of_int 1)
    ~subject:(Dn.make ~cn ~o:"Juniper Networks" ())
    ~subject_alt_names:san
    ~not_before:(D.of_ymd 2011 10 1)
    ~not_after:(D.of_ymd 2021 10 1)
    ~key ()

(* ---------------- Date ---------------- *)

let test_date_roundtrip () =
  List.iter
    (fun (y, m, d) ->
      let t = D.of_ymd y m d in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "%d-%d-%d" y m d)
        (y, m, d) (D.to_ymd t))
    [ (1970, 1, 1); (2000, 2, 29); (2012, 6, 30); (2016, 5, 31); (1999, 12, 31) ]

let test_date_epoch () =
  Alcotest.(check int) "epoch" 0 (D.to_days (D.of_ymd 1970 1 1));
  Alcotest.(check int) "day 1" 1 (D.to_days (D.of_ymd 1970 1 2));
  (* Known: 2012-06-01 is 15492 days after the epoch. *)
  Alcotest.(check int) "2012-06-01" 15492 (D.to_days (D.of_ymd 2012 6 1))

let test_date_month_arith () =
  Alcotest.check date "add 1 month clamps" (D.of_ymd 2011 2 28)
    (D.add_months (D.of_ymd 2011 1 31) 1);
  Alcotest.check date "add 12 months" (D.of_ymd 2013 3 15)
    (D.add_months (D.of_ymd 2012 3 15) 12);
  Alcotest.check date "subtract months" (D.of_ymd 2009 11 1)
    (D.add_months (D.of_ymd 2010 1 1) (-2));
  Alcotest.(check int) "months_between" 70
    (D.months_between (D.of_ymd 2016 5 1) (D.of_ymd 2010 7 15))

let test_date_strings () =
  Alcotest.(check string) "iso" "2014-04-07" (D.to_string (D.of_ymd 2014 4 7));
  Alcotest.check date "parse" (D.of_ymd 2014 4 7) (D.of_string "2014-04-07");
  Alcotest.(check string) "figure label" "04/2014"
    (D.month_label (D.of_ymd 2014 4 7));
  Alcotest.check_raises "bad month" (Invalid_argument "Date.of_ymd: bad month")
    (fun () -> ignore (D.of_ymd 2014 13 1))

let prop_date_days_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"date of_days/to_days" ~count:300
       (QCheck2.Gen.int_range (-100000) 100000)
       (fun d -> D.to_days (D.of_days d) = d))

let prop_date_ymd_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"date ymd roundtrip over range" ~count:300
       (QCheck2.Gen.int_range 0 20000)
       (fun d ->
         let y, m, dd = D.to_ymd (D.of_days d) in
         D.to_days (D.of_ymd y m dd) = d))

(* ---------------- Dn ---------------- *)

let test_dn_to_string () =
  let dn = Dn.make ~cn:"Default Common Name" ~o:"Default Organization" () in
  Alcotest.(check string) "render"
    "CN=Default Common Name, O=Default Organization" (Dn.to_string dn)

let test_dn_roundtrip () =
  List.iter
    (fun dn ->
      Alcotest.(check bool) (Dn.to_string dn) true
        (Dn.equal dn (Dn.of_string (Dn.to_string dn))))
    [
      Dn.make ~cn:"system generated" ();
      Dn.make ~cn:"a, b \\ c=d" ~o:"Cisco" ~ou:"RV220W" ();
      Dn.make ~extra:[ (Dn.C, "US"); (Dn.Unstructured "serial", "X1") ] ();
      [];
    ]

let test_dn_accessors () =
  let dn =
    Dn.make ~cn:"fritz.box" ~o:"AVM"
      ~extra:[ (Dn.OU, "first"); (Dn.OU, "second") ]
      ()
  in
  Alcotest.(check (option string)) "cn" (Some "fritz.box") (Dn.common_name dn);
  Alcotest.(check (option string)) "o" (Some "AVM") (Dn.organization dn);
  Alcotest.(check (list string)) "all ou" [ "first"; "second" ]
    (Dn.get_all dn Dn.OU);
  Alcotest.(check (option string)) "missing" None (Dn.get dn Dn.Email)

(* ---------------- Certificate ---------------- *)

let test_cert_self_signed () =
  let c = mk_cert () in
  Alcotest.(check bool) "self-signed verifies" true (C.is_self_signed c);
  Alcotest.(check bool) "signature valid under own key" true
    (C.verify_signature c c.C.public_key)

let test_cert_encode_roundtrip () =
  let c = mk_cert ~san:[ "fritz.box"; "www.fritz.box" ] () in
  let c' = C.decode (C.encode c) in
  Alcotest.(check string) "identical encodings" (C.encode c) (C.encode c');
  Alcotest.(check bool) "decoded verifies" true (C.is_self_signed c');
  Alcotest.(check (list string)) "sans preserved"
    [ "fritz.box"; "www.fritz.box" ]
    c'.C.subject_alt_names

let test_cert_fingerprint_stability () =
  let c = mk_cert () in
  Alcotest.(check string) "fingerprint deterministic" (C.fingerprint c)
    (C.fingerprint (C.decode (C.encode c)));
  let c2 = mk_cert ~cn:"other" () in
  Alcotest.(check bool) "different certs, different fingerprints" false
    (C.fingerprint c = C.fingerprint c2)

let test_cert_ca_signed () =
  let ca = K.generate ~gen:(mk_gen 100) ~bits:512 () in
  let leaf_key = Lazy.force key in
  let c =
    C.sign_with ~serial:(N.of_int 7)
      ~subject:(Dn.make ~cn:"device.local" ())
      ~not_before:(D.of_ymd 2012 1 1) ~not_after:(D.of_ymd 2017 1 1)
      ~subject_key:leaf_key.K.pub
      ~issuer:(Dn.make ~cn:"Example CA" ~o:"Example" ())
      ~issuer_key:ca ()
  in
  Alcotest.(check bool) "verifies under CA key" true
    (C.verify_signature c ca.K.pub);
  Alcotest.(check bool) "not under own key" false
    (C.verify_signature c c.C.public_key);
  Alcotest.(check bool) "not self-signed" false (C.is_self_signed c)

let test_rimon_substitution () =
  (* Substituting the public key keeps the certificate body intact but
     breaks the signature — exactly what the paper observed. *)
  let mitm = K.generate ~gen:(mk_gen 101) ~bits:512 () in
  let c = mk_cert () in
  let c' = C.substitute_public_key c mitm.K.pub in
  Alcotest.(check bool) "subject unchanged" true (Dn.equal c.C.subject c'.C.subject);
  Alcotest.(check bool) "serial unchanged" true (N.equal c.C.serial c'.C.serial);
  Alcotest.(check bool) "signature now invalid" false
    (C.verify_signature c' c'.C.public_key);
  Alcotest.(check bool) "key actually replaced" true
    (N.equal c'.C.public_key.K.n mitm.K.pub.K.n)

let tests =
  [
    Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
    Alcotest.test_case "date epoch" `Quick test_date_epoch;
    Alcotest.test_case "date month arithmetic" `Quick test_date_month_arith;
    Alcotest.test_case "date strings" `Quick test_date_strings;
    prop_date_days_roundtrip;
    prop_date_ymd_roundtrip;
    Alcotest.test_case "dn render" `Quick test_dn_to_string;
    Alcotest.test_case "dn roundtrip" `Quick test_dn_roundtrip;
    Alcotest.test_case "dn accessors" `Quick test_dn_accessors;
    Alcotest.test_case "cert self-signed" `Quick test_cert_self_signed;
    Alcotest.test_case "cert encode roundtrip" `Quick test_cert_encode_roundtrip;
    Alcotest.test_case "cert fingerprint" `Quick test_cert_fingerprint_stability;
    Alcotest.test_case "cert ca-signed" `Quick test_cert_ca_signed;
    Alcotest.test_case "rimon substitution" `Quick test_rimon_substitution;
  ]
