(* Tests for signed integers: sign algebra, Euclidean division,
   extended GCD identity, CRT reconstruction. *)

module N = Bignum.Nat
module Z = Bignum.Zz

let zz = Alcotest.testable Z.pp Z.equal
let nat = Alcotest.testable N.pp N.equal

let arb_zz =
  let open QCheck2.Gen in
  let nat_gen =
    map
      (fun (bits, s) ->
        if bits = 0 then N.zero
        else N.random_bits (fun k -> String.sub s 0 k) bits)
      (pair (int_range 0 256)
         (string_size ~gen:(map Char.chr (int_range 0 255)) (return 32)))
  in
  map (fun (n, neg) -> if neg then Z.neg (Z.of_nat n) else Z.of_nat n)
    (pair nat_gen bool)

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let test_basic () =
  Alcotest.check zz "1 + -1 = 0" Z.zero (Z.add Z.one Z.minus_one);
  Alcotest.check zz "-1 * -1 = 1" Z.one (Z.mul Z.minus_one Z.minus_one);
  Alcotest.(check string) "to_string" "-42" (Z.to_string (Z.of_int (-42)));
  Alcotest.check zz "of_string neg" (Z.of_int (-42)) (Z.of_string "-42");
  Alcotest.(check int) "sign" (-1) (Z.sign (Z.of_int (-5)));
  Alcotest.(check int) "sign zero" 0 (Z.sign Z.zero)

let test_euclidean_division () =
  (* Remainder is always non-negative, quotient rounds accordingly. *)
  List.iter
    (fun (a, b, q, r) ->
      let q', r' = Z.divmod (Z.of_int a) (Z.of_int b) in
      Alcotest.check zz (Printf.sprintf "%d /e %d q" a b) (Z.of_int q) q';
      Alcotest.check zz (Printf.sprintf "%d /e %d r" a b) (Z.of_int r) r')
    [
      (7, 3, 2, 1);
      (-7, 3, -3, 2);
      (7, -3, -2, 1);
      (-7, -3, 3, 2);
      (6, 3, 2, 0);
      (-6, 3, -2, 0);
    ]

let test_egcd_identity () =
  let a = N.of_string "123456789123456789" in
  let b = N.of_string "987654321987654321987" in
  let g, x, y = Z.egcd a b in
  let lhs = Z.add (Z.mul (Z.of_nat a) x) (Z.mul (Z.of_nat b) y) in
  Alcotest.check zz "a*x + b*y = g" (Z.of_nat g) lhs;
  Alcotest.check nat "g = gcd" (N.gcd a b) g

let test_crt () =
  (* x = 2 mod 3, x = 3 mod 5, x = 2 mod 7  ->  23 mod 105 *)
  let p n = N.of_int n in
  (match Z.crt [ (p 2, p 3); (p 3, p 5); (p 2, p 7) ] with
  | Some x -> Alcotest.check nat "sunzi" (p 23) x
  | None -> Alcotest.fail "crt failed");
  (* Conflicting congruences on non-coprime moduli *)
  match Z.crt [ (p 1, p 4); (p 2, p 6) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected conflict"

let test_crt_compatible_noncoprime () =
  let p n = N.of_int n in
  match Z.crt [ (p 2, p 4); (p 2, p 6) ] with
  | Some x ->
    Alcotest.(check int) "x mod 4" 2 (N.mod_int x 4);
    Alcotest.(check int) "x mod 6" 2 (N.mod_int x 6)
  | None -> Alcotest.fail "compatible congruences must solve"

let props =
  let pair = QCheck2.Gen.pair arb_zz arb_zz in
  [
    prop "add comm" pair (fun (a, b) -> Z.equal (Z.add a b) (Z.add b a));
    prop "neg involutive" arb_zz (fun a -> Z.equal a (Z.neg (Z.neg a)));
    prop "sub = add neg" pair (fun (a, b) ->
        Z.equal (Z.sub a b) (Z.add a (Z.neg b)));
    prop "mul sign" pair (fun (a, b) ->
        Z.sign (Z.mul a b) = Z.sign a * Z.sign b);
    prop "euclidean invariant" pair (fun (a, b) ->
        if Z.sign b = 0 then true
        else begin
          let q, r = Z.divmod a b in
          Z.equal a (Z.add (Z.mul q b) r)
          && Z.sign r >= 0
          && N.compare (Z.abs r) (Z.abs b) < 0
        end);
    prop "string roundtrip" arb_zz (fun a ->
        Z.equal a (Z.of_string (Z.to_string a)));
    prop "egcd identity" pair (fun (a, b) ->
        let a = Z.abs a and b = Z.abs b in
        let g, x, y = Z.egcd a b in
        Z.equal (Z.of_nat g)
          (Z.add (Z.mul (Z.of_nat a) x) (Z.mul (Z.of_nat b) y)));
  ]

let tests =
  [
    Alcotest.test_case "basics" `Quick test_basic;
    Alcotest.test_case "euclidean division" `Quick test_euclidean_division;
    Alcotest.test_case "egcd identity" `Quick test_egcd_identity;
    Alcotest.test_case "crt" `Quick test_crt;
    Alcotest.test_case "crt non-coprime compatible" `Quick
      test_crt_compatible_noncoprime;
  ]
  @ props
