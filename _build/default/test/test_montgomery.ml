(* Montgomery arithmetic: agreement with the division-based ladder,
   domain roundtrips, edge cases. *)

module N = Bignum.Nat
module M = Bignum.Montgomery

let nat = Alcotest.testable N.pp N.equal

let arb_odd_modulus =
  let open QCheck2.Gen in
  map
    (fun (bits, s) ->
      let m = N.add (N.random_bits (fun k -> String.sub s 0 k) bits) N.one in
      let m = if N.is_even m then N.add m N.one else m in
      N.add m (N.of_int 2))
    (pair (int_range 2 400)
       (string_size ~gen:(map Char.chr (int_range 0 255)) (return 64)))

let arb_nat bits =
  let open QCheck2.Gen in
  map
    (fun s -> N.random_bits (fun k -> String.sub s 0 k) bits)
    (string_size ~gen:(map Char.chr (int_range 0 255)) (return 64))

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let test_create_rejects () =
  Alcotest.(check bool) "even modulus" true (M.create (N.of_int 100) = None);
  Alcotest.(check bool) "one" true (M.create N.one = None);
  Alcotest.(check bool) "two" true (M.create N.two = None);
  Alcotest.(check bool) "three ok" true (M.create (N.of_int 3) <> None)

let test_known_values () =
  let ctx = Option.get (M.create (N.of_int 97)) in
  Alcotest.check nat "2^10 mod 97" (N.of_int 54)
    (M.pow_mod ctx N.two (N.of_int 10));
  Alcotest.check nat "x^0 = 1" N.one (M.pow_mod ctx (N.of_int 13) N.zero);
  Alcotest.check nat "x^1 = x" (N.of_int 13)
    (M.pow_mod ctx (N.of_int 13) N.one)

let test_fermat_mersenne () =
  let p = N.of_string "170141183460469231731687303715884105727" in
  let ctx = Option.get (M.create p) in
  Alcotest.check nat "fermat via montgomery" N.one
    (M.pow_mod ctx (N.of_string "987654321987654321") (N.sub p N.one))

let props =
  [
    prop "pow_mod = Nat.pow_mod"
      QCheck2.Gen.(triple arb_odd_modulus (arb_nat 420) (arb_nat 48))
      (fun (m, b, e) ->
        match M.create m with
        | None -> true
        | Some ctx -> N.equal (M.pow_mod ctx b e) (N.pow_mod b e m));
    prop "mont mul = modular mul"
      QCheck2.Gen.(triple arb_odd_modulus (arb_nat 380) (arb_nat 380))
      (fun (m, x, y) ->
        match M.create m with
        | None -> true
        | Some ctx ->
          let x = N.rem x m and y = N.rem y m in
          N.equal
            (M.from_mont ctx (M.mul ctx (M.to_mont ctx x) (M.to_mont ctx y)))
            (N.rem (N.mul x y) m));
    prop "to/from domain roundtrip"
      QCheck2.Gen.(pair arb_odd_modulus (arb_nat 380))
      (fun (m, x) ->
        match M.create m with
        | None -> true
        | Some ctx ->
          N.equal (M.from_mont ctx (M.to_mont ctx x)) (N.rem x m));
    prop "pow_mod_nat dispatch"
      QCheck2.Gen.(triple (arb_nat 100) (arb_nat 100) (arb_nat 32))
      (fun (m, b, e) ->
        let m = N.add m N.two in
        N.equal (M.pow_mod_nat b e m) (N.pow_mod b e m));
  ]

let tests =
  [
    Alcotest.test_case "create rejects" `Quick test_create_rejects;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "fermat (mersenne prime)" `Quick test_fermat_mersenne;
  ]
  @ props
