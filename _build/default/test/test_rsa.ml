(* RSA tests: keygen consistency, encryption/signing roundtrips, the
   weak-keygen shared-prime pattern, IBM pool structure, private-key
   recovery from a GCD factor. *)

module N = Bignum.Nat
module K = Rsa.Keypair
module Rng = Entropy.Device_rng

let nat = Alcotest.testable N.pp N.equal

let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

let test_generate_consistent () =
  let k = K.generate ~gen:(mk_gen 1) ~bits:256 () in
  Alcotest.(check bool) "consistent" true (K.is_consistent k);
  Alcotest.(check int) "modulus size" 256 (N.num_bits k.K.pub.K.n)

let test_generate_plain_style () =
  let k = K.generate ~style:K.Plain ~gen:(mk_gen 2) ~bits:128 () in
  Alcotest.(check bool) "consistent" true (K.is_consistent k)

let test_generate_rejects_bad_bits () =
  Alcotest.check_raises "odd size"
    (Invalid_argument "Rsa.generate: modulus size must be even and >= 32")
    (fun () -> ignore (K.generate ~gen:(mk_gen 1) ~bits:129 ()));
  Alcotest.check_raises "too small"
    (Invalid_argument "Rsa.generate: modulus size must be even and >= 32")
    (fun () -> ignore (K.generate ~gen:(mk_gen 1) ~bits:16 ()))

let test_encrypt_decrypt () =
  let k = K.generate ~gen:(mk_gen 3) ~bits:256 () in
  let m = N.of_string "123456789123456789123456789" in
  Alcotest.check nat "roundtrip" m (K.decrypt k (K.encrypt k.K.pub m));
  Alcotest.check_raises "message too large"
    (Invalid_argument "Rsa.encrypt: message >= modulus") (fun () ->
      ignore (K.encrypt k.K.pub k.K.pub.K.n))

let test_sign_verify () =
  let k = K.generate ~gen:(mk_gen 4) ~bits:512 () in
  let s = K.sign k "hello network device" in
  Alcotest.(check bool) "verifies" true (K.verify k.K.pub "hello network device" s);
  Alcotest.(check bool) "wrong message" false (K.verify k.K.pub "tampered" s);
  Alcotest.(check bool) "wrong signature" false
    (K.verify k.K.pub "hello network device" (N.add s N.one))

let test_shared_prime_pattern () =
  (* The headline failure: same boot state -> same first prime;
     divergence between primes -> different second prime. *)
  let profile = Rng.vulnerable_shared_prime "router" ~bits:4 in
  let boot i u = Rng.boot profile ~device_unique:u ~boot_state:i in
  let ka = K.generate_on_device ~rng:(boot 3 "a") ~bits:128 () in
  let kb = K.generate_on_device ~rng:(boot 3 "b") ~bits:128 () in
  Alcotest.check nat "first primes collide" ka.K.p kb.K.p;
  Alcotest.(check bool) "second primes diverge" false (N.equal ka.K.q kb.K.q);
  Alcotest.(check bool) "moduli distinct" false
    (N.equal ka.K.pub.K.n kb.K.pub.K.n);
  Alcotest.check nat "gcd recovers the shared prime" ka.K.p
    (N.gcd ka.K.pub.K.n kb.K.pub.K.n)

let test_different_boot_states_differ () =
  let profile = Rng.vulnerable_shared_prime "router" ~bits:8 in
  let ka =
    K.generate_on_device
      ~rng:(Rng.boot profile ~device_unique:"a" ~boot_state:1)
      ~bits:128 ()
  in
  let kb =
    K.generate_on_device
      ~rng:(Rng.boot profile ~device_unique:"b" ~boot_state:2)
      ~bits:128 ()
  in
  Alcotest.check nat "coprime moduli" N.one (N.gcd ka.K.pub.K.n kb.K.pub.K.n)

let test_patched_device_strong_keys () =
  let profile = Rng.patched (Rng.vulnerable_shared_prime "router" ~bits:2) in
  let ka =
    K.generate_on_device
      ~rng:(Rng.boot profile ~device_unique:"a" ~boot_state:1)
      ~bits:128 ()
  in
  let kb =
    K.generate_on_device
      ~rng:(Rng.boot profile ~device_unique:"b" ~boot_state:1)
      ~bits:128 ()
  in
  Alcotest.(check bool) "patched devices do not share primes" true
    (N.is_one (N.gcd ka.K.pub.K.n kb.K.pub.K.n))

let test_prime_congruent_one_mod_e () =
  (* Regression: this DRBG stream's first prime p has 65537 | p - 1, so
     e can never be inverted whatever the second prime is; keygen must
     reject p and redraw rather than loop forever regenerating q. *)
  let gen =
    Hashes.Drbg.gen_fn
      (Hashes.Drbg.create ~seed:"bench-world/generic-web#14838/key/0" ())
  in
  let k = K.generate ~style:K.Plain ~gen ~bits:96 () in
  Alcotest.(check bool) "terminates and is consistent" true (K.is_consistent k);
  List.iter
    (fun p ->
      Alcotest.(check bool) "p != 1 mod e" false
        (N.mod_int (N.sub p N.one) 65537 = 0))
    [ k.K.p; k.K.q ]

let test_decrypt_crt_matches () =
  let k = K.generate ~gen:(mk_gen 20) ~bits:256 () in
  for i = 1 to 20 do
    let m = N.of_int (i * 987654321) in
    let c = K.encrypt k.K.pub m in
    Alcotest.check nat "crt = plain" (K.decrypt k c) (K.decrypt_crt k c);
    Alcotest.check nat "crt roundtrip" m (K.decrypt_crt k c)
  done

let test_key_serialization () =
  let k = K.generate ~gen:(mk_gen 21) ~bits:128 () in
  let k' = K.decode_private (K.encode_private k) in
  Alcotest.check nat "n" k.K.pub.K.n k'.K.pub.K.n;
  Alcotest.check nat "p" k.K.p k'.K.p;
  Alcotest.check nat "q" k.K.q k'.K.q;
  Alcotest.check nat "d" k.K.d k'.K.d;
  Alcotest.(check bool) "decoded key consistent" true (K.is_consistent k');
  let pub' = K.decode_public (K.encode_public k.K.pub) in
  Alcotest.check nat "public n" k.K.pub.K.n pub'.K.n;
  Alcotest.check_raises "tampered n rejected"
    (Invalid_argument "Rsa.decode_private: n <> p*q") (fun () ->
      let tampered =
        { k with K.pub = { k.K.pub with K.n = N.add k.K.pub.K.n N.two } }
      in
      ignore (K.decode_private (K.encode_private tampered)))

let test_recover_private () =
  let k = K.generate ~gen:(mk_gen 5) ~bits:256 () in
  (match K.recover_private k.K.pub ~factor:k.K.p with
  | None -> Alcotest.fail "recovery must succeed with a true factor"
  | Some k' ->
    Alcotest.(check bool) "recovered key consistent" true (K.is_consistent k');
    (* The recovered key must decrypt what the public key encrypts. *)
    let m = N.of_string "42424242424242424242" in
    Alcotest.check nat "decrypts" m (K.decrypt k' (K.encrypt k.K.pub m)));
  Alcotest.(check bool) "bogus factor rejected" true
    (K.recover_private k.K.pub ~factor:(N.of_int 17) = None);
  Alcotest.(check bool) "unit factor rejected" true
    (K.recover_private k.K.pub ~factor:N.one = None)

let test_well_formed_modulus () =
  let k = K.generate ~gen:(mk_gen 6) ~bits:128 () in
  Alcotest.(check bool) "real modulus is well-formed" true
    (K.well_formed_modulus k.K.pub.K.n ~bits:128);
  (* Flip a low bit: overwhelmingly likely to pick up a tiny factor or
     become prime-free of the right shape; run the paper's test. *)
  let corrupted =
    let n = k.K.pub.K.n in
    if N.is_even n then N.add n N.one else N.sub n N.one
  in
  Alcotest.(check bool) "even corruption detected" false
    (K.well_formed_modulus corrupted ~bits:128)

let test_ibm_pool () =
  let moduli = Rsa.Ibm.all_moduli ~bits:128 in
  Alcotest.(check int) "36 moduli from 9 primes" 36 (List.length moduli);
  let primes = Rsa.Ibm.primes ~bits:64 in
  Alcotest.(check int) "9 primes" 9 (Array.length primes);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "pool prime is prime" true
        (Bignum.Prime.is_probable_prime p);
      Alcotest.(check int) "pool prime size" 64 (N.num_bits p))
    primes;
  (* Determinism: a second call yields the same pool. *)
  Alcotest.(check bool) "pool deterministic" true
    (Array.for_all2 N.equal primes (Rsa.Ibm.primes ~bits:64))

let test_ibm_generate () =
  let gen = mk_gen 7 in
  for _ = 1 to 10 do
    let k = Rsa.Ibm.generate ~gen ~bits:128 in
    Alcotest.(check bool) "modulus in the 36-set" true
      (Rsa.Ibm.is_pool_modulus ~bits:128 k.K.pub.K.n);
    Alcotest.(check bool) "key consistent" true (K.is_consistent k)
  done

let test_ibm_cross_device_gcd () =
  (* Any two distinct IBM moduli share a prime with high probability
     (they draw from only 9 primes); verify at least one sharing pair
     exists among a handful of keys. *)
  let gen = mk_gen 8 in
  let keys = List.init 6 (fun _ -> Rsa.Ibm.generate ~gen ~bits:128) in
  let shared = ref false in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && not (N.equal a.K.pub.K.n b.K.pub.K.n) then
            if not (N.is_one (N.gcd a.K.pub.K.n b.K.pub.K.n)) then
              shared := true)
        keys)
    keys;
  Alcotest.(check bool) "some pair shares a prime" true !shared

let prop_device_keys_consistent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"device keys always consistent" ~count:10
       (QCheck2.Gen.int_range 0 1000)
       (fun state ->
         let profile = Rng.vulnerable_shared_prime "r" ~bits:6 in
         let rng =
           Rng.boot profile ~device_unique:(string_of_int state)
             ~boot_state:state
         in
         K.is_consistent (K.generate_on_device ~rng ~bits:128 ())))

let tests =
  [
    Alcotest.test_case "generate consistent" `Quick test_generate_consistent;
    Alcotest.test_case "plain style" `Quick test_generate_plain_style;
    Alcotest.test_case "bad bits rejected" `Quick test_generate_rejects_bad_bits;
    Alcotest.test_case "encrypt/decrypt" `Quick test_encrypt_decrypt;
    Alcotest.test_case "sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "shared-prime pattern" `Quick test_shared_prime_pattern;
    Alcotest.test_case "distinct boot states" `Quick
      test_different_boot_states_differ;
    Alcotest.test_case "patched device strong keys" `Quick
      test_patched_device_strong_keys;
    Alcotest.test_case "p = 1 mod e rejected" `Quick
      test_prime_congruent_one_mod_e;
    Alcotest.test_case "decrypt crt" `Quick test_decrypt_crt_matches;
    Alcotest.test_case "key serialization" `Quick test_key_serialization;
    Alcotest.test_case "recover private from factor" `Quick test_recover_private;
    Alcotest.test_case "well-formed modulus" `Quick test_well_formed_modulus;
    Alcotest.test_case "ibm pool structure" `Quick test_ibm_pool;
    Alcotest.test_case "ibm generate" `Quick test_ibm_generate;
    Alcotest.test_case "ibm cross-device gcd" `Quick test_ibm_cross_device_gcd;
    prop_device_keys_consistent;
  ]
