(* Fingerprinting tests: subject rules against catalog identities,
   factored-modulus recovery, shared-prime pools and overlaps, IBM
   clique detection, OpenSSL fingerprint classification, bit-error
   heuristics, Rimon detection on synthetic records. *)

module N = Bignum.Nat
module K = Rsa.Keypair
module Dn = X509lite.Dn
module Cert = X509lite.Certificate
module Date = X509lite.Date
module Rules = Fingerprint.Rules
module Fp = Fingerprint.Factored
module BG = Batchgcd.Batch_gcd

let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

let key = lazy (K.generate ~gen:(mk_gen 50) ~bits:128 ())

let cert_with ?(sans = []) dn =
  Cert.self_sign ~serial:N.one ~subject:dn ~subject_alt_names:sans
    ~not_before:(Date.of_ymd 2012 1 1)
    ~not_after:(Date.of_ymd 2022 1 1)
    ~key:(Lazy.force key) ()

(* ---------------- Rules ---------------- *)

let check_label name dn_or expected =
  let got = Rules.of_certificate dn_or in
  match (got, expected) with
  | Some { Rules.vendor; _ }, Some e ->
    Alcotest.(check string) name e vendor
  | None, None -> ()
  | Some { Rules.vendor; _ }, None ->
    Alcotest.failf "%s: unexpected label %s" name vendor
  | None, Some e -> Alcotest.failf "%s: expected %s, got none" name e

let test_rules_subjects () =
  let c dn = cert_with dn in
  check_label "juniper" (c (Dn.make ~cn:"system generated" ())) (Some "Juniper");
  check_label "cisco"
    (c (Dn.make ~cn:"router" ~o:"Cisco Systems, Inc." ~ou:"RV220W" ()))
    (Some "Cisco");
  check_label "hp" (c (Dn.make ~cn:"ILO123" ~o:"Hewlett-Packard Development" ()))
    (Some "HP");
  check_label "dell imaging"
    (c (Dn.make ~cn:"x" ~o:"Dell Inc." ~ou:"Dell Imaging Group" ()))
    (Some "Dell");
  check_label "generic" (c (Dn.make ~cn:"host1.example.net" ())) None;
  check_label "ibm-style customer subject"
    (c (Dn.make ~cn:"asm0001" ~o:"Acme Corp" ()))
    None

let test_rules_cisco_models () =
  let model ou =
    match
      Rules.of_certificate
        (cert_with (Dn.make ~cn:"router" ~o:"Cisco Systems, Inc." ~ou ()))
    with
    | Some { Rules.model_id; _ } -> model_id
    | None -> None
  in
  Alcotest.(check (option string)) "rv220w" (Some "cisco-rv220w") (model "RV220W");
  Alcotest.(check (option string)) "sa520" (Some "cisco-sa520") (model "SA520/540");
  Alcotest.(check (option string)) "unknown ou" None (model "SomethingElse")

let test_rules_fritzbox () =
  check_label "fritz via SAN"
    (cert_with ~sans:[ "fritz.box"; "www.fritz.box" ] (Dn.make ~cn:"10.0.0.1" ()))
    (Some "AVM");
  check_label "fritz via myfritz cn"
    (cert_with (Dn.make ~cn:"r12345.myfritz.net" ()))
    (Some "AVM");
  check_label "bare ip octets unidentified"
    (cert_with (Dn.make ~cn:"81.23.4.5" ()))
    None

let test_rules_content_hint () =
  let dn =
    Dn.make ~cn:"Default Common Name" ~o:"Default Organization"
      ~ou:"Default Unit" ()
  in
  (match
     Rules.of_certificate ~page_title:"SnapGear Management Console"
       (cert_with dn)
   with
  | Some { Rules.vendor = "McAfee"; _ } -> ()
  | _ -> Alcotest.fail "SnapGear page should label McAfee");
  check_label "default names without content" (cert_with dn) None

let test_rules_catalog_round_trip () =
  (* Every identifiable catalog model's own identity must label back to
     its own vendor. *)
  List.iter
    (fun (m : Netsim.Device_model.t) ->
      let dn, sans = m.Netsim.Device_model.identity ~seed:"rules-test" in
      let cert = cert_with ~sans dn in
      match
        ( Rules.of_certificate ?page_title:m.Netsim.Device_model.content_hint
            cert,
          m.Netsim.Device_model.id )
      with
      | Some { Rules.vendor; _ }, _ ->
        Alcotest.(check string) (m.Netsim.Device_model.id ^ " vendor")
          m.Netsim.Device_model.vendor vendor
      | None, ("generic-web" | "ibm-rsa2") -> () (* unidentifiable by design *)
      | None, "fritzbox" -> () (* the IP-octet fraction is unidentifiable *)
      | None, id -> Alcotest.failf "%s: no label" id)
    Netsim.Device_model.catalog

(* ---------------- Factored ---------------- *)

let planted ~seed ~shared ~unique =
  let gen = mk_gen seed in
  let prime () = Bignum.Prime.generate ~gen ~bits:48 in
  let p = prime () in
  let shared_moduli = List.init shared (fun _ -> N.mul p (prime ())) in
  let unique_moduli = List.init unique (fun _ -> N.mul (prime ()) (prime ())) in
  (p, Array.of_list (shared_moduli @ unique_moduli))

let test_factored_recover_simple () =
  let p, moduli = planted ~seed:51 ~shared:3 ~unique:5 in
  let findings = BG.factor_batch moduli in
  let factored, bad = Fp.recover findings in
  Alcotest.(check int) "3 factored" 3 (List.length factored);
  Alcotest.(check int) "none unrecovered" 0 (List.length bad);
  List.iter
    (fun (f : Fp.t) ->
      Alcotest.(check bool) "p is the shared prime" true
        (N.equal f.Fp.p p || N.equal f.Fp.q p);
      Alcotest.(check bool) "product reconstructs" true
        (N.equal f.Fp.modulus (N.mul f.Fp.p f.Fp.q)))
    factored

let test_factored_recover_clique () =
  let moduli = Array.of_list (Rsa.Ibm.all_moduli ~bits:96) in
  let findings = BG.factor_batch moduli in
  let factored, bad = Fp.recover findings in
  Alcotest.(check int) "36 factored" 36 (List.length factored);
  Alcotest.(check int) "none unrecovered" 0 (List.length bad);
  Alcotest.(check int) "9 distinct primes" 9 (List.length (Fp.primes factored))

(* ---------------- Shared primes ---------------- *)

let test_shared_prime_extrapolation () =
  let p, moduli = planted ~seed:52 ~shared:4 ~unique:2 in
  ignore p;
  let findings = BG.factor_batch moduli in
  let factored, _ = Fp.recover findings in
  (* Label only the first factored modulus; extrapolation must label
     the rest of the pool. *)
  let entries =
    List.mapi (fun i f -> (f, if i = 0 then Some "VendorX" else None)) factored
  in
  let t = Fingerprint.Shared_prime.build entries in
  let ex = Fingerprint.Shared_prime.extrapolated t in
  Alcotest.(check int) "three gained labels" 3 (List.length ex);
  List.iter
    (fun (_, v) -> Alcotest.(check string) "pool vendor" "VendorX" v)
    ex;
  Alcotest.(check int) "no overlaps" 0
    (List.length (Fingerprint.Shared_prime.overlaps t))

let test_shared_prime_overlap () =
  let p, moduli = planted ~seed:53 ~shared:4 ~unique:0 in
  ignore p;
  let findings = BG.factor_batch moduli in
  let factored, _ = Fp.recover findings in
  let entries =
    List.mapi
      (fun i f -> (f, Some (if i < 2 then "Xerox" else "Dell")))
      factored
  in
  let t = Fingerprint.Shared_prime.build entries in
  match Fingerprint.Shared_prime.overlaps t with
  | [ (a, b, _) ] ->
    Alcotest.(check (pair string string)) "dell/xerox overlap" ("Dell", "Xerox")
      (if a < b then (a, b) else (b, a))
  | l -> Alcotest.failf "expected one overlap, got %d" (List.length l)

(* ---------------- IBM clique ---------------- *)

let test_ibm_clique_detection () =
  let clique = Array.of_list (Rsa.Ibm.all_moduli ~bits:96) in
  let _, star = planted ~seed:54 ~shared:5 ~unique:0 in
  let moduli = Array.append clique star in
  let findings = BG.factor_batch moduli in
  let factored, _ = Fp.recover findings in
  (match Fingerprint.Ibm_clique.detect factored with
  | [ c ] ->
    Alcotest.(check int) "36 moduli" 36 (List.length c.Fingerprint.Ibm_clique.moduli);
    Alcotest.(check int) "9 primes" 9 (List.length c.Fingerprint.Ibm_clique.primes)
  | l -> Alcotest.failf "expected exactly one clique, got %d" (List.length l));
  (* The shared-first-prime star must NOT be reported as a clique. *)
  let star_findings = BG.factor_batch star in
  let star_factored, _ = Fp.recover star_findings in
  Alcotest.(check int) "star is not a clique" 0
    (List.length (Fingerprint.Ibm_clique.detect star_factored))

(* ---------------- OpenSSL fingerprint ---------------- *)

let test_openssl_classification () =
  let gen = mk_gen 55 in
  let openssl_primes =
    List.init 6 (fun _ -> Bignum.Prime.generate_openssl_style ~gen ~bits:64)
  in
  Alcotest.(check string) "openssl primes satisfy" "satisfies"
    (Fingerprint.Openssl_fp.verdict_to_string
       (Fingerprint.Openssl_fp.classify openssl_primes));
  (* Find a prime that fails the fingerprint. *)
  let rec failing () =
    let p = Bignum.Prime.generate ~gen ~bits:64 in
    if Bignum.Prime.satisfies_openssl_fingerprint p then failing () else p
  in
  Alcotest.(check string) "one failing prime flips the verdict"
    "does not satisfy"
    (Fingerprint.Openssl_fp.verdict_to_string
       (Fingerprint.Openssl_fp.classify (failing () :: openssl_primes)));
  Alcotest.(check string) "single prime inconclusive" "inconclusive"
    (Fingerprint.Openssl_fp.verdict_to_string
       (Fingerprint.Openssl_fp.classify [ List.hd openssl_primes ]))

let test_openssl_baseline_probability () =
  let p = Fingerprint.Openssl_fp.satisfy_probability_random () in
  (* Mironov's ~7.5%. *)
  Alcotest.(check bool) (Printf.sprintf "baseline %.4f in [0.06, 0.09]" p) true
    (p > 0.06 && p < 0.09)

(* ---------------- Bit errors ---------------- *)

let test_bit_error_detection () =
  let k = Lazy.force key in
  let n = k.K.pub.K.n in
  Alcotest.(check bool) "real modulus clean" false
    (Fingerprint.Bit_errors.suspicious ~bits:128 n);
  let corrupted = N.add n (N.shift_left N.one 17) in
  Alcotest.(check bool) "corrupted modulus suspicious" true
    (Fingerprint.Bit_errors.suspicious ~bits:128 corrupted
     (* a bit flip yields an even/odd random integer: if this specific
        flip happens to look well-formed, the neighbor search below
        still identifies it *)
    || Fingerprint.Bit_errors.bitflip_neighbor
         ~known:(fun m -> N.equal m n)
         corrupted
       <> None);
  (match
     Fingerprint.Bit_errors.bitflip_neighbor
       ~known:(fun m -> N.equal m n)
       corrupted
   with
  | Some m -> Alcotest.(check bool) "neighbor found" true (N.equal m n)
  | None -> Alcotest.fail "neighbor must be found");
  let clean, suspects =
    Fingerprint.Bit_errors.partition ~bits:128 [ n; corrupted ]
  in
  ignore clean;
  Alcotest.(check bool) "partition flags at most the corrupt one" true
    (List.length suspects <= 1)

let tests =
  [
    Alcotest.test_case "rules: subjects" `Quick test_rules_subjects;
    Alcotest.test_case "rules: cisco models" `Quick test_rules_cisco_models;
    Alcotest.test_case "rules: fritzbox" `Quick test_rules_fritzbox;
    Alcotest.test_case "rules: content hint" `Quick test_rules_content_hint;
    Alcotest.test_case "rules: catalog roundtrip" `Quick
      test_rules_catalog_round_trip;
    Alcotest.test_case "factored: simple" `Quick test_factored_recover_simple;
    Alcotest.test_case "factored: clique" `Quick test_factored_recover_clique;
    Alcotest.test_case "shared primes: extrapolation" `Quick
      test_shared_prime_extrapolation;
    Alcotest.test_case "shared primes: overlap" `Quick test_shared_prime_overlap;
    Alcotest.test_case "ibm clique detection" `Quick test_ibm_clique_detection;
    Alcotest.test_case "openssl classification" `Quick test_openssl_classification;
    Alcotest.test_case "openssl baseline" `Quick test_openssl_baseline_probability;
    Alcotest.test_case "bit errors" `Quick test_bit_error_detection;
  ]
