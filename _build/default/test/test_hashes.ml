(* SHA-256 / HMAC against official test vectors (FIPS 180-4 examples,
   RFC 4231), plus DRBG determinism properties. *)

module S = Hashes.Sha256
module H = Hashes.Hmac
module D = Hashes.Drbg

let test_sha256_vectors () =
  List.iter
    (fun (msg, hex) -> Alcotest.(check string) msg hex (S.hexdigest msg))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1000000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]

let test_sha256_incremental () =
  (* Updating in odd-sized chunks must equal the one-shot digest. *)
  let msg = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let ctx = S.init () in
  let rec feed off =
    if off < String.length msg then begin
      let len = Stdlib.min 7 (String.length msg - off) in
      S.update ctx (String.sub msg off len);
      feed (off + len)
    end
  in
  feed 0;
  Alcotest.(check string) "incremental = one-shot" (S.hexdigest msg)
    (S.to_hex (S.finalize ctx))

let test_sha256_block_boundaries () =
  (* Lengths around the 64-byte block and 56-byte padding boundary. *)
  List.iter
    (fun n ->
      let msg = String.make n 'x' in
      let ctx = S.init () in
      S.update ctx msg;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (S.hexdigest msg)
        (S.to_hex (S.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_hex_roundtrip () =
  let s = String.init 256 Char.chr in
  Alcotest.(check string) "roundtrip" s (S.of_hex (S.to_hex s));
  Alcotest.check_raises "odd length" (Invalid_argument "Sha256.of_hex: odd length")
    (fun () -> ignore (S.of_hex "abc"))

let test_hmac_rfc4231 () =
  (* RFC 4231 test cases 1, 2 and 7 for HMAC-SHA256. *)
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (H.sha256_hex ~key:(String.make 20 '\x0b') "Hi There");
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (H.sha256_hex ~key:"Jefe" "what do ya want for nothing?");
  Alcotest.(check string) "case 7 (key > block size)"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (H.sha256_hex
       ~key:(String.make 131 '\xaa')
       "This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.")

let test_drbg_deterministic () =
  let a = D.create ~seed:"seed" () in
  let b = D.create ~seed:"seed" () in
  Alcotest.(check string) "same seed, same stream" (D.generate a 64)
    (D.generate b 64);
  let c = D.create ~seed:"other" () in
  Alcotest.(check bool) "different seed differs" false
    (D.generate (D.create ~seed:"seed" ()) 64 = D.generate c 64)

let test_drbg_personalization () =
  let a = D.create ~personalization:"x" ~seed:"s" () in
  let b = D.create ~personalization:"y" ~seed:"s" () in
  Alcotest.(check bool) "personalization separates streams" false
    (D.generate a 32 = D.generate b 32)

let test_drbg_reseed_diverges () =
  let a = D.create ~seed:"s" () in
  let b = D.create ~seed:"s" () in
  let _ = D.generate a 16 and _ = D.generate b 16 in
  D.reseed a "fresh entropy";
  Alcotest.(check bool) "reseed diverges" false
    (D.generate a 32 = D.generate b 32)

let test_drbg_copy () =
  let a = D.create ~seed:"s" () in
  let _ = D.generate a 10 in
  let b = D.copy a in
  Alcotest.(check string) "copy continues identically" (D.generate a 32)
    (D.generate b 32)

let test_drbg_stream_consistency () =
  (* Reading 48 bytes at once = reading 16 then 32? Not required by
     the DRBG spec (update between calls), but successive outputs must
     at least be distinct and length-correct. *)
  let d = D.create ~seed:"s" () in
  let x = D.generate d 16 and y = D.generate d 16 in
  Alcotest.(check int) "len" 16 (String.length x);
  Alcotest.(check bool) "successive reads differ" false (x = y)

let prop_drbg_output_length =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"drbg length" ~count:50
       (QCheck2.Gen.int_range 1 300)
       (fun n ->
         String.length (D.generate (D.create ~seed:"s" ()) n) = n))

let tests =
  [
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "sha256 block boundaries" `Quick
      test_sha256_block_boundaries;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
    Alcotest.test_case "drbg deterministic" `Quick test_drbg_deterministic;
    Alcotest.test_case "drbg personalization" `Quick test_drbg_personalization;
    Alcotest.test_case "drbg reseed" `Quick test_drbg_reseed_diverges;
    Alcotest.test_case "drbg copy" `Quick test_drbg_copy;
    Alcotest.test_case "drbg stream" `Quick test_drbg_stream_consistency;
    prop_drbg_output_length;
  ]
