(* Tests for primality testing, prime generation, and the OpenSSL
   prime-structure fingerprint. *)

module N = Bignum.Nat
module P = Bignum.Prime

let nat = Alcotest.testable N.pp N.equal

let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

let test_small_primes_table () =
  Alcotest.(check int) "2048 primes" 2048 (Array.length P.small_primes);
  Alcotest.(check int) "first prime" 2 P.small_primes.(0);
  Alcotest.(check int) "2048th prime" 17863 P.small_primes.(2047);
  Array.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (P.is_small_prime p))
    P.small_primes

let test_first_n_primes () =
  Alcotest.(check (array int)) "first 10"
    [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 |]
    (P.first_n_primes 10);
  Alcotest.(check int) "extendable past table" 3000
    (Array.length (P.first_n_primes 3000))

let test_miller_rabin_agrees_with_trial_division () =
  for n = 2 to 2000 do
    Alcotest.(check bool) (string_of_int n) (P.is_small_prime n)
      (P.is_probable_prime (N.of_int n))
  done

let test_known_primes () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (P.is_probable_prime (N.of_string s)))
    [
      "2147483647" (* 2^31-1 *);
      "2305843009213693951" (* 2^61-1 *);
      "170141183460469231731687303715884105727" (* 2^127-1 *);
      "57896044618658097711785492504343953926634992332820282019728792003956564819949"
      (* 2^255-19 *);
    ]

let test_known_composites () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s false (P.is_probable_prime (N.of_string s)))
    [
      "561" (* Carmichael *);
      "41041" (* Carmichael *);
      "340282366920938463463374607431768211457" (* 2^128+1 *);
      "170141183460469231731687303715884105725";
    ]

let test_generate () =
  let gen = mk_gen 1 in
  List.iter
    (fun bits ->
      let p = P.generate ~gen ~bits in
      Alcotest.(check int) "exact size" bits (N.num_bits p);
      Alcotest.(check bool) "prime" true (P.is_probable_prime ~gen p);
      Alcotest.(check bool) "odd" true (N.is_odd p))
    [ 32; 64; 128; 200 ]

let test_openssl_fingerprint_generation () =
  let gen = mk_gen 2 in
  (* OpenSSL-style primes always satisfy the fingerprint. *)
  for _ = 1 to 5 do
    let p = P.generate_openssl_style ~gen ~bits:128 in
    Alcotest.(check bool) "openssl prime satisfies" true
      (P.satisfies_openssl_fingerprint p)
  done;
  (* A plain prime satisfies it only with probability ~7.5%; over many
     draws we must see both outcomes (probability of failure < 1e-8). *)
  let seen_fail = ref false in
  for _ = 1 to 300 do
    let p = P.generate ~gen ~bits:64 in
    if not (P.satisfies_openssl_fingerprint p) then seen_fail := true
  done;
  Alcotest.(check bool) "plain primes mostly fail fingerprint" true !seen_fail

let test_fingerprint_definition () =
  (* p = 17864 is not prime, but take a prime p where p-1 has a small
     factor 3: p = 7 -> p-1 = 6 divisible by 2 and 3. *)
  Alcotest.(check bool) "7 fails (6 = 2*3)" false
    (P.satisfies_openssl_fingerprint (N.of_int 7))

let test_safe_prime () =
  Alcotest.(check bool) "23 safe" true (P.is_safe_prime (N.of_int 23));
  Alcotest.(check bool) "29 not safe" false (P.is_safe_prime (N.of_int 29))

let test_next_prime () =
  Alcotest.check nat "after 0" N.two (P.next_prime N.zero);
  Alcotest.check nat "after 2" (N.of_int 3) (P.next_prime N.two);
  Alcotest.check nat "after 24" (N.of_int 29) (P.next_prime (N.of_int 24));
  Alcotest.check nat "after 2^31-1" (N.of_string "2147483659")
    (P.next_prime (N.of_string "2147483647"))

let test_trial_division () =
  let p = N.of_string "1000003" in
  (match P.trial_division (N.mul_int p 17863) with
  | Some 17863 -> ()
  | Some q -> Alcotest.failf "wrong factor %d" q
  | None -> Alcotest.fail "factor not found");
  match P.trial_division p with
  | None -> ()
  | Some q -> Alcotest.failf "spurious factor %d" q

let prop_generated_primes_pass_random_rounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"generated primes pass randomized MR" ~count:8
       (QCheck2.Gen.int_range 3 1000)
       (fun seed ->
         let gen = mk_gen seed in
         let p = P.generate ~gen ~bits:96 in
         P.is_probable_prime ~gen ~rounds:8 p))

let tests =
  [
    Alcotest.test_case "small prime table" `Quick test_small_primes_table;
    Alcotest.test_case "first_n_primes" `Quick test_first_n_primes;
    Alcotest.test_case "MR vs trial division" `Quick
      test_miller_rabin_agrees_with_trial_division;
    Alcotest.test_case "known primes" `Quick test_known_primes;
    Alcotest.test_case "known composites" `Quick test_known_composites;
    Alcotest.test_case "generate sizes" `Slow test_generate;
    Alcotest.test_case "openssl fingerprint generation" `Slow
      test_openssl_fingerprint_generation;
    Alcotest.test_case "fingerprint definition" `Quick test_fingerprint_definition;
    Alcotest.test_case "safe primes" `Quick test_safe_prime;
    Alcotest.test_case "next_prime" `Quick test_next_prime;
    Alcotest.test_case "trial division" `Quick test_trial_division;
    prop_generated_primes_pass_random_rounds;
  ]
