test/test_x509.ml: Alcotest Bignum Char Lazy List Printf QCheck2 QCheck_alcotest Random Rsa String X509lite
