test/test_montgomery.ml: Alcotest Bignum Char Option QCheck2 QCheck_alcotest String
