test/test_export.ml: Alcotest Analysis Array Bignum Fingerprint Lazy List Netsim Printf Rsa String Weakkeys Worlds X509lite
