test/test_hashes.ml: Alcotest Char Hashes List Printf QCheck2 QCheck_alcotest Stdlib String
