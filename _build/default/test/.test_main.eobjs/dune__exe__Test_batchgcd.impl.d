test/test_batchgcd.ml: Alcotest Array Batchgcd Bignum Char List Printf QCheck2 QCheck_alcotest Random Rsa String
