test/test_analysis.ml: Alcotest Analysis Array Bignum Float Lazy List Netsim Printf Rsa String Worlds X509lite
