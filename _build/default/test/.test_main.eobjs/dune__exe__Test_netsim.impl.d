test/test_netsim.ml: Alcotest Array Batchgcd Bignum Float Lazy List Netsim Option Printf Rsa String Worlds X509lite
