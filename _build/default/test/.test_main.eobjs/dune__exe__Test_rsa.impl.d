test/test_rsa.ml: Alcotest Array Bignum Char Entropy Hashes List QCheck2 QCheck_alcotest Random Rsa String
