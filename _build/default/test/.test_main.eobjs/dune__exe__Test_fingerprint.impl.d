test/test_fingerprint.ml: Alcotest Array Batchgcd Bignum Char Fingerprint Lazy List Netsim Printf Random Rsa String X509lite
