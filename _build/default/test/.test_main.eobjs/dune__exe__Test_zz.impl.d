test/test_zz.ml: Alcotest Bignum Char List Printf QCheck2 QCheck_alcotest String
