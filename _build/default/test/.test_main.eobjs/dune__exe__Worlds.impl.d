test/worlds.ml: Char Lazy Netsim Random String Weakkeys
