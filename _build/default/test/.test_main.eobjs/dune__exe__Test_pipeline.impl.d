test/test_pipeline.ml: Alcotest Analysis Array Batchgcd Bignum Fingerprint Hashtbl Lazy List Netsim Option Printf Rsa Stdlib String Weakkeys Worlds X509lite
