test/test_entropy.ml: Alcotest Entropy List QCheck2 QCheck_alcotest Stdlib String
