test/test_prime.ml: Alcotest Array Bignum Char List QCheck2 QCheck_alcotest Random String
