test/test_nat.ml: Alcotest Bignum Char Fun List QCheck2 QCheck_alcotest Random String
