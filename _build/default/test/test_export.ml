(* Export-format tests plus the two scanner artifacts that need
   non-default configurations to observe: forced bit errors and the
   Rimon key-substituting middlebox. *)

module N = Bignum.Nat
module Sc = Netsim.Scanner
module W = Netsim.World

let scans () = Lazy.force Worlds.small_scans

let test_moduli_roundtrip () =
  let moduli =
    Array.init 20 (fun i -> N.of_int ((i * 7919) + 3))
  in
  let text = Analysis.Export.moduli_lines moduli in
  let back = Analysis.Export.parse_moduli ("# comment\n" ^ text ^ "\n\n") in
  Alcotest.(check int) "count" 20 (Array.length back);
  Array.iteri
    (fun i m -> Alcotest.(check bool) (string_of_int i) true (N.equal m back.(i)))
    moduli

let test_host_records_csv_shape () =
  let csv = Analysis.Export.host_records_csv [ List.hd (scans ()) ] in
  let lines = String.split_on_char '\n' csv in
  (match lines with
  | header :: _ ->
    Alcotest.(check string) "header"
      "source,date,ip,cert_fingerprint,modulus_hex,intermediate" header
  | [] -> Alcotest.fail "empty csv");
  let first_scan = List.hd (scans ()) in
  Alcotest.(check int) "one row per record + header + trailing"
    (Array.length first_scan.Sc.records + 2)
    (List.length lines);
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then
        Alcotest.(check int)
          (Printf.sprintf "row %d has 6 fields" i)
          6
          (List.length (String.split_on_char ',' line)))
    lines

let test_series_csv () =
  let monthly = Analysis.Dataset.representative_monthly (scans ()) in
  let s = Analysis.Timeseries.overall ~vulnerable:(fun _ -> false) monthly in
  let csv = Analysis.Export.series_csv s in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Alcotest.(check int) "rows" (List.length s.Analysis.Timeseries.points + 1)
    (List.length lines)

let test_findings_csv () =
  let p = Lazy.force Worlds.small_pipeline in
  let csv = Analysis.Export.findings_csv p.Weakkeys.Pipeline.findings in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  Alcotest.(check int) "rows"
    (List.length p.Weakkeys.Pipeline.findings + 1)
    (List.length lines)

(* ---------------- forced scanner artifacts ---------------- *)

let test_forced_bit_errors () =
  (* A high bit-error rate must corrupt a visible fraction of records;
     corrupted moduli are not well-formed and appear (mostly) once. *)
  let w = Lazy.force Worlds.small in
  let date = X509lite.Date.of_ymd 2015 9 15 in
  let clean = Sc.run_scan ~bit_error_rate:0.0 w Sc.Censys date in
  let noisy = Sc.run_scan ~bit_error_rate:0.2 w Sc.Censys date in
  Alcotest.(check int) "same record count"
    (Array.length clean.Sc.records)
    (Array.length noisy.Sc.records);
  let moduli_of s =
    Array.map
      (fun r ->
        r.Sc.cert.X509lite.Certificate.public_key.Rsa.Keypair.n)
      s.Sc.records
  in
  let cm = moduli_of clean and nm = moduli_of noisy in
  let differing = ref 0 in
  Array.iteri
    (fun i m -> if not (N.equal m nm.(i)) then incr differing)
    cm;
  let n = Array.length cm in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d corrupted" !differing n)
    true
    (!differing > n / 10 && !differing < n / 2);
  (* Corrupted moduli differ from the original by exactly one bit. *)
  Array.iteri
    (fun i m ->
      if not (N.equal m nm.(i)) then begin
        match
          Fingerprint.Bit_errors.bitflip_neighbor
            ~known:(fun x -> N.equal x m)
            nm.(i)
        with
        | Some _ -> ()
        | None -> Alcotest.fail "corruption is not a single bit flip"
      end)
    cm

let test_rimon_detection_with_raised_fraction () =
  (* A private world where 5% of generic hosts sit behind the
     substituting ISP: detection must fire and must identify exactly
     the planted key. *)
  let cfg =
    {
      W.default_config with
      W.seed = "rimon-world";
      scale = 0.02;
      rimon_frac = 0.05;
    }
  in
  let w = W.build cfg in
  let scans = Sc.run_all w in
  match Fingerprint.Rimon.detect ~min_ips:5 scans with
  | [] -> Alcotest.fail "substituted key not detected"
  | d :: _ ->
    Alcotest.(check bool) "detected the planted key" true
      (N.equal d.Fingerprint.Rimon.modulus (W.rimon_public w).Rsa.Keypair.n);
    Alcotest.(check bool) "many ips" true
      (List.length d.Fingerprint.Rimon.ips >= 5);
    Alcotest.(check bool) "invalid signatures dominate" true
      (d.Fingerprint.Rimon.invalid_signature_fraction > 0.9)

let tests =
  [
    Alcotest.test_case "moduli roundtrip" `Quick test_moduli_roundtrip;
    Alcotest.test_case "host records csv" `Slow test_host_records_csv_shape;
    Alcotest.test_case "series csv" `Slow test_series_csv;
    Alcotest.test_case "findings csv" `Slow test_findings_csv;
    Alcotest.test_case "forced bit errors" `Slow test_forced_bit_errors;
    Alcotest.test_case "rimon detection" `Slow
      test_rimon_detection_with_raised_fraction;
  ]
