(* Tests for the simulated internet: determinism, population dynamics
   (growth, Heartbleed shock, end-of-life decline), weak-key planting
   consistent with ground truth, scanner schedules and artifacts. *)

module Date = X509lite.Date
module Cert = X509lite.Certificate
module N = Bignum.Nat
module K = Rsa.Keypair
module W = Netsim.World
module Sc = Netsim.Scanner
module Dm = Netsim.Device_model

let world () = Lazy.force Worlds.small
let scans () = Lazy.force Worlds.small_scans

let count_alive w model_id date =
  Array.fold_left
    (fun acc d ->
      if d.W.model.Dm.id = model_id && W.alive d date then acc + 1 else acc)
    0 (W.devices w)

(* ---------------- Det / Ipv4 / Vendor ---------------- *)

let test_det_determinism () =
  Alcotest.(check int) "int stable" (Netsim.Det.int "k" 1000)
    (Netsim.Det.int "k" 1000);
  Alcotest.(check bool) "different keys differ" false
    (Netsim.Det.int "a" 1000000 = Netsim.Det.int "b" 1000000);
  let f = Netsim.Det.float "x" in
  Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)

let test_det_uniformity () =
  (* Rough sanity: mean of many draws is near 0.5. *)
  let n = 2000 in
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. Netsim.Det.float ("u/" ^ string_of_int i)
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean near 0.5" true (mean > 0.45 && mean < 0.55)

let test_ipv4 () =
  Alcotest.(check string) "render" "192.0.2.1"
    (Netsim.Ipv4.to_string (Netsim.Ipv4.of_string "192.0.2.1"));
  let ip = Netsim.Ipv4.of_key "some-device" in
  Alcotest.(check bool) "roundtrip" true
    (Netsim.Ipv4.equal ip (Netsim.Ipv4.of_string (Netsim.Ipv4.to_string ip)));
  Alcotest.(check bool) "not loopback/private" true
    (let s = Netsim.Ipv4.to_string ip in
     not (String.length s >= 3 && String.sub s 0 3 = "10."))

let test_vendor_catalog () =
  Alcotest.(check int) "37 vendors in table 2" 37
    (List.length Netsim.Vendor.table2);
  Alcotest.(check int) "5 public advisories" 5
    (List.length
       (List.filter
          (fun v -> v.Netsim.Vendor.response = Netsim.Vendor.Public_advisory)
          Netsim.Vendor.table2));
  let acked =
    List.filter
      (fun v ->
        match v.Netsim.Vendor.response with
        | Netsim.Vendor.Public_advisory | Netsim.Vendor.Private_response
        | Netsim.Vendor.Auto_response ->
          true
        | Netsim.Vendor.No_response | Netsim.Vendor.Not_notified -> false)
      Netsim.Vendor.table2
  in
  (* "About half of the vendors acknowledged receipt." *)
  Alcotest.(check bool) "about half acknowledged" true
    (List.length acked >= 15 && List.length acked <= 22);
  Alcotest.(check bool) "juniper has advisory" true
    ((Netsim.Vendor.find "Juniper").Netsim.Vendor.advisory_date <> None)

let test_device_model_catalog () =
  let ids = List.map (fun m -> m.Dm.id) Dm.catalog in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Dm.id ^ " vendor exists")
        true
        (try
           ignore (Netsim.Vendor.find m.Dm.vendor);
           true
         with Not_found -> false))
    Dm.catalog;
  Alcotest.(check int) "five cisco eol lines" 5 (List.length Dm.cisco_eol_models)

let test_is_weak_at () =
  let huawei = Dm.find "huawei-bu" in
  Alcotest.(check bool) "before vuln_start" false
    (Dm.is_weak_at huawei (Date.of_ymd 2014 1 1));
  Alcotest.(check bool) "after vuln_start" true
    (Dm.is_weak_at huawei (Date.of_ymd 2015 6 1));
  let juniper = Dm.find "juniper-srx" in
  Alcotest.(check bool) "before fix" true
    (Dm.is_weak_at juniper (Date.of_ymd 2012 1 1));
  Alcotest.(check bool) "after fix" false
    (Dm.is_weak_at juniper (Date.of_ymd 2014 6 1))

(* ---------------- World ---------------- *)

let test_world_nonempty () =
  let w = world () in
  Alcotest.(check bool) "has devices" true (Array.length (W.devices w) > 100);
  Alcotest.(check bool) "has moduli" true
    (Array.length (W.all_tls_moduli w) > 100)

let test_world_deterministic () =
  (* Rebuild a tiny world twice; certificates must be identical. *)
  let cfg = { Worlds.small_config with W.scale = 0.01; seed = "det-check" } in
  let fp w =
    Array.to_list (W.devices w)
    |> List.concat_map (fun d ->
           Array.to_list d.W.epochs
           |> List.map (fun e -> Cert.fingerprint e.W.cert))
  in
  let a = W.build cfg and b = W.build cfg in
  Alcotest.(check (list string)) "identical worlds" (fp a) (fp b)

let test_population_growth_and_shock () =
  let w = world () in
  (* Juniper: grows, cliff at Heartbleed. *)
  let before = count_alive w "juniper-srx" (Date.of_ymd 2014 3 20) in
  let after = count_alive w "juniper-srx" (Date.of_ymd 2014 5 20) in
  let early = count_alive w "juniper-srx" (Date.of_ymd 2010 7 20) in
  Alcotest.(check bool) "grew 2010 -> 2014" true (before > early);
  Alcotest.(check bool)
    (Printf.sprintf "heartbleed cliff (%d -> %d)" before after)
    true
    (Float.of_int after < 0.8 *. Float.of_int before)

let test_population_eol_decline () =
  let w = world () in
  (* Cisco SA520: EoL announced 2012-09; population declines after. *)
  let at_announce = count_alive w "cisco-sa520" (Date.of_ymd 2012 9 20) in
  let late = count_alive w "cisco-sa520" (Date.of_ymd 2015 9 20) in
  Alcotest.(check bool)
    (Printf.sprintf "eol decline (%d -> %d)" at_announce late)
    true
    (late < at_announce)

let test_weak_units_exist_and_collide () =
  let w = world () in
  let weak_keys = ref [] in
  Array.iter
    (fun d ->
      if d.W.weak_unit && d.W.model.Dm.id = "juniper-srx" then
        Array.iter (fun e -> weak_keys := e.W.key :: !weak_keys) d.W.epochs)
    (W.devices w);
  Alcotest.(check bool) "weak juniper units exist" true
    (List.length !weak_keys > 3);
  (* At least one pair of weak units shares a first prime. *)
  let primes = List.map (fun k -> N.to_limbs k.K.p) !weak_keys in
  Alcotest.(check bool) "boot-state collisions occurred" true
    (List.length (List.sort_uniq compare primes) < List.length primes)

let test_ground_truth_consistency () =
  let w = world () in
  let truth = W.factorable_ground_truth w in
  let moduli = W.all_tls_moduli w in
  let n_factorable =
    Array.fold_left (fun acc m -> if truth m then acc + 1 else acc) 0 moduli
  in
  Alcotest.(check bool) "some factorable moduli" true (n_factorable > 10);
  Alcotest.(check bool) "minority factorable" true
    (n_factorable * 4 < Array.length moduli)

let test_ground_truth_matches_batch_gcd () =
  (* The central end-to-end check: batch GCD over the corpus finds
     exactly the moduli the generator knows share primes. *)
  let w = world () in
  let moduli = W.all_tls_moduli w in
  let truth = W.factorable_ground_truth w in
  let findings = Batchgcd.Batch_gcd.factor_batch moduli in
  let found =
    List.map (fun f -> N.to_limbs f.Batchgcd.Batch_gcd.modulus) findings
    |> List.sort_uniq compare
  in
  let expected =
    Array.to_list moduli
    |> List.filter truth
    |> List.map N.to_limbs |> List.sort_uniq compare
  in
  (* TLS-only GCD can miss moduli whose only sharing partner is an SSH
     key; everything found must be true, and the TLS-internal sharing
     must all be found. *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "every finding is ground-truth weak" true
        (truth f.Batchgcd.Batch_gcd.modulus))
    findings;
  let missed =
    List.filter (fun m -> not (List.mem m found)) expected
  in
  (* Those missed must be explained by SSH-only sharing: re-run with
     SSH keys included and they must all appear. *)
  let ssh_moduli =
    Array.to_list (W.devices w)
    |> List.filter_map (fun d ->
           Option.map (fun k -> k.K.pub.K.n) d.W.ssh_key)
  in
  let full =
    Batchgcd.Batch_gcd.factor_batch
      (Batchgcd.Batch_gcd.dedup
         (Array.append moduli (Array.of_list ssh_moduli)))
  in
  let full_found =
    List.map (fun f -> N.to_limbs f.Batchgcd.Batch_gcd.modulus) full
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "missed moduli found once SSH keys join" true
        (List.mem m full_found))
    missed

(* ---------------- Scanner ---------------- *)

let test_schedule_shape () =
  Alcotest.(check int) "eff scans" 2 (List.length (Sc.schedule Sc.Eff));
  Alcotest.(check int) "pq scans" 1 (List.length (Sc.schedule Sc.Pq));
  Alcotest.(check int) "ecosystem scans" 20
    (List.length (Sc.schedule Sc.Ecosystem));
  Alcotest.(check int) "rapid7 scans" 20 (List.length (Sc.schedule Sc.Rapid7));
  Alcotest.(check int) "censys scans" 11 (List.length (Sc.schedule Sc.Censys));
  (* Chronological overall. *)
  let dates = List.map snd Sc.full_schedule in
  Alcotest.(check bool) "sorted" true
    (List.for_all2 (fun a b -> Date.compare a b <= 0)
       (List.filteri (fun i _ -> i < List.length dates - 1) dates)
       (List.tl dates))

let test_scan_records () =
  let ss = scans () in
  Alcotest.(check int) "54 scans" (List.length Sc.full_schedule)
    (List.length ss);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s nonempty"
           (Sc.source_name s.Sc.scan_source)
           (Date.to_string s.Sc.scan_date))
        true
        (Array.length s.Sc.records > 0))
    ss

let test_scan_coverage_ordering () =
  (* Censys sees more of the same world than EFF did of its era; check
     within one date impossible, so check coverage constants. *)
  Alcotest.(check bool) "censys > eff coverage" true
    (Sc.coverage Sc.Censys > Sc.coverage Sc.Eff)

let test_rapid7_intermediates () =
  let ss = scans () in
  let r7 =
    List.filter (fun s -> s.Sc.scan_source = Sc.Rapid7) ss
  in
  let has_intermediate =
    List.exists
      (fun s ->
        Array.exists (fun r -> r.Sc.is_intermediate) s.Sc.records)
      r7
  in
  Alcotest.(check bool) "rapid7 emits intermediates" true has_intermediate;
  List.iter
    (fun s ->
      Array.iter
        (fun r ->
          if s.Sc.scan_source <> Sc.Rapid7 then
            Alcotest.(check bool) "others do not" false r.Sc.is_intermediate)
        s.Sc.records)
    ss

let test_rimon_substitution_visible () =
  let w = world () in
  let ss = scans () in
  let rimon_n = (W.rimon_public w).K.n in
  let count_rimon =
    List.fold_left
      (fun acc s ->
        acc
        + Array.fold_left
            (fun acc r ->
              if N.equal r.Sc.cert.Cert.public_key.K.n rimon_n then acc + 1
              else acc)
            0 s.Sc.records)
      0 ss
  in
  Alcotest.(check bool) "rimon key appears in scans" true (count_rimon > 0)

let test_protocol_snapshots () =
  let w = world () in
  let snaps = Sc.protocol_snapshots w in
  Alcotest.(check int) "five protocols" 5 (List.length snaps);
  let find p = List.find (fun s -> s.Sc.protocol = p) snaps in
  let https = find Sc.Https and ssh = find Sc.Ssh in
  Alcotest.(check bool) "https biggest" true
    (https.Sc.total_hosts > ssh.Sc.total_hosts);
  Alcotest.(check bool) "ssh nonempty" true (ssh.Sc.total_hosts > 0);
  Alcotest.(check bool) "ssh rsa subset" true
    (ssh.Sc.rsa_hosts <= ssh.Sc.total_hosts);
  List.iter
    (fun p ->
      let s = find p in
      Alcotest.(check bool) "mail hosts healthy and present" true
        (s.Sc.total_hosts > 0))
    [ Sc.Pop3s; Sc.Imaps; Sc.Smtps ]

let tests =
  [
    Alcotest.test_case "det determinism" `Quick test_det_determinism;
    Alcotest.test_case "det uniformity" `Quick test_det_uniformity;
    Alcotest.test_case "ipv4" `Quick test_ipv4;
    Alcotest.test_case "vendor catalog" `Quick test_vendor_catalog;
    Alcotest.test_case "device model catalog" `Quick test_device_model_catalog;
    Alcotest.test_case "is_weak_at windows" `Quick test_is_weak_at;
    Alcotest.test_case "world nonempty" `Slow test_world_nonempty;
    Alcotest.test_case "world deterministic" `Slow test_world_deterministic;
    Alcotest.test_case "growth and heartbleed shock" `Slow
      test_population_growth_and_shock;
    Alcotest.test_case "eol decline" `Slow test_population_eol_decline;
    Alcotest.test_case "weak units collide" `Slow test_weak_units_exist_and_collide;
    Alcotest.test_case "ground truth consistency" `Slow
      test_ground_truth_consistency;
    Alcotest.test_case "ground truth = batch gcd" `Slow
      test_ground_truth_matches_batch_gcd;
    Alcotest.test_case "schedule shape" `Quick test_schedule_shape;
    Alcotest.test_case "scan records" `Slow test_scan_records;
    Alcotest.test_case "coverage ordering" `Quick test_scan_coverage_ordering;
    Alcotest.test_case "rapid7 intermediates" `Slow test_rapid7_intermediates;
    Alcotest.test_case "rimon visible" `Slow test_rimon_substitution_visible;
    Alcotest.test_case "protocol snapshots" `Slow test_protocol_snapshots;
  ]
