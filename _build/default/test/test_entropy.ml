(* Tests for the entropy-hole model: pool determinism, boot-state
   collisions, divergence after the first prime, getrandom semantics. *)

module Pool = Entropy.Pool
module Rng = Entropy.Device_rng

let test_pool_determinism () =
  let a = Pool.create () and b = Pool.create () in
  Pool.mix a "input-1";
  Pool.mix b "input-1";
  Alcotest.(check string) "same mixes, same stream" (Pool.read_urandom a 32)
    (Pool.read_urandom b 32);
  Pool.mix a "only-a";
  Alcotest.(check bool) "extra mix diverges" false
    (Pool.read_urandom a 32 = Pool.read_urandom b 32)

let test_pool_urandom_never_blocks () =
  let p = Pool.create () in
  Alcotest.(check int) "empty pool still answers" 64
    (String.length (Pool.read_urandom p 64))

let test_pool_random_blocks () =
  let p = Pool.create () in
  Alcotest.(check bool) "empty pool blocks /dev/random" true
    (Pool.read_random p 16 = None);
  Pool.mix p ~entropy_bits:128 "16 bytes of real entropy..";
  (match Pool.read_random p 16 with
  | Some s -> Alcotest.(check int) "read works when credited" 16 (String.length s)
  | None -> Alcotest.fail "should not block");
  Alcotest.(check bool) "credit was consumed" true (Pool.read_random p 16 = None)

let test_pool_entropy_accounting () =
  let p = Pool.create () in
  Alcotest.(check int) "fresh pool" 0 (Pool.entropy_estimate p);
  Pool.mix p ~entropy_bits:100 "x";
  Alcotest.(check int) "credited" 100 (Pool.entropy_estimate p);
  Pool.mix p ~entropy_bits:100000 "y";
  Alcotest.(check int) "saturates at 4096" 4096 (Pool.entropy_estimate p)

let test_pool_copy () =
  let p = Pool.create () in
  Pool.mix p "seed";
  let q = Pool.copy p in
  Alcotest.(check string) "copies in same state" (Pool.fingerprint p)
    (Pool.fingerprint q);
  Alcotest.(check string) "same output" (Pool.read_urandom p 16)
    (Pool.read_urandom q 16)

let test_boot_state_collision () =
  (* Two devices, same model, same boot state: identical streams. *)
  let profile = Rng.vulnerable_shared_prime "router-x" ~bits:4 in
  let a = Rng.boot profile ~device_unique:"dev-a" ~boot_state:3 in
  let b = Rng.boot profile ~device_unique:"dev-b" ~boot_state:3 in
  Alcotest.(check string) "colliding boot states" (Rng.gen a 32) (Rng.gen b 32)

let test_boot_state_space_reduction () =
  (* boot_state is reduced mod 2^bits, so states 1 and 17 collide
     under a 4-bit profile. *)
  let profile = Rng.vulnerable_shared_prime "router-x" ~bits:4 in
  let a = Rng.boot profile ~device_unique:"a" ~boot_state:1 in
  let b = Rng.boot profile ~device_unique:"b" ~boot_state:17 in
  Alcotest.(check string) "states collide mod 16" (Rng.gen a 16) (Rng.gen b 16)

let test_divergence_after_first_prime () =
  let profile = Rng.vulnerable_shared_prime "router-x" ~bits:4 in
  let a = Rng.boot profile ~device_unique:"dev-a" ~boot_state:3 in
  let b = Rng.boot profile ~device_unique:"dev-b" ~boot_state:3 in
  let _ = Rng.gen a 32 and _ = Rng.gen b 32 in
  Rng.note_first_prime_done a;
  Rng.note_first_prime_done b;
  Alcotest.(check bool) "device-unique entropy diverges streams" false
    (Rng.gen a 32 = Rng.gen b 32)

let test_fully_deterministic_profile () =
  (* The IBM failure mode: no divergence even after the first prime. *)
  let profile = Rng.fully_deterministic "ibm-rsa2" ~bits:3 in
  let a = Rng.boot profile ~device_unique:"dev-a" ~boot_state:5 in
  let b = Rng.boot profile ~device_unique:"dev-b" ~boot_state:5 in
  let _ = Rng.gen a 32 and _ = Rng.gen b 32 in
  Rng.note_first_prime_done a;
  Rng.note_first_prime_done b;
  Alcotest.(check string) "still identical after first prime" (Rng.gen a 32)
    (Rng.gen b 32)

let test_healthy_profile_unique () =
  let profile = Rng.healthy "web-server" in
  let a = Rng.boot profile ~device_unique:"a" ~boot_state:3 in
  let b = Rng.boot profile ~device_unique:"b" ~boot_state:3 in
  Alcotest.(check bool) "healthy devices never collide" false
    (Rng.gen a 32 = Rng.gen b 32)

let test_getrandom_semantics () =
  let vuln = Rng.vulnerable_shared_prime "router-x" ~bits:4 in
  let fixed = Rng.patched vuln in
  let a = Rng.boot vuln ~device_unique:"a" ~boot_state:3 in
  let b = Rng.boot fixed ~device_unique:"b" ~boot_state:3 in
  Alcotest.(check bool) "legacy never blocks" false (Rng.is_blocking a);
  Alcotest.(check bool) "patched blocks until seeded" true (Rng.is_blocking b);
  Rng.properly_seed b;
  Alcotest.(check bool) "unblocked after seeding" false (Rng.is_blocking b)

let test_patched_devices_unique_keystreams () =
  let profile = Rng.patched (Rng.vulnerable_shared_prime "router-x" ~bits:2) in
  let a = Rng.boot profile ~device_unique:"a" ~boot_state:1 in
  let b = Rng.boot profile ~device_unique:"b" ~boot_state:1 in
  Rng.properly_seed a;
  Rng.properly_seed b;
  Alcotest.(check bool) "seeded devices diverge" false
    (Rng.gen a 32 = Rng.gen b 32)

let prop_boot_collision_rate =
  (* With b bits of boot entropy, two random devices collide with
     probability about 2^-b; across 64 devices at 4 bits collisions
     are guaranteed by pigeonhole. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pigeonhole collisions at 4 bits" ~count:5
       (QCheck2.Gen.int_range 0 10000)
       (fun base ->
         let profile = Rng.vulnerable_shared_prime "r" ~bits:4 in
         let fps =
           List.init 64 (fun i ->
               Rng.pool_fingerprint
                 (Rng.boot profile ~device_unique:(string_of_int i)
                    ~boot_state:(base + (i * 37))))
         in
         List.length (List.sort_uniq Stdlib.compare fps) <= 16))

let tests =
  [
    Alcotest.test_case "pool determinism" `Quick test_pool_determinism;
    Alcotest.test_case "urandom never blocks" `Quick
      test_pool_urandom_never_blocks;
    Alcotest.test_case "random blocks" `Quick test_pool_random_blocks;
    Alcotest.test_case "entropy accounting" `Quick test_pool_entropy_accounting;
    Alcotest.test_case "pool copy" `Quick test_pool_copy;
    Alcotest.test_case "boot-state collision" `Quick test_boot_state_collision;
    Alcotest.test_case "boot-state space reduction" `Quick
      test_boot_state_space_reduction;
    Alcotest.test_case "divergence after first prime" `Quick
      test_divergence_after_first_prime;
    Alcotest.test_case "fully deterministic profile" `Quick
      test_fully_deterministic_profile;
    Alcotest.test_case "healthy profile" `Quick test_healthy_profile_unique;
    Alcotest.test_case "getrandom semantics" `Quick test_getrandom_semantics;
    Alcotest.test_case "patched devices diverge" `Quick
      test_patched_devices_unique_keystreams;
    prop_boot_collision_rate;
  ]
