(* Analysis tests: chain exclusion, representative-scan selection,
   dataset stats, time series and transition counting on synthetic and
   simulated data. *)

module Sc = Netsim.Scanner
module Date = X509lite.Date
module N = Bignum.Nat
module Ds = Analysis.Dataset
module Ts = Analysis.Timeseries

let scans () = Lazy.force Worlds.small_scans

let test_exclude_intermediates () =
  (* Every Rapid7 scan contains intermediates; exclusion must remove
     exactly the records the scanner marked, using only structure. *)
  List.iter
    (fun (s : Sc.scan) ->
      if s.Sc.scan_source = Sc.Rapid7 then begin
        let cleaned = Ds.exclude_intermediates s in
        let n_marked =
          Array.fold_left
            (fun acc r -> if r.Sc.is_intermediate then acc + 1 else acc)
            0 s.Sc.records
        in
        Alcotest.(check int)
          (Date.to_string s.Sc.scan_date)
          (Array.length s.Sc.records - n_marked)
          (Array.length cleaned.Sc.records);
        Array.iter
          (fun r ->
            Alcotest.(check bool) "no intermediate survives" false
              r.Sc.is_intermediate)
          cleaned.Sc.records
      end)
    (scans ())

let test_representative_monthly () =
  let monthly = Ds.representative_monthly (scans ()) in
  (* One scan per month, no month repeated, chronological. *)
  let months =
    List.map
      (fun s ->
        let y, m, _ = Date.to_ymd s.Sc.scan_date in
        (y, m))
      monthly
  in
  Alcotest.(check int) "unique months" (List.length months)
    (List.length (List.sort_uniq compare months));
  (* During the Ecosystem/Rapid7 overlap (10/2013 - 01/2014), Rapid7
     wins the priority. *)
  List.iter
    (fun s ->
      let y, m, _ = Date.to_ymd s.Sc.scan_date in
      if (y = 2013 && m >= 10) || (y = 2014 && m = 1) then
        Alcotest.(check string) "rapid7 preferred" "Rapid7"
          (Sc.source_name s.Sc.scan_source))
    monthly

let test_stats_counts () =
  let monthly = Ds.representative_monthly (scans ()) in
  let st = Ds.stats_of_scans monthly in
  Alcotest.(check bool) "records > certs" true
    (st.Ds.host_records > st.Ds.distinct_certs);
  Alcotest.(check bool) "certs >= moduli" true
    (st.Ds.distinct_certs >= st.Ds.distinct_moduli);
  Alcotest.(check bool) "moduli positive" true (st.Ds.distinct_moduli > 0)

let test_overall_series_invariants () =
  let monthly = Ds.representative_monthly (scans ()) in
  let s = Ts.overall ~vulnerable:(fun _ -> false) monthly in
  List.iter
    (fun p ->
      Alcotest.(check int) "no vulnerable with false oracle" 0 p.Ts.vulnerable)
    s.Ts.points;
  let s2 = Ts.overall ~vulnerable:(fun _ -> true) monthly in
  List.iter
    (fun p ->
      Alcotest.(check int) "all vulnerable with true oracle" p.Ts.total
        p.Ts.vulnerable)
    s2.Ts.points

let test_series_chronological () =
  let monthly = Ds.representative_monthly (scans ()) in
  let s = Ts.overall ~vulnerable:(fun _ -> false) monthly in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted" true Date.(a.Ts.date <= b.Ts.date);
      check rest
    | _ -> ()
  in
  check s.Ts.points

let test_largest_drop () =
  let mk date total vulnerable =
    { Ts.date; source = Sc.Censys; total; vulnerable }
  in
  let s =
    {
      Ts.name = "synthetic";
      points =
        [
          mk (Date.of_ymd 2014 1 15) 100 50;
          mk (Date.of_ymd 2014 2 15) 100 48;
          mk (Date.of_ymd 2014 3 15) 100 49;
          mk (Date.of_ymd 2014 4 15) 100 20;
          mk (Date.of_ymd 2014 5 15) 100 22;
        ];
    }
  in
  match Ts.largest_vulnerable_drop s with
  | Some (d, drop) ->
    Alcotest.(check int) "drop size" 29 drop;
    Alcotest.(check string) "drop month" "04/2014" (Date.month_label d)
  | None -> Alcotest.fail "drop expected"

let test_value_at () =
  let mk date total = { Ts.date; source = Sc.Eff; total; vulnerable = 0 } in
  let s =
    { Ts.name = "s"; points = [ mk (Date.of_ymd 2012 6 15) 10 ] }
  in
  (match Ts.value_at s (Date.of_ymd 2012 7 1) with
  | Some p -> Alcotest.(check int) "nearest" 10 p.Ts.total
  | None -> Alcotest.fail "point expected");
  Alcotest.(check bool) "too far" true
    (Ts.value_at s (Date.of_ymd 2013 7 1) = None)

let test_transitions_synthetic () =
  (* Build three synthetic monthly scans with one IP flapping. *)
  let k1 = Rsa.Keypair.generate ~gen:(Worlds.gen_of 61) ~bits:96 () in
  let k2 = Rsa.Keypair.generate ~gen:(Worlds.gen_of 62) ~bits:96 () in
  let cert k =
    X509lite.Certificate.self_sign ~serial:N.one
      ~subject:(X509lite.Dn.make ~cn:"system generated" ())
      ~not_before:(Date.of_ymd 2012 1 1)
      ~not_after:(Date.of_ymd 2022 1 1)
      ~key:k ()
  in
  let ip = Netsim.Ipv4.of_string "198.51.100.7" in
  let record date k =
    {
      Sc.source = Sc.Censys;
      date;
      ip;
      cert = cert k;
      is_intermediate = false;
      page_title = None;
    }
  in
  let scan date k =
    { Sc.scan_source = Sc.Censys; scan_date = date; records = [| record date k |] }
  in
  let scans =
    [
      scan (Date.of_ymd 2013 1 15) k1;
      scan (Date.of_ymd 2013 2 15) k2;
      scan (Date.of_ymd 2013 3 15) k1;
    ]
  in
  let vulnerable n = N.equal n k1.Rsa.Keypair.pub.Rsa.Keypair.n in
  let label _ = Some "Juniper" in
  let tr = Analysis.Transitions.for_vendor ~label ~vulnerable scans "Juniper" in
  Alcotest.(check int) "one ip" 1 tr.Analysis.Transitions.ips_ever;
  Alcotest.(check int) "vulnerable ever" 1
    tr.Analysis.Transitions.ips_vulnerable_ever;
  Alcotest.(check int) "flapping" 1 tr.Analysis.Transitions.flapping;
  Alcotest.(check int) "no single to_ok" 0 tr.Analysis.Transitions.to_ok

let test_response_correlation_math () =
  let mk vendor response peak final =
    {
      Analysis.Response_correlation.vendor;
      response;
      peak_vulnerable = peak;
      final_vulnerable = final;
      decline_fraction =
        (if peak = 0 then 0.
         else Float.of_int (peak - final) /. Float.of_int peak);
    }
  in
  (* Perfect positive correlation: stronger response, bigger decline. *)
  let outs =
    [
      mk "A" Netsim.Vendor.Public_advisory 100 10;
      mk "B" Netsim.Vendor.Private_response 100 40;
      mk "C" Netsim.Vendor.Auto_response 100 60;
      mk "D" Netsim.Vendor.No_response 100 90;
    ]
  in
  let rho = Analysis.Response_correlation.spearman outs in
  Alcotest.(check bool) (Printf.sprintf "rho=%f" rho) true (rho > 0.99);
  (* Reversed: perfect negative. *)
  let outs_rev =
    [
      mk "A" Netsim.Vendor.Public_advisory 100 90;
      mk "B" Netsim.Vendor.Private_response 100 60;
      mk "C" Netsim.Vendor.Auto_response 100 40;
      mk "D" Netsim.Vendor.No_response 100 10;
    ]
  in
  let rho = Analysis.Response_correlation.spearman outs_rev in
  Alcotest.(check bool) (Printf.sprintf "rho=%f" rho) true (rho < -0.99);
  (* Never-vulnerable vendors are excluded; < 3 points gives NaN. *)
  let tiny = [ mk "A" Netsim.Vendor.No_response 0 0 ] in
  Alcotest.(check bool) "nan on tiny" true
    (Float.is_nan (Analysis.Response_correlation.spearman tiny))

let test_response_correlation_categories () =
  let mk vendor response peak final =
    {
      Analysis.Response_correlation.vendor;
      response;
      peak_vulnerable = peak;
      final_vulnerable = final;
      decline_fraction =
        (if peak = 0 then 0.
         else Float.of_int (peak - final) /. Float.of_int peak);
    }
  in
  let outs =
    [
      mk "A" Netsim.Vendor.Public_advisory 100 50;
      mk "B" Netsim.Vendor.Public_advisory 100 30;
      mk "C" Netsim.Vendor.No_response 100 80;
    ]
  in
  match Analysis.Response_correlation.by_category outs with
  | [ (Netsim.Vendor.Public_advisory, mean, 2); (Netsim.Vendor.No_response, m2, 1) ]
    ->
    Alcotest.(check bool) "mean 0.6" true (Float.abs (mean -. 0.6) < 1e-9);
    Alcotest.(check bool) "mean 0.2" true (Float.abs (m2 -. 0.2) < 1e-9)
  | l -> Alcotest.failf "unexpected category list of length %d" (List.length l)

let test_exclude_idempotent () =
  (* Chain exclusion is idempotent: a second pass removes nothing. *)
  List.iter
    (fun (s : Sc.scan) ->
      if s.Sc.scan_source = Sc.Rapid7 then begin
        let once = Ds.exclude_intermediates s in
        let twice = Ds.exclude_intermediates once in
        Alcotest.(check int)
          (Date.to_string s.Sc.scan_date)
          (Array.length once.Sc.records)
          (Array.length twice.Sc.records)
      end)
    (scans ())

let test_panel_renders () =
  let points =
    List.init 24 (fun i -> (Date.add_months (Date.of_ymd 2012 1 15) i, i * 3))
  in
  let out = Analysis.Ascii_plot.panel ~height:5 ~width:30 ~title:"t" points in
  let lines = String.split_on_char '\n' out in
  (* title + 5 rows + axis + label lines *)
  Alcotest.(check bool) "enough lines" true (List.length lines >= 7);
  Alcotest.(check bool) "title present" true
    (String.length (List.hd lines) > 0);
  Alcotest.(check bool) "x labels present" true
    (List.exists
       (fun l ->
         let has sub =
           let rec go i =
             i + String.length sub <= String.length l
             && (String.sub l i (String.length sub) = sub || go (i + 1))
           in
           go 0
         in
         has "01/2012")
       lines);
  (* Empty input must not raise. *)
  ignore (Analysis.Ascii_plot.panel ~title:"empty" [])

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Analysis.Ascii_plot.sparkline []);
  let s = Analysis.Ascii_plot.sparkline [ 0; 5; 10 ] in
  Alcotest.(check bool) "rises to full block" true
    (String.length s > 0
    && String.sub s (String.length s - 3) 3 = "█")

let tests =
  [
    Alcotest.test_case "exclude intermediates" `Slow test_exclude_intermediates;
    Alcotest.test_case "representative monthly" `Slow test_representative_monthly;
    Alcotest.test_case "dataset stats" `Slow test_stats_counts;
    Alcotest.test_case "series oracles" `Slow test_overall_series_invariants;
    Alcotest.test_case "series chronological" `Slow test_series_chronological;
    Alcotest.test_case "largest drop" `Quick test_largest_drop;
    Alcotest.test_case "value_at" `Quick test_value_at;
    Alcotest.test_case "transitions synthetic" `Quick test_transitions_synthetic;
    Alcotest.test_case "exclude idempotent" `Slow test_exclude_idempotent;
    Alcotest.test_case "panel renders" `Quick test_panel_renders;
    Alcotest.test_case "response correlation math" `Quick
      test_response_correlation_math;
    Alcotest.test_case "response correlation categories" `Quick
      test_response_correlation_categories;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
  ]
