(* Benchmark and reproduction harness.

   Two halves:

   1. Bechamel timing benches — one group per experiment: the Section
      3.2 batch-GCD comparison (naive / single tree / k subsets, and
      the k sweep behind Figure 2), plus the DESIGN.md ablations
      (Karatsuba threshold, Burnikel-Ziegler vs Knuth division, binary
      vs Euclidean GCD, OpenSSL-style vs plain key generation) and
      substrate throughputs.

   2. Regeneration of every table and figure of the paper, by running
      the full pipeline on the simulated internet and printing the
      same rows/series the paper reports.

   Environment knobs:
     WEAKKEYS_BENCH_SCALE   world scale for part 2 (default 0.15)
     WEAKKEYS_BENCH_SKIP_TIMING / WEAKKEYS_BENCH_SKIP_REPORT *)

module N = Bignum.Nat
open Bechamel

let drbg = Hashes.Drbg.create ~seed:"bench-fixtures" ()
let gen = Hashes.Drbg.gen_fn drbg

(* ---------------- fixtures ---------------- *)

let nat_of_bits bits = N.random_bits gen bits

let corpus ~n ~planted =
  let shared = Bignum.Prime.generate ~gen ~bits:48 in
  Array.init n (fun i ->
      if planted > 0 && i mod (Stdlib.max 1 (n / planted)) = 0 then
        N.mul shared (Bignum.Prime.generate ~gen ~bits:48)
      else
        N.mul
          (Bignum.Prime.generate ~gen ~bits:48)
          (Bignum.Prime.generate ~gen ~bits:48))

let moduli_512 = lazy (corpus ~n:512 ~planted:16)
let moduli_2048 = lazy (corpus ~n:2048 ~planted:32)
let big_a = lazy (nat_of_bits 200_000)
let big_b = lazy (nat_of_bits 200_000)
let div_num = lazy (nat_of_bits 400_000)
let div_den = lazy (nat_of_bits 150_000)
let gcd_a = lazy (nat_of_bits 4096)
let gcd_b = lazy (nat_of_bits 4096)
let msg_1k = String.init 1024 (fun i -> Char.chr (i land 0xff))

let with_thresholds km bz f =
  let k0 = !N.karatsuba_threshold and b0 = !N.burnikel_ziegler_threshold in
  N.karatsuba_threshold := km;
  N.burnikel_ziegler_threshold := bz;
  Fun.protect ~finally:(fun () ->
      N.karatsuba_threshold := k0;
      N.burnikel_ziegler_threshold := b0)
    f

(* ---------------- timing tests ---------------- *)

let t name f = Test.make ~name (Staged.stage f)

let batchgcd_section_3_2 =
  (* The paper's performance claim: naive pairwise is infeasible; the
     tree algorithm is quasilinear; the k-subset variant adds total
     work but parallelizes. *)
  Test.make_grouped ~name:"sec3.2-batchgcd"
    [
      t "naive-512" (fun () ->
          Batchgcd.Batch_gcd.naive (Lazy.force moduli_512));
      t "tree-512" (fun () ->
          Batchgcd.Batch_gcd.factor_batch (Lazy.force moduli_512));
      t "tree-2048" (fun () ->
          Batchgcd.Batch_gcd.factor_batch (Lazy.force moduli_2048));
      t "subsets-k16-2048-1domain" (fun () ->
          Batchgcd.Batch_gcd.factor_subsets ~domains:1 ~k:16
            (Lazy.force moduli_2048));
      t "subsets-k16-2048-parallel" (fun () ->
          Batchgcd.Batch_gcd.factor_subsets ~k:16 (Lazy.force moduli_2048));
    ]

let figure2_k_sweep =
  Test.make_grouped ~name:"fig2-k-sweep"
    (List.map
       (fun k ->
         t
           (Printf.sprintf "subsets-k%d-2048" k)
           (fun () ->
             Batchgcd.Batch_gcd.factor_subsets ~domains:1 ~k
               (Lazy.force moduli_2048)))
       [ 1; 2; 4; 8; 16; 32 ])

let ablation_multiplication =
  Test.make_grouped ~name:"ablation-mul-threshold"
    [
      t "karatsuba-200kbit" (fun () ->
          with_thresholds 24 40 (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
      t "schoolbook-200kbit" (fun () ->
          with_thresholds max_int 40 (fun () ->
              N.mul (Lazy.force big_a) (Lazy.force big_b)));
    ]

let ablation_division =
  Test.make_grouped ~name:"ablation-division"
    [
      t "burnikel-ziegler-400k/150k" (fun () ->
          with_thresholds 24 40 (fun () ->
              N.divmod (Lazy.force div_num) (Lazy.force div_den)));
      t "knuth-400k/150k" (fun () ->
          with_thresholds 24 max_int (fun () ->
              N.divmod (Lazy.force div_num) (Lazy.force div_den)));
    ]

let ablation_powmod =
  let base = lazy (nat_of_bits 255)
  and exp = lazy (nat_of_bits 255)
  and modulus = lazy (N.add (nat_of_bits 256) N.one) in
  Test.make_grouped ~name:"ablation-powmod"
    [
      t "division-ladder-256" (fun () ->
          N.pow_mod (Lazy.force base) (Lazy.force exp) (Lazy.force modulus));
      t "montgomery-256" (fun () ->
          Bignum.Montgomery.pow_mod_nat (Lazy.force base) (Lazy.force exp)
            (Lazy.force modulus));
    ]

let ablation_gcd =
  Test.make_grouped ~name:"ablation-gcd"
    [
      t "binary-4kbit" (fun () -> N.gcd (Lazy.force gcd_a) (Lazy.force gcd_b));
      t "euclid-4kbit" (fun () ->
          N.gcd_euclid (Lazy.force gcd_a) (Lazy.force gcd_b));
    ]

let keygen_styles =
  Test.make_grouped ~name:"keygen"
    [
      t "plain-96" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Plain ~gen ~bits:96 ());
      t "openssl-96" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Openssl ~gen ~bits:96 ());
      t "plain-256" (fun () ->
          Rsa.Keypair.generate ~style:Rsa.Keypair.Plain ~gen ~bits:256 ());
    ]

let substrate =
  let tree = lazy (Batchgcd.Product_tree.build (Lazy.force moduli_2048)) in
  let pow_base = lazy (nat_of_bits 255)
  and pow_exp = lazy (nat_of_bits 255)
  and pow_mod = lazy (N.add (nat_of_bits 256) N.one) in
  Test.make_grouped ~name:"substrate"
    [
      t "sha256-1KiB" (fun () -> Hashes.Sha256.digest msg_1k);
      t "drbg-64B" (fun () -> Hashes.Drbg.generate drbg 64);
      t "product-tree-2048" (fun () ->
          Batchgcd.Product_tree.build (Lazy.force moduli_2048));
      t "remainder-tree-2048" (fun () ->
          Batchgcd.Remainder_tree.remainders_mod_square (Lazy.force tree)
            (Batchgcd.Product_tree.root (Lazy.force tree)));
      t "pow-mod-256" (fun () ->
          N.pow_mod (Lazy.force pow_base) (Lazy.force pow_exp)
            (Lazy.force pow_mod));
    ]

(* ---------------- runner ---------------- *)

let force_fixtures () =
  (* Fixture generation must not be charged to the first timed run. *)
  ignore (Lazy.force moduli_512);
  ignore (Lazy.force moduli_2048);
  ignore (Lazy.force big_a);
  ignore (Lazy.force big_b);
  ignore (Lazy.force div_num);
  ignore (Lazy.force div_den);
  ignore (Lazy.force gcd_a);
  ignore (Lazy.force gcd_b)

let run_timing () =
  force_fixtures ();
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.8) ~kde:None
      ~stabilize:false ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests =
    [
      batchgcd_section_3_2; figure2_k_sweep; ablation_multiplication;
      ablation_division; ablation_powmod; ablation_gcd; keygen_styles;
      substrate;
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
      List.iter
        (fun (name, result) ->
          let ns =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | _ -> Float.nan
          in
          let pretty =
            if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
            else Printf.sprintf "%8.0f ns" ns
          in
          Printf.printf "  %-42s %s/run\n%!" name pretty)
        (List.sort compare rows))
    tests

let run_report () =
  let scale =
    match Sys.getenv_opt "WEAKKEYS_BENCH_SCALE" with
    | Some s -> float_of_string s
    | None -> 0.15
  in
  let cfg =
    { Netsim.World.default_config with Netsim.World.scale; seed = "bench-world" }
  in
  Printf.printf
    "\n===== paper reproduction: every table and figure (scale %.2f) =====\n%!"
    scale;
  let p =
    Weakkeys.Pipeline.run
      ~progress:(fun m -> Printf.eprintf "[bench] %s\n%!" m)
      cfg
  in
  print_string (Weakkeys.Report.full_report p)

let () =
  if Sys.getenv_opt "WEAKKEYS_BENCH_SKIP_TIMING" = None then begin
    print_endline "===== timing benches (bechamel, ns per run) =====";
    run_timing ()
  end;
  if Sys.getenv_opt "WEAKKEYS_BENCH_SKIP_REPORT" = None then run_report ()
