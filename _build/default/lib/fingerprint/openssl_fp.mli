(** The Mironov OpenSSL prime fingerprint (paper Section 3.3.4): an
    implementation that generates primes the OpenSSL way never outputs
    a prime [p] with [p - 1] divisible by one of the first 2048 odd
    table primes; a random prime satisfies that only ~7.5% of the
    time. Observing several factored primes from one implementation
    therefore separates likely-OpenSSL from definitely-not-OpenSSL. *)

type verdict = Satisfies | Does_not_satisfy | Inconclusive

val verdict_to_string : verdict -> string

val classify : Bignum.Nat.t list -> verdict
(** [classify primes]: [Satisfies] when every prime (>= 2 of them)
    passes the fingerprint, [Does_not_satisfy] when at least one
    fails, [Inconclusive] with fewer than 2 primes. *)

val classify_vendors :
  (Factored.t * string option) list -> (string * verdict * int) list
(** Group factored moduli by vendor label and classify each vendor's
    prime pool; the int is the number of distinct primes examined.
    Unlabeled moduli are skipped. Sorted by vendor name — the
    reproduction of Table 5. *)

val satisfy_probability_random : unit -> float
(** The ~0.075 baseline: probability a random prime satisfies the
    fingerprint, computed from the table ([prod (1 - 1/(q-1))]). *)
