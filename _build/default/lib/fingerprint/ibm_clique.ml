module N = Bignum.Nat

type clique = { primes : N.t list; moduli : N.t list }

(* Union-find over primes; each factored modulus unions its two
   primes. A component is a tiny-pool clique when several moduli have
   BOTH primes shared with other component members — in the shared-
   first-prime pattern every modulus owns a fresh second prime, so no
   modulus has both primes shared. *)
let detect ?(min_moduli = 3) (factored : Factored.t list) =
  let parent = Hashtbl.create 256 in
  let rec find k =
    match Hashtbl.find_opt parent k with
    | None ->
      Hashtbl.replace parent k k;
      k
    | Some p when p = k -> k
    | Some p ->
      let root = find p in
      Hashtbl.replace parent k root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  (* Count, per prime, how many factored moduli use it. *)
  let usage = Hashtbl.create 256 in
  let bump p =
    let k = N.to_limbs p in
    Hashtbl.replace usage k
      (1 + Option.value ~default:0 (Hashtbl.find_opt usage k))
  in
  List.iter
    (fun (f : Factored.t) ->
      union (N.to_limbs f.Factored.p) (N.to_limbs f.Factored.q);
      bump f.Factored.p;
      bump f.Factored.q)
    factored;
  let shared p =
    Option.value ~default:0 (Hashtbl.find_opt usage (N.to_limbs p)) >= 2
  in
  (* Collect, per component, the moduli with both primes shared. *)
  let members = Hashtbl.create 64 in
  List.iter
    (fun (f : Factored.t) ->
      if shared f.Factored.p && shared f.Factored.q then begin
        let root = find (N.to_limbs f.Factored.p) in
        Hashtbl.replace members root
          (f :: Option.value ~default:[] (Hashtbl.find_opt members root))
      end)
    factored;
  let cliques = ref [] in
  Hashtbl.iter
    (fun _root (fs : Factored.t list) ->
      let moduli =
        List.sort_uniq N.compare (List.map (fun f -> f.Factored.modulus) fs)
      in
      if List.length moduli >= min_moduli then begin
        let primes =
          List.sort_uniq N.compare
            (List.concat_map (fun (f : Factored.t) -> [ f.Factored.p; f.Factored.q ]) fs)
        in
        cliques := { primes; moduli } :: !cliques
      end)
    members;
  List.sort
    (fun a b -> compare (List.length b.moduli) (List.length a.moduli))
    !cliques
