module N = Bignum.Nat

let suspicious ~bits n =
  not (Rsa.Keypair.well_formed_modulus n ~bits)

let bitflip_neighbor ~known n =
  let nb = N.num_bits n + 1 in
  let rec go i =
    if i >= nb then None
    else begin
      let flipped =
        if N.testbit n i then N.sub n (N.shift_left N.one i)
        else N.add n (N.shift_left N.one i)
      in
      if known flipped then Some flipped else go (i + 1)
    end
  in
  go 0

let partition ~bits moduli =
  List.partition (fun n -> not (suspicious ~bits n)) moduli
