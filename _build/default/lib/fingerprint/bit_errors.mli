(** Non-well-formed moduli from bit errors (paper Section 3.3.5).

    A bit flip in a valid RSA modulus yields an essentially random
    integer: usually divisible by several small primes, sometimes
    prime itself, and never the product of two equal-size primes. Such
    moduli surface in the batch GCD output with junk divisors and must
    be set aside rather than counted as vulnerable implementations. *)

val suspicious : bits:int -> Bignum.Nat.t -> bool
(** True when the modulus cannot be a well-formed RSA modulus of
    [bits] bits: wrong size, even, a tiny prime factor, or prime. *)

val bitflip_neighbor :
  known:(Bignum.Nat.t -> bool) -> Bignum.Nat.t -> Bignum.Nat.t option
(** Search all single-bit flips of the modulus for a member of the
    known corpus — the paper's evidence that a corrupt certificate sat
    one bit away from a valid one. *)

val partition :
  bits:int -> Bignum.Nat.t list -> Bignum.Nat.t list * Bignum.Nat.t list
(** Split (clean, suspicious). *)
