module N = Bignum.Nat

type verdict = Satisfies | Does_not_satisfy | Inconclusive

let verdict_to_string = function
  | Satisfies -> "satisfies"
  | Does_not_satisfy -> "does not satisfy"
  | Inconclusive -> "inconclusive"

let classify primes =
  let primes = List.sort_uniq N.compare primes in
  if List.length primes < 2 then Inconclusive
  else if
    List.for_all Bignum.Prime.satisfies_openssl_fingerprint primes
  then Satisfies
  else Does_not_satisfy

let classify_vendors entries =
  let by_vendor = Hashtbl.create 32 in
  List.iter
    (fun ((f : Factored.t), label) ->
      match label with
      | None -> ()
      | Some vendor ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_vendor vendor) in
        Hashtbl.replace by_vendor vendor (f.Factored.p :: f.Factored.q :: cur))
    entries;
  Hashtbl.fold
    (fun vendor primes acc ->
      let distinct = List.sort_uniq N.compare primes in
      (vendor, classify distinct, List.length distinct) :: acc)
    by_vendor []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let satisfy_probability_random () =
  Array.fold_left
    (fun acc q ->
      if q = 2 then acc else acc *. (1.0 -. (1.0 /. Float.of_int (q - 1))))
    1.0 Bignum.Prime.small_primes
