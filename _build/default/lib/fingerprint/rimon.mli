(** Detection of ISP key substitution — the Internet Rimon
    man-in-the-middle (paper Section 3.3.3): one fixed public key
    appearing across many IP addresses inside certificates whose other
    fields differ and whose signatures no longer verify. *)

type detection = {
  modulus : Bignum.Nat.t;
  ips : Netsim.Ipv4.t list;  (** distinct addresses serving the key *)
  distinct_subjects : int;
  invalid_signature_fraction : float;
}

val detect :
  ?min_ips:int -> Netsim.Scanner.scan list -> detection list
(** Group records by modulus and report keys served from at least
    [min_ips] (default 10) distinct addresses with at least two
    distinct subjects and a majority of invalid signatures — the
    substitution signature. Intermediate-certificate records are
    ignored (a CA key legitimately appears at many addresses but with
    a single subject). Sorted by IP count, largest first. *)
