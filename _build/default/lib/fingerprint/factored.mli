(** Recover full prime factorizations from batch-GCD findings.

    A finding's divisor is usually a single shared prime; IBM-style
    cliques and duplicate moduli come back with the whole modulus as
    divisor and need pairwise GCDs within the (small) flagged set to
    split — exactly what the paper's post-processing did. *)

type t = {
  modulus : Bignum.Nat.t;
  p : Bignum.Nat.t;  (** smaller prime *)
  q : Bignum.Nat.t;  (** larger prime *)
}

val recover :
  Batchgcd.Batch_gcd.finding list -> t list * Bignum.Nat.t list
(** [recover findings] returns the factored moduli plus the moduli that
    could not be split into two primes — non-well-formed moduli from
    bit errors land in the second list. *)

val primes : t list -> Bignum.Nat.t list
(** All primes, deduplicated. *)
