(** Certificate-subject fingerprinting (paper Section 3.3.1): map a
    certificate (and optionally the HTTPS page content behind it) to a
    vendor and, when the subject is specific enough, a product line. *)

type label = {
  vendor : string;  (** a {!Netsim.Vendor} name *)
  model_id : string option;  (** a {!Netsim.Device_model} id when known *)
}

val of_certificate :
  ?page_title:string -> X509lite.Certificate.t -> label option
(** [None] when nothing in the subject, SANs or page content names a
    known implementation — notably IBM cards (customer subjects),
    IP-octet Fritz!Box certificates, and generic servers. *)

val of_record : Netsim.Scanner.host_record -> label option
(** Convenience wrapper feeding the record's page title through. *)
