lib/fingerprint/bit_errors.mli: Bignum
