lib/fingerprint/ibm_clique.ml: Bignum Factored Hashtbl List Option
