lib/fingerprint/rimon.ml: Array Bignum Float Hashtbl List Netsim Option Rsa X509lite
