lib/fingerprint/openssl_fp.mli: Bignum Factored
