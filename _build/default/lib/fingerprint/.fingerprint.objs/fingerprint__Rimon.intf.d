lib/fingerprint/rimon.mli: Bignum Netsim
