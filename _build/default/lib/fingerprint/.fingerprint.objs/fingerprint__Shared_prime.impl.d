lib/fingerprint/shared_prime.ml: Bignum Factored Hashtbl List Option
