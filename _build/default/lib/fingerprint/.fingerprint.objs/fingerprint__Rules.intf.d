lib/fingerprint/rules.mli: Netsim X509lite
