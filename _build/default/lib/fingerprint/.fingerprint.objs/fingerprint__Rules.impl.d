lib/fingerprint/rules.ml: List Netsim Option String X509lite
