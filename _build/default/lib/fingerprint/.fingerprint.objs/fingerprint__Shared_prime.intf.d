lib/fingerprint/shared_prime.mli: Bignum Factored
