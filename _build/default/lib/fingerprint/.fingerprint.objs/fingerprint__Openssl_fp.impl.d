lib/fingerprint/openssl_fp.ml: Array Bignum Factored Float Hashtbl List Option
