lib/fingerprint/factored.mli: Batchgcd Bignum
