lib/fingerprint/ibm_clique.mli: Bignum Factored
