lib/fingerprint/bit_errors.ml: Bignum List Rsa
