lib/fingerprint/factored.ml: Array Batchgcd Bignum List
