module N = Bignum.Nat

type t = {
  entries : (Factored.t * string option) list;
  pools : (int array, string list) Hashtbl.t; (* prime limbs -> vendors *)
}

let build entries =
  let pools = Hashtbl.create 1024 in
  List.iter
    (fun ((f : Factored.t), label) ->
      match label with
      | None -> ()
      | Some vendor ->
        List.iter
          (fun p ->
            let k = N.to_limbs p in
            let cur = Option.value ~default:[] (Hashtbl.find_opt pools k) in
            if not (List.mem vendor cur) then
              Hashtbl.replace pools k (vendor :: cur))
          [ f.Factored.p; f.Factored.q ])
    entries;
  { entries; pools }

let vendors_of_prime t p =
  Option.value ~default:[] (Hashtbl.find_opt t.pools (N.to_limbs p))

let label_modulus t (f : Factored.t) =
  let vs =
    List.sort_uniq compare
      (vendors_of_prime t f.Factored.p @ vendors_of_prime t f.Factored.q)
  in
  match vs with [ v ] -> Some v | [] | _ :: _ -> None

let extrapolated t =
  List.filter_map
    (fun (f, label) ->
      match label with
      | Some _ -> None
      | None -> Option.map (fun v -> (f, v)) (label_modulus t f))
    t.entries

let overlaps t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Hashtbl.iter
    (fun limbs vendors ->
      let sorted = List.sort compare vendors in
      let rec pairs = function
        | a :: rest ->
          List.iter
            (fun b ->
              if not (Hashtbl.mem seen (a, b)) then begin
                Hashtbl.replace seen (a, b) ();
                out := (a, b, N.of_limbs limbs) :: !out
              end)
            rest;
          pairs rest
        | [] -> ()
      in
      pairs sorted)
    t.pools;
  !out
