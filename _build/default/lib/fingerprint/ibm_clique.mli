(** Detection of tiny-prime-pool implementations — the IBM RSA-II /
    BladeCenter bug that generated all keys from nine primes (paper
    Sections 3.3.1, 4.1).

    Factored moduli are grouped into connected components of the
    modulus/prime sharing graph; a modulus with BOTH primes shared by
    other component members can only arise when the whole keypair is
    drawn from a small pool — in the shared-first-prime pattern every
    modulus owns a fresh second prime. *)

type clique = {
  primes : Bignum.Nat.t list;  (** the pool, sorted *)
  moduli : Bignum.Nat.t list;  (** both-primes-shared members, sorted *)
}

val detect : ?min_moduli:int -> Factored.t list -> clique list
(** Components with at least [min_moduli] (default 3) both-primes-
    shared members, largest first. *)
