module N = Bignum.Nat
module BG = Batchgcd.Batch_gcd

type t = { modulus : N.t; p : N.t; q : N.t }

let order p q = if N.compare p q <= 0 then (p, q) else (q, p)

let split_two_primes n d =
  (* d is a nontrivial divisor of n; accept only p*q with both prime. *)
  let q, r = N.divmod n d in
  if not (N.is_zero r) then None
  else if Bignum.Prime.is_probable_prime d && Bignum.Prime.is_probable_prime q
  then begin
    let p, q = order d q in
    Some { modulus = n; p; q }
  end
  else None

let recover findings =
  let full = ref [] (* divisor = modulus: needs pairwise splitting *) in
  let ok = ref [] and bad = ref [] in
  List.iter
    (fun f ->
      let n = f.BG.modulus and d = f.BG.divisor in
      if N.equal d n then full := n :: !full
      else
        match split_two_primes n d with
        | Some t -> ok := t :: !ok
        | None -> begin
          (* The divisor may be composite (e.g. a product of small
             primes from a bit error, or p*q' when the cofactor is not
             prime). Try the gcd of divisor and cofactor structure via
             known primes later; for now try the divisor's own split. *)
          match split_two_primes n (N.gcd d (N.div n d)) with
          | Some t -> ok := t :: !ok
          | None -> bad := n :: !bad
        end)
    findings;
  (* Split fully-shared moduli by pairwise GCDs against every other
     flagged modulus (the flagged set is small). *)
  let all_flagged =
    List.map (fun f -> f.BG.modulus) findings |> Array.of_list
  in
  List.iter
    (fun n ->
      let found = ref None in
      Array.iter
        (fun m ->
          if !found = None && not (N.equal m n) then begin
            let g = N.gcd n m in
            if (not (N.is_one g)) && not (N.equal g n) then
              match split_two_primes n g with
              | Some t -> found := Some t
              | None -> ()
          end)
        all_flagged;
      match !found with
      | Some t -> ok := t :: !ok
      | None -> bad := n :: !bad)
    !full;
  (List.rev !ok, List.rev !bad)

let primes ts =
  List.concat_map (fun t -> [ t.p; t.q ]) ts
  |> List.sort_uniq N.compare
