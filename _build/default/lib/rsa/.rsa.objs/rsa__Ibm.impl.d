lib/rsa/ibm.ml: Array Bignum Char Fun Hashes Hashtbl Keypair List Mutex Printf String
