lib/rsa/keypair.mli: Bignum Entropy
