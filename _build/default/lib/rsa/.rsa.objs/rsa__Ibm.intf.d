lib/rsa/ibm.mli: Bignum Keypair
