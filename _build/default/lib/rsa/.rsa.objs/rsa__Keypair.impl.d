lib/rsa/keypair.ml: Bignum Entropy Hashes Hashtbl List Printf String
