(** The IBM Remote Supervisor Adapter II / BladeCenter Management
    Module failure: a prime-generation bug left only nine possible
    primes, so every affected device shipped one of the 36 moduli
    formed from pairs of them (paper sections 3.3.1 and 4.1).

    The nine primes are deterministic per key size, mirroring firmware
    that always walked the same RNG states. *)

val pool_size : int
(** 9. *)

val primes : bits:int -> Bignum.Nat.t array
(** The nine primes of [bits] bits. Deterministic in [bits]. *)

val all_moduli : bits:int -> Bignum.Nat.t list
(** The 36 moduli (unordered pairs of distinct pool primes), sorted
    and de-duplicated. *)

val generate : gen:(int -> string) -> bits:int -> Keypair.private_key
(** Device key generation: pick an unordered pair of distinct pool
    primes using [gen] to choose the indices. [bits] is the modulus
    size; pool primes have [bits/2] bits. *)

val is_pool_modulus : bits:int -> Bignum.Nat.t -> bool
(** Membership test against {!all_moduli}. *)
