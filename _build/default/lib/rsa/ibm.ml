module N = Bignum.Nat
module P = Bignum.Prime

let pool_size = 9

(* One fixed DRBG stream per key size reproduces the same nine primes
   on every call, like the buggy firmware reproduced the same nine RNG
   states on every device. The memo tables are shared across the
   domain pool that materializes device keys, so they are guarded. *)
let pool_mutex = Mutex.create ()
let primes_tbl : (int, N.t array) Hashtbl.t = Hashtbl.create 4

let with_lock f =
  Mutex.lock pool_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock pool_mutex) f

let primes ~bits =
  with_lock (fun () ->
      match Hashtbl.find_opt primes_tbl bits with
      | Some a -> a
      | None ->
        let drbg =
          Hashes.Drbg.create ~seed:(Printf.sprintf "ibm-rsa2-pool-%d" bits) ()
        in
        let gen = Hashes.Drbg.gen_fn drbg in
        (* OpenSSL-style: IBM sits in the "satisfy fingerprint" column
           of the paper's Table 5. *)
        let arr =
          Array.init pool_size (fun _ -> P.generate_openssl_style ~gen ~bits)
        in
        Hashtbl.replace primes_tbl bits arr;
        arr)

let all_moduli ~bits =
  let pool = primes ~bits:(bits / 2) in
  let acc = ref [] in
  for i = 0 to pool_size - 1 do
    for j = i + 1 to pool_size - 1 do
      acc := N.mul pool.(i) pool.(j) :: !acc
    done
  done;
  List.sort_uniq N.compare !acc

let generate ~gen ~bits =
  let pool = primes ~bits:(bits / 2) in
  let byte () = Char.code (gen 1).[0] in
  (* Draw distinct pool indices until the exponent is invertible
     (e = 65537 fails to invert only when it divides p-1 or q-1, so
     this loop essentially never repeats). *)
  let rec attempt () =
    let i = byte () mod pool_size in
    let j =
      let rec draw () =
        let j = byte () mod pool_size in
        if j = i then draw () else j
      in
      draw ()
    in
    let p = pool.(i) and q = pool.(j) in
    let p1 = N.sub p N.one and q1 = N.sub q N.one in
    let lam = N.div (N.mul p1 q1) (N.gcd p1 q1) in
    match N.invert_mod Keypair.default_e lam with
    | Some d ->
      { Keypair.pub = { n = N.mul p q; e = Keypair.default_e }; p; q; d }
    | None -> attempt ()
  in
  attempt ()

let moduli_tbl : (int, (N.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let is_pool_modulus ~bits n =
  let set =
    match with_lock (fun () -> Hashtbl.find_opt moduli_tbl bits) with
    | Some s -> s
    | None ->
      (* Compute outside the lock: all_moduli takes it internally. *)
      let ms = all_moduli ~bits in
      with_lock (fun () ->
          match Hashtbl.find_opt moduli_tbl bits with
          | Some s -> s
          | None ->
            let s = Hashtbl.create 64 in
            List.iter (fun m -> Hashtbl.replace s m ()) ms;
            Hashtbl.replace moduli_tbl bits s;
            s)
  in
  Hashtbl.mem set n
