(** RSA key generation, including the flawed flows behind the paper's
    weak keys, plus textbook encryption and SHA-256 signatures. *)

type public = { n : Bignum.Nat.t; e : Bignum.Nat.t }

type private_key = {
  pub : public;
  p : Bignum.Nat.t;
  q : Bignum.Nat.t;
  d : Bignum.Nat.t;
}

type prime_style =
  | Openssl  (** trial-division sieve rejecting p with small factors of p-1;
                 satisfies the Mironov fingerprint *)
  | Plain  (** reject-and-retry without the sieve; the [not-OpenSSL]
               bucket of Table 5 *)

val default_e : Bignum.Nat.t
(** 65537. *)

val generate :
  ?style:prime_style -> gen:(int -> string) -> bits:int -> unit -> private_key
(** [generate ~gen ~bits ()] draws two distinct [bits/2]-bit primes
    from [gen] and assembles a keypair with exponent {!default_e}.
    @raise Invalid_argument if [bits < 32] or odd. *)

val generate_on_device :
  ?style:prime_style -> rng:Entropy.Device_rng.t -> bits:int -> unit ->
  private_key
(** Key generation as a network device performs it: the first prime is
    drawn from the boot-time pool; the device then signals
    {!Entropy.Device_rng.note_first_prime_done} (letting per-device
    entropy in, when the profile allows) before drawing the second.
    Devices with a getrandom(2) profile are seeded properly first, so
    their keys are strong. This one function generates both weak and
    strong keys depending on the profile — the experiment knobs live in
    {!Entropy.Device_rng.profile}, not here. *)

val is_consistent : private_key -> bool
(** Internal consistency: [n = p*q], both prime, [e*d = 1] modulo
    [lcm (p-1) (q-1)]. *)

val encrypt : public -> Bignum.Nat.t -> Bignum.Nat.t
(** Textbook RSA: [m^e mod n]. @raise Invalid_argument if [m >= n]. *)

val decrypt : private_key -> Bignum.Nat.t -> Bignum.Nat.t

val decrypt_crt : private_key -> Bignum.Nat.t -> Bignum.Nat.t
(** Same result as {!decrypt} via the Chinese Remainder Theorem — two
    half-size exponentiations plus Garner recombination, the standard
    ~4x speedup every real implementation uses. *)

val sign : private_key -> string -> Bignum.Nat.t
(** PKCS#1-v1.5-shaped signature over the SHA-256 digest of the
    message (padding [0x01 ff.. 00 || digest] to the modulus size). *)

val verify : public -> string -> Bignum.Nat.t -> bool

val recover_private :
  public -> factor:Bignum.Nat.t -> private_key option
(** What the attacker does after batch GCD: given a public key and one
    prime factor of its modulus, rebuild the full private key. [None]
    if [factor] does not actually divide the modulus or the division
    leaves a non-prime cofactor. *)

val encode_private : private_key -> string
(** Canonical text serialization (field-per-line, hex values). *)

val decode_private : string -> private_key
(** Inverse of {!encode_private}.
    @raise Invalid_argument on malformed input. *)

val encode_public : public -> string
val decode_public : string -> public

val well_formed_modulus : Bignum.Nat.t -> bits:int -> bool
(** Whether a modulus is the product of two primes of [bits/2] bits,
    as far as cheap checks can tell: correct size, odd, not prime
    itself, no tiny prime factor (the paper's "non-well-formed moduli
    from bit errors" test inverts this). *)
