module N = Bignum.Nat
module P = Bignum.Prime

type public = { n : N.t; e : N.t }
type private_key = { pub : public; p : N.t; q : N.t; d : N.t }
type prime_style = Openssl | Plain

let default_e = N.of_int 65537

(* Reject primes with p = 1 (mod e): e = 65537 could never be
   inverted modulo lambda, whatever the other prime is — OpenSSL's
   keygen applies the same rejection. Expected once per ~65537 primes,
   so the retry is essentially free. *)
let rec gen_prime style ~gen ~bits =
  let p =
    match style with
    | Openssl -> P.generate_openssl_style ~gen ~bits
    | Plain -> P.generate ~gen ~bits
  in
  if N.mod_int (N.sub p N.one) 65537 = 0 then gen_prime style ~gen ~bits
  else p

(* Assemble a key from two distinct primes; retries the second prime
   via [regen] while p = q or e is not invertible (gcd(e, lam) > 1). *)
let assemble ~regen p q =
  let rec go q =
    if N.equal p q then go (regen ())
    else begin
      let p1 = N.sub p N.one and q1 = N.sub q N.one in
      let lam = N.div (N.mul p1 q1) (N.gcd p1 q1) in
      match N.invert_mod default_e lam with
      | None -> go (regen ())
      | Some d ->
        let n = N.mul p q in
        { pub = { n; e = default_e }; p; q; d }
    end
  in
  go q

let check_bits bits =
  if bits < 32 || bits mod 2 <> 0 then
    invalid_arg "Rsa.generate: modulus size must be even and >= 32"

let generate ?(style = Openssl) ~gen ~bits () =
  check_bits bits;
  let half = bits / 2 in
  let p = gen_prime style ~gen ~bits:half in
  let q = gen_prime style ~gen ~bits:half in
  assemble ~regen:(fun () -> gen_prime style ~gen ~bits:half) p q

let generate_on_device ?(style = Openssl) ~rng ~bits () =
  check_bits bits;
  let half = bits / 2 in
  if Entropy.Device_rng.is_blocking rng then Entropy.Device_rng.properly_seed rng;
  let gen = Entropy.Device_rng.gen rng in
  let p = gen_prime style ~gen ~bits:half in
  Entropy.Device_rng.note_first_prime_done rng;
  let q = gen_prime style ~gen ~bits:half in
  assemble ~regen:(fun () -> gen_prime style ~gen ~bits:half) p q

let is_consistent k =
  N.equal k.pub.n (N.mul k.p k.q)
  && P.is_probable_prime k.p && P.is_probable_prime k.q
  && begin
       let p1 = N.sub k.p N.one and q1 = N.sub k.q N.one in
       let lam = N.div (N.mul p1 q1) (N.gcd p1 q1) in
       N.is_one (N.rem (N.mul k.pub.e k.d) lam)
     end

let encrypt pub m =
  if N.compare m pub.n >= 0 then invalid_arg "Rsa.encrypt: message >= modulus";
  N.pow_mod m pub.e pub.n

let decrypt k c = N.pow_mod c k.d k.pub.n

(* CRT decryption with Garner recombination:
   m_p = c^(d mod p-1) mod p, m_q = c^(d mod q-1) mod q,
   h = qInv * (m_p - m_q) mod p, m = m_q + h*q. *)
let decrypt_crt k c =
  let p = k.p and q = k.q in
  let dp = N.rem k.d (N.sub p N.one) and dq = N.rem k.d (N.sub q N.one) in
  let mp = Bignum.Montgomery.pow_mod_nat (N.rem c p) dp p in
  let mq = Bignum.Montgomery.pow_mod_nat (N.rem c q) dq q in
  match N.invert_mod (N.rem q p) p with
  | None ->
    (* p = q cannot happen for keys built by this module; fall back. *)
    decrypt k c
  | Some qinv ->
    let diff =
      if N.compare mp mq >= 0 then N.sub mp mq
      else N.sub (N.add mp p) (N.rem mq p)
    in
    let diff = N.rem diff p in
    let h = N.rem (N.mul qinv diff) p in
    N.add mq (N.mul h q)

(* PKCS#1 v1.5 style EMSA padding: 0x01 || 0xff.. || 0x00 || H(msg),
   sized one byte under the modulus length so the integer is < n. The
   simulation runs with small moduli (96-512 bits), so the SHA-256
   digest is truncated when it would not fit — the padding stays an
   injective-enough function of the message for signature semantics. *)
let emsa_pad n_bytes msg =
  let h = Hashes.Sha256.digest msg in
  let h =
    if String.length h + 2 > n_bytes then String.sub h 0 (n_bytes - 2) else h
  in
  if String.length h < 4 then invalid_arg "Rsa.sign: modulus too small"
  else begin
    let fill = n_bytes - String.length h - 2 in
    "\x01" ^ String.make fill '\xff' ^ "\x00" ^ h
  end

let sign k msg =
  let n_bytes = (N.num_bits k.pub.n + 7) / 8 in
  let m = N.of_bytes_be (emsa_pad (n_bytes - 1) msg) in
  N.pow_mod m k.d k.pub.n

let verify pub msg signature =
  if N.compare signature pub.n >= 0 then false
  else begin
    let n_bytes = (N.num_bits pub.n + 7) / 8 in
    let expected = N.of_bytes_be (emsa_pad (n_bytes - 1) msg) in
    N.equal expected (N.pow_mod signature pub.e pub.n)
  end

let recover_private pub ~factor =
  if N.is_zero factor || N.is_one factor then None
  else begin
    let q, r = N.divmod pub.n factor in
    if not (N.is_zero r) then None
    else if not (P.is_probable_prime factor && P.is_probable_prime q) then None
    else begin
      let p1 = N.sub factor N.one and q1 = N.sub q N.one in
      let lam = N.div (N.mul p1 q1) (N.gcd p1 q1) in
      match N.invert_mod pub.e lam with
      | None -> None
      | Some d -> Some { pub; p = factor; q; d }
    end
  end

(* Line-oriented canonical key serialization, mirroring the
   certificate encoding in x509lite. *)

let decode_fields s =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if line <> "" then
        match String.index_opt line ':' with
        | None -> invalid_arg "Rsa: malformed key encoding"
        | Some i ->
          Hashtbl.replace tbl (String.sub line 0 i)
            (String.trim (String.sub line (i + 1) (String.length line - i - 1))))
    (String.split_on_char '\n' s);
  fun key ->
    match Hashtbl.find_opt tbl key with
    | Some v -> N.of_string ("0x" ^ v)
    | None -> invalid_arg ("Rsa: missing field " ^ key)

let encode_public pub =
  Printf.sprintf "rsa-n: %s\nrsa-e: %s\n" (N.to_hex pub.n) (N.to_hex pub.e)

let decode_public s =
  let get = decode_fields s in
  { n = get "rsa-n"; e = get "rsa-e" }

let encode_private k =
  encode_public k.pub
  ^ Printf.sprintf "rsa-p: %s\nrsa-q: %s\nrsa-d: %s\n" (N.to_hex k.p)
      (N.to_hex k.q) (N.to_hex k.d)

let decode_private s =
  let get = decode_fields s in
  let k =
    {
      pub = { n = get "rsa-n"; e = get "rsa-e" };
      p = get "rsa-p";
      q = get "rsa-q";
      d = get "rsa-d";
    }
  in
  if not (N.equal k.pub.n (N.mul k.p k.q)) then
    invalid_arg "Rsa.decode_private: n <> p*q";
  k

let well_formed_modulus n ~bits =
  N.num_bits n = bits
  && N.is_odd n
  && P.trial_division n = None
  && not (P.is_probable_prime n)
