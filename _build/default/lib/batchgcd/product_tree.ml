module N = Bignum.Nat

type t = { levels : N.t array array }

let build inputs =
  if Array.length inputs = 0 then invalid_arg "Product_tree.build: empty";
  Array.iter
    (fun x -> if N.is_zero x then invalid_arg "Product_tree.build: zero input")
    inputs;
  let rec up acc level =
    let n = Array.length level in
    if n = 1 then List.rev (level :: acc)
    else begin
      let next =
        Array.init ((n + 1) / 2) (fun i ->
            if (2 * i) + 1 < n then N.mul level.(2 * i) level.((2 * i) + 1)
            else level.(2 * i))
      in
      up (level :: acc) next
    end
  in
  { levels = Array.of_list (up [] inputs) }

let leaves t = t.levels.(0)
let depth t = Array.length t.levels
let root t = t.levels.(depth t - 1).(0)

let level t k =
  if k < 0 || k >= depth t then invalid_arg "Product_tree.level: out of range"
  else t.levels.(k)

let total_limbs t =
  Array.fold_left
    (fun acc lvl ->
      Array.fold_left (fun acc n -> acc + ((N.num_bits n + 30) / 31)) acc lvl)
    0 t.levels
