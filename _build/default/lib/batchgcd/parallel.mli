(** A minimal domain pool for the cluster variant of batch GCD. The
    paper parallelised across 22 machines; we parallelise across OCaml
    5 domains on one host — the algorithmic structure is identical. *)

exception Worker_failure of exn
(** Wraps the first exception raised by a job. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f jobs] applies [f] to every element, distributing jobs over
    [domains] domains (default {!default_domains}) with a shared
    work-queue. [f] must be safe to run concurrently: the batch-GCD
    jobs only read immutable big integers. Exceptions raised by [f]
    are re-raised after all domains have joined. *)
