let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

exception Worker_failure of exn

let map ?domains f jobs =
  let domains =
    match domains with Some d -> Stdlib.max 1 d | None -> default_domains ()
  in
  let n = Array.length jobs in
  if domains = 1 || n <= 1 then Array.map f jobs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    (* Work queue: each domain claims the next unclaimed index. Writes
       go to distinct cells; Domain.join publishes them to the parent. *)
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f jobs.(i))
           with e -> Atomic.set failure (Some e));
          go ()
        end
      in
      go ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some e -> raise (Worker_failure e)
    | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end
