(** Binary product trees (Bernstein): level 0 holds the inputs, each
    higher level the pairwise products, the top level the product of
    every input. The remainder tree walks the same structure downward. *)

type t

val build : Bignum.Nat.t array -> t
(** @raise Invalid_argument on an empty input or a zero modulus. *)

val leaves : t -> Bignum.Nat.t array
(** The inputs, in order (not a copy). *)

val root : t -> Bignum.Nat.t
(** The product of all inputs. *)

val depth : t -> int
(** Number of levels; a single input gives depth 1. *)

val level : t -> int -> Bignum.Nat.t array
(** [level t k] is the k-th level, 0 = leaves.
    @raise Invalid_argument when out of range. *)

val total_limbs : t -> int
(** Sum of limb counts over every node — the paper's product trees
    needed 70-100 GB per cluster node; this is our proxy metric. *)
