lib/batchgcd/parallel.mli:
