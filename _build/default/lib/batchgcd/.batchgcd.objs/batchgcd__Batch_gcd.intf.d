lib/batchgcd/batch_gcd.mli: Bignum
