lib/batchgcd/parallel.ml: Array Atomic Domain List Stdlib
