lib/batchgcd/remainder_tree.mli: Bignum Product_tree
