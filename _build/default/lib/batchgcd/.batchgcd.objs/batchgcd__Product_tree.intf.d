lib/batchgcd/product_tree.mli: Bignum
