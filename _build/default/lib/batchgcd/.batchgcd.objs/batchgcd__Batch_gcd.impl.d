lib/batchgcd/batch_gcd.ml: Array Bignum Hashtbl List Parallel Product_tree Remainder_tree Stdlib
