lib/batchgcd/remainder_tree.ml: Array Bignum Product_tree
