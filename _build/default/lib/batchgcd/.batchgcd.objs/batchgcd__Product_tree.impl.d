lib/batchgcd/product_tree.ml: Array Bignum List
