module N = Bignum.Nat

(* Shared descent: [reduce node r] reduces the parent remainder at a
   node. Children index i draws from parent i/2, matching how
   Product_tree pairs nodes upward. *)
let descend tree ~reduce v =
  let d = Product_tree.depth tree in
  let top = Product_tree.level tree (d - 1) in
  let rs = ref [| reduce top.(0) v |] in
  for k = d - 2 downto 0 do
    let lvl = Product_tree.level tree k in
    rs := Array.init (Array.length lvl) (fun i -> reduce lvl.(i) !rs.(i / 2))
  done;
  !rs

let remainders_mod_square tree v =
  descend tree ~reduce:(fun node r -> N.rem r (N.sqr node)) v

let remainders tree v = descend tree ~reduce:(fun node r -> N.rem r node) v
