(** A structural model of X.509 certificates — everything the paper's
    fingerprinting pipeline reads (subject, issuer, SANs, validity,
    RSA public key, signature) over a canonical text encoding instead
    of DER. *)

type t = {
  serial : Bignum.Nat.t;
  subject : Dn.t;
  issuer : Dn.t;
  subject_alt_names : string list;
  not_before : Date.t;
  not_after : Date.t;
  public_key : Rsa.Keypair.public;
  signature : Bignum.Nat.t;
}

val tbs_encoding : t -> string
(** Canonical "to-be-signed" serialization: every field except the
    signature, in a fixed order. Signing and verification operate on
    this string. *)

val self_sign :
  serial:Bignum.Nat.t -> subject:Dn.t -> ?subject_alt_names:string list ->
  not_before:Date.t -> not_after:Date.t -> key:Rsa.Keypair.private_key ->
  unit -> t
(** Issue a self-signed certificate (issuer = subject), the dominant
    case among the paper's vulnerable devices. *)

val sign_with :
  serial:Bignum.Nat.t -> subject:Dn.t -> ?subject_alt_names:string list ->
  not_before:Date.t -> not_after:Date.t -> subject_key:Rsa.Keypair.public ->
  issuer:Dn.t -> issuer_key:Rsa.Keypair.private_key -> unit -> t
(** Issue a CA-signed certificate. *)

val verify_signature : t -> Rsa.Keypair.public -> bool
(** Check the signature against a purported issuer key. For
    self-signed certificates pass [t.public_key]. *)

val is_self_signed : t -> bool
(** Issuer equals subject and the signature verifies under the
    certificate's own key. *)

val fingerprint : t -> string
(** SHA-256 over the full encoding, hex — the stable identity used to
    deduplicate certificates across scans. *)

val encode : t -> string
(** Full canonical text encoding (TBS plus signature line). *)

val decode : string -> t
(** Inverse of {!encode}. @raise Invalid_argument on malformed input. *)

val substitute_public_key : t -> Rsa.Keypair.public -> t
(** Replace only the public key and re-sign nothing — the Internet
    Rimon man-in-the-middle transformation (paper section 3.3.3): the
    rest of the certificate is untouched and the signature becomes
    invalid. *)

val pp : Format.formatter -> t -> unit
