(** X.500 distinguished names, as far as certificate fingerprinting
    needs them: an ordered list of attribute/value pairs with the
    ["CN=a, O=b"] textual form the paper quotes. *)

type attr = CN | O | OU | C | L | ST | Email | Unstructured of string

type t = (attr * string) list

val attr_to_string : attr -> string
val attr_of_string : string -> attr

val make : ?extra:(attr * string) list -> ?cn:string -> ?o:string ->
  ?ou:string -> unit -> t
(** Build a DN in CN, O, OU, extra order, skipping absent parts. *)

val get : t -> attr -> string option
(** First value for the attribute, if any. *)

val get_all : t -> attr -> string list

val common_name : t -> string option
val organization : t -> string option
val organizational_unit : t -> string option

val to_string : t -> string
(** ["CN=Default Common Name, O=Default Organization"]. Commas and
    backslashes inside values are backslash-escaped. *)

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on bad input. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
