(** Calendar dates, as days since the civil epoch 1970-01-01.

    The scan corpus spans July 2010 to May 2016 in monthly steps, so
    the module leans toward month arithmetic and [MM/YYYY] labels. *)

type t

val of_ymd : int -> int -> int -> t
(** [of_ymd year month day]. @raise Invalid_argument on nonsense. *)

val to_ymd : t -> int * int * int
val of_days : int -> t
val to_days : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val add_days : t -> int -> t
val add_months : t -> int -> t
(** Clamps the day-of-month (Jan 31 + 1 month = Feb 28/29). *)

val diff_days : t -> t -> int
(** [diff_days a b = to_days a - to_days b]. *)

val months_between : t -> t -> int
(** Whole months from [b] to [a] ignoring day-of-month. *)

val first_of_month : t -> t

val to_string : t -> string
(** ISO [YYYY-MM-DD]. *)

val of_string : string -> t
(** Parses [YYYY-MM-DD]. @raise Invalid_argument on bad input. *)

val month_label : t -> string
(** [MM/YYYY], the axis-label format of the paper's figures. *)

val pp : Format.formatter -> t -> unit
