type attr = CN | O | OU | C | L | ST | Email | Unstructured of string
type t = (attr * string) list

let attr_to_string = function
  | CN -> "CN"
  | O -> "O"
  | OU -> "OU"
  | C -> "C"
  | L -> "L"
  | ST -> "ST"
  | Email -> "emailAddress"
  | Unstructured s -> s

let attr_of_string = function
  | "CN" -> CN
  | "O" -> O
  | "OU" -> OU
  | "C" -> C
  | "L" -> L
  | "ST" -> ST
  | "emailAddress" -> Email
  | s -> Unstructured s

let make ?(extra = []) ?cn ?o ?ou () =
  let opt attr v = match v with None -> [] | Some v -> [ (attr, v) ] in
  opt CN cn @ opt O o @ opt OU ou @ extra

let get t attr =
  List.find_map (fun (a, v) -> if a = attr then Some v else None) t

let get_all t attr =
  List.filter_map (fun (a, v) -> if a = attr then Some v else None) t

let common_name t = get t CN
let organization t = get t O
let organizational_unit t = get t OU

let escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | ',' | '\\' | '=' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_string t =
  String.concat ", "
    (List.map (fun (a, v) -> attr_to_string a ^ "=" ^ escape v) t)

(* Split on unescaped commas, then on the first unescaped '='. *)
let of_string s =
  let parts = ref [] and buf = Buffer.create 16 in
  let i = ref 0 and n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
      Buffer.add_char buf '\\';
      Buffer.add_char buf s.[!i + 1];
      incr i
    | ',' ->
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf
    | c -> Buffer.add_char buf c);
    incr i
  done;
  parts := Buffer.contents buf :: !parts;
  let unescape v =
    let out = Buffer.create (String.length v) in
    let j = ref 0 and m = String.length v in
    while !j < m do
      (if v.[!j] = '\\' && !j + 1 < m then begin
         incr j;
         Buffer.add_char out v.[!j]
       end
       else Buffer.add_char out v.[!j]);
      incr j
    done;
    Buffer.contents out
  in
  let parse_part part =
    let part = String.trim part in
    (* Find the first '=' not preceded by a backslash. *)
    let rec find k =
      if k >= String.length part then
        invalid_arg "Dn.of_string: missing '=' in component"
      else if part.[k] = '=' && (k = 0 || part.[k - 1] <> '\\') then k
      else find (k + 1)
    in
    let eq = find 0 in
    let a = String.sub part 0 eq in
    let v = String.sub part (eq + 1) (String.length part - eq - 1) in
    (attr_of_string (unescape a), unescape v)
  in
  List.rev_map parse_part (List.filter (fun p -> String.trim p <> "") !parts)

let equal = ( = )
let compare = Stdlib.compare
let pp fmt t = Format.pp_print_string fmt (to_string t)
