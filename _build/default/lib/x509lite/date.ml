(* Civil-date conversion uses Howard Hinnant's days_from_civil
   algorithm, which is exact over the proleptic Gregorian calendar. *)

type t = int (* days since 1970-01-01 *)

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Date: bad month"

let of_ymd y m d =
  if m < 1 || m > 12 then invalid_arg "Date.of_ymd: bad month";
  if d < 1 || d > days_in_month y m then invalid_arg "Date.of_ymd: bad day";
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let m' = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * m') + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let to_ymd z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let of_days d = d
let to_days d = d
let compare = Stdlib.compare
let equal = Int.equal
let ( <= ) a b = a <= b
let ( < ) a b = a < b
let add_days t n = t + n

let add_months t n =
  let y, m, d = to_ymd t in
  let total = ((y * 12) + (m - 1)) + n in
  let y' = total / 12 and m' = (total mod 12) + 1 in
  let y', m' = if m' < 1 then (y' - 1, m' + 12) else (y', m') in
  of_ymd y' m' (Stdlib.min d (days_in_month y' m'))

let diff_days a b = a - b

let months_between a b =
  let ya, ma, _ = to_ymd a and yb, mb, _ = to_ymd b in
  ((ya - yb) * 12) + (ma - mb)

let first_of_month t =
  let y, m, _ = to_ymd t in
  of_ymd y m 1

let to_string t =
  let y, m, d = to_ymd t in
  Printf.sprintf "%04d-%02d-%02d" y m d

let of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
    | Some y, Some m, Some d -> of_ymd y m d
    | _ -> invalid_arg "Date.of_string: not numeric")
  | _ -> invalid_arg "Date.of_string: expected YYYY-MM-DD"

let month_label t =
  let y, m, _ = to_ymd t in
  Printf.sprintf "%02d/%04d" m y

let pp fmt t = Format.pp_print_string fmt (to_string t)
