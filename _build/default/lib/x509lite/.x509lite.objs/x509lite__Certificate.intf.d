lib/x509lite/certificate.mli: Bignum Date Dn Format Rsa
