lib/x509lite/certificate.ml: Bignum Buffer Date Dn Format Hashes Hashtbl List Rsa Stdlib String
