lib/x509lite/date.mli: Format
