lib/x509lite/date.ml: Format Int Printf Stdlib String
