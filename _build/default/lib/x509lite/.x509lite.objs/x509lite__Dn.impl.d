lib/x509lite/dn.ml: Buffer Format List Stdlib String
