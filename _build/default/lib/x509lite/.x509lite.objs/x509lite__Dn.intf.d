lib/x509lite/dn.mli: Format
