module N = Bignum.Nat

type t = {
  serial : N.t;
  subject : Dn.t;
  issuer : Dn.t;
  subject_alt_names : string list;
  not_before : Date.t;
  not_after : Date.t;
  public_key : Rsa.Keypair.public;
  signature : N.t;
}

(* Line-oriented canonical encoding. Values that may contain newlines
   do not occur (DN escaping covers commas; SANs are hostnames). *)
let tbs_encoding t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("serial: " ^ N.to_hex t.serial ^ "\n");
  Buffer.add_string buf ("subject: " ^ Dn.to_string t.subject ^ "\n");
  Buffer.add_string buf ("issuer: " ^ Dn.to_string t.issuer ^ "\n");
  Buffer.add_string buf
    ("san: " ^ String.concat ";" t.subject_alt_names ^ "\n");
  Buffer.add_string buf ("not-before: " ^ Date.to_string t.not_before ^ "\n");
  Buffer.add_string buf ("not-after: " ^ Date.to_string t.not_after ^ "\n");
  Buffer.add_string buf ("rsa-n: " ^ N.to_hex t.public_key.Rsa.Keypair.n ^ "\n");
  Buffer.add_string buf ("rsa-e: " ^ N.to_hex t.public_key.Rsa.Keypair.e ^ "\n");
  Buffer.contents buf

let unsigned ~serial ~subject ~subject_alt_names ~not_before ~not_after
    ~public_key ~issuer =
  {
    serial;
    subject;
    issuer;
    subject_alt_names;
    not_before;
    not_after;
    public_key;
    signature = N.zero;
  }

let self_sign ~serial ~subject ?(subject_alt_names = []) ~not_before
    ~not_after ~key () =
  let c =
    unsigned ~serial ~subject ~subject_alt_names ~not_before ~not_after
      ~public_key:key.Rsa.Keypair.pub ~issuer:subject
  in
  { c with signature = Rsa.Keypair.sign key (tbs_encoding c) }

let sign_with ~serial ~subject ?(subject_alt_names = []) ~not_before
    ~not_after ~subject_key ~issuer ~issuer_key () =
  let c =
    unsigned ~serial ~subject ~subject_alt_names ~not_before ~not_after
      ~public_key:subject_key ~issuer
  in
  { c with signature = Rsa.Keypair.sign issuer_key (tbs_encoding c) }

let verify_signature t issuer_pub =
  Rsa.Keypair.verify issuer_pub (tbs_encoding t) t.signature

let is_self_signed t =
  Dn.equal t.subject t.issuer && verify_signature t t.public_key

let encode t = tbs_encoding t ^ "signature: " ^ N.to_hex t.signature ^ "\n"
let fingerprint t = Hashes.Sha256.hexdigest (encode t)

let decode s =
  let field line =
    match String.index_opt line ':' with
    | None -> invalid_arg "Certificate.decode: missing colon"
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun line -> if line <> "" then begin
       let k, v = field line in
       Hashtbl.replace tbl k v
     end)
    (String.split_on_char '\n' s);
  let get k =
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None -> invalid_arg ("Certificate.decode: missing field " ^ k)
  in
  let hex v = N.of_string ("0x" ^ v) in
  {
    serial = hex (get "serial");
    subject = Dn.of_string (get "subject");
    issuer = Dn.of_string (get "issuer");
    subject_alt_names =
      (match get "san" with
      | "" -> []
      | v -> String.split_on_char ';' v);
    not_before = Date.of_string (get "not-before");
    not_after = Date.of_string (get "not-after");
    public_key = { Rsa.Keypair.n = hex (get "rsa-n"); e = hex (get "rsa-e") };
    signature = hex (get "signature");
  }

let substitute_public_key t pub = { t with public_key = pub }

let pp fmt t =
  Format.fprintf fmt "Certificate[%s -> %s, n=%s...]"
    (Dn.to_string t.subject) (Dn.to_string t.issuer)
    (let h = N.to_hex t.public_key.Rsa.Keypair.n in
     String.sub h 0 (Stdlib.min 12 (String.length h)))
