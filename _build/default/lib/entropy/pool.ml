(* The pool is an HMAC-DRBG keyed by everything mixed so far, plus a
   saturating entropy-credit counter. This reproduces the two Linux
   behaviours that matter for the paper: /dev/urandom never blocks,
   and identical mix histories give identical output streams. *)

let pool_bits = 4096

type t = { drbg : Hashes.Drbg.t; mutable credited : int }

let create () =
  { drbg = Hashes.Drbg.create ~seed:"linux-pool-boot-state" (); credited = 0 }

let mix t ?entropy_bits input =
  let bits =
    match entropy_bits with Some b -> b | None -> 8 * String.length input
  in
  if bits < 0 then invalid_arg "Pool.mix: negative entropy credit";
  Hashes.Drbg.reseed t.drbg input;
  t.credited <- Stdlib.min pool_bits (t.credited + bits)

let entropy_estimate t = t.credited
let read_urandom t n = Hashes.Drbg.generate t.drbg n

let read_random t n =
  if t.credited < 8 * n then None
  else begin
    t.credited <- t.credited - (8 * n);
    Some (read_urandom t n)
  end

let copy t = { drbg = Hashes.Drbg.copy t.drbg; credited = t.credited }

let fingerprint t =
  Hashes.Sha256.to_hex (Hashes.Drbg.generate (Hashes.Drbg.copy t.drbg) 16)
