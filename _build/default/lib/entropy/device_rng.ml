type profile = {
  name : string;
  boot_entropy_bits : int;
  mix_between_primes : bool;
  uses_getrandom : bool;
}

let healthy name =
  {
    name;
    boot_entropy_bits = 128;
    mix_between_primes = true;
    uses_getrandom = false;
  }

let vulnerable_shared_prime name ~bits =
  {
    name;
    boot_entropy_bits = bits;
    mix_between_primes = true;
    uses_getrandom = false;
  }

let fully_deterministic name ~bits =
  {
    name;
    boot_entropy_bits = bits;
    mix_between_primes = false;
    uses_getrandom = false;
  }

let patched p = { p with uses_getrandom = true }

type t = {
  profile : profile;
  pool : Pool.t;
  device_unique : string;
  mutable seeded : bool;
}

(* Reduce the boot state into the profile's admissible space. Profiles
   with >= 62 bits of boot entropy keep the full index (and mix the
   device-unique identity at boot, making every device distinct). *)
let boot profile ~device_unique ~boot_state =
  if boot_state < 0 then invalid_arg "Device_rng.boot: negative boot state";
  let pool = Pool.create () in
  let effective =
    if profile.boot_entropy_bits >= 62 then boot_state
    else boot_state land ((1 lsl profile.boot_entropy_bits) - 1)
  in
  Pool.mix pool ~entropy_bits:profile.boot_entropy_bits
    (Printf.sprintf "boot:%s:%d" profile.name effective);
  if profile.boot_entropy_bits >= 62 then
    Pool.mix pool ~entropy_bits:64 ("id:" ^ device_unique);
  { profile; pool; device_unique; seeded = profile.boot_entropy_bits >= 62 }

let gen t n = Pool.read_urandom t.pool n

let note_first_prime_done t =
  if t.profile.mix_between_primes then
    Pool.mix t.pool ~entropy_bits:48 ("interrupt:" ^ t.device_unique)

let is_blocking t = t.profile.uses_getrandom && not t.seeded

let properly_seed t =
  Pool.mix t.pool ~entropy_bits:256 ("late-entropy:" ^ t.device_unique);
  t.seeded <- true

let pool_fingerprint t = Pool.fingerprint t.pool
