(** Per-device random number generation under a boot-entropy profile.

    A device boots with an entropy pool seeded from a *small* space of
    possible boot states (the entropy hole): a profile with
    [boot_entropy_bits = b] admits only [2^b] distinct pools at first
    key generation. Devices of the same model that land on the same
    boot state generate the same first prime; whether the second prime
    also collides depends on [mix_between_primes] — the
    time-of-day/packet-arrival entropy the paper describes trickling in
    during key generation. *)

type profile = {
  name : string;  (** profile label, used in personalization *)
  boot_entropy_bits : int;
      (** log2 of the number of distinct boot states; 0 means every
          device boots identical, large (>= 64) models a healthy RNG *)
  mix_between_primes : bool;
      (** when true, device-unique entropy arrives after the first
          prime is generated, so second primes diverge — the classic
          shared-prime pattern *)
  uses_getrandom : bool;
      (** post-2014 firmware: key generation blocks until the pool is
          properly seeded, so keys are strong regardless of boot state *)
}

val healthy : string -> profile
(** A desktop-grade profile: effectively unlimited boot entropy. *)

val vulnerable_shared_prime : string -> bits:int -> profile
(** The headless-device profile behind most of the paper's weak keys:
    [bits] of boot entropy, divergence between primes. *)

val fully_deterministic : string -> bits:int -> profile
(** No divergence between primes either: the whole keypair is a
    function of the boot state (the IBM nine-prime failure mode). *)

val patched : profile -> profile
(** The same hardware after a firmware update adopting getrandom(2). *)

type t

val boot : profile -> device_unique:string -> boot_state:int -> t
(** Boot a device. [device_unique] models per-device identity (MAC,
    serial) that only enters the pool when divergence applies;
    [boot_state] indexes the boot-state space and is reduced modulo
    [2^boot_entropy_bits].
    @raise Invalid_argument if [boot_state] is negative. *)

val gen : t -> int -> string
(** Draw bytes, /dev/urandom-style. *)

val note_first_prime_done : t -> unit
(** Signal that the first prime has been produced; under
    [mix_between_primes] this injects the device-unique entropy. *)

val is_blocking : t -> bool
(** Whether a getrandom(2)-style keygen would block right now (pool
    not yet properly seeded). Patched devices wait; their keys are
    generated only once this turns false. *)

val properly_seed : t -> unit
(** Let enough real entropy arrive to satisfy getrandom(2); models
    the device having been up long enough before key generation. *)

val pool_fingerprint : t -> string
