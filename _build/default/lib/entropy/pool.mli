(** A model of the Linux kernel entropy pool as it behaves on headless
    embedded devices (paper section 2.4).

    The pool mixes input strings into a compressed state and serves
    nonblocking reads in the style of [/dev/urandom]: output is always
    produced, whether or not any real entropy has been mixed in. Two
    pools that have mixed exactly the same inputs produce exactly the
    same output stream — this determinism is what makes the boot-time
    entropy hole reproducible and is the property every weak-key
    experiment in this repository relies on. *)

type t

val create : unit -> t
(** A freshly booted pool with no entropy. *)

val mix : t -> ?entropy_bits:int -> string -> unit
(** Mix input into the pool. [entropy_bits] (default: 8 bits per input
    byte) is credited to the entropy estimate, mirroring the kernel's
    accounting rather than any information-theoretic truth. *)

val entropy_estimate : t -> int
(** Credited entropy in bits, saturating at the pool size (4096). *)

val read_urandom : t -> int -> string
(** Nonblocking read; never fails, even from an empty pool. Reading
    also advances the internal state, so consecutive reads differ. *)

val read_random : t -> int -> string option
(** Blocking-interface model: [None] when the entropy estimate is
    below the requested amount, mirroring [/dev/random] semantics. *)

val copy : t -> t
(** Fork the pool state; used to model identical devices at boot. *)

val fingerprint : t -> string
(** Hex digest of the current internal state, for tests that assert
    two pools are (or are not) in identical states. *)
