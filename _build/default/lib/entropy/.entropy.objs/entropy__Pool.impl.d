lib/entropy/pool.ml: Hashes Stdlib String
