lib/entropy/device_rng.ml: Pool Printf
