lib/entropy/device_rng.mli:
