lib/entropy/pool.mli:
