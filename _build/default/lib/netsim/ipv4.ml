type t = int

let to_string ip =
  Printf.sprintf "%d.%d.%d.%d"
    ((ip lsr 24) land 0xff)
    ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff)
    (ip land 0xff)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let oct x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg "Ipv4.of_string: bad octet"
    in
    (oct a lsl 24) lor (oct b lsl 16) lor (oct c lsl 8) lor oct d
  | _ -> invalid_arg "Ipv4.of_string: expected dotted quad"

let is_reserved ip =
  let a = (ip lsr 24) land 0xff in
  a = 0 || a = 10 || a = 127 || a >= 224
  || (a = 172 && (ip lsr 20) land 0xf = 1)
  || (a = 192 && (ip lsr 16) land 0xff = 168)

let of_key key =
  let rec draw i =
    let s = Det.bytes (Printf.sprintf "%s/ip/%d" key i) 4 in
    let ip =
      (Char.code s.[0] lsl 24) lor (Char.code s.[1] lsl 16)
      lor (Char.code s.[2] lsl 8) lor Char.code s.[3]
    in
    if is_reserved ip then draw (i + 1) else ip
  in
  draw 0

let compare = Stdlib.compare
let equal = Int.equal
let pp fmt ip = Format.pp_print_string fmt (to_string ip)
