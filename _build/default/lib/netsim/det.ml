(* Fast deterministic hashing for simulation decisions. Key-derived
   choices use FNV-1a with a splitmix64-style finalizer — not
   cryptographic, but stable across runs and platforms, and orders of
   magnitude cheaper than the DRBG (the world model makes millions of
   these calls). Key *material* (gen_fn) still comes from HMAC-DRBG. *)

let mask62 = (1 lsl 62) - 1

(* Constants are the canonical FNV/splitmix ones truncated to OCaml's
   62 value bits; any odd multipliers serve for a non-crypto hash. *)
let fnv1a key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001b3 land mask62)
    key;
  !h

let finalize z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land mask62 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land mask62 in
  z lxor (z lsr 31)

let int64_of key = finalize (fnv1a key)

let bytes key n =
  (* Counter-mode expansion of the hash; enough for IPs and serials. *)
  String.init n (fun i ->
      Char.chr (int64_of (key ^ "#" ^ string_of_int (i / 7)) lsr (8 * (i mod 7)) land 0xff))

let int key bound =
  if bound <= 0 then invalid_arg "Det.int: bound must be positive"
  else int64_of key mod bound

let float key = Float.of_int (int64_of key land ((1 lsl 53) - 1)) /. Float.of_int (1 lsl 53)
let bool key ~p = float key < p
let gen_fn key = Hashes.Drbg.gen_fn (Hashes.Drbg.create ~seed:key ())
