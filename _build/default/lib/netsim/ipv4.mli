(** IPv4 addresses for the simulated internet. *)

type t = int
(** The 32-bit address packed in a native int. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Invalid_argument on malformed dotted quads. *)

val of_key : string -> t
(** A deterministic pseudo-random public address for a key; avoids
    0.0.0.0/8, 10/8, 127/8, 172.16/12, 192.168/16 and multicast. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
