(** Scan sources and host-record generation (paper Section 3.1).

    Five HTTPS scan campaigns with their real date ranges and
    methodology quirks replay over a {!World.t}:

    - EFF SSL Observatory: July and December 2010, Nmap-based, lowest
      coverage;
    - P&Q: the October 2011 scan of the original paper;
    - Ecosystem (Durumeric et al.): monthly June 2012 - January 2014;
    - Rapid7 Sonar: monthly October 2013 - May 2015; emits
      un-chained intermediate CA certificates as extra records;
    - Censys: monthly July 2015 - May 2016, highest coverage.

    Artifacts modeled: the Internet Rimon middlebox substituting its
    fixed public key into customer certificates, and rare bit errors
    corrupting a transmitted modulus. *)

type source = Eff | Pq | Ecosystem | Rapid7 | Censys

val source_name : source -> string
val all_sources : source list

val coverage : source -> float
(** Fraction of live hosts a scan from this source observes. *)

val schedule : source -> X509lite.Date.t list
(** Scan dates for the source, chronological (15th of each month). *)

val full_schedule : (source * X509lite.Date.t) list
(** Every (source, date) pair, chronological. Months where sources
    overlap contain several entries, as in the real aggregate. *)

type host_record = {
  source : source;
  date : X509lite.Date.t;
  ip : Ipv4.t;
  cert : X509lite.Certificate.t;
  is_intermediate : bool;
      (** Rapid7 artifact: an issuer certificate reported at the same
          IP without chain structure *)
  page_title : string option;
      (** identifying text from the device's HTTPS landing page, when
          the scanner fetched one (Section 3.3.1) *)
}

type scan = {
  scan_source : source;
  scan_date : X509lite.Date.t;
  records : host_record array;
}

val run_scan :
  ?bit_error_rate:float -> World.t -> source -> X509lite.Date.t -> scan
(** Replay one scan: every device alive on the date and covered by the
    source yields a record (plus artifacts). [bit_error_rate] is the
    per-record probability of a single-bit corruption of the modulus
    (default 1e-5). *)

val run_all : ?bit_error_rate:float -> World.t -> scan list
(** The whole corpus, chronological. *)

(** {1 Protocol snapshots} (Table 4) *)

type protocol = Https | Ssh | Pop3s | Imaps | Smtps

val protocol_name : protocol -> string

type protocol_snapshot = {
  protocol : protocol;
  snap_date : X509lite.Date.t;
  total_hosts : int;
  rsa_hosts : int;
  rsa_moduli : Bignum.Nat.t array;  (** with duplicates, as observed *)
}

val protocol_snapshots : World.t -> protocol_snapshot list
(** One snapshot per protocol near the end of the study: HTTPS and SSH
    drawn from the device world (SSH host keys included), the mail
    protocols from an independent healthy population. *)
