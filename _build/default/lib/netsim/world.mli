(** The simulated internet: device populations evolving month by month
    from 2005 through May 2016, with deterministic key material.

    Build order: (1) population dynamics decide, per product line, when
    devices deploy, die, regenerate certificates and change IP; (2) key
    material and certificates are generated for every device epoch on a
    domain pool; (3) {!Scanner} replays scan sources over the result.

    Everything is a pure function of the config seed. *)

type config = {
  seed : string;
  scale : float;  (** population multiplier; 1.0 = the DESIGN.md targets *)
  modulus_bits : int;  (** RSA modulus size (default 96) *)
  rimon_frac : float;
      (** fraction of generic hosts behind the key-substituting ISP *)
  domains : int option;  (** domain-pool width for key generation *)
}

val default_config : config
(** seed "weakkeys-imc16", scale 1.0, 96-bit moduli, rimon 0.0012. *)

type epoch = {
  from_date : X509lite.Date.t;
  key : Rsa.Keypair.private_key;
  cert : X509lite.Certificate.t;
}

type device = {
  dev_id : string;
  model : Device_model.t;
  deploy : X509lite.Date.t;
  death : X509lite.Date.t option;
  weak_unit : bool;  (** runs flawed firmware (not necessarily factorable) *)
  epochs : epoch array;  (** certificate history, oldest first *)
  ips : (X509lite.Date.t * Ipv4.t) array;  (** IP history, oldest first *)
  ssh_key : Rsa.Keypair.private_key option;
}

type t

val build : ?progress:(string -> unit) -> config -> t
val config : t -> config
val devices : t -> device array
val ca_key : t -> Rsa.Keypair.private_key
val ca_cert : t -> X509lite.Certificate.t
val rimon_public : t -> Rsa.Keypair.public
(** The fixed 1024-bit-equivalent key the Internet Rimon middlebox
    substitutes into its customers' certificates. *)

val is_rimon_customer : t -> device -> bool

val start_date : X509lite.Date.t
val end_date : X509lite.Date.t
val heartbleed_date : X509lite.Date.t
(** 2014-04-07, the disclosure; the 04/2014 scans land after it. *)

val ssh_snapshot_date : X509lite.Date.t
(** 2015-10-29, the Censys SSH scan of Table 4. *)

val alive : device -> X509lite.Date.t -> bool
val cert_at : device -> X509lite.Date.t -> X509lite.Certificate.t option
val key_at : device -> X509lite.Date.t -> Rsa.Keypair.private_key option
val ip_at : device -> X509lite.Date.t -> Ipv4.t

(** {1 Ground truth} — the oracle the pipeline's output is tested
    against; a real measurement study has no such thing. *)

val all_tls_moduli : t -> Bignum.Nat.t array
(** Distinct moduli across every TLS certificate epoch. *)

val factorable_ground_truth : t -> (Bignum.Nat.t -> bool)
(** Whether a modulus shares at least one prime factor with some other
    distinct modulus in the full corpus (TLS and SSH keys combined). *)

val prime_sharing_count : t -> Bignum.Nat.t -> int
(** Number of distinct moduli using the given prime. *)

val factors_of : t -> Bignum.Nat.t -> (Bignum.Nat.t * Bignum.Nat.t) option
(** The two primes of a corpus modulus (TLS or SSH); [None] for
    moduli the world never generated (e.g. corrupted ones). *)
