module Date = X509lite.Date
module Cert = X509lite.Certificate
module N = Bignum.Nat
module K = Rsa.Keypair

type source = Eff | Pq | Ecosystem | Rapid7 | Censys

let source_name = function
  | Eff -> "EFF"
  | Pq -> "P&Q"
  | Ecosystem -> "Ecosystem"
  | Rapid7 -> "Rapid7"
  | Censys -> "Censys"

let all_sources = [ Eff; Pq; Ecosystem; Rapid7; Censys ]

let coverage = function
  | Eff -> 0.85
  | Pq -> 0.90
  | Ecosystem -> 0.97
  | Rapid7 -> 0.94
  | Censys -> 0.99

let monthly y0 m0 y1 m1 =
  let rec go d acc =
    if Date.compare d (Date.of_ymd y1 m1 16) > 0 then List.rev acc
    else go (Date.add_months d 1) (d :: acc)
  in
  go (Date.of_ymd y0 m0 15) []

let schedule = function
  | Eff -> [ Date.of_ymd 2010 7 15; Date.of_ymd 2010 12 15 ]
  | Pq -> [ Date.of_ymd 2011 10 15 ]
  | Ecosystem -> monthly 2012 6 2014 1
  | Rapid7 -> monthly 2013 10 2015 5
  | Censys -> monthly 2015 7 2016 5

let full_schedule =
  List.concat_map (fun s -> List.map (fun d -> (s, d)) (schedule s)) all_sources
  |> List.sort (fun (_, a) (_, b) -> Date.compare a b)

type host_record = {
  source : source;
  date : Date.t;
  ip : Ipv4.t;
  cert : Cert.t;
  is_intermediate : bool;
  page_title : string option;
}

type scan = { scan_source : source; scan_date : Date.t; records : host_record array }

(* Flip one deterministic bit of the modulus, as a storage or
   transmission error would (Section 3.3.5). The signature is left
   untouched, so it no longer verifies — like the paper's certificates
   that sat one bit away from a valid one. *)
let corrupt_modulus key cert =
  let n = cert.Cert.public_key.K.n in
  let bit = Det.int (key ^ "/bitpos") (Stdlib.max 1 (N.num_bits n - 2)) in
  let flipped =
    if N.testbit n bit then N.sub n (N.shift_left N.one bit)
    else N.add n (N.shift_left N.one bit)
  in
  {
    cert with
    Cert.public_key = { cert.Cert.public_key with K.n = flipped };
  }

let run_scan ?(bit_error_rate = 1e-5) world source date =
  let cfg = World.config world in
  let cov = coverage source in
  let sname = source_name source in
  let ds = Date.to_string date in
  let records = ref [] in
  let ca_certificate = World.ca_cert world in
  Array.iter
    (fun d ->
      if World.alive d date then begin
        let seen_key =
          Printf.sprintf "%s/%s/%s/%s/seen" cfg.World.seed sname ds
            d.World.dev_id
        in
        if Det.float seen_key < cov then begin
          match World.cert_at d date with
          | None -> ()
          | Some cert ->
            let ip = World.ip_at d date in
            let cert =
              if World.is_rimon_customer world d then
                Cert.substitute_public_key cert (World.rimon_public world)
              else cert
            in
            let cert =
              if Det.float (seen_key ^ "/biterr") < bit_error_rate then
                corrupt_modulus (seen_key ^ "/biterr") cert
              else cert
            in
            records :=
              {
                source;
                date;
                ip;
                cert;
                is_intermediate = false;
                page_title = d.World.model.Device_model.content_hint;
              }
              :: !records;
            (* Rapid7 reported issuer certificates as bare records at
               the same address, without chaining them. *)
            if
              source = Rapid7
              && not (X509lite.Dn.equal cert.Cert.issuer cert.Cert.subject)
            then
              records :=
                {
                  source;
                  date;
                  ip;
                  cert = ca_certificate;
                  is_intermediate = true;
                  page_title = None;
                }
                :: !records
        end
      end)
    (World.devices world);
  { scan_source = source; scan_date = date; records = Array.of_list !records }

let run_all ?bit_error_rate world =
  List.map
    (fun (s, d) -> run_scan ?bit_error_rate world s d)
    full_schedule

(* ------------------------------------------------------------------ *)
(* Protocol snapshots (Table 4)                                        *)
(* ------------------------------------------------------------------ *)

type protocol = Https | Ssh | Pop3s | Imaps | Smtps

let protocol_name = function
  | Https -> "HTTPS"
  | Ssh -> "SSH"
  | Pop3s -> "POP3S"
  | Imaps -> "IMAPS"
  | Smtps -> "SMTPS"

type protocol_snapshot = {
  protocol : protocol;
  snap_date : Date.t;
  total_hosts : int;
  rsa_hosts : int;
  rsa_moduli : N.t array;
}

(* Mail populations are healthy hosted services: unique keys drawn
   from one stream, sized relative to the device world. *)
let mail_population world protocol frac =
  let cfg = World.config world in
  let base =
    Array.fold_left
      (fun acc d ->
        if d.World.model.Device_model.id = "generic-web" then acc + 1 else acc)
      0 (World.devices world)
  in
  let n = Stdlib.max 1 (int_of_float (Float.of_int base *. frac)) in
  let gen =
    Det.gen_fn
      (Printf.sprintf "%s/mail/%s" cfg.World.seed (protocol_name protocol))
  in
  Array.init n (fun _ ->
      (K.generate ~style:K.Plain ~gen ~bits:cfg.World.modulus_bits ()).K.pub.K.n)

let protocol_snapshots world =
  let https_date = Date.of_ymd 2016 4 11 in
  let mail_date = Date.of_ymd 2016 4 25 in
  let https =
    let moduli = ref [] and total = ref 0 in
    Array.iter
      (fun d ->
        if World.alive d https_date then begin
          incr total;
          match World.cert_at d https_date with
          | Some c -> moduli := c.Cert.public_key.K.n :: !moduli
          | None -> ()
        end)
      (World.devices world);
    {
      protocol = Https;
      snap_date = https_date;
      total_hosts = !total;
      rsa_hosts = List.length !moduli;
      rsa_moduli = Array.of_list !moduli;
    }
  in
  let ssh =
    let moduli = ref [] and total = ref 0 in
    Array.iter
      (fun d ->
        if World.alive d World.ssh_snapshot_date then
          match d.World.ssh_key with
          | Some k ->
            incr total;
            (* A fraction of SSH hosts present non-RSA (DSA/ECDSA)
               keys; they count as hosts but contribute no modulus. *)
            if
              Det.float (d.World.dev_id ^ "/ssh-rsa") < 0.6
            then moduli := k.K.pub.K.n :: !moduli
          | None -> ())
      (World.devices world);
    {
      protocol = Ssh;
      snap_date = World.ssh_snapshot_date;
      total_hosts = !total;
      rsa_hosts = List.length !moduli;
      rsa_moduli = Array.of_list !moduli;
    }
  in
  let mail protocol frac =
    let moduli = mail_population world protocol frac in
    {
      protocol;
      snap_date = mail_date;
      total_hosts = Array.length moduli;
      rsa_hosts = Array.length moduli;
      rsa_moduli = moduli;
    }
  in
  [ https; ssh; mail Pop3s 0.12; mail Imaps 0.12; mail Smtps 0.09 ]
