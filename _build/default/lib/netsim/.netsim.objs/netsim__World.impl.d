lib/netsim/world.ml: Array Batchgcd Bignum Det Device_model Entropy Float Hashtbl Ipv4 List Option Printf Rsa Stdlib Sys X509lite
