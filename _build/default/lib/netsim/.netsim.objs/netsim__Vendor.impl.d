lib/netsim/vendor.ml: List X509lite
