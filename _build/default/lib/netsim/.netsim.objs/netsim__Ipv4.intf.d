lib/netsim/ipv4.mli: Format
