lib/netsim/ipv4.ml: Char Det Format Int Printf Stdlib String
