lib/netsim/det.ml: Char Float Hashes String
