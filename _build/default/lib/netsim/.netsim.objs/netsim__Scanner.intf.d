lib/netsim/scanner.mli: Bignum Ipv4 World X509lite
