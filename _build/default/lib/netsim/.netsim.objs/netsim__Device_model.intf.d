lib/netsim/device_model.mli: Entropy Rsa X509lite
