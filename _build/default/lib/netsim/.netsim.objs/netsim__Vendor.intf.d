lib/netsim/vendor.mli: X509lite
