lib/netsim/det.mli:
