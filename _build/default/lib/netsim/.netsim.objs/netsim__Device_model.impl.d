lib/netsim/device_model.ml: Array Det Entropy Ipv4 List Printf Rsa X509lite
