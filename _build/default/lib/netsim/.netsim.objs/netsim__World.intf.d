lib/netsim/world.mli: Bignum Device_model Ipv4 Rsa X509lite
