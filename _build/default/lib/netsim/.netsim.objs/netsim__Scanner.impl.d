lib/netsim/scanner.ml: Array Bignum Det Device_model Float Ipv4 List Printf Rsa Stdlib World X509lite
