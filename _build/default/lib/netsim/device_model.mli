(** Product-line models: identity templates, RNG flaw parameters and
    population dynamics for every device family the paper tracks.

    Population targets are calibrated to the paper's figures at
    [scale = 1.0], with vulnerable populations kept large enough to
    have measurable shapes (roughly 1/10 of the paper's per-scan
    vulnerable counts, 1/100 of per-vendor totals, 1/1000 of the
    whole-internet background — see DESIGN.md). *)

type eol = { announce : X509lite.Date.t; end_of_sale : X509lite.Date.t }

type dynamics = {
  intro : X509lite.Date.t;  (** first deployments *)
  ramp_months : int;  (** months from intro to peak population *)
  peak : int;  (** peak online devices at [scale = 1.0] *)
  decline_start : X509lite.Date.t option;
  decline_monthly : float;  (** fractional monthly decline once started *)
  churn_monthly : float;  (** devices replaced by new units per month *)
  regen_monthly : float;  (** devices regenerating their certificate *)
  ip_churn_monthly : float;  (** devices moving to a new IP address *)
  heartbleed_shock : float;
      (** fraction of the population going offline at the 04/2014 scan *)
  eol : eol option;  (** end-of-life record, for Figure 7 *)
}

type keygen =
  | Profile_keygen of {
      weak_profile : Entropy.Device_rng.profile;
      style : Rsa.Keypair.prime_style;
    }  (** boot-entropy-hole key generation *)
  | Ibm_keygen  (** two primes from the 9-prime IBM pool *)

type t = {
  id : string;  (** stable identifier, used in deterministic paths *)
  vendor : string;  (** a {!Vendor.t} name *)
  label : string;  (** display label, e.g. "Cisco RV220W" *)
  identity : seed:string -> X509lite.Dn.t * string list;
      (** subject DN and subjectAltNames for a device; [seed] is the
          device's deterministic path *)
  keygen : keygen;
  weak_frac : float;
      (** fraction of units running the flawed firmware at all *)
  vuln_start : X509lite.Date.t option;
      (** units deployed before this are NOT vulnerable (the
          newly-vulnerable-since-2012 vendors of Section 4.4) *)
  fix_date : X509lite.Date.t option;
      (** units deployed on/after this date are fixed *)
  serves_ssh : bool;  (** also exposes an SSH host key from the same RNG *)
  content_hint : string option;
      (** text on the device's HTTPS landing page that identifies the
          product when the certificate subject does not (the McAfee
          SnapGear case of Section 3.3.1) *)
  dynamics : dynamics;
}

val is_weak_at : t -> X509lite.Date.t -> bool
(** Whether a unit deployed on the given date runs flawed firmware
    (before considering [weak_frac] sampling). *)

val catalog : t list
(** Every modeled product line, including the healthy background
    population ([generic-web]) and Siemens' IBM-derived devices. *)

val find : string -> t
(** Lookup by [id]. @raise Not_found. *)

val cisco_eol_models : t list
(** The five small-business lines of Figure 7, in figure order. *)
