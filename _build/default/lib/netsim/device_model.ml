module Date = X509lite.Date
module Dn = X509lite.Dn
module Rng = Entropy.Device_rng

type eol = { announce : Date.t; end_of_sale : Date.t }

type dynamics = {
  intro : Date.t;
  ramp_months : int;
  peak : int;
  decline_start : Date.t option;
  decline_monthly : float;
  churn_monthly : float;
  regen_monthly : float;
  ip_churn_monthly : float;
  heartbleed_shock : float;
  eol : eol option;
}

type keygen =
  | Profile_keygen of {
      weak_profile : Rng.profile;
      style : Rsa.Keypair.prime_style;
    }
  | Ibm_keygen

type t = {
  id : string;
  vendor : string;
  label : string;
  identity : seed:string -> Dn.t * string list;
  keygen : keygen;
  weak_frac : float;
  vuln_start : Date.t option;
  fix_date : Date.t option;
  serves_ssh : bool;
  content_hint : string option;
  dynamics : dynamics;
}

let d = Date.of_ymd

let is_weak_at m date =
  (match m.vuln_start with None -> true | Some s -> Date.(s <= date))
  && match m.fix_date with None -> true | Some f -> Date.(date < f)

let dyn ?(decline_start = None) ?(decline_monthly = 0.) ?(churn = 0.01)
    ?(regen = 0.002) ?(ip_churn = 0.01) ?(shock = 0.) ?eol ~intro ~ramp ~peak
    () =
  {
    intro;
    ramp_months = ramp;
    peak;
    decline_start;
    decline_monthly;
    churn_monthly = churn;
    regen_monthly = regen;
    ip_churn_monthly = ip_churn;
    heartbleed_shock = shock;
    eol;
  }

let profile ~pool ~bits ~style =
  Profile_keygen
    { weak_profile = Rng.vulnerable_shared_prime pool ~bits; style }

(* --------------- identity templates --------------- *)

let fixed_dn dn ~seed:_ = (dn, [])
let fixed ?cn ?o ?ou () = fixed_dn (Dn.make ?cn ?o ?ou ())

let fritzbox_identity ~seed =
  (* Most Fritz!Box certificates carry only an IP-octet CN; the rest
     identify themselves via myfritz.net names and fritz.box SANs. *)
  if Det.bool (seed ^ "/fritz-style") ~p:0.55 then
    (Dn.make ~cn:(Ipv4.to_string (Ipv4.of_key (seed ^ "/cn-ip"))) (), [])
  else begin
    let sub = Printf.sprintf "r%05d" (Det.int (seed ^ "/sub") 100000) in
    ( Dn.make ~cn:(sub ^ ".myfritz.net") (),
      [ "fritz.box"; "www.fritz.box"; "myfritz.box"; "fritz.fonwlan.box" ] )
  end

let ibm_identity ~seed =
  (* IBM RSA-II cards carry customer-organization subjects that do not
     name IBM at all. *)
  let org = [| "Acme Corp"; "Contoso"; "Initech"; "Globex"; "Umbrella IT" |] in
  let cn = Printf.sprintf "asm%04d" (Det.int (seed ^ "/asm") 10000) in
  (Dn.make ~cn ~o:org.(Det.int (seed ^ "/org") (Array.length org)) (), [])

let huawei_identity ~seed =
  let ou =
    if Det.bool (seed ^ "/india") ~p:0.84 then "Huawei India BU"
    else "Huawei Enterprise BU"
  in
  (Dn.make ~cn:"huawei" ~o:"Huawei Technologies Co., Ltd." ~ou (), [])

let generic_identity ~seed =
  let cn =
    Printf.sprintf "host%06d.example-hosting.net" (Det.int (seed ^ "/host") 1000000)
  in
  (Dn.make ~cn (), [])

(* --------------- the catalogue --------------- *)

let cisco_line ~id ~model ~intro ~ramp ~peak ~eol_announce ~eol_sale
    ?(weak = 0.18) () =
  {
    id;
    vendor = "Cisco";
    label = "Cisco " ^ model;
    identity = fixed ~cn:"router" ~o:"Cisco Systems, Inc." ~ou:model ();
    keygen = profile ~pool:id ~bits:6 ~style:Rsa.Keypair.Openssl;
    weak_frac = weak;
    vuln_start = None;
    fix_date = Some (d 2015 1 1);
    serves_ssh = false;
    content_hint = None;
    dynamics =
      dyn ~intro ~ramp ~peak
        ~decline_start:(Some eol_announce)
        ~decline_monthly:0.02
        ~eol:{ announce = eol_announce; end_of_sale = eol_sale }
        ();
  }

let catalog =
  [
    (* The healthy bulk of the HTTPS internet: web servers with real
       entropy. Dominates totals, contributes no weak keys. *)
    {
      id = "generic-web";
      vendor = "Generic";
      label = "Generic web servers";
      identity = generic_identity;
      keygen =
        Profile_keygen
          { weak_profile = Rng.healthy "generic-web"; style = Rsa.Keypair.Openssl };
      weak_frac = 0.;
      vuln_start = None;
      fix_date = None;
      serves_ssh = true;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2005 1 1) ~ramp:136 ~peak:26000 ~churn:0.02
          ~regen:0.003 ();
    };
    (* Figure 3: Juniper SRX-branch security devices. *)
    {
      id = "juniper-srx";
      vendor = "Juniper";
      label = "Juniper SRX";
      identity = fixed ~cn:"system generated" ();
      keygen = profile ~pool:"juniper-srx" ~bits:6 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.12;
      vuln_start = None;
      fix_date = Some (d 2014 1 1);
      serves_ssh = true;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2008 1 1) ~ramp:76 ~peak:800 ~shock:0.37
          ~decline_start:(Some (d 2014 5 1)) ~decline_monthly:0.005
          ~regen:0.004 ();
    };
    (* Figure 4: Innominate mGuard industrial security appliances. *)
    {
      id = "innominate-mguard";
      vendor = "Innominate";
      label = "Innominate mGuard";
      identity = fixed ~cn:"mGuard" ~o:"Innominate Security Technologies" ();
      keygen = profile ~pool:"innominate-mguard" ~bits:4 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.5;
      vuln_start = None;
      fix_date = Some (d 2012 7 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2009 1 1) ~ramp:84 ~peak:60 ~churn:0.003 ~regen:0.001 ();
    };
    (* Figure 5: IBM RSA-II / BladeCenter management modules. *)
    {
      id = "ibm-rsa2";
      vendor = "IBM";
      label = "IBM RSA-II/BladeCenter";
      identity = ibm_identity;
      keygen = Ibm_keygen;
      weak_frac = 1.0;
      vuln_start = None;
      fix_date = Some (d 2012 10 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2005 1 1) ~ramp:24 ~peak:100
          ~decline_start:(Some (d 2010 1 1)) ~decline_monthly:0.015
          ~shock:0.45 ~churn:0.002 ();
    };
    (* Siemens building-automation interfaces embedding the IBM card
       (the shared-modulus overlap of Section 3.3.2)... *)
    {
      id = "siemens-ibm";
      vendor = "Siemens";
      label = "Siemens Building Automation (IBM module)";
      identity = fixed ~cn:"BACnet" ~o:"Siemens Building Automation" ();
      keygen = Ibm_keygen;
      weak_frac = 1.0;
      vuln_start = None;
      fix_date = None;
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2013 2 1) ~ramp:12 ~peak:25 ~churn:0.002 ();
    };
    (* ...and the rest of the Siemens population with its own RNG. *)
    {
      id = "siemens-bau";
      vendor = "Siemens";
      label = "Siemens Building Automation";
      identity = fixed ~cn:"talon" ~o:"Siemens Building Automation" ();
      keygen = profile ~pool:"siemens-bau" ~bits:5 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.12;
      vuln_start = None;
      fix_date = Some (d 2014 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2010 6 1) ~ramp:48 ~peak:150 ();
    };
    (* Figures 6 and 7: Cisco small-business lines with staggered
       end-of-life dates. The RV082 line never generated weak keys. *)
    cisco_line ~id:"cisco-rv082" ~model:"RV082" ~intro:(d 2006 1 1) ~ramp:60
      ~peak:500 ~eol_announce:(d 2013 3 1) ~eol_sale:(d 2013 9 1) ~weak:0. ();
    cisco_line ~id:"cisco-rv120w" ~model:"RV120W" ~intro:(d 2010 3 1) ~ramp:36
      ~peak:350 ~eol_announce:(d 2014 3 1) ~eol_sale:(d 2014 9 1) ();
    cisco_line ~id:"cisco-rv220w" ~model:"RV220W" ~intro:(d 2010 9 1) ~ramp:36
      ~peak:400 ~eol_announce:(d 2014 9 1) ~eol_sale:(d 2015 3 1) ();
    cisco_line ~id:"cisco-rv180" ~model:"RV180/180W" ~intro:(d 2011 6 1)
      ~ramp:30 ~peak:300 ~eol_announce:(d 2015 3 1) ~eol_sale:(d 2015 10 1) ();
    cisco_line ~id:"cisco-sa520" ~model:"SA520/540" ~intro:(d 2009 6 1)
      ~ramp:36 ~peak:250 ~eol_announce:(d 2012 9 1) ~eol_sale:(d 2013 3 1) ();
    (* Figure 8: HP iLO out-of-band management cards. *)
    {
      id = "hp-ilo";
      vendor = "HP";
      label = "HP iLO";
      identity = fixed ~cn:"ILOUSE705XJ2Q" ~o:"Hewlett-Packard Development" ();
      keygen = profile ~pool:"hp-ilo" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.05;
      vuln_start = None;
      fix_date = Some (d 2012 9 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2006 1 1) ~ramp:72 ~peak:1000
          ~decline_start:(Some (d 2012 6 1)) ~decline_monthly:0.01
          ~shock:0.12 ();
    };
    (* Figure 9 vendors (no response to notification). *)
    {
      id = "thomson-tg";
      vendor = "Technicolor";
      label = "Thomson";
      identity = fixed ~cn:"Thomson TG585" ~o:"THOMSON" ();
      keygen = profile ~pool:"thomson-tg" ~bits:4 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.015;
      vuln_start = None;
      fix_date = Some (d 2012 6 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2007 1 1) ~ramp:48 ~peak:2000
          ~decline_start:(Some (d 2012 1 1)) ~decline_monthly:0.012 ();
    };
    {
      id = "fritzbox";
      vendor = "AVM";
      label = "Fritz!Box";
      identity = fritzbox_identity;
      keygen = profile ~pool:"fritzbox" ~bits:6 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.06;
      vuln_start = None;
      fix_date = Some (d 2014 3 1);
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2008 1 1) ~ramp:72 ~peak:2500 ();
    };
    {
      id = "linksys-wrv";
      vendor = "Linksys";
      label = "Linksys";
      identity = fixed ~cn:"Linksys WRV200" ~o:"Cisco-Linksys, LLC" ();
      keygen = profile ~pool:"linksys-wrv" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.035;
      vuln_start = None;
      fix_date = Some (d 2012 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2006 1 1) ~ramp:48 ~peak:1200
          ~decline_start:(Some (d 2012 6 1)) ~decline_monthly:0.02 ();
    };
    {
      id = "fortinet-fgt";
      vendor = "Fortinet";
      label = "Fortinet FortiGate";
      identity = fixed ~cn:"FGT60C" ~o:"Fortinet" ();
      keygen = profile ~pool:"fortinet-fgt" ~bits:4 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.015;
      vuln_start = None;
      fix_date = Some (d 2012 6 1);
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2009 1 1) ~ramp:90 ~peak:1500 ();
    };
    {
      id = "zyxel-zywall";
      vendor = "ZyXEL";
      label = "ZyXEL ZyWALL";
      identity = fixed ~cn:"ZyWALL USG" ~o:"ZyXEL Communications" ();
      keygen = profile ~pool:"zyxel-zywall" ~bits:6 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.10;
      vuln_start = None;
      fix_date = Some (d 2013 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2008 1 1) ~ramp:48 ~peak:800
          ~decline_start:(Some (d 2013 1 1)) ~decline_monthly:0.015 ();
    };
    (* Dell imaging devices are rebadged Fuji Xerox hardware and share
       Xerox's prime pool (Section 3.3.2). *)
    {
      id = "dell-imaging";
      vendor = "Dell";
      label = "Dell (Imaging Group)";
      identity = fixed ~cn:"dell-printer" ~o:"Dell Inc." ~ou:"Dell Imaging Group" ();
      keygen = profile ~pool:"xerox-imaging" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.05;
      vuln_start = None;
      fix_date = Some (d 2013 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2008 1 1) ~ramp:48 ~peak:400
          ~decline_start:(Some (d 2013 6 1)) ~decline_monthly:0.01 ();
    };
    {
      id = "kronos-intouch";
      vendor = "Kronos";
      label = "Kronos";
      identity = fixed ~cn:"kronos4500" ~o:"Kronos Incorporated" ();
      keygen = profile ~pool:"kronos-intouch" ~bits:5 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.2;
      vuln_start = None;
      fix_date = Some (d 2013 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2008 1 1) ~ramp:48 ~peak:200
          ~decline_start:(Some (d 2014 1 1)) ~decline_monthly:0.01 ();
    };
    {
      id = "xerox-workcentre";
      vendor = "Xerox";
      label = "Xerox WorkCentre";
      identity = fixed ~cn:"WorkCentre 7345" ~o:"Xerox Corporation" ();
      keygen = profile ~pool:"xerox-imaging" ~bits:5 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.2;
      vuln_start = None;
      fix_date = Some (d 2013 1 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2008 1 1) ~ramp:48 ~peak:200
          ~decline_start:(Some (d 2014 1 1)) ~decline_monthly:0.01 ();
    };
    (* McAfee SnapGear: vendorless default subjects; identified via
       served content and shared primes in the paper. *)
    {
      id = "mcafee-snapgear";
      vendor = "McAfee";
      label = "McAfee SnapGear";
      identity =
        fixed ~cn:"Default Common Name" ~o:"Default Organization"
          ~ou:"Default Unit" ();
      keygen = profile ~pool:"mcafee-snapgear" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.25;
      vuln_start = None;
      fix_date = Some (d 2012 9 1);
      serves_ssh = false;
      content_hint = Some "SnapGear Management Console";
      dynamics =
        dyn ~intro:(d 2007 1 1) ~ramp:36 ~peak:150
          ~decline_start:(Some (d 2012 1 1)) ~decline_monthly:0.015 ();
    };
    {
      id = "tplink-tlr";
      vendor = "TP-Link";
      label = "TP-Link";
      identity = fixed ~cn:"TL-R600VPN" ~o:"TP-LINK" ();
      keygen = profile ~pool:"tplink-tlr" ~bits:7 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.8;
      vuln_start = None;
      fix_date = Some (d 2013 6 1);
      serves_ssh = false;
      content_hint = None;
      dynamics =
        dyn ~intro:(d 2009 1 1) ~ramp:48 ~peak:300
          ~decline_start:(Some (d 2013 6 1)) ~decline_monthly:0.02 ();
    };
    (* Figure 10: newly vulnerable since 2012. *)
    {
      id = "adtran-netvanta";
      vendor = "ADTRAN";
      label = "ADTRAN NetVanta";
      identity = fixed ~cn:"NetVanta 3448" ~o:"ADTRAN, Inc." ();
      keygen = profile ~pool:"adtran-netvanta" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.35;
      vuln_start = Some (d 2015 1 1);
      fix_date = None;
      serves_ssh = true;
      content_hint = None;
      dynamics = dyn ~intro:(d 2009 1 1) ~ramp:84 ~peak:600 ();
    };
    {
      id = "dlink-dsr";
      vendor = "D-Link";
      label = "D-Link DSR";
      identity = fixed ~cn:"DSR-500N" ~o:"D-Link Corporation" ();
      keygen = profile ~pool:"dlink-dsr" ~bits:6 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.12;
      vuln_start = Some (d 2012 9 1);
      fix_date = None;
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2010 1 1) ~ramp:72 ~peak:1500 ();
    };
    {
      id = "huawei-bu";
      vendor = "Huawei";
      label = "Huawei";
      identity = huawei_identity;
      keygen = profile ~pool:"huawei-bu" ~bits:5 ~style:Rsa.Keypair.Plain;
      weak_frac = 0.5;
      vuln_start = Some (d 2015 4 1);
      fix_date = None;
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2013 1 1) ~ramp:36 ~peak:500 ~churn:0.03 ();
    };
    {
      id = "sangfor-m";
      vendor = "Sangfor";
      label = "Sangfor";
      identity = fixed ~cn:"sangfor-m5100" ~o:"SANGFOR" ();
      keygen = profile ~pool:"sangfor-m" ~bits:4 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.15;
      vuln_start = Some (d 2014 6 1);
      fix_date = None;
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2012 1 1) ~ramp:48 ~peak:300 ();
    };
    {
      id = "schmid-watson";
      vendor = "Schmid Telecom";
      label = "Schmid Telecom";
      identity =
        fixed ~cn:"watson-sz" ~o:"Schmid Telecom India Pvt Ltd" ();
      keygen = profile ~pool:"schmid-watson" ~bits:5 ~style:Rsa.Keypair.Openssl;
      weak_frac = 0.6;
      vuln_start = Some (d 2013 1 1);
      fix_date = None;
      serves_ssh = false;
      content_hint = None;
      dynamics = dyn ~intro:(d 2011 1 1) ~ramp:36 ~peak:150 ();
    };
  ]

let find id = List.find (fun m -> m.id = id) catalog

let cisco_eol_models =
  List.map find
    [ "cisco-rv082"; "cisco-rv120w"; "cisco-rv220w"; "cisco-rv180";
      "cisco-sa520" ]
