type response =
  | Public_advisory
  | Private_response
  | Auto_response
  | No_response
  | Not_notified

type t = {
  name : string;
  response : response;
  advisory_date : X509lite.Date.t option;
  notified_2012 : bool;
  ssh_only : bool;
}

let response_to_string = function
  | Public_advisory -> "Public Advisory"
  | Private_response -> "Private Response"
  | Auto_response -> "Auto-Response"
  | No_response -> "No Response"
  | Not_notified -> "Not Notified"

let d = X509lite.Date.of_ymd

let mk ?(ssh_only = false) ?advisory name response =
  { name; response; advisory_date = advisory; notified_2012 = true; ssh_only }

(* Table 2 reconstruction. The column layout is partially garbled in
   the source text; placements are pinned by Section 4 where it is
   explicit: five public advisories (Juniper, Innominate, IBM, plus
   Intel and Tropos for SSH keys); Cisco and HP responded privately;
   the ten Figure-9 vendors (incl. Dell, McAfee, AVM/Fritz!Box,
   Technicolor/Thomson) and D-Link never responded. The remaining
   vendors are distributed to match "about half acknowledged
   receipt". Advisory dates from Section 4.1. *)
let table2 =
  [
    (* Public Advisory *)
    mk "IBM" Public_advisory ~advisory:(d 2012 9 15);
    mk "Juniper" Public_advisory ~advisory:(d 2012 4 15);
    mk "Innominate" Public_advisory ~advisory:(d 2012 6 15);
    mk "Intel" Public_advisory ~advisory:(d 2012 7 15) ~ssh_only:true;
    mk "Tropos" Public_advisory ~advisory:(d 2012 8 15) ~ssh_only:true;
    (* Private Response *)
    mk "Cisco" Private_response;
    mk "HP" Private_response;
    mk "Emerson" Private_response;
    mk "Hillstone Networks" Private_response;
    mk "Motorola" Private_response;
    mk "Kyocera" Private_response;
    (* Auto-Response *)
    mk "Pogoplug" Auto_response;
    mk "NTI" Auto_response;
    mk "Haivision" Auto_response;
    mk "AudioCodes" Auto_response;
    mk "Ruckus" Auto_response;
    mk "Simton" Auto_response;
    mk "JDSU" Auto_response;
    mk "Pronto" Auto_response;
    (* No Response *)
    mk "Brocade" No_response;
    mk "ZyXEL" No_response;
    mk "Sentry" No_response;
    mk "TP-Link" No_response;
    mk "Fortinet" No_response;
    mk "2-Wire" No_response;
    mk "Sinetica" No_response;
    mk "D-Link" No_response;
    mk "Xerox" No_response;
    mk "SkyStream" No_response;
    mk "Kronos" No_response;
    mk "BelAir" No_response;
    mk "Linksys" No_response;
    mk "MRV" No_response;
    mk "McAfee" No_response;
    mk "Dell" No_response;
    mk "AVM" No_response;
    mk "Technicolor" No_response;
  ]

let not_notified name =
  {
    name;
    response = Not_notified;
    advisory_date = None;
    notified_2012 = false;
    ssh_only = false;
  }

(* Section 4.4: vendors with newly vulnerable product versions since
   2012. D-Link is already in Table 2 and is not repeated here. ADTRAN
   was notified in 2012 (about SSH DSA) and responded then. *)
let newly_vulnerable_2016 =
  [
    { (mk "ADTRAN" Private_response ~ssh_only:true) with ssh_only = true };
    {
      (not_notified "Huawei") with
      advisory_date = Some (d 2016 8 15) (* CVE-2016-6670 *);
    };
    not_notified "Sangfor";
    not_notified "Schmid Telecom";
  ]

(* Vendors that appear in figures or fingerprint tables but not in the
   Table-2 notification list. *)
let additional = [ not_notified "Siemens"; not_notified "Generic" ]

let all = table2 @ newly_vulnerable_2016 @ additional

let find name = List.find (fun v -> v.name = name) all
let by_response r = List.filter (fun v -> v.response = r) all
