(** Deterministic, order-independent randomness for the simulator.

    Every stochastic choice in the world model is keyed by a string
    path ("<seed>/<model>/<device-id>/<purpose>"), so results do not
    depend on evaluation order or domain scheduling, and a world built
    twice from the same seed is bit-identical. *)

val bytes : string -> int -> string
(** [bytes key n]: [n] pseudo-random bytes for this key. *)

val int : string -> int -> int
(** [int key bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : string -> float
(** Uniform in [\[0, 1)]. *)

val bool : string -> p:float -> bool
(** [true] with probability [p]. *)

val gen_fn : string -> int -> string
(** A stateful generator seeded by the key: successive calls continue
    one DRBG stream (for prime generation). Each call to [gen_fn]
    creates a fresh stream. *)
