(** The vendor catalogue: the 37 vendors notified about weak TLS/SSH
    RSA keys in 2012 (paper Table 2), their disclosure responses, and
    the vendors found newly vulnerable in 2016 (Section 4.4). *)

type response =
  | Public_advisory
  | Private_response
  | Auto_response
  | No_response
  | Not_notified  (** not part of the 2012 disclosure (e.g. Huawei) *)

type t = {
  name : string;
  response : response;
  advisory_date : X509lite.Date.t option;
      (** when a public security advisory was released, if ever *)
  notified_2012 : bool;
  ssh_only : bool;
      (** vulnerability concerned SSH host keys rather than TLS *)
}

val response_to_string : response -> string

val table2 : t list
(** The 37 vendors of Table 2, in the paper's column order. *)

val newly_vulnerable_2016 : t list
(** ADTRAN, D-Link, Huawei, Sangfor, Schmid Telecom (Section 4.4). *)

val all : t list

val find : string -> t
(** @raise Not_found for unknown vendor names. *)

val by_response : response -> t list
