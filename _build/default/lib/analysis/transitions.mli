(** Per-IP vulnerability transitions (paper Section 4.1, Juniper):
    across the monthly representative scans, track each IP that ever
    served a vendor's certificate and count moves between serving a
    vulnerable key and a non-vulnerable key. *)

type summary = {
  ips_ever : int;  (** IPs that ever served this vendor's certificate *)
  ips_vulnerable_ever : int;
  to_ok : int;  (** IPs with exactly one vulnerable -> ok move *)
  to_vulnerable : int;  (** IPs with exactly one ok -> vulnerable move *)
  flapping : int;  (** IPs with more than one transition *)
}

val for_vendor :
  label:(Netsim.Scanner.host_record -> string option) ->
  vulnerable:(Bignum.Nat.t -> bool) ->
  Netsim.Scanner.scan list -> string -> summary
