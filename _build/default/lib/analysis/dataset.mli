(** Corpus assembly (paper Sections 3.1 and 3.2 preprocessing):
    certificate-chain exclusion, representative-scan selection, and
    dataset statistics. *)

val exclude_intermediates :
  Netsim.Scanner.scan -> Netsim.Scanner.scan
(** Reconstruct chains per IP by matching issuer and subject names and
    keep only the lowest certificate — undoing the Rapid7 artifact of
    reporting unchained intermediates. *)

val representative_monthly :
  Netsim.Scanner.scan list -> Netsim.Scanner.scan list
(** One scan per calendar month, chain-excluded, choosing the highest-
    fidelity source available that month (Censys > Rapid7 > Ecosystem
    > P&Q > EFF), chronological. *)

type stats = {
  host_records : int;
  distinct_certs : int;
  distinct_moduli : int;
}

val stats_of_scans : Netsim.Scanner.scan list -> stats

val distinct_moduli : Netsim.Scanner.scan list -> Bignum.Nat.t array
(** Distinct RSA moduli over every record of the given scans, in first-
    seen order. *)

val distinct_certs :
  Netsim.Scanner.scan list -> X509lite.Certificate.t array
(** Distinct certificates (by fingerprint), first-seen order. *)

val page_title_index :
  Netsim.Scanner.scan list -> (string, string) Hashtbl.t
(** cert fingerprint -> a page title observed with it, for content-
    based fingerprinting. *)
