module Sc = Netsim.Scanner
module Date = X509lite.Date

type summary = {
  ips_ever : int;
  ips_vulnerable_ever : int;
  to_ok : int;
  to_vulnerable : int;
  flapping : int;
}

let for_vendor ~label ~vulnerable scans vendor_name =
  (* ip -> chronological vulnerability observations *)
  let per_ip : (Netsim.Ipv4.t, bool list) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          if (not r.Sc.is_intermediate) && label r = Some vendor_name then begin
            let v =
              vulnerable r.Sc.cert.X509lite.Certificate.public_key.Rsa.Keypair.n
            in
            Hashtbl.replace per_ip r.Sc.ip
              (v :: Option.value ~default:[] (Hashtbl.find_opt per_ip r.Sc.ip))
          end)
        s.Sc.records)
    (List.sort (fun a b -> Date.compare a.Sc.scan_date b.Sc.scan_date) scans);
  let ips_ever = ref 0
  and vuln_ever = ref 0
  and to_ok = ref 0
  and to_vuln = ref 0
  and flapping = ref 0 in
  Hashtbl.iter
    (fun _ip observations ->
      let obs = List.rev observations in
      incr ips_ever;
      if List.exists Fun.id obs then incr vuln_ever;
      (* Collapse runs, then count state changes. *)
      let rec changes prev acc = function
        | [] -> acc
        | v :: rest ->
          if Some v = prev then changes prev acc rest
          else changes (Some v)
              (match prev with None -> acc | Some p -> (p, v) :: acc)
              rest
      in
      match List.rev (changes None [] obs) with
      | [] -> ()
      | [ (true, false) ] -> incr to_ok
      | [ (false, true) ] -> incr to_vuln
      | _ :: _ :: _ -> incr flapping
      | [ _ ] -> ())
    per_ip;
  {
    ips_ever = !ips_ever;
    ips_vulnerable_ever = !vuln_ever;
    to_ok = !to_ok;
    to_vulnerable = !to_vuln;
    flapping = !flapping;
  }
