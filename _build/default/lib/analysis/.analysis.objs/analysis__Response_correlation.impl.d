lib/analysis/response_correlation.ml: Array Float List Netsim Timeseries
