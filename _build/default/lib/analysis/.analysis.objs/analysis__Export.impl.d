lib/analysis/export.ml: Array Batchgcd Bignum Buffer List Netsim Printf Rsa String Timeseries X509lite
