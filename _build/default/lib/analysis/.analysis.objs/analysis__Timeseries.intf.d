lib/analysis/timeseries.mli: Bignum Netsim X509lite
