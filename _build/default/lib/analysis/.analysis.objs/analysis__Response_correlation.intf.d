lib/analysis/response_correlation.mli: Bignum Netsim
