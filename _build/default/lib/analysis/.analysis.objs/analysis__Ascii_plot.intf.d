lib/analysis/ascii_plot.mli: Timeseries X509lite
