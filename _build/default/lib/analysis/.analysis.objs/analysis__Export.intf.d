lib/analysis/export.mli: Batchgcd Bignum Netsim Timeseries
