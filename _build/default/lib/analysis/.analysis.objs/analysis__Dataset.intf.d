lib/analysis/dataset.mli: Bignum Hashtbl Netsim X509lite
