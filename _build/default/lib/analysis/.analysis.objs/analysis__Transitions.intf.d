lib/analysis/transitions.mli: Bignum Netsim
