lib/analysis/transitions.ml: Array Fun Hashtbl List Netsim Option Rsa X509lite
