lib/analysis/ascii_plot.ml: Array Buffer List Printf Stdlib String Timeseries X509lite
