lib/analysis/timeseries.ml: Array Bignum List Netsim Option Rsa Stdlib X509lite
