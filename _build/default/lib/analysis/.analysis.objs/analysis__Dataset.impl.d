lib/analysis/dataset.ml: Array Bignum Hashtbl List Netsim Option Rsa X509lite
