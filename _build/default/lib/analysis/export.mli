(** Plain-text serialization of scan corpora and analysis results, so
    downstream tooling (or a rerun of [weakkeys factor]) can consume a
    study without rebuilding the world. *)

val host_records_csv : Netsim.Scanner.scan list -> string
(** One row per host record:
    [source,date,ip,cert_fingerprint,modulus_hex,intermediate]. *)

val moduli_lines : Bignum.Nat.t array -> string
(** One hex modulus per line — the input format of [weakkeys factor]. *)

val series_csv : Timeseries.series -> string
(** [date,source,total,vulnerable] rows. *)

val findings_csv : Batchgcd.Batch_gcd.finding list -> string
(** [modulus_hex,divisor_hex] rows. *)

val parse_moduli : string -> Bignum.Nat.t array
(** Inverse of {!moduli_lines}; skips blank and [#] comment lines.
    @raise Invalid_argument on malformed numbers. *)
