(** Longitudinal series: per-scan totals and vulnerable counts, whole-
    internet or per vendor — the data behind Figures 1, 3-6 and 8-10. *)

type point = {
  date : X509lite.Date.t;
  source : Netsim.Scanner.source;
  total : int;  (** fingerprinted hosts in this scan *)
  vulnerable : int;  (** of which served a factorable modulus *)
}

type series = { name : string; points : point list }

val overall :
  vulnerable:(Bignum.Nat.t -> bool) -> Netsim.Scanner.scan list -> series
(** Total hosts and vulnerable hosts per scan (Figure 1). *)

val vendor :
  label:(Netsim.Scanner.host_record -> string option) ->
  vulnerable:(Bignum.Nat.t -> bool) ->
  Netsim.Scanner.scan list -> string -> series
(** Counts restricted to records labeled with the given vendor. *)

val model :
  model_label:(Netsim.Scanner.host_record -> string option) ->
  vulnerable:(Bignum.Nat.t -> bool) ->
  Netsim.Scanner.scan list -> string -> series
(** Counts restricted to a specific product line (Figure 7). *)

val peak_total : series -> int
val peak_vulnerable : series -> int

val value_at : series -> X509lite.Date.t -> point option
(** The point of the scan closest to the date (within 45 days). *)

val largest_vulnerable_drop : series -> (X509lite.Date.t * int) option
(** The scan-over-scan decrease with the largest absolute size:
    [(date of the lower scan, size of the drop)]. The paper's
    Heartbleed observation is that this lands on 04-05/2014. *)
