module Sc = Netsim.Scanner
module N = Bignum.Nat
module Cert = X509lite.Certificate

let host_records_csv scans =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "source,date,ip,cert_fingerprint,modulus_hex,intermediate\n";
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%s,%s,%s,%b\n"
               (Sc.source_name r.Sc.source)
               (X509lite.Date.to_string r.Sc.date)
               (Netsim.Ipv4.to_string r.Sc.ip)
               (Cert.fingerprint r.Sc.cert)
               (N.to_hex r.Sc.cert.Cert.public_key.Rsa.Keypair.n)
               r.Sc.is_intermediate))
        s.Sc.records)
    scans;
  Buffer.contents buf

let moduli_lines moduli =
  let buf = Buffer.create 65536 in
  Array.iter (fun m -> Buffer.add_string buf (N.to_hex m ^ "\n")) moduli;
  Buffer.contents buf

let series_csv (s : Timeseries.series) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "date,source,total,vulnerable\n";
  List.iter
    (fun (p : Timeseries.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d\n"
           (X509lite.Date.to_string p.Timeseries.date)
           (Sc.source_name p.Timeseries.source)
           p.Timeseries.total p.Timeseries.vulnerable))
    s.Timeseries.points;
  Buffer.contents buf

let findings_csv findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "modulus_hex,divisor_hex\n";
  List.iter
    (fun (f : Batchgcd.Batch_gcd.finding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s\n"
           (N.to_hex f.Batchgcd.Batch_gcd.modulus)
           (N.to_hex f.Batchgcd.Batch_gcd.divisor)))
    findings;
  Buffer.contents buf

let parse_moduli text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else Some (N.of_string ("0x" ^ line)))
  |> Array.of_list
