(** Terminal rendering of time series, in the two-panel style of the
    paper's figures (total hosts above, vulnerable hosts below). *)

val sparkline : int list -> string
(** One-line rendering using the eight block glyphs; empty input gives
    the empty string. *)

val panel :
  ?height:int -> ?width:int -> title:string ->
  (X509lite.Date.t * int) list -> string
(** A boxed chart: y-axis labels, one column group per point. *)

val two_panel :
  ?width:int -> title:string -> Timeseries.series -> string
(** The figure layout: totals on top, vulnerable below, month labels
    on the shared x-axis, with the 04/2014 Heartbleed scan marked. *)
