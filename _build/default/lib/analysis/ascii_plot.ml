module Date = X509lite.Date

let blocks = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let hi = List.fold_left Stdlib.max 1 values in
    String.concat ""
      (List.map
         (fun v ->
           let idx = v * 8 / hi in
           blocks.(Stdlib.max 0 (Stdlib.min 8 idx)))
         values)

(* Downsample or pad a point list to [width] columns. *)
let resample width points =
  let n = List.length points in
  if n = 0 then []
  else begin
    let arr = Array.of_list points in
    List.init (Stdlib.min width n) (fun c ->
        arr.(c * n / Stdlib.min width n))
  end

let panel ?(height = 8) ?(width = 60) ~title points =
  let cols = resample width points in
  let hi = List.fold_left (fun acc (_, v) -> Stdlib.max acc v) 1 cols in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s (max %d)\n" title hi);
  for row = height downto 1 do
    let threshold = hi * row / height in
    Buffer.add_string buf (Printf.sprintf "%8d |" threshold);
    List.iter
      (fun (_, v) -> Buffer.add_string buf (if v >= threshold then "#" else " "))
      cols;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 10 ' ');
  Buffer.add_string buf (String.make (List.length cols) '-');
  Buffer.add_char buf '\n';
  (match (cols, List.rev cols) with
  | (d0, _) :: _, (d1, _) :: _ ->
    Buffer.add_string buf
      (Printf.sprintf "%10s%s .. %s\n" "" (Date.month_label d0)
         (Date.month_label d1))
  | _ -> ());
  Buffer.contents buf

let two_panel ?(width = 60) ~title (s : Timeseries.series) =
  let totals =
    List.map (fun p -> (p.Timeseries.date, p.Timeseries.total)) s.Timeseries.points
  in
  let vulns =
    List.map
      (fun p -> (p.Timeseries.date, p.Timeseries.vulnerable))
      s.Timeseries.points
  in
  let heartbleed =
    match
      List.find_opt
        (fun p ->
          let y, m, _ = Date.to_ymd p.Timeseries.date in
          y = 2014 && m = 4)
        s.Timeseries.points
    with
    | Some p ->
      Printf.sprintf "Heartbleed scan 04/2014: total=%d vulnerable=%d\n"
        p.Timeseries.total p.Timeseries.vulnerable
    | None -> ""
  in
  Printf.sprintf "== %s ==\n%s%s%s" title
    (panel ~width ~title:"Total hosts" totals)
    (panel ~width ~title:"Vulnerable" vulns)
    heartbleed
