(** Section 5.2: does the vendor's disclosure response predict end-user
    outcomes? The paper finds no correlation; this module quantifies
    the claim on the simulated corpus. *)

type outcome = {
  vendor : string;
  response : Netsim.Vendor.response;
  peak_vulnerable : int;
  final_vulnerable : int;
  decline_fraction : float;
      (** (peak - final) / peak; 0 when never vulnerable *)
}

val outcomes :
  label:(Netsim.Scanner.host_record -> string option) ->
  vulnerable:(Bignum.Nat.t -> bool) ->
  Netsim.Scanner.scan list -> string list -> outcome list
(** Per-vendor peak and final vulnerable populations over the scans. *)

val by_category :
  outcome list -> (Netsim.Vendor.response * float * int) list
(** Mean decline fraction and vendor count per response category,
    strongest response first. *)

val spearman : outcome list -> float
(** Spearman rank correlation between response strength (public
    advisory > private > auto > none) and decline fraction, over
    vendors that were ever vulnerable. NaN with fewer than 3 points. *)
