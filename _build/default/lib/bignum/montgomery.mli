(** Montgomery modular arithmetic (CIOS, after Koç-Acar-Kaliski).

    Exponentiation modulo an odd modulus without per-step division —
    the workhorse under Miller-Rabin, and an ablation point against
    the division-based {!Nat.pow_mod} (bench [ablation-powmod]). *)

type ctx

val create : Nat.t -> ctx option
(** [create n] precomputes the Montgomery context for an odd modulus
    [n >= 3]; [None] when [n] is even or too small. *)

val modulus : ctx -> Nat.t

val to_mont : ctx -> Nat.t -> Nat.t
(** Map into the Montgomery domain ([x * R mod n]). The argument is
    reduced mod [n] first. *)

val from_mont : ctx -> Nat.t -> Nat.t

val mul : ctx -> Nat.t -> Nat.t -> Nat.t
(** Montgomery product of two domain values ([x * y * R^-1 mod n]). *)

val pow_mod : ctx -> Nat.t -> Nat.t -> Nat.t
(** [pow_mod ctx b e = b^e mod n], inputs and output in the normal
    domain. [pow_mod ctx b zero = one] (for [n > 1]). *)

val pow_mod_nat : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** Drop-in for {!Nat.pow_mod}: Montgomery when the modulus is odd,
    falling back to the division-based ladder otherwise. *)
