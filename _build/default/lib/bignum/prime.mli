(** Primality testing and prime generation over {!Nat}. *)

val small_primes : int array
(** The first 2048 primes, as used by OpenSSL's trial-division sieve
    (the basis of the Mironov OpenSSL prime fingerprint). *)

val first_n_primes : int -> int array
(** [first_n_primes n] returns the first [n] primes. *)

val is_small_prime : int -> bool
(** Trial-division primality for native ints (exact). *)

val trial_division : Nat.t -> int option
(** [trial_division n] is [Some p] for the smallest prime [p] from
    {!small_primes} dividing [n], when one exists and [n <> p]. *)

val is_probable_prime : ?gen:(int -> string) -> ?rounds:int -> Nat.t -> bool
(** Miller-Rabin. Always runs the first 12 prime bases (deterministic
    below 3.3e24); when [gen] is supplied, adds [rounds] (default 16)
    random bases drawn from it. *)

val generate : gen:(int -> string) -> bits:int -> Nat.t
(** Uniform random probable prime with exactly [bits] bits (top bit
    forced) using the plain rejection method: draw odd candidates until
    one passes {!is_probable_prime}. This is the [not-OpenSSL]
    generation style in the paper's fingerprint taxonomy. *)

val generate_openssl_style : gen:(int -> string) -> bits:int -> Nat.t
(** OpenSSL-style generation: additionally reject any candidate [p]
    where [p - 1] is divisible by one of the first 2048 primes. Primes
    produced here satisfy the Mironov fingerprint predicate. *)

val satisfies_openssl_fingerprint : Nat.t -> bool
(** [true] when [p - 1] is divisible by none of the first 2048 primes
    (other than trivially); the predicate tested per-prime-factor by
    the fingerprinting stage. *)

val is_safe_prime : ?gen:(int -> string) -> Nat.t -> bool
(** [p] prime with [(p-1)/2] also prime. *)

val next_prime : Nat.t -> Nat.t
(** Smallest probable prime strictly greater than the argument. *)
