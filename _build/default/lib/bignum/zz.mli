(** Signed arbitrary-precision integers, layered over {!Nat}.

    Used by the extended-GCD / CRT helpers and anywhere a subtraction
    can go negative. Zero is canonically non-negative. *)

type t

val zero : t
val one : t
val minus_one : t

val of_nat : Nat.t -> t
val to_nat : t -> Nat.t option
(** [None] when negative. *)

val to_nat_exn : t -> Nat.t
val of_int : int -> t
val to_int : t -> int option
val of_string : string -> t
val to_string : t -> string

val neg : t -> t
val abs : t -> Nat.t
val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: the remainder is always in [\[0, |b|)]. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem_nat : t -> Nat.t -> Nat.t
(** [erem_nat a m]: the representative of [a] modulo [m] in [\[0, m)]. *)

val egcd : Nat.t -> Nat.t -> Nat.t * t * t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd a b]. *)

val crt : (Nat.t * Nat.t) list -> Nat.t option
(** [crt \[(r1, m1); (r2, m2); ...\]] solves the simultaneous
    congruences for pairwise-coprime moduli; [None] when moduli are
    not coprime and the residues conflict. *)

val pp : Format.formatter -> t -> unit
