(* Signed integers as a sign bit over Nat magnitudes. The invariant is
   that zero always carries [Pos], so structural equality of the
   canonical form matches numeric equality. *)

type sign = Pos | Neg
type t = { sign : sign; mag : Nat.t }

let make sign mag = if Nat.is_zero mag then { sign = Pos; mag } else { sign; mag }
let zero = { sign = Pos; mag = Nat.zero }
let one = { sign = Pos; mag = Nat.one }
let minus_one = { sign = Neg; mag = Nat.one }
let of_nat mag = { sign = Pos; mag }
let to_nat t = match t.sign with Pos -> Some t.mag | Neg -> None

let to_nat_exn t =
  match to_nat t with
  | Some n -> n
  | None -> failwith "Zz.to_nat_exn: negative"

let of_int i =
  if i >= 0 then of_nat (Nat.of_int i) else make Neg (Nat.of_int (-i))

let to_int t =
  match (t.sign, Nat.to_int t.mag) with
  | Pos, v -> v
  | Neg, Some v -> Some (-v)
  | Neg, None -> None

let of_string s =
  if String.length s > 0 && s.[0] = '-' then
    make Neg (Nat.of_string (String.sub s 1 (String.length s - 1)))
  else of_nat (Nat.of_string s)

let to_string t =
  match t.sign with
  | Pos -> Nat.to_string t.mag
  | Neg -> "-" ^ Nat.to_string t.mag

let neg t = make (match t.sign with Pos -> Neg | Neg -> Pos) t.mag
let abs t = t.mag
let sign t = if Nat.is_zero t.mag then 0 else match t.sign with Pos -> 1 | Neg -> -1

let compare a b =
  match (a.sign, b.sign) with
  | Pos, Neg -> 1
  | Neg, Pos -> -1
  | Pos, Pos -> Nat.compare a.mag b.mag
  | Neg, Neg -> Nat.compare b.mag a.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else if Nat.compare a.mag b.mag >= 0 then make a.sign (Nat.sub a.mag b.mag)
  else make b.sign (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b =
  make (if a.sign = b.sign then Pos else Neg) (Nat.mul a.mag b.mag)

(* Euclidean division: remainder in [0, |b|). *)
let divmod a b =
  if Nat.is_zero b.mag then raise Division_by_zero
  else begin
    let q0, r0 = Nat.divmod a.mag b.mag in
    match (a.sign, b.sign) with
    | Pos, Pos -> (of_nat q0, of_nat r0)
    | Pos, Neg -> (make Neg q0, of_nat r0)
    | Neg, _ when Nat.is_zero r0 ->
      ((match b.sign with Pos -> make Neg q0 | Neg -> of_nat q0), zero)
    | Neg, Pos -> (make Neg (Nat.add q0 Nat.one), of_nat (Nat.sub b.mag r0))
    | Neg, Neg -> (of_nat (Nat.add q0 Nat.one), of_nat (Nat.sub b.mag r0))
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem_nat a m =
  let r = rem a (of_nat m) in
  r.mag

let egcd a b =
  (* Iterative extended Euclid over signed coefficients. *)
  let old_r = ref (of_nat a) and r = ref (of_nat b) in
  let old_s = ref one and s = ref zero in
  let old_t = ref zero and t = ref one in
  while sign !r <> 0 do
    let q, rr = divmod !old_r !r in
    old_r := !r;
    r := rr;
    let ns = sub !old_s (mul q !s) in
    old_s := !s;
    s := ns;
    let nt = sub !old_t (mul q !t) in
    old_t := !t;
    t := nt
  done;
  (to_nat_exn !old_r, !old_s, !old_t)

let crt pairs =
  let merge acc (r2, m2) =
    match acc with
    | None -> None
    | Some (r1, m1) ->
      let g, x, _ = egcd m1 m2 in
      let d =
        let a = of_nat r2 and b = of_nat r1 in
        sub a b
      in
      let dg, drem = Nat.divmod (abs d) g in
      if not (Nat.is_zero drem) then None
      else begin
        (* r = r1 + m1 * ((d / g) * x mod (m2 / g)) *)
        let m2g = Nat.div m2 g in
        let factor =
          let signed = mul (make (if sign d < 0 then Neg else Pos) dg) x in
          erem_nat signed m2g
        in
        let m = Nat.mul m1 m2g in
        let r = Nat.rem (Nat.add r1 (Nat.mul m1 factor)) m in
        Some (r, m)
      end
  in
  match pairs with
  | [] -> Some Nat.zero
  | (r, m) :: rest -> (
    match List.fold_left merge (Some (Nat.rem r m, m)) rest with
    | Some (r, _) -> Some r
    | None -> None)

let pp fmt t = Format.pp_print_string fmt (to_string t)
