(* Primality testing and prime generation.

   The 2048-entry small-prime table mirrors the sieve OpenSSL applies
   during key generation; its reach (primes up to 17863) is what the
   Mironov fingerprint keys on. *)

let sieve_up_to limit =
  let is_comp = Bytes.make (limit + 1) '\000' in
  let primes = ref [] in
  let count = ref 0 in
  for i = 2 to limit do
    if Bytes.get is_comp i = '\000' then begin
      primes := i :: !primes;
      incr count;
      let j = ref (i * i) in
      while !j <= limit do
        Bytes.set is_comp !j '\001';
        j := !j + i
      done
    end
  done;
  Array.of_list (List.rev !primes)

(* The 2048th prime is 17863; sieve a little past it. *)
let all_small_primes = lazy (sieve_up_to 20000)

let first_n_primes n =
  let all = Lazy.force all_small_primes in
  if n <= Array.length all then Array.sub all 0 n
  else begin
    (* Grow the sieve geometrically until enough primes are found. *)
    let rec grow limit =
      let s = sieve_up_to limit in
      if Array.length s >= n then Array.sub s 0 n else grow (limit * 2)
    in
    grow 40000
  end

let small_primes = Array.sub (Lazy.force all_small_primes) 0 2048

let is_small_prime n =
  if n < 2 then false
  else begin
    let rec go i =
      if i * i > n then true else if n mod i = 0 then false else go (i + 2)
    in
    if n = 2 then true else if n mod 2 = 0 then false else go 3
  end

let trial_division n =
  let found = ref None in
  (try
     Array.iter
       (fun p ->
         if Nat.mod_int n p = 0 && not (Nat.equal n (Nat.of_int p)) then begin
           found := Some p;
           raise Exit
         end)
       small_primes
   with Exit -> ());
  !found

(* Miller-Rabin witness test: [n] odd, [n > 3], [n - 1 = d * 2^s].
   Exponentiation goes through a shared Montgomery context — the
   modulus is odd by construction. *)
let witness_composite ctx n d s a =
  let x = Montgomery.pow_mod ctx a d in
  let n1 = Nat.sub n Nat.one in
  if Nat.is_one x || Nat.equal x n1 then false
  else begin
    let rec squares i x =
      if i >= s - 1 then true
      else
        let x = Nat.rem (Nat.sqr x) n in
        if Nat.equal x n1 then false else squares (i + 1) x
    in
    squares 0 x
  end

let fixed_bases = [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 |]

let is_probable_prime ?gen ?(rounds = 16) n =
  match Nat.to_int n with
  | Some i when i < 2 -> false
  | Some i when i <= 37 -> is_small_prime i
  | _ ->
    if Nat.is_even n then false
    else begin
      let n1 = Nat.sub n Nat.one in
      let s = ref 0 and d = ref n1 in
      while Nat.is_even !d do
        d := Nat.shift_right !d 1;
        incr s
      done;
      let d = !d and s = !s in
      let ctx =
        match Montgomery.create n with
        | Some ctx -> ctx
        | None -> assert false (* n odd and > 37 here *)
      in
      let composite = ref false in
      (try
         Array.iter
           (fun a ->
             (* Skip bases that equal or exceed n (tiny n handled above). *)
             let a = Nat.of_int a in
             if Nat.compare a n1 < 0 && witness_composite ctx n d s a then begin
               composite := true;
               raise Exit
             end)
           fixed_bases
       with Exit -> ());
      if !composite then false
      else begin
        match gen with
        | None -> true
        | Some gen ->
          let rec extra k =
            if k = 0 then true
            else begin
              let a =
                Nat.add (Nat.random_below gen (Nat.sub n1 Nat.two)) Nat.two
              in
              if witness_composite ctx n d s a then false else extra (k - 1)
            end
          in
          extra rounds
      end
    end

let candidate_of_bits gen bits =
  if bits < 2 then invalid_arg "Prime.generate: need at least 2 bits"
  else begin
    let x = Nat.random_bits gen bits in
    (* Force the top two bits (so a product of two such primes has
       exactly twice the bit length, as OpenSSL does for RSA) and the
       bottom bit (odd). *)
    let set x i = if Nat.testbit x i then x else Nat.add x (Nat.shift_left Nat.one i) in
    let x = set x (bits - 1) in
    let x = if bits >= 3 then set x (bits - 2) else x in
    if Nat.is_even x then Nat.add x Nat.one else x
  end

let quick_composite n =
  (* Cheap small-prime filter before Miller-Rabin. *)
  match trial_division n with Some _ -> true | None -> false

(* Incremental sieve search, as OpenSSL's probable_prime does it: draw
   a random odd start, compute its residue modulo each sieve prime
   once, then walk the candidate by +2 updating residues with native
   arithmetic. [fingerprint] additionally requires that no sieve prime
   other than 2 divides candidate - 1 (the Mironov property).
   [max_steps] bounds the walk so the exact-bit-size guarantee is not
   eroded; on exhaustion a fresh start is drawn. *)
let sieve_search ~gen ~bits ~fingerprint =
  let nprimes = Array.length small_primes in
  let rec from_start () =
    let c0 = candidate_of_bits gen bits in
    let residues =
      Array.map (fun p -> Nat.mod_int c0 p) small_primes
    in
    let tiny = Nat.num_bits c0 <= 16 in
    let c0_int = if tiny then Nat.to_int_exn c0 else 0 in
    let max_steps = 1 lsl 14 in
    let rec step k =
      if k >= max_steps then from_start ()
      else begin
        let ok = ref true in
        let i = ref 1 (* small_primes.(0) = 2; candidates are odd *) in
        while !ok && !i < nprimes do
          let p = small_primes.(!i) in
          let r = (residues.(!i) + (2 * k)) mod p in
          if r = 0 && not (tiny && c0_int + (2 * k) = p) then ok := false
          else if fingerprint && r = 1 then ok := false;
          incr i
        done;
        if not !ok then step (k + 1)
        else begin
          let c = Nat.add_int c0 (2 * k) in
          if Nat.num_bits c <> bits then from_start ()
          else if is_probable_prime c then c
          else step (k + 1)
        end
      end
    in
    step 0
  in
  from_start ()

let generate ~gen ~bits =
  if bits <= 16 then begin
    (* Tiny sizes: rejection sampling is simpler and exact. *)
    let rec draw () =
      let c = candidate_of_bits gen bits in
      if is_probable_prime c then c else draw ()
    in
    draw ()
  end
  else sieve_search ~gen ~bits ~fingerprint:false

let satisfies_openssl_fingerprint p =
  (* OpenSSL's probable_prime() rejects candidates with
     p mod primes[i] <= 1 for i >= 1, i.e. it skips 2 (p - 1 is always
     even) and tests the odd primes of its 2048-entry table. *)
  let p1 = Nat.sub p Nat.one in
  let ok = ref true in
  (try
     Array.iter
       (fun q ->
         if q <> 2 && Nat.mod_int p1 q = 0 then begin
           ok := false;
           raise Exit
         end)
       small_primes
   with Exit -> ());
  !ok

let generate_openssl_style ~gen ~bits =
  if bits <= 16 then begin
    let rec draw () =
      let c = candidate_of_bits gen bits in
      if satisfies_openssl_fingerprint c && is_probable_prime c then c
      else draw ()
    in
    draw ()
  end
  else sieve_search ~gen ~bits ~fingerprint:true

let is_safe_prime ?gen p =
  is_probable_prime ?gen p
  && is_probable_prime ?gen (Nat.shift_right (Nat.sub p Nat.one) 1)

let next_prime n =
  let start =
    if Nat.compare n Nat.two < 0 then Nat.two
    else if Nat.is_even n then Nat.add n Nat.one
    else Nat.add n Nat.two
  in
  if Nat.equal start Nat.two then Nat.two
  else begin
    let rec go c =
      if (not (quick_composite c)) && is_probable_prime c then c
      else go (Nat.add c Nat.two)
    in
    go start
  end
