lib/bignum/montgomery.ml: Array Nat Stdlib
