lib/bignum/prime.ml: Array Bytes Lazy List Montgomery Nat
