lib/bignum/zz.ml: Format List Nat String
