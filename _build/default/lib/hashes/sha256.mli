(** SHA-256 (FIPS 180-4), implemented from scratch for this sealed
    container. Used for certificate fingerprints and as the primitive
    under {!Hmac} and {!Drbg}. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte raw digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot raw 32-byte digest. *)

val hexdigest : string -> string
(** One-shot digest as 64 lowercase hex characters. *)

val to_hex : string -> string
(** Hex-encode arbitrary bytes. *)

val of_hex : string -> string
(** Decode lowercase/uppercase hex. @raise Invalid_argument on bad input. *)
