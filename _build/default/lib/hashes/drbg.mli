(** HMAC-DRBG (after NIST SP 800-90A, SHA-256 instance).

    The deterministic generator behind every simulated device RNG: a
    device whose entropy pool holds [b] bits of real entropy is modeled
    by seeding this DRBG with one of [2^b] possible seeds, which is
    exactly the failure mode the paper's weak keys stem from. *)

type t

val create : ?personalization:string -> seed:string -> unit -> t
(** Instantiate from seed material. Deterministic: equal seeds and
    personalization strings yield equal output streams. *)

val generate : t -> int -> string
(** [generate t n] produces the next [n] bytes of output. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val gen_fn : t -> int -> string
(** The generator in the [int -> string] shape expected by
    {!Bignum.Nat.random_bits}; identical to {!generate}. *)

val copy : t -> t
(** Snapshot of the current state (for divergence experiments). *)
