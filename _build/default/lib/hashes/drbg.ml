(* HMAC-DRBG, SHA-256 instance. State is (K, V); update and generate
   follow SP 800-90A section 10.1.2 without the reseed counter (our
   simulated devices never generate anywhere near the 2^48 limit). *)

type t = { mutable key : string; mutable v : string }

let update t provided =
  t.key <- Hmac.sha256 ~key:t.key (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.sha256 ~key:t.key t.v;
  if String.length provided > 0 then begin
    t.key <- Hmac.sha256 ~key:t.key (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.sha256 ~key:t.key t.v
  end

let create ?(personalization = "") ~seed () =
  let t = { key = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t (seed ^ personalization);
  t

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.sha256 ~key:t.key t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let reseed t entropy = update t entropy
let gen_fn t n = generate t n
let copy t = { key = t.key; v = t.v }
