lib/hashes/drbg.mli:
