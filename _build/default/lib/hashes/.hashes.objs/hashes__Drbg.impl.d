lib/hashes/drbg.ml: Buffer Hmac String
