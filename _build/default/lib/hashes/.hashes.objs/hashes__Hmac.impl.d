lib/hashes/hmac.ml: Char Sha256 String
