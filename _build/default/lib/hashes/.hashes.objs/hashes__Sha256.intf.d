lib/hashes/sha256.mli:
