lib/hashes/hmac.mli:
