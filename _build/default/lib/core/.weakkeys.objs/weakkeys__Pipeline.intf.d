lib/core/pipeline.mli: Batchgcd Bignum Fingerprint Hashtbl Netsim
