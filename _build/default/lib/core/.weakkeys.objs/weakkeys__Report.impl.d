lib/core/report.ml: Analysis Array Batchgcd Bignum Buffer Fingerprint Float Hashtbl List Netsim Pipeline Printf Stdlib String X509lite
