lib/core/pipeline.ml: Analysis Array Batchgcd Bignum Fingerprint Hashtbl List Netsim Option Printf Rsa X509lite
