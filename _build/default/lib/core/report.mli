(** Render every table and figure of the paper from a pipeline run.
    Each function returns the finished text block; {!full_report}
    concatenates them in paper order. *)

val table1 : Pipeline.t -> string
(** Dataset summary: host records, distinct certificates, distinct
    moduli, vulnerable counts. *)

val table2 : unit -> string
(** The 37 notified vendors by response category. *)

val table3 : Pipeline.t -> string
(** Earliest (EFF 07/2010) vs latest (Censys) scan summary. *)

val table4 : Pipeline.t -> string
(** Per-protocol hosts / RSA hosts / vulnerable hosts. *)

val table5 : Pipeline.t -> string
(** OpenSSL-fingerprint classification per vendor. *)

val figure1 : Pipeline.t -> string
(** Total and vulnerable hosts over time, all sources. *)

val figure2 : Pipeline.t -> string
(** The k-subset batch GCD: structure, work accounting and an
    equivalence check against the single-tree algorithm. *)

val figure3 : Pipeline.t -> string
(** Juniper series, with advisory and Heartbleed annotations and the
    Section 4.1 transition counts. *)

val figure4 : Pipeline.t -> string
(** Innominate. *)

val figure5 : Pipeline.t -> string
(** IBM nine-prime devices. *)

val figure6 : Pipeline.t -> string
(** Cisco small-business lines, aggregate. *)

val figure7 : Pipeline.t -> string
(** Cisco end-of-life timeline vs per-model populations. *)

val figure8 : Pipeline.t -> string
(** HP iLO. *)

val figure9 : Pipeline.t -> string
(** The ten no-response vendors. *)

val figure10 : Pipeline.t -> string
(** Newly vulnerable vendors since 2012. *)

val rimon_section : Pipeline.t -> string
(** Detected ISP key substitution (Section 3.3.3). *)

val bit_error_section : Pipeline.t -> string
(** Non-well-formed moduli (Section 3.3.5). *)

val overlap_section : Pipeline.t -> string
(** Cross-vendor shared-prime overlaps (Dell/Xerox, IBM/Siemens). *)

val response_correlation_section : Pipeline.t -> string
(** Section 5.2: response category vs vulnerable-population decline,
    with a Spearman rank correlation. *)

val full_report : Pipeline.t -> string
