(* Batch GCD tests: product/remainder tree invariants, equivalence of
   naive / single-tree / k-subset implementations, planted-factor
   recovery, domain-pool behaviour. *)

module N = Bignum.Nat
module PT = Batchgcd.Product_tree
module RT = Batchgcd.Remainder_tree
module BG = Batchgcd.Batch_gcd
module Pool = Parallel.Pool

let nat = Alcotest.testable N.pp N.equal

let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

(* A corpus with planted structure: [n_clean] moduli with unique
   primes, plus [shared] moduli all sharing one prime. *)
let corpus ?(bits = 96) ~seed ~n_clean ~n_shared () =
  let gen = mk_gen seed in
  let prime () = Bignum.Prime.generate ~gen ~bits:(bits / 2) in
  let clean = Array.init n_clean (fun _ -> N.mul (prime ()) (prime ())) in
  let p_shared = prime () in
  let shared = Array.init n_shared (fun _ -> N.mul p_shared (prime ())) in
  (Array.append clean shared, p_shared)

(* ---------------- Product tree ---------------- *)

let test_product_tree_root () =
  let inputs = Array.map N.of_int [| 3; 5; 7; 11; 13 |] in
  let t = PT.build inputs in
  Alcotest.check nat "root = product" (N.of_int (3 * 5 * 7 * 11 * 13))
    (PT.root t);
  Alcotest.(check int) "depth for 5 leaves" 4 (PT.depth t);
  Alcotest.(check bool) "leaves preserved" true
    (Array.for_all2 N.equal inputs (PT.leaves t))

let test_product_tree_level_invariant () =
  (* Every level's product equals the root. *)
  let gen = mk_gen 3 in
  let inputs = Array.init 13 (fun _ -> N.add (N.random_bits gen 64) N.one) in
  let t = PT.build inputs in
  for k = 0 to PT.depth t - 1 do
    let prod = Array.fold_left N.mul N.one (PT.level t k) in
    Alcotest.check nat (Printf.sprintf "level %d" k) (PT.root t) prod
  done

let test_product_tree_singleton () =
  let t = PT.build [| N.of_int 42 |] in
  Alcotest.(check int) "depth 1" 1 (PT.depth t);
  Alcotest.check nat "root is input" (N.of_int 42) (PT.root t)

let test_product_tree_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Product_tree.build: empty")
    (fun () -> ignore (PT.build [||]));
  Alcotest.check_raises "zero" (Invalid_argument "Product_tree.build: zero input")
    (fun () -> ignore (PT.build [| N.one; N.zero |]))

(* ---------------- Remainder tree ---------------- *)

let test_remainder_tree_matches_direct () =
  let gen = mk_gen 4 in
  let inputs = Array.init 11 (fun _ -> N.add (N.random_bits gen 80) N.two) in
  let t = PT.build inputs in
  let v = N.random_bits gen 900 in
  let rs = RT.remainders t v in
  let rs2 = RT.remainders_mod_square t v in
  Array.iteri
    (fun i m ->
      Alcotest.check nat (Printf.sprintf "plain %d" i) (N.rem v m) rs.(i);
      Alcotest.check nat
        (Printf.sprintf "squared %d" i)
        (N.rem v (N.sqr m))
        rs2.(i))
    inputs

(* Precomp (Barrett) descents against the plain division path, with
   the barrett cutoff lowered so even 96-bit leaves get reciprocals. *)
let test_precomp_descent_matches_plain () =
  let with_barrett b f =
    let b0 = !N.barrett_threshold and r0 = !N.recip_threshold in
    N.barrett_threshold := b;
    N.recip_threshold := 2;
    Fun.protect
      ~finally:(fun () ->
        N.barrett_threshold := b0;
        N.recip_threshold := r0)
      f
  in
  let gen = mk_gen 12 in
  let inputs = Array.init 40 (fun _ -> N.add (N.random_bits gen 96) N.two) in
  let v = N.random_bits gen 5000 in
  List.iter
    (fun barrett ->
      with_barrett barrett (fun () ->
          let t = PT.build inputs in
          let plain_sq = RT.remainders_mod_square ~precomp:false t v in
          let pre_sq = RT.remainders_mod_square t v in
          let plain = RT.remainders ~precomp:false t v in
          let pre = RT.remainders t v in
          Array.iteri
            (fun i m ->
              Alcotest.check nat
                (Printf.sprintf "mod-square barrett>=%d leaf %d" barrett i)
                (N.rem v (N.sqr m)) pre_sq.(i);
              Alcotest.check nat
                (Printf.sprintf "plain-vs-pre %d" i)
                plain.(i) pre.(i);
              Alcotest.check nat
                (Printf.sprintf "sq plain-vs-pre %d" i)
                plain_sq.(i) pre_sq.(i))
            inputs;
          (* second descent reuses the cached precomps *)
          let pre_sq2 = RT.remainders_mod_square t v in
          Array.iteri
            (fun i r -> Alcotest.check nat "cached descent" r pre_sq2.(i))
            pre_sq))
    [ 2; 1000 ]

(* The level_parallel width gate must look at the widest node: a level
   led by a narrow odd-one-out still classifies as parallel, and the
   parallel and sequential builds agree. *)
let test_mixed_width_level () =
  Alcotest.(check int) "max_width" 7
    (PT.max_width [| N.one; N.shift_left N.one 200 |]);
  Alcotest.(check int) "max_width empty-ish" 0 (PT.max_width [| N.one; N.one |] - 1);
  Alcotest.(check bool) "parallel when widest is wide" true
    (PT.level_parallel ~nodes:8 ~width:(PT.max_width [| N.one; N.shift_left N.one 200 |]));
  let gen = mk_gen 14 in
  let inputs =
    Array.init 24 (fun i ->
        (* first input tiny, the rest wide *)
        if i = 0 then N.of_int 3
        else N.add (N.random_bits gen 300) N.two)
  in
  let tp = PT.build ~pool:(Pool.get ~domains:4 ()) inputs in
  let ts = PT.build ~pool:(Pool.get ~domains:1 ()) inputs in
  Alcotest.check nat "par root = seq root" (PT.root ts) (PT.root tp);
  let v = N.random_bits gen 4000 in
  let rp = RT.remainders_mod_square ~pool:(Pool.get ~domains:4 ()) tp v in
  let rs = RT.remainders_mod_square ~pool:(Pool.get ~domains:1 ()) ts v in
  Array.iteri
    (fun i r -> Alcotest.check nat (Printf.sprintf "descent %d" i) r rp.(i))
    rs

(* Eager precomputation must be idempotent and leave descents
   unchanged (the distributed driver calls it before its fan-out). *)
let test_precompute_eager () =
  let gen = mk_gen 16 in
  let inputs = Array.init 16 (fun _ -> N.add (N.random_bits gen 96) N.two) in
  let t = PT.build inputs in
  let v = N.random_bits gen 3000 in
  let before = RT.remainders_mod_square t v in
  PT.precompute ~squares:true t;
  PT.precompute ~squares:true t;
  PT.precompute ~squares:false t;
  let after = RT.remainders_mod_square t v in
  Array.iteri
    (fun i r -> Alcotest.check nat (Printf.sprintf "leaf %d" i) r after.(i))
    before

(* ---------------- Batch GCD ---------------- *)

let test_planted_factor_recovered () =
  let moduli, p_shared = corpus ~seed:5 ~n_clean:10 ~n_shared:3 () in
  let findings = BG.factor_batch moduli in
  Alcotest.(check int) "three moduli flagged" 3 (List.length findings);
  List.iter
    (fun f ->
      Alcotest.(check bool) "flagged index in shared range" true
        (f.BG.index >= 10);
      Alcotest.check nat "divisor is the planted prime" p_shared f.BG.divisor)
    findings

let test_clean_corpus_no_findings () =
  let moduli, _ = corpus ~seed:6 ~n_clean:12 ~n_shared:0 () in
  Alcotest.(check int) "no findings" 0 (List.length (BG.factor_batch moduli));
  Alcotest.(check int) "naive agrees" 0 (List.length (BG.naive moduli))

let test_all_implementations_agree () =
  let moduli, _ = corpus ~seed:7 ~n_clean:9 ~n_shared:4 () in
  let batch = BG.factor_batch moduli in
  Alcotest.(check bool) "naive = batch" true
    (BG.findings_equal (BG.naive moduli) batch);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "subsets k=%d = batch" k)
        true
        (BG.findings_equal (BG.factor_subsets ~k moduli) batch))
    [ 1; 2; 3; 5; 13; 100 ]

let test_duplicate_moduli () =
  let gen = mk_gen 8 in
  let p = Bignum.Prime.generate ~gen ~bits:48 in
  let q = Bignum.Prime.generate ~gen ~bits:48 in
  let r = Bignum.Prime.generate ~gen ~bits:48 in
  let m = N.mul p q in
  let other = N.mul r (Bignum.Prime.generate ~gen ~bits:48) in
  let findings = BG.factor_batch [| m; m; other |] in
  Alcotest.(check int) "both copies flagged" 2 (List.length findings);
  List.iter
    (fun f ->
      Alcotest.check nat "divisor is whole modulus" m f.BG.divisor)
    findings;
  Alcotest.(check int) "dedup removes copy" 2
    (Array.length (BG.dedup [| m; m; other |]))

let test_ibm_clique_fully_shared () =
  (* Every prime of an IBM modulus is shared with other pool moduli,
     so batch GCD reports the full modulus as divisor. *)
  let moduli = Array.of_list (Rsa.Ibm.all_moduli ~bits:96) in
  let findings = BG.factor_batch moduli in
  Alcotest.(check int) "all 36 flagged" 36 (List.length findings);
  List.iter
    (fun f -> Alcotest.check nat "fully factored" f.BG.modulus f.BG.divisor)
    findings

let test_pairwise_hits () =
  let moduli, p_shared = corpus ~seed:9 ~n_clean:3 ~n_shared:3 () in
  let hits = BG.naive_pairwise_hits moduli in
  Alcotest.(check int) "3 shared moduli = 3 pairs" 3 (List.length hits);
  List.iter
    (fun (i, j, g) ->
      Alcotest.(check bool) "ordered" true (i < j);
      Alcotest.check nat "gcd is planted prime" p_shared g)
    hits

let test_two_disjoint_groups () =
  (* Two independent shared primes must not cross-contaminate. *)
  let gen = mk_gen 10 in
  let prime () = Bignum.Prime.generate ~gen ~bits:48 in
  let pa = prime () and pb = prime () in
  let group a = Array.init 2 (fun _ -> N.mul a (prime ())) in
  let moduli = Array.append (group pa) (group pb) in
  let findings = BG.factor_batch moduli in
  Alcotest.(check int) "all four flagged" 4 (List.length findings);
  List.iter
    (fun f ->
      let expected = if f.BG.index < 2 then pa else pb in
      Alcotest.check nat "right prime per group" expected f.BG.divisor)
    findings

let test_empty_and_single () =
  Alcotest.(check int) "empty" 0 (List.length (BG.factor_batch [||]));
  Alcotest.(check int) "single" 0
    (List.length (BG.factor_batch [| N.of_int 35 |]));
  Alcotest.(check int) "subsets empty" 0
    (List.length (BG.factor_subsets ~k:4 [||]))

(* ---------------- Domain pool ---------------- *)

let test_pool_sizes_and_reuse () =
  Alcotest.(check bool) "default_domains >= 1" true (Pool.default_domains () >= 1);
  let p = Pool.get ~domains:4 () in
  Alcotest.(check int) "requested size" 4 (Pool.size p);
  Alcotest.(check int) "clamped to 1" 1 (Pool.size (Pool.get ~domains:0 ()));
  (* lint: allow phys-equal — the pool (and its spawned domains) must
     literally be the same instance across calls *)
  Alcotest.(check bool) "memoized by size" true (p == Pool.get ~domains:4 ())

let test_parallel_map_order () =
  let jobs = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> i * i) jobs in
  Alcotest.(check (array int)) "order preserved (parallel)" expected
    (Pool.map ~domains:4 (fun i -> i * i) jobs);
  Alcotest.(check (array int)) "order preserved (domains=1)" expected
    (Pool.map ~domains:1 (fun i -> i * i) jobs);
  Alcotest.(check (array int)) "init matches" expected
    (Pool.init ~domains:4 100 (fun i -> i * i));
  Alcotest.(check (array int)) "empty input" [||]
    (Pool.map ~domains:4 (fun i -> i * i) [||])

let test_parallel_for_chunked () =
  List.iter
    (fun (domains, chunk) ->
      let hits = Array.make 200 0 in
      Pool.parallel_for ~domains ?chunk 0 200 (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "every index exactly once (domains=%d)" domains)
        true
        (Array.for_all (fun c -> c = 1) hits))
    [ (1, None); (4, None); (4, Some 1); (4, Some 7); (4, Some 1000) ]

(* Deterministic propagation: every job runs, and the failure with the
   smallest index wins no matter which domain hit it first. *)
let test_parallel_map_exception () =
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "first failure wins (domains=%d)" domains)
        true
        (try
           ignore
             (Pool.map ~domains
                (fun i ->
                  (* lint: allow failwith-outside-exn — the worker must raise *)
                  if i = 3 || i = 7 then failwith (Printf.sprintf "boom-%d" i)
                  else i)
                (Array.init 10 (fun i -> i)));
           false
         with Pool.Worker_failure (Failure msg) -> msg = "boom-3"))
    [ 1; 3 ]

let test_nested_map_no_deadlock () =
  let pool = Pool.get ~domains:4 () in
  let out =
    Pool.map ~pool
      (fun i ->
        let inner = Pool.map ~pool (fun j -> i * j) (Array.init 8 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 16 Fun.id)
  in
  Alcotest.(check (array int)) "nested results correct"
    (Array.init 16 (fun i -> 28 * i))
    out

let test_parallel_batch_match_sequential () =
  List.iter
    (fun seed ->
      let moduli, _ = corpus ~seed ~n_clean:8 ~n_shared:4 () in
      let seq = BG.factor_batch ~domains:1 moduli in
      Alcotest.(check bool)
        (Printf.sprintf "factor_batch domains=1 vs 4 (seed %d)" seed)
        true
        (BG.findings_equal seq (BG.factor_batch ~domains:4 moduli));
      Alcotest.(check bool)
        (Printf.sprintf "factor_subsets domains=1 vs 4 (seed %d)" seed)
        true
        (BG.findings_equal
           (BG.factor_subsets ~domains:1 ~k:4 moduli)
           (BG.factor_subsets ~domains:4 ~k:4 moduli));
      Alcotest.(check bool)
        (Printf.sprintf "parallel subsets vs sequential batch (seed %d)" seed)
        true
        (BG.findings_equal seq (BG.factor_subsets ~domains:4 ~k:3 moduli)))
    [ 11; 23; 37 ]

(* ---------------- Incremental batch GCD ---------------- *)

module Inc = Batchgcd.Incremental

(* factor_delta over every split point of a corpus (including splits
   inside and before the planted shared block) must reproduce the full
   run over the union, exactly. *)
let test_factor_delta_splits () =
  List.iter
    (fun seed ->
      let moduli, _ = corpus ~seed ~n_clean:8 ~n_shared:4 () in
      let full = BG.factor_subsets ~k:3 moduli in
      List.iter
        (fun split ->
          let old_part = Array.sub moduli 0 split in
          let fresh = Array.sub moduli split (Array.length moduli - split) in
          let old_tree = PT.build old_part in
          let old_findings = BG.factor_batch old_part in
          let delta =
            Inc.factor_delta ~old_tree ~old_findings fresh
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d split %d" seed split)
            true
            (BG.findings_equal full delta))
        [ 1; 4; 7; 9; 11 ])
    [ 11; 23; 37 ]

let test_incremental_create_extend () =
  let moduli, _ = corpus ~seed:41 ~n_clean:10 ~n_shared:5 () in
  let full = BG.factor_batch moduli in
  (* three batches: subsets-seeded create, then two extends *)
  let t = Inc.create ~k:3 (Array.sub moduli 0 6) in
  let t = Inc.extend t (Array.sub moduli 6 5) in
  Alcotest.(check int) "segments accumulate" 4 (Inc.segment_count t);
  let t = Inc.extend t (Array.sub moduli 11 4) in
  Alcotest.(check int) "corpus size" 15 (Inc.corpus_size t);
  Alcotest.(check bool) "corpus preserved in order" true
    (Array.for_all2 N.equal moduli (Inc.corpus t));
  Alcotest.(check bool) "incremental = full" true
    (BG.findings_equal full (Inc.findings t));
  Alcotest.(check bool) "empty delta is identity" true
    (BG.findings_equal full (Inc.findings (Inc.extend t [||])));
  Alcotest.(check bool) "create from empty then extend" true
    (BG.findings_equal full
       (Inc.findings (Inc.extend (Inc.create [||]) moduli)))

(* New findings that live entirely inside the delta (a shared prime
   introduced by the fresh batch, unseen in the old corpus) must be
   caught by the new-vs-new mod-square pass. *)
let test_incremental_delta_only_sharing () =
  let gen = mk_gen 43 in
  let prime () = Bignum.Prime.generate ~gen ~bits:48 in
  let old_part = Array.init 6 (fun _ -> N.mul (prime ()) (prime ())) in
  let p = prime () in
  let fresh = [| N.mul p (prime ()); N.mul p (prime ()) |] in
  let t = Inc.extend (Inc.create old_part) fresh in
  Alcotest.(check int) "both delta moduli flagged" 2
    (List.length (Inc.findings t));
  List.iter
    (fun f ->
      Alcotest.(check bool) "indexes in delta range" true (f.BG.index >= 6);
      Alcotest.check nat "divisor is the delta prime" p f.BG.divisor)
    (Inc.findings t)

let with_temp_checkpoint f =
  let path = Filename.temp_file "weakkeys-inc" ".ckpt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_incremental_save_load () =
  let moduli, _ = corpus ~seed:47 ~n_clean:9 ~n_shared:3 () in
  let t = Inc.extend (Inc.create ~k:2 (Array.sub moduli 0 8))
      (Array.sub moduli 8 4)
  in
  with_temp_checkpoint (fun path ->
      let oc = open_out_bin path in
      Inc.save oc t;
      close_out oc;
      let ic = open_in_bin path in
      let t' = Inc.load ic in
      close_in ic;
      Alcotest.(check int) "size round-trips" (Inc.corpus_size t)
        (Inc.corpus_size t');
      Alcotest.(check int) "segments round-trip" (Inc.segment_count t)
        (Inc.segment_count t');
      Alcotest.(check bool) "corpus round-trips" true
        (Array.for_all2 N.equal (Inc.corpus t) (Inc.corpus t'));
      Alcotest.(check bool) "findings round-trip" true
        (BG.findings_equal (Inc.findings t) (Inc.findings t'));
      (* resuming from the restored state must equal resuming from the
         live one *)
      let delta, _ = corpus ~seed:53 ~n_clean:3 ~n_shared:2 () in
      Alcotest.(check bool) "extend after load = extend live" true
        (BG.findings_equal
           (Inc.findings (Inc.extend t delta))
           (Inc.findings (Inc.extend t' delta))))

let test_incremental_load_rejects_garbage () =
  with_temp_checkpoint (fun path ->
      let oc = open_out_bin path in
      output_string oc "\x00\x00\x00\x04junk";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Alcotest.(check bool) "Corrupt raised" true
            (try
               ignore (Inc.load ic);
               false
             with Corpus.Io.Corrupt _ -> true)))

(* ---------------- Sharded batch GCD ---------------- *)

module Sh = Batchgcd.Sharded

let with_temp_dir f =
  let dir = Filename.temp_file "weakkeys-shard" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* The two-tier sharded sweep must reproduce the single-tree findings
   exactly — same indexes, same divisors — for corpora that span
   several shards, across seeds and shard geometries. *)
let test_sharded_matches_flat () =
  List.iter
    (fun seed ->
      let moduli, _ = corpus ~seed ~n_clean:10 ~n_shared:5 () in
      let full = BG.factor_batch moduli in
      List.iter
        (fun stride ->
          let t = Sh.create ~stride moduli in
          Alcotest.(check int)
            (Printf.sprintf "shard count (seed %d stride %d)" seed stride)
            ((Array.length moduli + stride - 1) / stride)
            (Sh.shard_count t);
          Alcotest.(check bool)
            (Printf.sprintf "sharded = flat (seed %d stride %d)" seed stride)
            true
            (BG.findings_equal full (Sh.findings t));
          Alcotest.(check bool) "corpus preserved in id order" true
            (Array.for_all2 N.equal moduli (Sh.corpus t));
          Array.iteri
            (fun i m ->
              Alcotest.(check (option int)) "find returns global id" (Some i)
                (Sh.find t m))
            moduli)
        [ 4; 8 ])
    [ 11; 23; 37 ]

let test_sharded_rejects () =
  Alcotest.check_raises "stride must be a power of two"
    (Invalid_argument "Batchgcd.Sharded.create: stride must be a power of two")
    (fun () -> ignore (Sh.create ~stride:6 [| N.of_int 15 |]))

(* Extend across a shard boundary: the delta first tops up the tail
   shard, then opens fresh shards. Findings must equal a from-scratch
   sweep over the union, in global index order. *)
let test_sharded_extend_boundary () =
  let moduli, _ = corpus ~seed:59 ~n_clean:9 ~n_shared:4 () in
  let t = Sh.create ~stride:4 (Array.sub moduli 0 6) in
  Alcotest.(check int) "two shards before extend" 2 (Sh.shard_count t);
  (* 6 + 7 = 13 crosses two boundaries: top up to 8, fill 8..12 *)
  let t = Sh.extend t (Array.sub moduli 6 7) in
  Alcotest.(check int) "four shards after extend" 4 (Sh.shard_count t);
  Alcotest.(check int) "corpus size" 13 (Sh.corpus_size t);
  Alcotest.(check bool) "corpus preserved in order" true
    (Array.for_all2 N.equal moduli (Sh.corpus t));
  Alcotest.(check bool) "extend = from-scratch over union" true
    (BG.findings_equal (BG.factor_batch moduli) (Sh.findings t));
  Alcotest.(check bool) "empty delta is identity" true
    (BG.findings_equal (Sh.findings t) (Sh.findings (Sh.extend t [||])))

(* Directory checkpoint: save_dir + load_dir must be O(shard count) —
   the arenas are mapped and no forest is resident — yet findings are
   immediately queryable, and extending the restored state must match
   extending the live one. *)
let test_sharded_save_load_dir () =
  let moduli, extra_seed = (fst (corpus ~seed:61 ~n_clean:10 ~n_shared:4 ()), 67) in
  let live = Sh.create ~stride:4 moduli in
  with_temp_dir (fun dir ->
      Sh.save_dir live dir;
      let restored = Sh.load_dir dir in
      Alcotest.(check int) "no forest resident after load_dir" 0
        (Sh.loaded_shards restored);
      Alcotest.(check int) "size round-trips" (Sh.corpus_size live)
        (Sh.corpus_size restored);
      Alcotest.(check int) "stride round-trips" (Sh.stride live)
        (Sh.stride restored);
      Alcotest.(check bool) "findings queryable without forests" true
        (BG.findings_equal (Sh.findings live) (Sh.findings restored));
      Array.iteri
        (fun i m ->
          Alcotest.(check (option int)) "mapped find" (Some i)
            (Sh.find restored m))
        moduli;
      (* extending forces the lazy forest loads; results must match the
         never-checkpointed state exactly *)
      let delta, _ = corpus ~seed:extra_seed ~n_clean:3 ~n_shared:2 () in
      let live' = Sh.extend live delta in
      let restored' = Sh.extend restored delta in
      Alcotest.(check bool) "extend after load_dir = extend live" true
        (BG.findings_equal (Sh.findings live') (Sh.findings restored'));
      Alcotest.(check int) "segments agree" (Sh.segment_count live')
        (Sh.segment_count restored'))

(* ---------------- Io header hardening ---------------- *)

(* A length prefix larger than the bytes actually remaining must be
   rejected with Corrupt *before* any allocation of that size — a
   fuzzed 4-byte header must never turn into a multi-gigabyte
   really_input buffer or an Out_of_memory. *)
let test_io_rejects_oversized_length () =
  let check_header ?(payload = "") name header =
    with_temp_checkpoint (fun path ->
        let oc = open_out_bin path in
        output_string oc header;
        output_string oc payload;
        close_out oc;
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            Alcotest.(check bool) name true
              (try
                 ignore (Corpus.Io.read_string ic);
                 false
               with Corpus.Io.Corrupt _ -> true)))
  in
  (* near-max positive 32-bit length, 4 bytes of payload *)
  check_header ~payload:"junk" "huge prefix" "\x7f\xff\xff\x00";
  (* length one past the remaining bytes *)
  check_header ~payload:"abc" "off-by-one prefix" "\x00\x00\x00\x04";
  (* sign bit set reads back negative *)
  check_header "negative prefix" "\xff\xff\xff\xfe";
  (* fuzz: random headers always claiming more than remains *)
  let st = Random.State.make [| 71 |] in
  for i = 1 to 50 do
    let remaining = Random.State.int st 8 in
    let len = remaining + 1 + Random.State.int st 0x3FFFFFFF in
    let header =
      String.init 4 (fun b -> Char.chr ((len lsr (8 * (3 - b))) land 0xff))
    in
    check_header
      ~payload:(String.make remaining 'x')
      (Printf.sprintf "fuzzed prefix %d" i)
      header
  done

(* ---------------- Backend registry ---------------- *)

module Bk = Batchgcd.Backend
module A2A = Batchgcd.All_to_all

let test_backend_registry () =
  Alcotest.(check (list string))
    "builtin names"
    [ "tree"; "ksubset"; "all_to_all" ]
    (Bk.names ());
  Alcotest.(check bool) "find known" true (Bk.find "all_to_all" <> None);
  Alcotest.(check bool) "find unknown" true (Bk.find "nope" = None);
  Alcotest.(check bool) "get unknown raises" true
    (try
       ignore (Bk.get "nope");
       false
     with Bk.Unknown_backend "nope" -> true);
  Alcotest.(check bool) "tree is incremental and sharded" true
    (Bk.tree.Bk.caps.Bk.incremental && Bk.tree.Bk.caps.Bk.sharded);
  Alcotest.(check bool) "all_to_all is incremental and sharded" true
    (Bk.all_to_all.Bk.caps.Bk.incremental && Bk.all_to_all.Bk.caps.Bk.sharded);
  Alcotest.(check bool) "ksubset is one-shot only" false
    (Bk.ksubset.Bk.caps.Bk.incremental || Bk.ksubset.Bk.caps.Bk.sharded)

let test_backend_select_policy () =
  let threshold = Bk.all_to_all_threshold () in
  Alcotest.(check string) "small work goes all-to-all" "all_to_all"
    (Bk.select ~purpose:`Delta ~n:threshold ()).Bk.name;
  Alcotest.(check string) "bulk work goes tree" "tree"
    (Bk.select ~purpose:`Shard ~n:(threshold + 1) ()).Bk.name;
  Alcotest.(check string) "explicit override beats the heuristic" "tree"
    (Bk.select ~override:"tree" ~purpose:`Delta ~n:1 ()).Bk.name;
  Alcotest.(check bool) "incapable override rejected" true
    (try
       ignore (Bk.select ~override:"ksubset" ~purpose:`Delta ~n:1 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown override raises Unknown_backend" true
    (try
       ignore (Bk.select ~override:"nope" ~purpose:`Shard ~n:1 ());
       false
     with Bk.Unknown_backend "nope" -> true)

(* Every registered backend must land on identical findings — same
   indexes, same divisors — across seeds and corpus sizes bracketing
   the all-to-all selection threshold (default 48). *)
let test_backends_findings_equal () =
  List.iter
    (fun seed ->
      List.iter
        (fun (n_clean, n_shared) ->
          let moduli, _ = corpus ~bits:64 ~seed ~n_clean ~n_shared () in
          let reference = BG.factor_batch moduli in
          List.iter
            (fun b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s = reference (seed %d, %d moduli)" b.Bk.name
                   seed (Array.length moduli))
                true
                (BG.findings_equal reference (Bk.factor b moduli)))
            Bk.builtin)
        [ (16, 8); (32, 16); (64, 32) ])
    [ 11; 23; 37 ]

(* The pruned node-pair recursion must surface exactly the coprime-
   filtered pair set of the O(n^2) sweep, with bit-identical gcds. *)
let test_all_to_all_pairwise_hits () =
  let moduli, _ = corpus ~seed:29 ~n_clean:6 ~n_shared:4 () in
  let sort = List.sort (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d)) in
  let naive = sort (BG.naive_pairwise_hits moduli) in
  let hits = sort (A2A.pairwise_hits (PT.build moduli)) in
  Alcotest.(check int) "same pair count" (List.length naive) (List.length hits);
  List.iter2
    (fun (i, j, g) (i', j', g') ->
      Alcotest.(check (pair int int)) "same pair" (i, j) (i', j');
      Alcotest.check nat "same gcd" g g')
    naive hits;
  Alcotest.(check (list (triple int int nat))) "empty cross on coprime trees"
    []
    (let clean, _ = corpus ~seed:31 ~n_clean:4 ~n_shared:0 () in
     A2A.cross_hits (PT.build (Array.sub clean 0 2)) (PT.build (Array.sub clean 2 2)))

(* Incremental deltas through either capable strategy agree with a
   from-scratch recompute; the one-shot ksubset strategy is refused. *)
let test_incremental_backend_extend () =
  let moduli, _ = corpus ~seed:43 ~n_clean:12 ~n_shared:6 () in
  let base = Array.sub moduli 0 10 in
  let delta = Array.sub moduli 10 (Array.length moduli - 10) in
  let full = BG.factor_batch moduli in
  List.iter
    (fun backend ->
      let t = Inc.create ~backend base in
      let t = Inc.extend ~backend t delta in
      Alcotest.(check bool)
        (Printf.sprintf "create+extend via %s = recompute" backend)
        true
        (BG.findings_equal full (Inc.findings t)))
    [ "tree"; "all_to_all" ];
  let t = Inc.create [||] in
  Alcotest.(check bool) "ksubset delta refused" true
    (try
       ignore (Inc.extend ~backend:"ksubset" t moduli);
       false
     with Invalid_argument _ -> true)

(* The per-shard selection policy: small shards drop to all-to-all,
   explicit and per-shard overrides win, and findings never depend on
   which backend ran. *)
let test_sharded_backend_policy () =
  let moduli, _ = corpus ~seed:47 ~n_clean:10 ~n_shared:5 () in
  let full = BG.factor_batch moduli in
  let t = Sh.create ~stride:4 moduli in
  Alcotest.(check (list (pair string int)))
    "small shards all pick all_to_all"
    [ ("all_to_all", Sh.shard_count t) ]
    (Sh.backend_uses t);
  Alcotest.(check bool) "threshold policy findings = flat" true
    (BG.findings_equal full (Sh.findings t));
  let t_tree = Sh.create ~backend:"tree" ~stride:4 moduli in
  Alcotest.(check (list (pair string int)))
    "sweep-wide override pins every shard"
    [ ("tree", Sh.shard_count t_tree) ]
    (Sh.backend_uses t_tree);
  Alcotest.(check bool) "override findings = flat" true
    (BG.findings_equal full (Sh.findings t_tree));
  let t_mixed =
    Sh.create
      ~shard_backend:(fun s -> if s = 0 then Some "tree" else None)
      ~stride:4 moduli
  in
  Alcotest.(check (list (pair string int)))
    "per-shard override beats the heuristic"
    [ ("all_to_all", Sh.shard_count t_mixed - 1); ("tree", 1) ]
    (Sh.backend_uses t_mixed);
  Alcotest.(check bool) "mixed policy findings = flat" true
    (BG.findings_equal full (Sh.findings t_mixed));
  Alcotest.(check bool) "ksubset refused as shard strategy" true
    (try
       ignore (Sh.create ~backend:"ksubset" ~stride:4 moduli);
       false
     with Invalid_argument _ -> true)

(* ---------------- Properties ---------------- *)

let prop_implementations_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"naive = batch = subsets (random corpora)"
       ~count:10
       QCheck2.Gen.(
         triple (int_range 0 8) (int_range 0 5) (int_range 1 6))
       (fun (n_clean, n_shared, k) ->
         let moduli, _ =
           corpus ~bits:64 ~seed:(n_clean + (17 * n_shared) + (289 * k))
             ~n_clean ~n_shared ()
         in
         let batch = BG.factor_batch moduli in
         BG.findings_equal (BG.naive moduli) batch
         && BG.findings_equal (BG.factor_subsets ~k moduli) batch))

let prop_divisor_divides =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"divisors divide their moduli" ~count:10
       (QCheck2.Gen.int_range 0 1000)
       (fun seed ->
         let moduli, _ = corpus ~bits:64 ~seed ~n_clean:5 ~n_shared:3 () in
         List.for_all
           (fun f -> N.is_zero (N.rem f.BG.modulus f.BG.divisor))
           (BG.factor_batch moduli)))

let tests =
  [
    Alcotest.test_case "product tree root" `Quick test_product_tree_root;
    Alcotest.test_case "product tree levels" `Quick
      test_product_tree_level_invariant;
    Alcotest.test_case "product tree singleton" `Quick test_product_tree_singleton;
    Alcotest.test_case "product tree rejects" `Quick test_product_tree_rejects;
    Alcotest.test_case "remainder tree" `Quick test_remainder_tree_matches_direct;
    Alcotest.test_case "precomp descent = plain" `Quick
      test_precomp_descent_matches_plain;
    Alcotest.test_case "mixed-width level" `Quick test_mixed_width_level;
    Alcotest.test_case "eager precompute" `Quick test_precompute_eager;
    Alcotest.test_case "planted factor recovered" `Quick
      test_planted_factor_recovered;
    Alcotest.test_case "clean corpus" `Quick test_clean_corpus_no_findings;
    Alcotest.test_case "implementations agree" `Quick
      test_all_implementations_agree;
    Alcotest.test_case "duplicate moduli" `Quick test_duplicate_moduli;
    Alcotest.test_case "ibm clique" `Quick test_ibm_clique_fully_shared;
    Alcotest.test_case "pairwise hits" `Quick test_pairwise_hits;
    Alcotest.test_case "two disjoint groups" `Quick test_two_disjoint_groups;
    Alcotest.test_case "empty and single" `Quick test_empty_and_single;
    Alcotest.test_case "pool sizes and reuse" `Quick test_pool_sizes_and_reuse;
    Alcotest.test_case "parallel map order" `Quick test_parallel_map_order;
    Alcotest.test_case "parallel_for chunked" `Quick test_parallel_for_chunked;
    Alcotest.test_case "parallel exception" `Quick test_parallel_map_exception;
    Alcotest.test_case "nested map no deadlock" `Quick
      test_nested_map_no_deadlock;
    Alcotest.test_case "parallel = sequential" `Quick
      test_parallel_batch_match_sequential;
    Alcotest.test_case "factor_delta across splits" `Quick
      test_factor_delta_splits;
    Alcotest.test_case "incremental create/extend" `Quick
      test_incremental_create_extend;
    Alcotest.test_case "delta-only sharing" `Quick
      test_incremental_delta_only_sharing;
    Alcotest.test_case "incremental save/load" `Quick test_incremental_save_load;
    Alcotest.test_case "incremental load rejects garbage" `Quick
      test_incremental_load_rejects_garbage;
    Alcotest.test_case "sharded = flat findings" `Quick
      test_sharded_matches_flat;
    Alcotest.test_case "sharded rejects bad stride" `Quick test_sharded_rejects;
    Alcotest.test_case "sharded extend across boundary" `Quick
      test_sharded_extend_boundary;
    Alcotest.test_case "sharded save_dir/load_dir" `Quick
      test_sharded_save_load_dir;
    Alcotest.test_case "io rejects oversized length" `Quick
      test_io_rejects_oversized_length;
    Alcotest.test_case "backend registry" `Quick test_backend_registry;
    Alcotest.test_case "backend select policy" `Quick
      test_backend_select_policy;
    Alcotest.test_case "backends findings equal" `Quick
      test_backends_findings_equal;
    Alcotest.test_case "all-to-all pairwise hits" `Quick
      test_all_to_all_pairwise_hits;
    Alcotest.test_case "incremental backend extend" `Quick
      test_incremental_backend_extend;
    Alcotest.test_case "sharded backend policy" `Quick
      test_sharded_backend_policy;
    prop_implementations_agree;
    prop_divisor_divides;
  ]
