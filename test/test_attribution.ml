(* The attribution engine: typed evidence merge, pass registry
   scheduling, serialization, and pooled-vs-sequential equivalence. *)

module A = Fingerprint.Attribution
module E = Fingerprint.Evidence
module R = Fingerprint.Registry
module FPass = Fingerprint.Pass
module Pool = Parallel.Pool

let ev ?vendor ?model_id ?(technique = E.Subject_rule) ?(weight = 1)
    ?(witnesses = []) subject =
  E.make ~subject ~technique ?vendor ?model_id ~weight ~witnesses ()

(* ------------------------------------------------------------------ *)
(* Evidence merge                                                      *)
(* ------------------------------------------------------------------ *)

let test_rank_precedence () =
  let a = A.create () in
  (* Weaker technique first: insertion order must not matter. *)
  A.add a (ev ~vendor:"SharedVendor" ~technique:E.Shared_prime ~weight:10 7);
  A.add a (ev ~vendor:"CliqueVendor" ~technique:E.Prime_clique 7);
  A.add a (ev ~vendor:"SubjectVendor" ~technique:E.Subject_rule 7);
  Alcotest.(check (option string))
    "subject rule outranks clique and shared-prime despite weights"
    (Some "SubjectVendor") (A.vendor_of a 7);
  Alcotest.(check (option string))
    "clique outranks shared-prime" (Some "CliqueVendor")
    (A.vendor_of ~use:[ E.Prime_clique; E.Shared_prime ] a 7);
  Alcotest.(check (option string))
    "restricted to shared-prime only" (Some "SharedVendor")
    (A.vendor_of ~use:[ E.Shared_prime ] a 7)

let test_weighted_majority_and_tie_break () =
  let a = A.create () in
  A.add a (ev ~vendor:"Aardvark" 1);
  A.add a (ev ~vendor:"Aardvark" 1);
  A.add a (ev ~vendor:"Zebra" ~weight:3 1);
  Alcotest.(check (option string))
    "summed weights win within a technique" (Some "Zebra") (A.vendor_of a 1);
  A.add a (ev ~vendor:"Aardvark" 1);
  Alcotest.(check (option string))
    "3-3 tie broken by lexicographically smallest vendor" (Some "Aardvark")
    (A.vendor_of a 1);
  Alcotest.(check (option string))
    "majority_vendor agrees on the raw ballot" (Some "Aardvark")
    (A.majority_vendor [ ("Zebra", 3); ("Aardvark", 3) ])

let test_vendorless_evidence_is_not_a_vote () =
  let a = A.create () in
  A.add a (ev ~technique:E.Bit_error 4);
  Alcotest.(check (option string))
    "bit-error triage alone yields no vendor" None (A.vendor_of a 4);
  Alcotest.(check int) "but the claim is recorded" 1
    (List.length (A.evidence a 4));
  Alcotest.(check int) "and no id counts as attributed" 0
    (Corpus.Id_set.cardinal (A.attributed a))

let test_model_of () =
  let a = A.create () in
  A.add a (ev ~vendor:"Cisco" ~model_id:"RVS4000" 2);
  A.add a (ev ~vendor:"Cisco" ~model_id:"RV042" 2);
  A.add a (ev ~vendor:"Linksys" ~model_id:"AAA-first-but-losing" 2);
  A.add a (ev ~vendor:"Cisco" 2);
  Alcotest.(check (option string))
    "smallest model among the winning vendor's evidence" (Some "RV042")
    (A.model_of a 2)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let test_save_load_round_trip () =
  let a = A.create () in
  A.add a
    (E.make ~subject:3 ~technique:E.Shared_prime ~vendor:"IBM"
       ~confidence:0.9 ~weight:2 ~witnesses:[ 1; 2 ] ());
  A.add a
    (E.make ~subject:0 ~technique:E.Subject_rule ~vendor:"Cisco"
       ~model_id:"RV042" ());
  A.add a (E.make ~subject:5 ~technique:E.Bit_error ~confidence:0.875 ());
  let labels = Hashtbl.create 4 in
  Hashtbl.replace labels "fp1"
    (Some { Fingerprint.Rules.vendor = "AVM"; model_id = None });
  Hashtbl.replace labels "fp2" None;
  A.add_artifact a (A.Cert_labels labels);
  A.add_artifact a
    (A.Bit_error_triage
       { suspects = [ Bignum.Nat.of_int 77 ]; near_corpus = 1 });
  A.add_artifact a
    (A.Openssl_table [ ("IBM", Fingerprint.Openssl_fp.Satisfies, 4) ]);
  let path = Filename.temp_file "weakkeys-attr" ".bin" in
  let oc = open_out_bin path in
  A.save oc a;
  close_out oc;
  let ic = open_in_bin path in
  let b = A.load ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "evidence tables equal" true (A.equal_evidence a b);
  Alcotest.(check (option string))
    "merge result survives" (A.vendor_of a 3) (A.vendor_of b 3);
  (match A.cert_labels b with
  | Some l ->
    Alcotest.(check int) "both label entries restored" 2 (Hashtbl.length l)
  | None -> Alcotest.fail "cert-labels artifact lost");
  (match A.bit_error_triage b with
  | Some (suspects, near) ->
    Alcotest.(check int) "one suspect" 1 (List.length suspects);
    Alcotest.(check int) "near-corpus count" 1 near
  | None -> Alcotest.fail "bit-error artifact lost");
  match A.openssl_table b with
  | Some [ ("IBM", Fingerprint.Openssl_fp.Satisfies, 4) ] -> ()
  | _ -> Alcotest.fail "openssl table artifact lost"

let test_load_rejects_corrupt () =
  let path = Filename.temp_file "weakkeys-attr" ".bin" in
  let oc = open_out_bin path in
  output_string oc "not an attribution table";
  close_out oc;
  let ic = open_in_bin path in
  let raised =
    try
      ignore (A.load ic);
      false
    with Corpus.Io.Corrupt _ | End_of_file -> true
  in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "corrupt input raises" true raised

(* ------------------------------------------------------------------ *)
(* Registry scheduling                                                 *)
(* ------------------------------------------------------------------ *)

let names passes = List.map (fun p -> p.FPass.name) passes

let test_builtin_schedule () =
  match R.schedule R.builtin with
  | [ w1; w2; w3 ] ->
    Alcotest.(check (list string))
      "wave 1: the four independent passes"
      [ "subject-rules"; "ibm-clique"; "bit-errors"; "mitm-substitution" ]
      (names w1);
    Alcotest.(check (list string)) "wave 2" [ "shared-prime" ] (names w2);
    Alcotest.(check (list string)) "wave 3" [ "openssl-fingerprint" ]
      (names w3)
  | waves ->
    Alcotest.fail
      (Printf.sprintf "expected 3 waves, got %d" (List.length waves))

let test_select_closes_over_deps () =
  Alcotest.(check (list string))
    "shared-prime pulls in its two labelers"
    [ "subject-rules"; "ibm-clique"; "shared-prime" ]
    (names (R.select ~only:[ "shared-prime" ] R.builtin));
  Alcotest.(check (list string))
    "no restriction is the identity"
    (names R.builtin)
    (names (R.select R.builtin))

let test_select_unknown_pass () =
  Alcotest.check_raises "unknown pass name" (R.Unknown_pass "no-such-pass")
    (fun () -> ignore (R.select ~only:[ "no-such-pass" ] R.builtin))

let mk_pass ?(deps = []) name run = { FPass.name; deps; doc = name; run }

let test_schedule_cycle () =
  let a = mk_pass ~deps:[ "b" ] "a" (fun _ _ -> FPass.empty_result) in
  let b = mk_pass ~deps:[ "a" ] "b" (fun _ _ -> FPass.empty_result) in
  let raised =
    try
      ignore (R.schedule [ a; b ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "cycle rejected" true raised

(* ------------------------------------------------------------------ *)
(* Pooled execution                                                    *)
(* ------------------------------------------------------------------ *)

let dummy_ctx () =
  {
    FPass.Ctx.store = Corpus.Store.create ~size:4 ();
    corpus = [||];
    findings = [];
    factored = [];
    factored_index = [||];
    unrecovered = [];
    scans = [];
    page_titles = Hashtbl.create 1;
    cert_fp = (fun _ -> "");
    modulus_bits = 512;
  }

let emit_pass ?deps name vendor ids =
  mk_pass ?deps name (fun _ _ ->
      {
        FPass.evidence = List.map (fun id -> ev ~vendor id) ids;
        artifacts = [];
      })

let test_pooled_equals_sequential () =
  let passes =
    [
      emit_pass "p1" "VendorA" [ 0; 1; 2 ];
      emit_pass "p2" "VendorB" [ 1; 3 ];
      emit_pass ~deps:[ "p1"; "p2" ] "p3" "VendorC" [ 2; 4 ];
    ]
  in
  let seq, _ = R.run ~pool:(Pool.get ~domains:1 ()) (dummy_ctx ()) passes in
  let par, _ = R.run ~pool:(Pool.get ~domains:4 ()) (dummy_ctx ()) passes in
  Alcotest.(check bool) "evidence tables identical" true
    (A.equal_evidence seq par);
  Alcotest.(check int) "seven claims either way" 7 (A.evidence_count par)

(* Two barrier passes in the same wave: each spins until the other has
   arrived. Sequential execution can never satisfy the rendezvous, so
   both flags set proves the wave genuinely ran its passes
   concurrently on the pool. *)
let test_wave_runs_concurrently () =
  let pool = Pool.get ~domains:2 () in
  if Pool.size pool < 2 then ()
  else begin
    let arrived = Atomic.make 0 in
    let met = Atomic.make 0 in
    let barrier_pass name =
      mk_pass name (fun _ _ ->
          Atomic.incr arrived;
          let deadline = Unix.gettimeofday () +. 10.0 in
          while Atomic.get arrived < 2 && Unix.gettimeofday () < deadline do
            Domain.cpu_relax ()
          done;
          if Atomic.get arrived >= 2 then Atomic.incr met;
          FPass.empty_result)
    in
    let _, times =
      R.run ~pool (dummy_ctx ()) [ barrier_pass "left"; barrier_pass "right" ]
    in
    Alcotest.(check int) "both passes executed" 2 (List.length times);
    Alcotest.(check int) "both passes were live at the same time" 2
      (Atomic.get met)
  end

let tests =
  [
    Alcotest.test_case "rank precedence" `Quick test_rank_precedence;
    Alcotest.test_case "weighted majority and tie break" `Quick
      test_weighted_majority_and_tie_break;
    Alcotest.test_case "vendorless evidence" `Quick
      test_vendorless_evidence_is_not_a_vote;
    Alcotest.test_case "model of" `Quick test_model_of;
    Alcotest.test_case "save/load round trip" `Quick
      test_save_load_round_trip;
    Alcotest.test_case "load rejects corrupt" `Quick test_load_rejects_corrupt;
    Alcotest.test_case "builtin schedule" `Quick test_builtin_schedule;
    Alcotest.test_case "select closes over deps" `Quick
      test_select_closes_over_deps;
    Alcotest.test_case "select unknown pass" `Quick test_select_unknown_pass;
    Alcotest.test_case "schedule cycle" `Quick test_schedule_cycle;
    Alcotest.test_case "pooled equals sequential" `Quick
      test_pooled_equals_sequential;
    Alcotest.test_case "wave runs concurrently" `Quick
      test_wave_runs_concurrently;
  ]
