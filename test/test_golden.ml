(* Golden-report regression tests.

   The full [Report] text for fixed small worlds is snapshotted under
   test/golden/ and asserted byte-equal here. The snapshots were
   generated from the pre-attribution-engine pipeline, so they pin the
   refactor to byte-identical output; they also pin pooled multi-pass
   execution to the [domains:1] result.

   Regenerate (after an intentional output change) with:

     WEAKKEYS_GOLDEN_UPDATE=$PWD/test/golden dune exec test/test_main.exe -- test golden
*)

module P = Weakkeys.Pipeline
module R = Weakkeys.Report

(* [dune runtest] runs in _build/default/test (snapshots staged by the
   dune deps glob); a manual [dune exec test/test_main.exe] runs from
   the project root. Resolve whichever is present. *)
let golden_dir =
  if Sys.file_exists "golden" && Sys.is_directory "golden" then "golden"
  else Filename.concat "test" "golden"

let golden_file name = Filename.concat golden_dir (name ^ ".txt")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* Byte-equality with a readable first-difference diagnostic: a raw
   Alcotest string check on a 30k-character report is unreadable. *)
let check_equal_text what expected actual =
  if not (String.equal expected actual) then begin
    let n = Stdlib.min (String.length expected) (String.length actual) in
    let i = ref 0 in
    while !i < n && expected.[!i] = actual.[!i] do
      incr i
    done;
    let context s =
      let from = Stdlib.max 0 (!i - 80) in
      let len = Stdlib.min (String.length s - from) 160 in
      String.sub s from len
    in
    Alcotest.failf
      "%s: output differs at byte %d (lengths %d vs %d)\n\
       --- expected ---\n%s\n--- actual ---\n%s"
      what !i
      (String.length expected)
      (String.length actual)
      (context expected) (context actual)
  end

let check_golden name report =
  match Sys.getenv_opt "WEAKKEYS_GOLDEN_UPDATE" with
  | Some dir ->
    write_file (Filename.concat dir (name ^ ".txt")) report;
    Printf.printf "updated %s/%s.txt (%d bytes)\n" dir name
      (String.length report)
  | None ->
    let path = golden_file name in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing golden snapshot %s (run with WEAKKEYS_GOLDEN_UPDATE)"
        path;
    check_equal_text name (read_file path) report

(* Seed "test-world" rides on the shared fixture pipeline; the other
   two seeds get their own (smaller) worlds so three independent seeds
   pin the output. *)
let golden_world seed =
  Netsim.World.build
    { Netsim.World.default_config with Netsim.World.seed; scale = 0.03 }

let test_golden_test_world () =
  let p = Lazy.force Worlds.small_pipeline in
  check_golden "report-test-world" (R.full_report p)

let test_golden_seed_b () =
  let p = P.of_world (golden_world "golden-b") in
  check_golden "report-golden-b" (R.full_report p)

let test_golden_seed_c () =
  let p = P.of_world (golden_world "golden-c") in
  check_golden "report-golden-c" (R.full_report p)

(* Pooled pass execution must equal a fully sequential (domains:1)
   run, byte for byte. *)
let test_domains1_equals_pooled () =
  let world = golden_world "golden-b" in
  let pooled = R.full_report (P.of_world world) in
  let seq = R.full_report (P.of_world ~domains:1 world) in
  check_equal_text "domains:1 vs pooled" seq pooled

let tests =
  [
    Alcotest.test_case "report matches golden (test-world)" `Slow
      test_golden_test_world;
    Alcotest.test_case "report matches golden (golden-b)" `Slow
      test_golden_seed_b;
    Alcotest.test_case "report matches golden (golden-c)" `Slow
      test_golden_seed_c;
    Alcotest.test_case "domains:1 report equals pooled report" `Slow
      test_domains1_equals_pooled;
  ]
