(* End-to-end pipeline tests: the full study on the shared small world,
   checked against simulator ground truth and the paper's qualitative
   claims (who is vulnerable, where the Heartbleed drop lands, which
   vendors rise after 2012). *)

module N = Bignum.Nat
module Sc = Netsim.Scanner
module W = Netsim.World
module P = Weakkeys.Pipeline
module Ts = Analysis.Timeseries

let pipeline () = Lazy.force Worlds.small_pipeline

let test_findings_match_ground_truth () =
  let p = pipeline () in
  (* Ground truth restricted to what the pipeline can see: a corpus
     modulus is weak iff it shares a prime with ANOTHER corpus
     modulus. (The world may know of sharing partners that never
     surfaced in a scan.) *)
  let factors = W.factors_of p.P.world in
  let primes = Corpus.Store.create ~size:4096 () in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let bump pr =
    let id = Corpus.Store.intern primes pr in
    Hashtbl.replace counts id
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  in
  Array.iter
    (fun m ->
      match factors m with
      | Some (a, b) ->
        bump a;
        bump b
      | None -> ())
    p.P.corpus;
  let corpus_truth m =
    match factors m with
    | None -> false
    | Some (a, b) ->
      let c pr =
        match Corpus.Store.find primes pr with
        | Some id -> Option.value ~default:0 (Hashtbl.find_opt counts id)
        | None -> 0
      in
      c a >= 2 || c b >= 2
  in
  List.iter
    (fun f ->
      let m = f.Batchgcd.Batch_gcd.modulus in
      Alcotest.(check bool) "finding is true or corrupt" true
        (corpus_truth m || factors m = None))
    p.P.findings;
  Array.iter
    (fun m ->
      if corpus_truth m then
        Alcotest.(check bool) "truth is found" true (P.is_vulnerable p m))
    p.P.corpus

let test_vulnerable_counts_sane () =
  let p = pipeline () in
  let n_vuln = List.length p.P.findings in
  let n = Array.length p.P.corpus in
  Alcotest.(check bool) "some vulnerable" true (n_vuln > 20);
  Alcotest.(check bool) "small minority" true (n_vuln * 10 < n)

let test_vendor_labeling_against_world () =
  (* For monthly-scan records of identifiable models, the pipeline's
     vendor label must match the simulator's model vendor. *)
  let p = pipeline () in
  let devices_by_ip_date = Hashtbl.create 4096 in
  Array.iter
    (fun d ->
      Array.iter
        (fun e ->
          Hashtbl.replace devices_by_ip_date
            (X509lite.Certificate.fingerprint e.W.cert)
            d)
        d.W.epochs)
    (W.devices p.P.world);
  let checked = ref 0 and mismatches = ref 0 in
  List.iter
    (fun (s : Sc.scan) ->
      Array.iter
        (fun (r : Sc.host_record) ->
          match
            ( P.vendor_of_record p r,
              Hashtbl.find_opt devices_by_ip_date
                (X509lite.Certificate.fingerprint r.Sc.cert) )
          with
          | Some vendor, Some d ->
            incr checked;
            if vendor <> d.W.model.Netsim.Device_model.vendor then incr mismatches
          | _ -> ())
        s.Sc.records)
    p.P.monthly;
  Alcotest.(check bool) "many labels checked" true (!checked > 1000);
  (* The Rimon middlebox substitutes keys on generic hosts; those can
     gain a pool label. Allow a tiny mismatch rate. *)
  Alcotest.(check bool)
    (Printf.sprintf "mismatches %d of %d" !mismatches !checked)
    true
    (!mismatches * 100 < !checked)

let test_heartbleed_drop_is_largest () =
  (* Figure 1's qualitative headline: the largest vulnerable-host drop
     lands on the 04/2014-05/2014 scans. *)
  let p = pipeline () in
  let s = Ts.overall ~vulnerable:(P.is_vulnerable p) p.P.monthly in
  match Ts.largest_vulnerable_drop s with
  | Some (d, _) ->
    let y, m, _ = X509lite.Date.to_ymd d in
    Alcotest.(check bool)
      (Printf.sprintf "drop lands %02d/%d" m y)
      true
      (y = 2014 && (m = 4 || m = 5))
  | None -> Alcotest.fail "expected a drop"

let test_juniper_series_shape () =
  let p = pipeline () in
  let s =
    Ts.vendor ~label:(P.vendor_of_record p) ~vulnerable:(P.is_vulnerable p)
      p.P.monthly "Juniper"
  in
  (* Note: the corpus has no scans in most of 2011; probe the December
     2010 EFF scan and a 2014 pre-Heartbleed scan. *)
  (match
     ( Ts.value_at s (X509lite.Date.of_ymd 2010 12 15),
       Ts.value_at s (X509lite.Date.of_ymd 2014 3 20) )
   with
  | Some early, Some peak ->
    Alcotest.(check bool) "total grew into 2014" true
      (peak.Ts.total > early.Ts.total)
  | _ -> Alcotest.fail "series must cover 12/2010 and 03/2014");
  match
    ( Ts.value_at s (X509lite.Date.of_ymd 2014 3 20),
      Ts.value_at s (X509lite.Date.of_ymd 2014 6 20) )
  with
  | Some before, Some after ->
    Alcotest.(check bool)
      (Printf.sprintf "heartbleed cliff %d -> %d" before.Ts.total after.Ts.total)
      true
      (after.Ts.total < before.Ts.total)
  | _ -> Alcotest.fail "points around heartbleed missing"

let test_newly_vulnerable_rise () =
  let p = pipeline () in
  let check vendor start =
    let s =
      Ts.vendor ~label:(P.vendor_of_record p) ~vulnerable:(P.is_vulnerable p)
        p.P.monthly vendor
    in
    let before, after =
      List.fold_left
        (fun (b, a) pt ->
          if X509lite.Date.(pt.Ts.date < start) then
            (Stdlib.max b pt.Ts.vulnerable, a)
          else (b, Stdlib.max a pt.Ts.vulnerable))
        (0, 0) s.Ts.points
    in
    Alcotest.(check int) (vendor ^ " zero before") 0 before;
    Alcotest.(check bool) (vendor ^ " rises after") true (after > 0)
  in
  check "Huawei" (X509lite.Date.of_ymd 2015 4 1);
  check "D-Link" (X509lite.Date.of_ymd 2012 9 1)

let test_ibm_clique_found () =
  let p = pipeline () in
  match P.cliques p with
  | c :: _ ->
    Alcotest.(check bool) "clique has several moduli" true
      (List.length c.Fingerprint.Ibm_clique.moduli >= 4);
    Alcotest.(check bool) "small prime pool" true
      (List.length c.Fingerprint.Ibm_clique.primes <= 9)
  | [] -> Alcotest.fail "IBM clique must be detected"

let test_ibm_siemens_overlap () =
  let p = pipeline () in
  let overlaps =
    match P.shared p with
    | Some shared -> Fingerprint.Shared_prime.overlaps shared
    | None -> Alcotest.fail "shared-prime pass must have run"
  in
  Alcotest.(check bool)
    (Printf.sprintf "IBM/Siemens among %d overlaps" (List.length overlaps))
    true
    (List.exists
       (fun (a, b, _) ->
         (a = "IBM" && b = "Siemens") || (a = "Siemens" && b = "IBM"))
       overlaps)

let test_table4_shape () =
  let p = pipeline () in
  let v = P.vulnerable_by_protocol p in
  let get proto = List.assoc proto v in
  Alcotest.(check bool) "https has vulnerable hosts" true (get Sc.Https > 0);
  Alcotest.(check int) "pop3s clean" 0 (get Sc.Pop3s);
  Alcotest.(check int) "imaps clean" 0 (get Sc.Imaps);
  Alcotest.(check int) "smtps clean" 0 (get Sc.Smtps)

let test_report_renders () =
  (* Every section renders without raising and is non-trivial. *)
  let p = pipeline () in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " non-trivial") true (String.length s > 80))
    [
      ("table1", Weakkeys.Report.table1 p);
      ("table2", Weakkeys.Report.table2 ());
      ("table3", Weakkeys.Report.table3 p);
      ("table4", Weakkeys.Report.table4 p);
      ("table5", Weakkeys.Report.table5 p);
      ("figure1", Weakkeys.Report.figure1 p);
      ("figure2", Weakkeys.Report.figure2 p);
      ("figure3", Weakkeys.Report.figure3 p);
      ("figure4", Weakkeys.Report.figure4 p);
      ("figure5", Weakkeys.Report.figure5 p);
      ("figure6", Weakkeys.Report.figure6 p);
      ("figure7", Weakkeys.Report.figure7 p);
      ("figure8", Weakkeys.Report.figure8 p);
      ("figure9", Weakkeys.Report.figure9 p);
      ("figure10", Weakkeys.Report.figure10 p);
      ("rimon", Weakkeys.Report.rimon_section p);
      ("bit errors", Weakkeys.Report.bit_error_section p);
      ("overlaps", Weakkeys.Report.overlap_section p);
    ]

let test_table5_ground_truth_styles () =
  (* Vendors modeled with Plain prime generation must never be
     classified as satisfying the fingerprint, and Openssl-style
     vendors never as failing it. *)
  let p = pipeline () in
  let rows = Fingerprint.Openssl_fp.classify_vendors (P.labeled_factored p) in
  let style_of vendor =
    List.find_map
      (fun (m : Netsim.Device_model.t) ->
        if m.Netsim.Device_model.vendor = vendor then
          match m.Netsim.Device_model.keygen with
          | Netsim.Device_model.Profile_keygen { style; _ } -> Some style
          | Netsim.Device_model.Ibm_keygen -> Some Rsa.Keypair.Openssl
        else None)
      Netsim.Device_model.catalog
  in
  List.iter
    (fun (vendor, verdict, _) ->
      match (style_of vendor, verdict) with
      | Some Rsa.Keypair.Plain, Fingerprint.Openssl_fp.Satisfies ->
        Alcotest.failf "%s is Plain but classified as OpenSSL" vendor
      | Some Rsa.Keypair.Openssl, Fingerprint.Openssl_fp.Does_not_satisfy ->
        (* Mixed vendors (Siemens has both an IBM-module line and a
           Plain line) may legitimately fail. *)
        if vendor <> "Siemens" && vendor <> "Dell" then
          Alcotest.failf "%s is OpenSSL-style but classified as failing" vendor
      | _ -> ())
    rows

(* Regression for the majority-vote tie-break: ties are broken by
   vendor name, so the winner cannot depend on tally iteration order
   (Hashtbl.fold order used to decide). *)
let test_majority_vendor_tie_break () =
  Alcotest.(check (option string)) "clear winner" (Some "Cisco")
    (P.majority_vendor [ ("Acme", 1); ("Cisco", 5); ("Zyxel", 2) ]);
  let ballot = [ ("Zyxel", 3); ("Acme", 3); ("Mid", 2) ] in
  Alcotest.(check (option string)) "tie -> lexicographically first"
    (Some "Acme") (P.majority_vendor ballot);
  Alcotest.(check (option string)) "tie is order-independent" (Some "Acme")
    (P.majority_vendor (List.rev ballot));
  List.iter
    (fun b ->
      Alcotest.(check (option string)) "3-way tie, any order" (Some "A")
        (P.majority_vendor b))
    [
      [ ("B", 1); ("A", 1); ("C", 1) ];
      [ ("C", 1); ("B", 1); ("A", 1) ];
      [ ("A", 1); ("C", 1); ("B", 1) ];
    ];
  Alcotest.(check (option string)) "empty ballot" None (P.majority_vendor [])

(* Snapshot ingest: of_scans over the early scans, extend with the
   late ones; findings must exactly match a from-scratch run over the
   combined corpus, and the cached forest must grow by one segment
   (no rebuild of old trees). *)
let test_extend_matches_full () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  let cutoff = X509lite.Date.of_ymd 2014 1 1 in
  let early, late =
    List.partition
      (fun (s : Sc.scan) -> X509lite.Date.(s.Sc.scan_date < cutoff))
      scans
  in
  Alcotest.(check bool) "both halves non-empty" true (early <> [] && late <> []);
  let p0 = P.of_scans world early in
  let pe = P.extend p0 late in
  Alcotest.(check int) "one delta segment added"
    (P.gcd_segment_count p0.P.gcd + 1)
    (P.gcd_segment_count pe.P.gcd);
  Alcotest.(check int) "corpus grew" (Array.length pe.P.corpus)
    (Corpus.Store.size pe.P.store);
  Alcotest.(check bool) "extend = from-scratch over union" true
    (Batchgcd.Batch_gcd.findings_equal pe.P.findings
       (Batchgcd.Batch_gcd.factor_subsets ~k:16 pe.P.corpus));
  (* agree with the one-shot pipeline's findings, index-insensitively:
     its corpus interleaves non-HTTPS moduli at a different position *)
  let p = pipeline () in
  let key f =
    N.to_hex f.Batchgcd.Batch_gcd.modulus
    ^ "/"
    ^ N.to_hex f.Batchgcd.Batch_gcd.divisor
  in
  let set fs = List.sort_uniq String.compare (List.map key fs) in
  Alcotest.(check (list string)) "same modulus/divisor set"
    (set p.P.findings) (set pe.P.findings);
  Array.iter
    (fun m ->
      Alcotest.(check bool) "is_vulnerable agrees with one-shot pipeline"
        (P.is_vulnerable p m) (P.is_vulnerable pe m))
    pe.P.corpus

let with_temp_dir f =
  let dir = Filename.temp_file "weakkeys-ckpt" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* Checkpoint round trip: a rerun over the identical corpus restores
   the GCD artifact instead of recomputing, and every downstream
   number is identical. *)
let test_checkpoint_resume () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  let subset = List.filteri (fun i _ -> i mod 6 = 0) scans in
  with_temp_dir (fun dir ->
      let p1 = P.of_scans ~checkpoint_dir:dir world subset in
      let computed =
        List.exists
          (fun (tm : Weakkeys.Stage.timing) ->
            tm.Weakkeys.Stage.stage = "batchgcd"
            && not tm.Weakkeys.Stage.restored)
          p1.P.timings
      in
      Alcotest.(check bool) "first run computes" true computed;
      let p2 = P.of_scans ~checkpoint_dir:dir world subset in
      let restored =
        List.exists
          (fun (tm : Weakkeys.Stage.timing) ->
            tm.Weakkeys.Stage.stage = "batchgcd" && tm.Weakkeys.Stage.restored)
          p2.P.timings
      in
      Alcotest.(check bool) "gcd stage restored on rerun" true restored;
      Alcotest.(check bool) "findings identical" true
        (Batchgcd.Batch_gcd.findings_equal p1.P.findings p2.P.findings);
      Alcotest.(check string) "table1 identical" (Weakkeys.Report.table1 p1)
        (Weakkeys.Report.table1 p2);
      Alcotest.(check string) "bit-error section identical"
        (Weakkeys.Report.bit_error_section p1)
        (Weakkeys.Report.bit_error_section p2))

(* Sharded GCD is an internal representation choice: running the
   pipeline with ?shards must leave every downstream artifact —
   findings, the merged evidence table, the rendered tables — exactly
   equal to the flat run, across scan subsets ("seeds") and shard
   counts, including through extend. *)
let test_sharded_pipeline_equal () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  List.iter
    (fun (modulo, phase) ->
      let subset = List.filteri (fun i _ -> i mod modulo = phase) scans in
      let flat = P.of_scans world subset in
      List.iter
        (fun shards ->
          let sh = P.of_scans ~shards world subset in
          (match sh.P.gcd with
          | P.Sharded t ->
            Alcotest.(check bool)
              (Printf.sprintf "shards bounded (mod %d, %d shards)" modulo
                 shards)
              true
              (Batchgcd.Sharded.shard_count t <= shards)
          | P.Flat _ -> Alcotest.fail "expected a sharded gcd state");
          Alcotest.(check bool)
            (Printf.sprintf "findings equal (mod %d, %d shards)" modulo shards)
            true
            (Batchgcd.Batch_gcd.findings_equal flat.P.findings sh.P.findings);
          Alcotest.(check bool)
            (Printf.sprintf "attributions equal (mod %d, %d shards)" modulo
               shards)
            true
            (Fingerprint.Attribution.equal_evidence flat.P.attribution
               sh.P.attribution);
          Alcotest.(check string) "table1 identical"
            (Weakkeys.Report.table1 flat)
            (Weakkeys.Report.table1 sh))
        [ 2; 8 ])
    [ (5, 0); (5, 1); (5, 2) ]

(* The kernel-threshold contract behind WEAKKEYS_HGCD_THRESHOLD /
   WEAKKEYS_NTT_THRESHOLD (the env knobs set these same refs at module
   init): forcing the Lehmer GCD and the NTT multiply onto every
   operand size must leave the full pipeline's findings — and a
   rendered report table, byte for byte — identical to the default
   dispatch, across three scan subsets ("seeds", the same convention
   as the sharded test above). *)
let test_kernel_thresholds_pipeline_equal () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  let with_min_kernel_thresholds f =
    let h0 = !N.hgcd_threshold and n0 = !N.ntt_threshold in
    N.hgcd_threshold := 1;
    N.ntt_threshold := 1;
    Fun.protect
      ~finally:(fun () ->
        N.hgcd_threshold := h0;
        N.ntt_threshold := n0)
      f
  in
  List.iter
    (fun phase ->
      let subset = List.filteri (fun i _ -> i mod 5 = phase) scans in
      let default = P.of_scans world subset in
      let forced = with_min_kernel_thresholds (fun () -> P.of_scans world subset) in
      Alcotest.(check bool)
        (Printf.sprintf "findings equal (seed %d)" phase)
        true
        (Batchgcd.Batch_gcd.findings_equal default.P.findings forced.P.findings);
      Alcotest.(check bool)
        (Printf.sprintf "attributions equal (seed %d)" phase)
        true
        (Fingerprint.Attribution.equal_evidence default.P.attribution
           forced.P.attribution);
      Alcotest.(check string)
        (Printf.sprintf "table1 byte-identical (seed %d)" phase)
        (Weakkeys.Report.table1 default)
        (Weakkeys.Report.table1 forced))
    [ 0; 1; 2 ]

(* extend on a sharded pipeline continues in sharded mode and still
   matches the flat pipeline extended with the same snapshot. *)
let test_sharded_extend_matches_flat () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  let cutoff = X509lite.Date.of_ymd 2014 1 1 in
  let early, late =
    List.partition
      (fun (s : Sc.scan) -> X509lite.Date.(s.Sc.scan_date < cutoff))
      scans
  in
  let flat = P.extend (P.of_scans world early) late in
  let sh = P.extend (P.of_scans ~shards:4 world early) late in
  (match sh.P.gcd with
  | P.Sharded _ -> ()
  | P.Flat _ -> Alcotest.fail "extend left sharded mode");
  Alcotest.(check bool) "findings equal after extend" true
    (Batchgcd.Batch_gcd.findings_equal flat.P.findings sh.P.findings);
  Alcotest.(check bool) "attributions equal after extend" true
    (Fingerprint.Attribution.equal_evidence flat.P.attribution
       sh.P.attribution)

(* Pinning the sweep to a named backend must leave every rendered
   artifact — the findings, the attribution table, the report tables —
   byte-identical to the default dispatch, flat and sharded, and
   through extend. *)
let test_backend_pipeline_equal () =
  let world = Lazy.force Worlds.small in
  let scans = Lazy.force Worlds.small_scans in
  let subset = List.filteri (fun i _ -> i mod 3 = 0) scans in
  let default = P.of_scans world subset in
  List.iter
    (fun backend ->
      let p = P.of_scans ~backend world subset in
      Alcotest.(check bool)
        (Printf.sprintf "findings equal (%s)" backend)
        true
        (Batchgcd.Batch_gcd.findings_equal default.P.findings p.P.findings);
      Alcotest.(check string)
        (Printf.sprintf "table4 byte-identical (%s)" backend)
        (Weakkeys.Report.table4 default)
        (Weakkeys.Report.table4 p);
      Alcotest.(check string)
        (Printf.sprintf "table1 byte-identical (%s)" backend)
        (Weakkeys.Report.table1 default)
        (Weakkeys.Report.table1 p))
    [ "tree"; "ksubset"; "all_to_all" ];
  let sharded = P.of_scans ~shards:4 ~backend:"all_to_all" world subset in
  Alcotest.(check bool) "sharded all_to_all findings equal" true
    (Batchgcd.Batch_gcd.findings_equal default.P.findings sharded.P.findings);
  let cutoff = X509lite.Date.of_ymd 2014 1 1 in
  let early, late =
    List.partition
      (fun (s : Sc.scan) -> X509lite.Date.(s.Sc.scan_date < cutoff))
      scans
  in
  let flat = P.extend (P.of_scans world early) late in
  let a2a = P.extend ~backend:"all_to_all" (P.of_scans world early) late in
  Alcotest.(check bool) "all_to_all extend = tree extend" true
    (Batchgcd.Batch_gcd.findings_equal flat.P.findings a2a.P.findings);
  Alcotest.(check string) "table4 byte-identical after extend"
    (Weakkeys.Report.table4 flat)
    (Weakkeys.Report.table4 a2a);
  Alcotest.(check bool) "unknown backend rejected" true
    (try
       ignore (P.of_scans ~backend:"nope" world subset);
       false
     with Batchgcd.Backend.Unknown_backend "nope" -> true)

let tests =
  [
    Alcotest.test_case "majority vendor tie-break" `Quick
      test_majority_vendor_tie_break;
    Alcotest.test_case "findings = ground truth" `Slow
      test_findings_match_ground_truth;
    Alcotest.test_case "vulnerable counts sane" `Slow test_vulnerable_counts_sane;
    Alcotest.test_case "vendor labels vs world" `Slow
      test_vendor_labeling_against_world;
    Alcotest.test_case "heartbleed drop largest" `Slow
      test_heartbleed_drop_is_largest;
    Alcotest.test_case "juniper shape" `Slow test_juniper_series_shape;
    Alcotest.test_case "newly vulnerable rise" `Slow test_newly_vulnerable_rise;
    Alcotest.test_case "ibm clique found" `Slow test_ibm_clique_found;
    Alcotest.test_case "ibm/siemens overlap" `Slow test_ibm_siemens_overlap;
    Alcotest.test_case "table4 shape" `Slow test_table4_shape;
    Alcotest.test_case "report renders" `Slow test_report_renders;
    Alcotest.test_case "table5 styles" `Slow test_table5_ground_truth_styles;
    Alcotest.test_case "extend = full recompute" `Slow test_extend_matches_full;
    Alcotest.test_case "checkpoint resume" `Slow test_checkpoint_resume;
    Alcotest.test_case "sharded pipeline = flat" `Slow
      test_sharded_pipeline_equal;
    Alcotest.test_case "min kernel thresholds = default" `Slow
      test_kernel_thresholds_pipeline_equal;
    Alcotest.test_case "sharded extend = flat extend" `Slow
      test_sharded_extend_matches_flat;
    Alcotest.test_case "backend pipeline = default" `Slow
      test_backend_pipeline_equal;
  ]
