let () =
  Alcotest.run "weakkeys"
    [
      ("nat", Test_nat.tests);
      ("montgomery", Test_montgomery.tests);
      ("zz", Test_zz.tests);
      ("prime", Test_prime.tests);
      ("hashes", Test_hashes.tests);
      ("entropy", Test_entropy.tests);
      ("rsa", Test_rsa.tests);
      ("x509", Test_x509.tests);
      ("batchgcd", Test_batchgcd.tests);
      ("netsim", Test_netsim.tests);
      ("fingerprint", Test_fingerprint.tests);
      ("attribution", Test_attribution.tests);
      ("analysis", Test_analysis.tests);
      ("pipeline", Test_pipeline.tests);
      ("golden", Test_golden.tests);
      ("export", Test_export.tests);
      ("lint", Test_lint.tests);
    ]
