(* Tests for the weakkeys-lint engine: one flagged and one clean
   fixture per rule, plus suppression-comment handling and the
   string/comment false-positive cases the lexer must survive. The
   fixtures live in OCaml string literals, which also demonstrates why
   the linter itself can safely scan this file. *)

module E = Lint.Engine
module R = Lint.Rules

let rules_of ?(path = "lib/netsim/world.ml") ?mli_exists src =
  List.map (fun (f : E.finding) -> f.E.rule) (E.lint_source ~path ?mli_exists src)

let flags rule ?path ?mli_exists src = List.mem rule (rules_of ?path ?mli_exists src)

let check_flagged name rule ?path ?mli_exists src =
  Alcotest.(check bool) name true (flags rule ?path ?mli_exists src)

let check_clean name rule ?path ?mli_exists src =
  Alcotest.(check bool) name false (flags rule ?path ?mli_exists src)

(* ------------------------------------------------------------------ *)
(* Catalogue sanity                                                    *)
(* ------------------------------------------------------------------ *)

let test_catalogue () =
  Alcotest.(check int) "thirteen rules" 13 (List.length R.all);
  Alcotest.(check int) "ids unique"
    (List.length R.all)
    (List.length (List.sort_uniq String.compare
                    (List.map (fun (r : R.t) -> r.R.id) R.all)));
  Alcotest.(check bool) "find known" true (R.find "det-random" <> None);
  Alcotest.(check bool) "find unknown" true (R.find "no-such-rule" = None)

(* ------------------------------------------------------------------ *)
(* Rule fixtures                                                       *)
(* ------------------------------------------------------------------ *)

let test_det_random () =
  check_flagged "ambient RNG" "det-random" "let x = Random.int 5";
  check_flagged "self_init" "det-random" "let () = Random.self_init ()";
  check_flagged "Stdlib-qualified" "det-random" "let x = Stdlib.Random.bits ()";
  check_flagged "self-seeding state" "det-random"
    "let st = Random.State.make_self_init ()";
  check_clean "det.ml is exempt" "det-random" ~path:"lib/netsim/det.ml"
    "let x = Random.int 5";
  check_clean "seeded explicit state" "det-random"
    "let st = Random.State.make [| seed |] in Random.State.int st 256";
  check_clean "own module named random" "det-random"
    "let x = My_random.int 5"

let test_phys_equal () =
  check_flagged "==" "phys-equal" "let f a b = a == b";
  check_flagged "!=" "phys-equal" "let f a b = a != b";
  check_clean "structural =" "phys-equal" "let f a b = a = b && a <> b";
  check_clean "deref then compare" "phys-equal" "let f r s = !r = !s";
  check_clean "inside string" "phys-equal" {|let s = "p != 1 mod e"|};
  check_clean "inside comment" "phys-equal" "(* a == b *) let x = 1"

let test_poly_compare () =
  let path = "lib/bignum/prime.ml" in
  check_flagged "bare compare" "poly-compare" ~path "let f a b = compare a b";
  check_flagged "Stdlib.compare" "poly-compare" ~path
    "let f a b = Stdlib.compare a b";
  check_clean "module-specific" "poly-compare" ~path "let f a b = Nat.compare a b";
  check_clean "locally defined compare" "poly-compare" ~path
    "let compare a b = go a b\nlet max a b = if compare a b >= 0 then a else b";
  check_clean "out of scope" "poly-compare" ~path:"lib/analysis/dataset.ml"
    "let f a b = compare a b"

let test_catchall_exn () =
  check_flagged "swallows all" "catchall-exn" "let f () = try g () with _ -> 0";
  check_flagged "leading bar" "catchall-exn"
    "let f () = try g () with | _ -> 0";
  check_clean "specific exception" "catchall-exn"
    "let f () = try g () with Not_found -> 0";
  check_clean "named binder" "catchall-exn"
    "let f () = try g () with _e -> log _e; raise _e";
  check_clean "match wildcard is fine" "catchall-exn"
    "let f x = match x with _ -> 0";
  check_clean "record update with" "catchall-exn"
    "let f r = { r with field = 1 }";
  check_flagged "try inside match" "catchall-exn"
    "let f x = match try g x with _ -> None with Some y -> y | None -> 0"

let test_lib_stdout () =
  let path = "lib/core/pipeline.ml" in
  check_flagged "printf" "lib-stdout" ~path {|let () = Printf.printf "x"|};
  check_flagged "print_endline" "lib-stdout" ~path {|let () = print_endline "x"|};
  check_clean "sprintf is pure" "lib-stdout" ~path {|let s = Printf.sprintf "x"|};
  check_clean "formatter pp is fine" "lib-stdout" ~path
    "let pp fmt t = Format.pp_print_string fmt t";
  check_clean "binaries may print" "lib-stdout" ~path:"bin/weakkeys_cli.ml"
    {|let () = Printf.printf "x"|}

let test_failwith_outside_exn () =
  check_flagged "plain function" "failwith-outside-exn"
    {|let parse x = failwith "bad"|};
  check_clean "_exn function" "failwith-outside-exn"
    {|let parse_exn x = failwith "bad"|};
  check_clean "helper inside _exn" "failwith-outside-exn"
    "let parse_exn x =\n  let go y = failwith \"bad\" in\n  go x"

let test_toplevel_ref () =
  check_flagged "top-level ref" "toplevel-ref" "let counter = ref 0";
  check_clean "local ref" "toplevel-ref" "let f () =\n  let c = ref 0 in\n  !c";
  check_clean "tests may use refs" "toplevel-ref" ~path:"test/test_x.ml"
    "let counter = ref 0"

let test_missing_mli () =
  check_flagged "no interface" "missing-mli" ~path:"lib/rsa/keypair.ml"
    ~mli_exists:false "let x = 1";
  check_clean "interface present" "missing-mli" ~path:"lib/rsa/keypair.ml"
    ~mli_exists:true "let x = 1";
  check_clean "tests need no mli" "missing-mli" ~path:"test/test_x.ml"
    ~mli_exists:false "let x = 1";
  check_clean "unknown on snippets" "missing-mli" ~path:"lib/rsa/keypair.ml"
    "let x = 1"

let test_nontail_append () =
  let path = "lib/batchgcd/product_tree.ml" in
  check_flagged "@ operator" "nontail-append" ~path "let f a b = a @ b";
  check_flagged "List.append" "nontail-append" ~path "let f a b = List.append a b";
  check_flagged "world.ml is hot" "nontail-append" ~path:"lib/netsim/world.ml"
    "let f a b = a @ b";
  check_clean "@@ is not @" "nontail-append" ~path "let f x = g @@ x";
  check_clean "attribute bracket" "nontail-append" ~path
    {|let f x = (x [@warning "-8"])|};
  check_clean "cold modules may append" "nontail-append"
    ~path:"lib/analysis/dataset.ml" "let f a b = a @ b"

let test_domain_outside_parallel () =
  check_flagged "spawn in batchgcd" "domain-outside-parallel"
    ~path:"lib/batchgcd/batch_gcd.ml" "let d = Domain.spawn f";
  check_flagged "join in tests" "domain-outside-parallel"
    ~path:"test/test_batchgcd.ml" "let () = Domain.join d";
  check_flagged "Stdlib-qualified" "domain-outside-parallel"
    ~path:"lib/netsim/world.ml" "let d = Stdlib.Domain.spawn f";
  check_clean "pool implementation is exempt" "domain-outside-parallel"
    ~path:"lib/parallel/pool.ml" "let d = Domain.spawn f";
  check_clean "other Domain functions are fine" "domain-outside-parallel"
    ~path:"lib/batchgcd/batch_gcd.ml"
    "let n = Domain.recommended_domain_count ()";
  check_clean "own module named Domain_x" "domain-outside-parallel"
    ~path:"lib/netsim/world.ml" "let d = Domain_pool.spawn f"

let test_todo_issue_tag () =
  check_flagged "untagged TODO" "todo-issue-tag" "(* TODO: fix *) let x = 1";
  check_flagged "untagged FIXME" "todo-issue-tag" "(* FIXME broken *) let x = 1";
  check_clean "tagged TODO" "todo-issue-tag" "(* TODO(#42): fix *) let x = 1";
  check_clean "TODO in string" "todo-issue-tag" {|let s = "TODO later"|};
  check_clean "lowercase identifier" "todo-issue-tag" "let todo = 1"

let test_limbs_keyed_hashtbl () =
  let path = "lib/core/pipeline.ml" in
  check_flagged "replace with to_limbs key" "limbs-keyed-hashtbl" ~path
    "let () = Hashtbl.replace tbl (N.to_limbs m) ()";
  check_flagged "find_opt with to_limbs key" "limbs-keyed-hashtbl" ~path
    "let c = Hashtbl.find_opt counts (Bignum.Nat.to_limbs pr)";
  check_flagged "int array key type" "limbs-keyed-hashtbl" ~path
    "let tbl : (int array, unit) Hashtbl.t = Hashtbl.create 16";
  check_clean "lib/corpus owns the boundary" "limbs-keyed-hashtbl"
    ~path:"lib/corpus/store.ml"
    "let () = Hashtbl.replace tbl (N.to_limbs m) ()";
  check_clean "string-keyed table" "limbs-keyed-hashtbl" ~path
    "let tbl : (string, int) Hashtbl.t = Hashtbl.create 16";
  check_clean "int array as value type" "limbs-keyed-hashtbl" ~path
    "let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16";
  check_clean "to_limbs without a table" "limbs-keyed-hashtbl" ~path
    "let limbs = N.to_limbs m in Array.length limbs"

let test_fingerprint_outside_registry () =
  let rule = "fingerprint-outside-registry" in
  let path = "lib/core/report.ml" in
  check_flagged "qualified technique call" rule ~path
    "let ds = Fingerprint.Rimon.detect scans";
  check_flagged "unqualified inside an opened module" rule ~path
    "let cs = Ibm_clique.detect factored";
  check_flagged "binaries are in scope" rule ~path:"bin/weakkeys_cli.ml"
    "let l = Fingerprint.Rules.of_certificate cert";
  check_clean "artifact reads are legal" rule ~path
    "let os = Fingerprint.Shared_prime.overlaps shared";
  check_clean "registry implementation is exempt" rule
    ~path:"lib/fingerprint/registry.ml" "let ds = Rimon.detect ctx.scans";
  check_clean "tests exercise techniques directly" rule
    ~path:"test/test_export.ml"
    "let ds = Fingerprint.Rimon.detect ~min_ips:5 scans"

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

let test_suppressions () =
  check_clean "trailing same line" "det-random"
    "let x = Random.int 5 (* lint: allow det-random *)";
  check_clean "line above" "det-random"
    "(* lint: allow det-random *)\nlet x = Random.int 5";
  check_flagged "wrong rule id" "det-random"
    "(* lint: allow phys-equal *)\nlet x = Random.int 5";
  check_flagged "too far above" "det-random"
    "(* lint: allow det-random *)\nlet y = 1\nlet x = Random.int 5";
  check_clean "several ids, first" "det-random"
    "(* lint: allow det-random, phys-equal *)\nlet x = Random.int 5 == y";
  check_clean "several ids, second" "phys-equal"
    "(* lint: allow det-random, phys-equal *)\nlet x = Random.int 5 == y";
  check_clean "justification prose" "toplevel-ref"
    "let c = ref 0 (* lint: allow toplevel-ref for a tuning knob *)"

(* ------------------------------------------------------------------ *)
(* Positions and output formats                                        *)
(* ------------------------------------------------------------------ *)

let test_positions_and_output () =
  let src = "(* multi\n   line\n   comment *)\nlet f a b = a == b\n" in
  (match E.lint_source ~path:"lib/x/y.ml" src with
  | [ f ] ->
    Alcotest.(check int) "line past multi-line comment" 4 f.E.line;
    Alcotest.(check string) "rule id" "phys-equal" f.E.rule
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  let fs = E.lint_source ~path:"lib/x/y.ml" "let a = Random.int 5" in
  let json = E.to_json fs in
  Alcotest.(check bool) "json names rule" true
    (let sub = {|"rule": "det-random"|} in
     let rec search i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || search (i + 1))
     in
     search 0);
  Alcotest.(check bool) "text has summary" true
    (String.length (E.to_text fs) > 0);
  Alcotest.(check string) "clean json is empty array" "[\n]" (E.to_json [])

let tests =
  [
    Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "det-random" `Quick test_det_random;
    Alcotest.test_case "phys-equal" `Quick test_phys_equal;
    Alcotest.test_case "poly-compare" `Quick test_poly_compare;
    Alcotest.test_case "catchall-exn" `Quick test_catchall_exn;
    Alcotest.test_case "lib-stdout" `Quick test_lib_stdout;
    Alcotest.test_case "failwith-outside-exn" `Quick test_failwith_outside_exn;
    Alcotest.test_case "toplevel-ref" `Quick test_toplevel_ref;
    Alcotest.test_case "missing-mli" `Quick test_missing_mli;
    Alcotest.test_case "nontail-append" `Quick test_nontail_append;
    Alcotest.test_case "domain-outside-parallel" `Quick
      test_domain_outside_parallel;
    Alcotest.test_case "todo-issue-tag" `Quick test_todo_issue_tag;
    Alcotest.test_case "limbs-keyed-hashtbl" `Quick test_limbs_keyed_hashtbl;
    Alcotest.test_case "fingerprint-outside-registry" `Quick
      test_fingerprint_outside_registry;
    Alcotest.test_case "suppressions" `Quick test_suppressions;
    Alcotest.test_case "positions-and-output" `Quick test_positions_and_output;
  ]
