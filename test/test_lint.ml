(* Tests for the weakkeys-lint engine: one flagged and one clean
   fixture per rule, plus suppression-comment handling and the
   string/comment false-positive cases the lexer must survive. The
   fixtures live in OCaml string literals, which also demonstrates why
   the linter itself can safely scan this file. *)

module E = Lint.Engine
module R = Lint.Rules

let rules_of ?(path = "lib/netsim/world.ml") ?mli_exists src =
  List.map (fun (f : E.finding) -> f.E.rule) (E.lint_source ~path ?mli_exists src)

let flags rule ?path ?mli_exists src = List.mem rule (rules_of ?path ?mli_exists src)

let check_flagged name rule ?path ?mli_exists src =
  Alcotest.(check bool) name true (flags rule ?path ?mli_exists src)

let check_clean name rule ?path ?mli_exists src =
  Alcotest.(check bool) name false (flags rule ?path ?mli_exists src)

(* ------------------------------------------------------------------ *)
(* Catalogue sanity                                                    *)
(* ------------------------------------------------------------------ *)

let test_catalogue () =
  Alcotest.(check int) "sixteen lexical rules" 16 (List.length R.all);
  Alcotest.(check int) "four deep analyses" 4 (List.length R.deep);
  let ids = List.map (fun (r : R.t) -> r.R.id) (R.all @ R.deep) in
  Alcotest.(check int) "ids unique"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  Alcotest.(check bool) "find known" true (R.find "det-random" <> None);
  Alcotest.(check bool) "find deep" true (R.find "pool-capture-race" <> None);
  Alcotest.(check bool) "find unknown" true (R.find "no-such-rule" = None)

(* ------------------------------------------------------------------ *)
(* Rule fixtures                                                       *)
(* ------------------------------------------------------------------ *)

let test_det_random () =
  check_flagged "ambient RNG" "det-random" "let x = Random.int 5";
  check_flagged "self_init" "det-random" "let () = Random.self_init ()";
  check_flagged "Stdlib-qualified" "det-random" "let x = Stdlib.Random.bits ()";
  check_flagged "self-seeding state" "det-random"
    "let st = Random.State.make_self_init ()";
  check_clean "det.ml is exempt" "det-random" ~path:"lib/netsim/det.ml"
    "let x = Random.int 5";
  check_clean "seeded explicit state" "det-random"
    "let st = Random.State.make [| seed |] in Random.State.int st 256";
  check_clean "own module named random" "det-random"
    "let x = My_random.int 5"

let test_phys_equal () =
  check_flagged "==" "phys-equal" "let f a b = a == b";
  check_flagged "!=" "phys-equal" "let f a b = a != b";
  check_clean "structural =" "phys-equal" "let f a b = a = b && a <> b";
  check_clean "deref then compare" "phys-equal" "let f r s = !r = !s";
  check_clean "inside string" "phys-equal" {|let s = "p != 1 mod e"|};
  check_clean "inside comment" "phys-equal" "(* a == b *) let x = 1"

let test_poly_compare () =
  let path = "lib/bignum/prime.ml" in
  check_flagged "bare compare" "poly-compare" ~path "let f a b = compare a b";
  check_flagged "Stdlib.compare" "poly-compare" ~path
    "let f a b = Stdlib.compare a b";
  check_clean "module-specific" "poly-compare" ~path "let f a b = Nat.compare a b";
  check_clean "locally defined compare" "poly-compare" ~path
    "let compare a b = go a b\nlet max a b = if compare a b >= 0 then a else b";
  check_clean "out of scope" "poly-compare" ~path:"lib/analysis/dataset.ml"
    "let f a b = compare a b"

let test_catchall_exn () =
  check_flagged "swallows all" "catchall-exn" "let f () = try g () with _ -> 0";
  check_flagged "leading bar" "catchall-exn"
    "let f () = try g () with | _ -> 0";
  check_clean "specific exception" "catchall-exn"
    "let f () = try g () with Not_found -> 0";
  check_clean "named binder" "catchall-exn"
    "let f () = try g () with _e -> log _e; raise _e";
  check_clean "match wildcard is fine" "catchall-exn"
    "let f x = match x with _ -> 0";
  check_clean "record update with" "catchall-exn"
    "let f r = { r with field = 1 }";
  check_flagged "try inside match" "catchall-exn"
    "let f x = match try g x with _ -> None with Some y -> y | None -> 0"

let test_lib_stdout () =
  let path = "lib/core/pipeline.ml" in
  check_flagged "printf" "lib-stdout" ~path {|let () = Printf.printf "x"|};
  check_flagged "print_endline" "lib-stdout" ~path {|let () = print_endline "x"|};
  check_clean "sprintf is pure" "lib-stdout" ~path {|let s = Printf.sprintf "x"|};
  check_clean "formatter pp is fine" "lib-stdout" ~path
    "let pp fmt t = Format.pp_print_string fmt t";
  check_clean "binaries may print" "lib-stdout" ~path:"bin/weakkeys_cli.ml"
    {|let () = Printf.printf "x"|}

let test_failwith_outside_exn () =
  check_flagged "plain function" "failwith-outside-exn"
    {|let parse x = failwith "bad"|};
  check_clean "_exn function" "failwith-outside-exn"
    {|let parse_exn x = failwith "bad"|};
  check_clean "helper inside _exn" "failwith-outside-exn"
    "let parse_exn x =\n  let go y = failwith \"bad\" in\n  go x";
  (* the structure parser tracks nested [let ... in] chains, so a
     raising helper inside a non-_exn function is caught even though
     the column-0 binding looks innocent *)
  check_flagged "nested helper in plain function" "failwith-outside-exn"
    "let outer x =\n  let helper y = failwith \"bad\" in\n  helper x";
  check_clean "nested _exn helper sanctions its body" "failwith-outside-exn"
    "let outer x =\n\
    \  let go_exn y = failwith \"bad\" in\n\
    \  try go_exn x with Failure _ -> 0";
  check_flagged "deeply nested" "failwith-outside-exn"
    "let outer x =\n\
    \  let mid y =\n\
    \    let inner z = failwith \"bad\" in\n\
    \    inner y\n\
    \  in\n\
    \  mid x"

let test_toplevel_ref () =
  check_flagged "top-level ref" "toplevel-ref" "let counter = ref 0";
  check_clean "local ref" "toplevel-ref" "let f () =\n  let c = ref 0 in\n  !c";
  check_clean "tests may use refs" "toplevel-ref" ~path:"test/test_x.ml"
    "let counter = ref 0"

let test_missing_mli () =
  check_flagged "no interface" "missing-mli" ~path:"lib/rsa/keypair.ml"
    ~mli_exists:false "let x = 1";
  check_clean "interface present" "missing-mli" ~path:"lib/rsa/keypair.ml"
    ~mli_exists:true "let x = 1";
  check_clean "tests need no mli" "missing-mli" ~path:"test/test_x.ml"
    ~mli_exists:false "let x = 1";
  check_clean "unknown on snippets" "missing-mli" ~path:"lib/rsa/keypair.ml"
    "let x = 1"

let test_nontail_append () =
  let path = "lib/batchgcd/product_tree.ml" in
  check_flagged "@ operator" "nontail-append" ~path "let f a b = a @ b";
  check_flagged "List.append" "nontail-append" ~path "let f a b = List.append a b";
  check_flagged "world.ml is hot" "nontail-append" ~path:"lib/netsim/world.ml"
    "let f a b = a @ b";
  check_flagged "fingerprint is hot" "nontail-append"
    ~path:"lib/fingerprint/attribution.ml" "let f a b = a @ b";
  check_flagged "corpus is hot" "nontail-append" ~path:"lib/corpus/store.ml"
    "let f a b = List.append a b";
  check_clean "@@ is not @" "nontail-append" ~path "let f x = g @@ x";
  check_clean "attribute bracket" "nontail-append" ~path
    {|let f x = (x [@warning "-8"])|};
  check_clean "cold modules may append" "nontail-append"
    ~path:"lib/analysis/dataset.ml" "let f a b = a @ b"

let test_domain_outside_parallel () =
  check_flagged "spawn in batchgcd" "domain-outside-parallel"
    ~path:"lib/batchgcd/batch_gcd.ml" "let d = Domain.spawn f";
  check_flagged "join in tests" "domain-outside-parallel"
    ~path:"test/test_batchgcd.ml" "let () = Domain.join d";
  check_flagged "Stdlib-qualified" "domain-outside-parallel"
    ~path:"lib/netsim/world.ml" "let d = Stdlib.Domain.spawn f";
  check_clean "pool implementation is exempt" "domain-outside-parallel"
    ~path:"lib/parallel/pool.ml" "let d = Domain.spawn f";
  check_clean "other Domain functions are fine" "domain-outside-parallel"
    ~path:"lib/batchgcd/batch_gcd.ml"
    "let n = Domain.recommended_domain_count ()";
  check_clean "own module named Domain_x" "domain-outside-parallel"
    ~path:"lib/netsim/world.ml" "let d = Domain_pool.spawn f"

let test_todo_issue_tag () =
  check_flagged "untagged TODO" "todo-issue-tag" "(* TODO: fix *) let x = 1";
  check_flagged "untagged FIXME" "todo-issue-tag" "(* FIXME broken *) let x = 1";
  check_clean "tagged TODO" "todo-issue-tag" "(* TODO(#42): fix *) let x = 1";
  check_clean "TODO in string" "todo-issue-tag" {|let s = "TODO later"|};
  check_clean "lowercase identifier" "todo-issue-tag" "let todo = 1"

let test_limbs_keyed_hashtbl () =
  let path = "lib/core/pipeline.ml" in
  check_flagged "replace with to_limbs key" "limbs-keyed-hashtbl" ~path
    "let () = Hashtbl.replace tbl (N.to_limbs m) ()";
  check_flagged "find_opt with to_limbs key" "limbs-keyed-hashtbl" ~path
    "let c = Hashtbl.find_opt counts (Bignum.Nat.to_limbs pr)";
  check_flagged "int array key type" "limbs-keyed-hashtbl" ~path
    "let tbl : (int array, unit) Hashtbl.t = Hashtbl.create 16";
  check_clean "lib/corpus owns the boundary" "limbs-keyed-hashtbl"
    ~path:"lib/corpus/store.ml"
    "let () = Hashtbl.replace tbl (N.to_limbs m) ()";
  check_clean "string-keyed table" "limbs-keyed-hashtbl" ~path
    "let tbl : (string, int) Hashtbl.t = Hashtbl.create 16";
  check_clean "int array as value type" "limbs-keyed-hashtbl" ~path
    "let tbl : (string, int array) Hashtbl.t = Hashtbl.create 16";
  check_clean "to_limbs without a table" "limbs-keyed-hashtbl" ~path
    "let limbs = N.to_limbs m in Array.length limbs"

let test_boxed_limb_array () =
  let rule = "boxed-limb-array" in
  let path = "lib/batchgcd/incremental.ml" in
  check_flagged "matrix of limb vectors" rule ~path
    "let segs : int array array = collect t";
  check_flagged "list of limb vectors" rule ~path
    "type t = { pending : int array list }";
  check_flagged "binaries are in scope" rule ~path:"bin/weakkeys_cli.ml"
    "let batches : int array array = load path";
  check_clean "bignum kernels are exempt" rule ~path:"lib/bignum/toom.ml"
    "let scratch : int array array = Array.make k [||]";
  check_clean "the arena owns bulk storage" rule ~path:"lib/corpus/arena.ml"
    "let pending : int array list = queued t";
  check_clean "plain limb vector" rule ~path
    "let limbs : int array = N.to_limbs m";
  check_clean "hashtbl key type is the other rule" rule ~path
    "let tbl : (int array, int) Hashtbl.t = Hashtbl.create 7";
  check_clean "inside a comment" rule ~path "(* int array array *) let x = 1"

let test_fingerprint_outside_registry () =
  let rule = "fingerprint-outside-registry" in
  let path = "lib/core/report.ml" in
  check_flagged "qualified technique call" rule ~path
    "let ds = Fingerprint.Rimon.detect scans";
  check_flagged "unqualified inside an opened module" rule ~path
    "let cs = Ibm_clique.detect factored";
  check_flagged "binaries are in scope" rule ~path:"bin/weakkeys_cli.ml"
    "let l = Fingerprint.Rules.of_certificate cert";
  check_clean "artifact reads are legal" rule ~path
    "let os = Fingerprint.Shared_prime.overlaps shared";
  check_clean "registry implementation is exempt" rule
    ~path:"lib/fingerprint/registry.ml" "let ds = Rimon.detect ctx.scans";
  check_clean "tests exercise techniques directly" rule
    ~path:"test/test_export.ml"
    "let ds = Fingerprint.Rimon.detect ~min_ips:5 scans"

let test_gcd_outside_nat () =
  let rule = "gcd-outside-nat" in
  let path = "lib/batchgcd/batch_gcd.ml" in
  check_flagged "qualified variant call" rule ~path
    "let g = Nat.gcd_binary m z";
  check_flagged "fully qualified variant call" rule ~path
    "let g = Bignum.Nat.gcd_euclid m z";
  check_flagged "unqualified inside an opened module" rule ~path
    "let g = gcd_lehmer m z";
  check_flagged "hand-rolled Euclid loop" rule ~path
    "let rec gcd a b = if N.is_zero b then a else gcd b (N.rem a b)";
  check_flagged "binaries are in scope" rule ~path:"bin/weakkeys_cli.ml"
    "let g = Nat.gcd_euclid m z";
  check_clean "dispatcher call is the sanctioned path" rule ~path
    "let g = Nat.gcd m z";
  check_clean "non-rec alias of the dispatcher" rule ~path
    "let gcd = N.gcd";
  check_clean "gcd-prefixed identifiers are not kernels" rule
    ~path:"lib/core/pipeline.ml"
    "let gcd_findings = function Some g -> g.findings | None -> []";
  check_clean "kernel implementations are exempt" rule
    ~path:"lib/bignum/nat.ml"
    "let gcd a b = if small b then gcd_binary a b else gcd_lehmer a b";
  check_clean "ablation bench is exempt" rule ~path:"bench/main.ml"
    "let r = N.gcd_euclid a b";
  check_clean "equivalence tests are exempt" rule ~path:"test/test_nat.ml"
    "let bin = N.gcd_binary a b"

let test_batchgcd_outside_backend () =
  let rule = "batchgcd-outside-backend" in
  check_flagged "qualified entry point in lib/core" rule
    ~path:"lib/core/pipeline.ml"
    "let fs = Batchgcd.Batch_gcd.factor_batch ~pool corpus";
  check_flagged "short-qualified entry point" rule ~path:"lib/core/report.ml"
    "let fs = BG.factor_subsets ~k:4 sample";
  check_flagged "binaries are in scope" rule ~path:"bin/weakkeys_cli.ml"
    "let fs = Batchgcd.Batch_gcd.factor_subsets ~k moduli";
  check_flagged "forest seeding entry point" rule ~path:"lib/core/pipeline.ml"
    "let segs, fs = BG.factor_subsets_trees ~pool ~k corpus";
  check_clean "registry projection is the sanctioned path" rule
    ~path:"lib/core/pipeline.ml"
    "let fs = Batchgcd.Backend.factor b ~pool corpus";
  check_clean "backend implementations are exempt" rule
    ~path:"lib/batchgcd/backend.ml"
    "let tree_factor ?pool ?domains ms = BG.factor_batch ?pool ?domains ms";
  check_clean "shootout bench is exempt" rule ~path:"bench/main.ml"
    "let fs = Batchgcd.Batch_gcd.factor_batch ~pool corpus";
  check_clean "equality tests are exempt" rule ~path:"test/test_batchgcd.ml"
    "let fs = BG.factor_subsets ~k:3 moduli";
  check_clean "factor-prefixed identifiers are not entry points" rule
    ~path:"lib/core/pipeline.ml"
    "let factor_batches = List.length batches"

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

let test_suppressions () =
  check_clean "trailing same line" "det-random"
    "let x = Random.int 5 (* lint: allow det-random *)";
  check_clean "line above" "det-random"
    "(* lint: allow det-random *)\nlet x = Random.int 5";
  check_flagged "wrong rule id" "det-random"
    "(* lint: allow phys-equal *)\nlet x = Random.int 5";
  check_flagged "too far above" "det-random"
    "(* lint: allow det-random *)\nlet y = 1\nlet x = Random.int 5";
  check_clean "several ids, first" "det-random"
    "(* lint: allow det-random, phys-equal *)\nlet x = Random.int 5 == y";
  check_clean "several ids, second" "phys-equal"
    "(* lint: allow det-random, phys-equal *)\nlet x = Random.int 5 == y";
  check_clean "justification prose" "toplevel-ref"
    "let c = ref 0 (* lint: allow toplevel-ref for a tuning knob *)"

(* ------------------------------------------------------------------ *)
(* Deep analyses (whole-program, via lint_units)                       *)
(* ------------------------------------------------------------------ *)

let deep_findings units =
  E.lint_units ~deep:true
    (List.map
       (fun (p, s) -> { E.src_path = p; mli_exists = None; src = s })
       units)

let deep_flags rule path units =
  List.exists
    (fun (f : E.finding) -> f.E.rule = rule && f.E.path = path)
    (deep_findings units)

let check_deep_flagged name rule path units =
  Alcotest.(check bool) name true (deep_flags rule path units)

let check_deep_clean name rule path units =
  Alcotest.(check bool) name false (deep_flags rule path units)

let test_layering () =
  let corpus = ("lib/corpus/store.ml", "let create () = 1") in
  (* corpus-arena is the bottom layer: its only sanctioned edge is the
     allow-listed one to bignum, so reaching the pool is upward *)
  check_deep_flagged "synthetic upward edge" "layer-violation"
    "lib/corpus/uses_pool.ml"
    [ ("lib/parallel/pool.ml", "let go f = f ()");
      ("lib/corpus/uses_pool.ml", "let x = Parallel.Pool.go (fun () -> 1)") ];
  check_deep_clean "downward edge is legal" "layer-violation"
    "lib/batchgcd/uses.ml"
    [ corpus; ("lib/batchgcd/uses.ml", "let y = Corpus.Store.create ()") ];
  (* the committed allow-list covers the corpus -> bignum storage edge *)
  check_deep_clean "corpus -> bignum allow-listed" "layer-violation"
    "lib/corpus/uses.ml"
    [ ("lib/bignum/nat_extra.ml", "let x = 1");
      ("lib/corpus/uses.ml", "let y = Bignum.Nat_extra.x") ];
  (* netsim -> fingerprint points downward but is skip-listed *)
  check_deep_flagged "skip-listed edge" "layer-violation"
    "lib/netsim/world_extra.ml"
    [ ("lib/fingerprint/rimon.ml", "let detect xs = xs");
      ("lib/netsim/world_extra.ml",
       "let d = Fingerprint.Rimon.detect []") ];
  (* the committed allow-list covers the real bignum -> parallel trade *)
  check_deep_clean "allow-listed edge" "layer-violation" "lib/bignum/nat_extra.ml"
    [ ("lib/parallel/pool.ml", "let go f = f ()");
      ("lib/bignum/nat_extra.ml", "let x = Parallel.Pool.go (fun () -> 1)") ]

let test_pool_capture_race () =
  let rule = "pool-capture-race" in
  let path = "lib/analysis/histo_extra.ml" in
  check_deep_flagged "closure mutating captured ref" rule path
    [ ( path,
        "let total = ref 0 (* lint: allow toplevel-ref *)\n\
         let run pool xs =\n\
        \  Parallel.Pool.map ~pool (fun x -> total := !total + x; x) xs" ) ];
  check_deep_clean "accumulator-free equivalent" rule path
    [ (path, "let run pool xs = Parallel.Pool.map ~pool (fun x -> x * 2) xs") ];
  check_deep_clean "disjoint element writes are sanctioned" rule path
    [ ( path,
        "let run pool out n =\n\
        \  Parallel.Pool.parallel_for pool 0 n (fun i -> out.(i) <- i)" ) ];
  check_deep_flagged "named function with IO" rule path
    [ ( path,
        "let log_it x = Printf.printf \"%d\" x (* lint: allow lib-stdout *)\n\
         let run pool xs = Parallel.Pool.map ~pool log_it xs" ) ];
  check_deep_flagged "transitive mutation through a callee" rule path
    [ ( path,
        "let tbl = Hashtbl.create 3\n\
         let memo x = Hashtbl.replace tbl x x\n\
         let step x = memo x; x\n\
         let run pool xs = Parallel.Pool.map ~pool step xs" ) ];
  check_deep_clean "pure named function" rule path
    [ ( path,
        "let double x = x * 2\n\
         let run pool xs = Parallel.Pool.map ~pool double xs" ) ]

let test_pass_ctx_mutation () =
  let rule = "pass-ctx-mutation" in
  let path = "lib/fingerprint/pass_extra.ml" in
  check_deep_flagged "field store through ctx" rule path
    [ (path, "let run ctx attr =\n  ctx.cache <- 1;\n  attr") ];
  check_deep_flagged "Hashtbl.replace on a ctx field" rule path
    [ (path, "let run ctx attr = Hashtbl.replace ctx.tbl 1 2; attr") ];
  check_deep_clean "pass-local table is fine" rule path
    [ ( path,
        "let run ctx attr =\n\
        \  let t = Hashtbl.create 3 in\n\
        \  Hashtbl.replace t 1 2;\n\
        \  attr" ) ];
  check_deep_clean "reads are fine" rule path
    [ (path, "let run ctx attr = Hashtbl.find_opt ctx.tbl 1") ];
  check_deep_clean "other directories are out of scope" rule
    "lib/analysis/pass_extra.ml"
    [ ("lib/analysis/pass_extra.ml", "let run ctx attr = ctx.cache <- 1; attr") ]

let test_unused_suppression () =
  let rule = "unused-suppression" in
  let path = "lib/analysis/sup_extra.ml" in
  check_deep_flagged "planted stale directive" rule path
    [ (path, "(* lint: allow det-random *)\nlet x = 1") ];
  check_deep_clean "directive that fires" rule path
    [ (path, "(* lint: allow det-random *)\nlet x = Random.int 5") ];
  check_deep_clean "justification prose is not an id" rule path
    [ ( path,
        "let c = ref 0 (* lint: allow toplevel-ref for a tuning knob *)" ) ];
  (* shallow runs never audit: the directive set is only meaningful
     against the full finding set *)
  Alcotest.(check bool) "no audit in shallow mode" false
    (List.exists
       (fun (f : E.finding) -> f.E.rule = rule)
       (E.lint_source ~path "(* lint: allow det-random *)\nlet x = 1"))

(* ------------------------------------------------------------------ *)
(* JSON round-trip and baseline                                        *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let fs =
    E.lint_source ~path:"lib/x/y.ml"
      "let f a b = a == b\nlet g = Random.int 5\nlet s = \"quote \\\" here\""
  in
  Alcotest.(check bool) "fixture has findings" true (fs <> []);
  (match E.findings_of_json (E.to_json fs) with
  | Ok fs' ->
    Alcotest.(check int) "same count" (List.length fs) (List.length fs');
    List.iter2
      (fun (a : E.finding) (b : E.finding) ->
        Alcotest.(check string) "rule" a.E.rule b.E.rule;
        Alcotest.(check string) "path" a.E.path b.E.path;
        Alcotest.(check int) "line" a.E.line b.E.line;
        Alcotest.(check string) "message" a.E.message b.E.message;
        Alcotest.(check string) "hint" a.E.hint b.E.hint;
        Alcotest.(check bool) "severity" true (a.E.severity = b.E.severity))
      fs fs'
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (match E.findings_of_json "nonsense" with
  | Ok _ -> Alcotest.fail "parsed nonsense"
  | Error _ -> ());
  match E.findings_of_json "[\n]" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty array should have no findings"
  | Error e -> Alcotest.failf "empty array: %s" e

module B = Lint.Baseline

let test_baseline_compare () =
  let f1 = ("r1", "a.ml", "m1") and f2 = ("r2", "b.ml", "m2") in
  let base = B.of_findings [ f1; f1; f2 ] in
  Alcotest.(check int) "two entries" 2 (List.length base);
  Alcotest.(check int) "duplicate counted"
    2 (List.hd base).B.count;
  let all_matched = B.compare_run base [ f1; f2 ] in
  Alcotest.(check int) "no fresh" 0 (List.length all_matched.B.fresh);
  Alcotest.(check int) "no stale" 0 (List.length all_matched.B.stale);
  let one_gone = B.compare_run base [ f1 ] in
  Alcotest.(check int) "f2 is stale" 1 (List.length one_gone.B.stale);
  Alcotest.(check string) "stale entry is f2" "r2"
    (List.hd one_gone.B.stale).B.rule;
  let one_new = B.compare_run base [ f1; f2; ("r3", "c.ml", "m3") ] in
  (match one_new.B.fresh with
  | [ ("r3", "c.ml", "m3") ] -> ()
  | _ -> Alcotest.fail "expected exactly the r3 finding to be fresh");
  (* round-trip through disk *)
  let file = Filename.temp_file "weakkeys_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      B.save file base;
      match B.load file with
      | Ok base' ->
        Alcotest.(check int) "reload count" (List.length base)
          (List.length base');
        List.iter2
          (fun (a : B.entry) (b : B.entry) ->
            Alcotest.(check string) "rule" a.B.rule b.B.rule;
            Alcotest.(check string) "path" a.B.path b.B.path;
            Alcotest.(check string) "message" a.B.message b.B.message;
            Alcotest.(check int) "count" a.B.count b.B.count)
          base base'
      | Error e -> Alcotest.failf "reload failed: %s" e);
  (match B.load "/no/such/baseline.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ());
  match Result.bind (Lint.Json.parse "{\"not\": \"a list\"}") B.of_json with
  | Ok _ -> Alcotest.fail "accepted a non-array baseline"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Exit codes, through the installed binary                            *)
(* ------------------------------------------------------------------ *)

let lint_exe = Filename.concat (Filename.concat ".." "bin") "weakkeys_lint.exe"

let run_lint args =
  Sys.command
    (Filename.quote lint_exe ^ " " ^ args ^ " > /dev/null 2> /dev/null")

let with_tmpdir f =
  let dir = Filename.temp_file "weakkeys_lint_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let ( // ) = Filename.concat

let test_exit_codes () =
  if not (Sys.file_exists lint_exe) then
    Alcotest.fail "linter binary not built (dune dep missing)"
  else
    with_tmpdir (fun dir ->
        write_file (dir // "clean.ml") "let x = 1\n";
        Alcotest.(check int) "clean tree exits 0" 0
          (run_lint (Filename.quote (dir // "clean.ml")));
        write_file (dir // "bad.ml") "let f a b = a == b\n";
        Alcotest.(check int) "findings exit 1" 1
          (run_lint (Filename.quote dir));
        Alcotest.(check int) "findings exit 1 with --json" 1
          (run_lint ("--json " ^ Filename.quote dir));
        Alcotest.(check int) "unknown flag exits 2" 2
          (run_lint "--no-such-flag");
        Alcotest.(check int) "missing path exits 2" 2
          (run_lint (Filename.quote (dir // "nope"))))

let test_baseline_workflow () =
  if not (Sys.file_exists lint_exe) then
    Alcotest.fail "linter binary not built (dune dep missing)"
  else
    with_tmpdir (fun dir ->
        let bad = dir // "bad.ml" in
        let base = dir // "base.json" in
        write_file bad "let f a b = a == b\n";
        Alcotest.(check int) "--write-baseline exits 0" 0
          (run_lint
             (Printf.sprintf "--deep --write-baseline %s %s"
                (Filename.quote base) (Filename.quote dir)));
        Alcotest.(check int) "baselined run exits 0" 0
          (run_lint
             (Printf.sprintf "--deep --baseline %s %s" (Filename.quote base)
                (Filename.quote dir)));
        (* a fresh finding not in the baseline fails the run *)
        write_file (dir // "worse.ml") "let g a b = a != b\n";
        Alcotest.(check int) "fresh finding exits 1" 1
          (run_lint
             (Printf.sprintf "--deep --baseline %s %s" (Filename.quote base)
                (Filename.quote dir)));
        Sys.remove (dir // "worse.ml");
        (* fixing the baselined finding makes its entry stale, which
           also fails: the ratchet only moves by editing the file *)
        write_file bad "let f a b = a = b\n";
        Alcotest.(check int) "stale entry exits 1" 1
          (run_lint
             (Printf.sprintf "--deep --baseline %s %s" (Filename.quote base)
                (Filename.quote dir)));
        Alcotest.(check int) "malformed baseline exits 2" 2
          (write_file base "{ not an array ";
           run_lint
             (Printf.sprintf "--deep --baseline %s %s" (Filename.quote base)
                (Filename.quote dir))))

(* ------------------------------------------------------------------ *)
(* Positions and output formats                                        *)
(* ------------------------------------------------------------------ *)

let test_positions_and_output () =
  let src = "(* multi\n   line\n   comment *)\nlet f a b = a == b\n" in
  (match E.lint_source ~path:"lib/x/y.ml" src with
  | [ f ] ->
    Alcotest.(check int) "line past multi-line comment" 4 f.E.line;
    Alcotest.(check string) "rule id" "phys-equal" f.E.rule
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  let fs = E.lint_source ~path:"lib/x/y.ml" "let a = Random.int 5" in
  let json = E.to_json fs in
  Alcotest.(check bool) "json names rule" true
    (let sub = {|"rule": "det-random"|} in
     let rec search i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || search (i + 1))
     in
     search 0);
  Alcotest.(check bool) "text has summary" true
    (String.length (E.to_text fs) > 0);
  Alcotest.(check string) "clean json is empty array" "[\n]" (E.to_json [])

let tests =
  [
    Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "det-random" `Quick test_det_random;
    Alcotest.test_case "phys-equal" `Quick test_phys_equal;
    Alcotest.test_case "poly-compare" `Quick test_poly_compare;
    Alcotest.test_case "catchall-exn" `Quick test_catchall_exn;
    Alcotest.test_case "lib-stdout" `Quick test_lib_stdout;
    Alcotest.test_case "failwith-outside-exn" `Quick test_failwith_outside_exn;
    Alcotest.test_case "toplevel-ref" `Quick test_toplevel_ref;
    Alcotest.test_case "missing-mli" `Quick test_missing_mli;
    Alcotest.test_case "nontail-append" `Quick test_nontail_append;
    Alcotest.test_case "domain-outside-parallel" `Quick
      test_domain_outside_parallel;
    Alcotest.test_case "todo-issue-tag" `Quick test_todo_issue_tag;
    Alcotest.test_case "limbs-keyed-hashtbl" `Quick test_limbs_keyed_hashtbl;
    Alcotest.test_case "boxed-limb-array" `Quick test_boxed_limb_array;
    Alcotest.test_case "fingerprint-outside-registry" `Quick
      test_fingerprint_outside_registry;
    Alcotest.test_case "gcd-outside-nat" `Quick test_gcd_outside_nat;
    Alcotest.test_case "batchgcd-outside-backend" `Quick
      test_batchgcd_outside_backend;
    Alcotest.test_case "suppressions" `Quick test_suppressions;
    Alcotest.test_case "positions-and-output" `Quick test_positions_and_output;
    Alcotest.test_case "layering" `Quick test_layering;
    Alcotest.test_case "pool-capture-race" `Quick test_pool_capture_race;
    Alcotest.test_case "pass-ctx-mutation" `Quick test_pass_ctx_mutation;
    Alcotest.test_case "unused-suppression" `Quick test_unused_suppression;
    Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "baseline-compare" `Quick test_baseline_compare;
    Alcotest.test_case "exit-codes" `Quick test_exit_codes;
    Alcotest.test_case "baseline-workflow" `Quick test_baseline_workflow;
  ]
