(* Unit and property tests for Nat: ring axioms, division invariants,
   Karatsuba vs schoolbook, Burnikel-Ziegler vs Knuth D, conversions. *)

module N = Bignum.Nat

let nat = Alcotest.testable N.pp N.equal

(* Deterministic byte generator for reproducible random Nats. *)
let mk_gen seed =
  let st = Random.State.make [| seed |] in
  fun n -> String.init n (fun _ -> Char.chr (Random.State.int st 256))

(* QCheck generator: random Nat with size up to [max_bits] bits. *)
let arb_nat ?(max_bits = 700) () =
  let open QCheck2.Gen in
  int_range 0 max_bits >>= fun bits ->
  if bits = 0 then return N.zero
  else
    let bytes = (bits + 7) / 8 in
    map
      (fun s -> N.random_bits (fun _ -> s) bits)
      (string_size ~gen:(map Char.chr (int_range 0 255)) (return bytes))

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen f)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_small_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check (option int)) "to_int (of_int i)" (Some i)
        (N.to_int (N.of_int i)))
    [ 0; 1; 2; 41; 1 lsl 30; (1 lsl 31) - 1; 1 lsl 31; 1 lsl 45; max_int ]

let test_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("decimal " ^ s) s (N.to_string (N.of_string s)))
    [
      "0";
      "1";
      "999999999";
      "1000000000";
      "123456789012345678901234567890";
      "340282366920938463463374607431768211456";
    ]

let test_hex () =
  Alcotest.(check string) "hex" "deadbeef" (N.to_hex (N.of_string "0xDEAD_BEEF"));
  Alcotest.(check string)
    "hex big" "123456789abcdef0123456789abcdef"
    (N.to_hex (N.of_string "0x0123456789abcdef0123456789abcdef"))

let test_bytes_roundtrip () =
  let x = N.of_string "0x0102030405060708090a0b0c0d0e0f" in
  Alcotest.check nat "bytes roundtrip" x (N.of_bytes_be (N.to_bytes_be x));
  Alcotest.(check string) "zero bytes" "" (N.to_bytes_be N.zero)

let test_known_arithmetic () =
  let a = N.of_string "123456789123456789123456789" in
  let b = N.of_string "987654321987654321" in
  Alcotest.(check string)
    "mul" "121932631356500531469135800347203169112635269"
    (N.to_string (N.mul a b));
  let q, r = N.divmod a b in
  Alcotest.(check string) "div" "124999998" (N.to_string q);
  Alcotest.(check string) "rem" "850308642973765431" (N.to_string r);
  Alcotest.check nat "a = q*b + r" a (N.add (N.mul q b) r)

let test_pow () =
  Alcotest.(check string)
    "2^128" "340282366920938463463374607431768211456"
    (N.to_string (N.pow N.two 128));
  Alcotest.check nat "x^0 = 1" N.one (N.pow (N.of_int 12345) 0)

let test_shift_consistency () =
  let x = N.of_string "0xfedcba9876543210fedcba9876543210" in
  Alcotest.check nat "shl then shr" x (N.shift_right (N.shift_left x 77) 77);
  Alcotest.check nat "shl = mul 2^k" (N.mul x (N.pow N.two 77))
    (N.shift_left x 77)

let test_sub_negative_raises () =
  Alcotest.check_raises "sub raises" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (N.sub N.one N.two))

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (N.divmod N.one N.zero))

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (N.num_bits N.zero);
  Alcotest.(check int) "bits 1" 1 (N.num_bits N.one);
  Alcotest.(check int) "bits 2^31" 32 (N.num_bits (N.shift_left N.one 31));
  Alcotest.(check int) "bits 2^100-1" 100
    (N.num_bits (N.sub (N.shift_left N.one 100) N.one))

let test_sqrt_exact () =
  let x = N.of_string "123456789123456789" in
  let s = N.sqrt (N.sqr x) in
  Alcotest.check nat "sqrt of square" x s

let test_gcd_known () =
  let p = N.of_string "1000000007" in
  let a = N.mul p (N.of_string "999999937") in
  let b = N.mul p (N.of_string "1000000021") in
  Alcotest.check nat "shared prime" p (N.gcd a b);
  Alcotest.check nat "euclid agrees" (N.gcd a b) (N.gcd_euclid a b);
  Alcotest.check nat "gcd 0 b" b (N.gcd N.zero b);
  Alcotest.check nat "gcd a 0" a (N.gcd a N.zero)

let test_invert_mod () =
  let m = N.of_string "1000000007" in
  let a = N.of_string "123456789" in
  (match N.invert_mod a m with
  | None -> Alcotest.fail "inverse must exist mod prime"
  | Some x -> Alcotest.check nat "a*x = 1" N.one (N.rem (N.mul a x) m));
  Alcotest.(check bool)
    "no inverse when gcd > 1" true
    (N.invert_mod (N.of_int 6) (N.of_int 9) = None)

let test_pow_mod_fermat () =
  (* Fermat: a^(p-1) = 1 mod p for prime p not dividing a. *)
  let p = N.of_string "170141183460469231731687303715884105727" (* 2^127-1 *) in
  let a = N.of_string "123456789123456789" in
  Alcotest.check nat "fermat" N.one (N.pow_mod a (N.sub p N.one) p)

let test_random_below_in_range () =
  let gen = mk_gen 42 in
  let bound = N.of_string "987654321987654321987654321" in
  for _ = 1 to 50 do
    let x = N.random_below gen bound in
    Alcotest.(check bool) "x < bound" true (N.compare x bound < 0)
  done

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let pair g = QCheck2.Gen.pair g g
let triple g = QCheck2.Gen.triple g g g

let props =
  let g = arb_nat () in
  [
    prop "add commutative" (pair g) (fun (a, b) -> N.equal (N.add a b) (N.add b a));
    prop "add associative" (triple g) (fun (a, b, c) ->
        N.equal (N.add a (N.add b c)) (N.add (N.add a b) c));
    prop "mul commutative" (pair g) (fun (a, b) -> N.equal (N.mul a b) (N.mul b a));
    prop "mul associative" ~count:100 (triple g) (fun (a, b, c) ->
        N.equal (N.mul a (N.mul b c)) (N.mul (N.mul a b) c));
    prop "distributivity" ~count:100 (triple g) (fun (a, b, c) ->
        N.equal (N.mul a (N.add b c)) (N.add (N.mul a b) (N.mul a c)));
    prop "add/sub inverse" (pair g) (fun (a, b) ->
        N.equal a (N.sub (N.add a b) b));
    prop "division invariant" (pair g) (fun (a, b) ->
        if N.is_zero b then true
        else begin
          let q, r = N.divmod a b in
          N.equal a (N.add (N.mul q b) r) && N.compare r b < 0
        end);
    prop "string roundtrip" g (fun a -> N.equal a (N.of_string (N.to_string a)));
    prop "hex roundtrip" g (fun a ->
        N.equal a (N.of_string ("0x" ^ N.to_hex a)));
    prop "bytes roundtrip" g (fun a -> N.equal a (N.of_bytes_be (N.to_bytes_be a)));
    prop "limbs roundtrip" g (fun a -> N.equal a (N.of_limbs (N.to_limbs a)));
    prop "gcd binary = euclid" (pair g) (fun (a, b) ->
        N.equal (N.gcd a b) (N.gcd_euclid a b));
    prop "gcd divides both" (pair g) (fun (a, b) ->
        if N.is_zero a && N.is_zero b then true
        else begin
          let gg = N.gcd a b in
          N.is_zero (N.rem a gg) && N.is_zero (N.rem b gg)
        end);
    prop "sqrt bounds" g (fun a ->
        let s = N.sqrt a in
        N.compare (N.sqr s) a <= 0
        && N.compare (N.sqr (N.add s N.one)) a > 0);
    prop "shift roundtrip" (QCheck2.Gen.pair g (QCheck2.Gen.int_range 0 200))
      (fun (a, k) -> N.equal a (N.shift_right (N.shift_left a k) k));
    prop "compare antisym" (pair g) (fun (a, b) ->
        N.compare a b = -N.compare b a);
  ]

(* Cross-check the kernels against each other by moving dispatch
   thresholds for the duration of a test. Every knob not passed is
   pinned so each test exercises exactly the ladder rung it names. *)
let with_kernels ?(kara = !N.karatsuba_threshold) ?(toom = max_int)
    ?(ntt = max_int) ?(bz = !N.burnikel_ziegler_threshold)
    ?(recip = !N.recip_threshold) ?(barrett = !N.barrett_threshold)
    ?(hgcd = !N.hgcd_threshold) f =
  let k0 = !N.karatsuba_threshold
  and t0 = !N.toom3_threshold
  and n0 = !N.ntt_threshold
  and b0 = !N.burnikel_ziegler_threshold
  and r0 = !N.recip_threshold
  and ba0 = !N.barrett_threshold
  and h0 = !N.hgcd_threshold in
  N.karatsuba_threshold := kara;
  N.toom3_threshold := toom;
  N.ntt_threshold := ntt;
  N.burnikel_ziegler_threshold := bz;
  N.recip_threshold := recip;
  N.barrett_threshold := barrett;
  N.hgcd_threshold := hgcd;
  Fun.protect
    ~finally:(fun () ->
      N.karatsuba_threshold := k0;
      N.toom3_threshold := t0;
      N.ntt_threshold := n0;
      N.burnikel_ziegler_threshold := b0;
      N.recip_threshold := r0;
      N.barrett_threshold := ba0;
      N.hgcd_threshold := h0)
    f

let with_thresholds km bz f = with_kernels ~kara:km ~bz f

let test_karatsuba_vs_schoolbook () =
  let gen = mk_gen 7 in
  for _ = 1 to 30 do
    let a = N.random_bits gen 4000 and b = N.random_bits gen 3500 in
    let fast = with_thresholds 4 1000 (fun () -> N.mul a b) in
    let slow = with_thresholds 100000 1000 (fun () -> N.mul a b) in
    Alcotest.check nat "karatsuba = schoolbook" slow fast
  done

let test_bz_vs_knuth () =
  let gen = mk_gen 9 in
  for _ = 1 to 20 do
    let a = N.random_bits gen 9000 and b = N.random_bits gen 2500 in
    let fast_q, fast_r = with_thresholds 4 4 (fun () -> N.divmod a b) in
    let slow_q, slow_r = with_thresholds 24 100000 (fun () -> N.divmod a b) in
    Alcotest.check nat "bz quotient = knuth" slow_q fast_q;
    Alcotest.check nat "bz remainder = knuth" slow_r fast_r
  done

let test_bz_balanced_and_edge_shapes () =
  let gen = mk_gen 11 in
  List.iter
    (fun (abits, bbits) ->
      let a = N.random_bits gen abits and b = N.add (N.random_bits gen bbits) N.one in
      let q, r = with_thresholds 4 4 (fun () -> N.divmod a b) in
      Alcotest.check nat "invariant" a (N.add (N.mul q b) r);
      Alcotest.(check bool) "r < b" true (N.compare r b < 0))
    [
      (5000, 5000); (5000, 4999); (5000, 2501); (5000, 2500); (10000, 1300);
      (2600, 2600); (2600, 1300); (1, 5000); (0, 5000); (5000, 1);
    ]

(* Toom-3 against Karatsuba and schoolbook across shapes straddling
   the dispatch boundaries: balanced at/around a lowered threshold,
   unbalanced enough to fall back to Karatsuba, aliased operands. *)
let test_toom3_vs_karatsuba () =
  let gen = mk_gen 13 in
  List.iter
    (fun (abits, bbits) ->
      let a = N.random_bits gen abits and b = N.random_bits gen bbits in
      let school =
        with_kernels ~kara:max_int (fun () -> N.mul a b)
      in
      let kara = with_kernels ~kara:4 (fun () -> N.mul a b) in
      let toom = with_kernels ~kara:4 ~toom:8 (fun () -> N.mul a b) in
      Alcotest.check nat "karatsuba = schoolbook" school kara;
      Alcotest.check nat "toom3 = schoolbook" school toom;
      let sq_school = with_kernels ~kara:max_int (fun () -> N.sqr a) in
      let sq_toom = with_kernels ~kara:4 ~toom:8 (fun () -> N.sqr a) in
      Alcotest.check nat "sqr toom3 = schoolbook" sq_school sq_toom;
      let mul_self = with_kernels ~kara:4 ~toom:8 (fun () -> N.mul a a) in
      Alcotest.check nat "sqr = mul a a (aliased)" sq_toom mul_self)
    [
      (200, 200); (247, 247); (248, 248); (249, 230); (300, 160);
      (4000, 3500); (6000, 1000); (5000, 5000); (5000, 0);
    ]

(* Around the default 96-limb boundary with production thresholds:
   2976 bits is exactly 96 limbs. *)
let test_toom3_default_boundary () =
  let gen = mk_gen 15 in
  List.iter
    (fun bits ->
      let a = N.random_bits gen bits and b = N.random_bits gen bits in
      let def = with_kernels ~toom:!N.toom3_threshold (fun () -> N.mul a b) in
      let kara = with_kernels (fun () -> N.mul a b) in
      Alcotest.check nat "default ladder = karatsuba-only" kara def)
    [ 2940; 2976; 3007; 6200 ]

(* Cross-kernel GCD equivalence: the Lehmer/half-GCD dispatch, the
   binary loop and pure Euclid must agree pairwise on 10k random pairs
   whose sizes straddle the hgcd threshold, plus the structured edge
   shapes (equal, zero, one-limb, shared factor, powers of two). The
   hgcd threshold is dropped to 1 so even small pairs exercise the
   Lehmer rounds. *)
let test_hgcd_equivalence () =
  let gen = mk_gen 37 in
  let st = Random.State.make [| 41 |] in
  let check_triple tag a b =
    let h = with_kernels ~hgcd:1 (fun () -> N.gcd a b) in
    let bin = N.gcd_binary a b in
    if not (N.equal h bin) then
      Alcotest.failf "%s: hgcd <> binary (a=%s b=%s)" tag (N.to_hex a)
        (N.to_hex b);
    if not (N.equal h (N.gcd_euclid a b)) then
      Alcotest.failf "%s: hgcd <> euclid (a=%s b=%s)" tag (N.to_hex a)
        (N.to_hex b)
  in
  for i = 1 to 10_000 do
    (* Sizes from one bit to ~700 bits: the default threshold is 8
       limbs = 248 bits, so both sides of the dispatch get hit even
       before the ~hgcd:1 override. *)
    let bits () = 1 + Random.State.int st 700 in
    let a = N.random_bits gen (bits ()) and b = N.random_bits gen (bits ()) in
    let a, b =
      match i mod 10 with
      | 0 -> (a, a) (* equal *)
      | 1 -> (a, N.zero)
      | 2 -> (N.zero, b)
      | 3 -> (a, N.of_int (1 + Random.State.int st 100)) (* one-limb *)
      | 4 ->
        (* planted shared factor: the batch-GCD leaf shape *)
        let f = N.add (N.random_bits gen 120) N.one in
        (N.mul a f, N.mul b f)
      | 5 ->
        (* shared power of two, stressing the common-shift bookkeeping *)
        let k = Random.State.int st 80 in
        (N.shift_left a k, N.shift_left b k)
      | 6 -> (N.mul a b, b) (* exact multiple: gcd = b *)
      | _ -> (a, b)
    in
    check_triple (Printf.sprintf "pair %d" i) a b
  done;
  (* A few large pairs so several Lehmer rounds run back to back. *)
  for i = 1 to 10 do
    let a = N.random_bits gen 6000 and b = N.random_bits gen 6000 in
    check_triple (Printf.sprintf "large %d" i) a b
  done

(* The default dispatch (threshold 8) against binary on
   batch-GCD-shaped inputs: modulus x (z below modulus^2). *)
let test_hgcd_default_dispatch () =
  let gen = mk_gen 43 in
  for _ = 1 to 50 do
    let m = N.add (N.random_bits gen 2048) N.one in
    let z = N.rem (N.random_bits gen 4096) (N.sqr m) in
    Alcotest.check nat "default gcd = binary" (N.gcd_binary m z) (N.gcd m z)
  done

(* NTT against Toom-3, Karatsuba and schoolbook on sizes bracketing
   every threshold, including all-ones operands (maximal convolution
   coefficients, the worst case for the CRT carry chain), unbalanced
   shapes that must fall back, and aliased squaring. *)
let test_ntt_vs_toom3 () =
  let gen = mk_gen 47 in
  List.iter
    (fun (abits, bbits) ->
      let a = N.random_bits gen abits and b = N.random_bits gen bbits in
      let school = with_kernels ~kara:max_int (fun () -> N.mul a b) in
      let kara = with_kernels ~kara:4 (fun () -> N.mul a b) in
      let toom = with_kernels ~kara:4 ~toom:8 (fun () -> N.mul a b) in
      let ntt = with_kernels ~kara:4 ~ntt:8 (fun () -> N.mul a b) in
      Alcotest.check nat "karatsuba = schoolbook" school kara;
      Alcotest.check nat "toom3 = schoolbook" school toom;
      Alcotest.check nat "ntt = schoolbook" school ntt;
      let sq_school = with_kernels ~kara:max_int (fun () -> N.sqr a) in
      let sq_ntt = with_kernels ~kara:4 ~ntt:8 (fun () -> N.sqr a) in
      Alcotest.check nat "sqr ntt = schoolbook" sq_school sq_ntt;
      let mul_self = with_kernels ~kara:4 ~ntt:8 (fun () -> N.mul a a) in
      Alcotest.check nat "sqr = mul a a (aliased)" sq_ntt mul_self)
    [
      (200, 200); (247, 247); (248, 248); (249, 230); (300, 160);
      (4000, 3500); (6000, 1000); (5000, 5000); (5000, 0); (5000, 2600);
      (* one piece, piece boundaries, transform-size power-of-two edges *)
      (14, 14); (15, 15); (16, 16); (960, 960); (961, 961);
    ];
  (* all-ones operands: every 15-bit piece is 2^15 - 1, so convolution
     coefficients and the carry chain peak *)
  List.iter
    (fun bits ->
      let a = N.sub (N.shift_left N.one bits) N.one in
      let toom = with_kernels ~kara:4 ~toom:8 (fun () -> N.mul a a) in
      let ntt = with_kernels ~kara:4 ~ntt:8 (fun () -> N.mul a a) in
      Alcotest.check nat "all-ones ntt = toom3" toom ntt;
      Alcotest.check nat "all-ones sqr"
        (with_kernels ~kara:4 ~toom:8 (fun () -> N.sqr a))
        (with_kernels ~kara:4 ~ntt:8 (fun () -> N.sqr a)))
    [ 496; 4096; 7688 ]

(* Around the default 2048-limb boundary with production thresholds:
   63488 bits is exactly 2048 limbs. Toom-3 alone vs the full ladder
   with the NTT rung live. *)
let test_ntt_default_boundary () =
  let gen = mk_gen 53 in
  List.iter
    (fun bits ->
      let a = N.random_bits gen bits and b = N.random_bits gen bits in
      let toom =
        with_kernels ~toom:!N.toom3_threshold (fun () -> N.mul a b)
      in
      let ladder =
        with_kernels ~toom:!N.toom3_threshold ~ntt:!N.ntt_threshold (fun () ->
            N.mul a b)
      in
      Alcotest.check nat "default ladder = toom3-only" toom ladder;
      Alcotest.check nat "sqr default ladder = toom3-only"
        (with_kernels ~toom:!N.toom3_threshold (fun () -> N.sqr a))
        (with_kernels ~toom:!N.toom3_threshold ~ntt:!N.ntt_threshold
           (fun () -> N.sqr a)))
    [ 63300; 63488; 63700; 127000 ]

let test_recip_bounds () =
  let gen = mk_gen 17 in
  with_kernels ~recip:4 (fun () ->
      List.iter
        (fun bits ->
          let b = N.add (N.random_bits gen bits) N.one in
          let n = N.size_limbs b in
          let q = N.recip b in
          let beta2n = N.shift_left N.one (2 * n * N.limb_bits) in
          Alcotest.(check bool)
            "q*b <= beta^2n" true
            (N.compare (N.mul q b) beta2n <= 0);
          Alcotest.(check bool)
            "(q+1)*b > beta^2n" true
            (N.compare (N.mul (N.add q N.one) b) beta2n > 0))
        (* below/at/above the lowered recursion base, through several
           doublings, plus a power of two and a top-heavy divisor *)
        [ 31; 124; 125; 155; 300; 1000; 4000 ]);
  Alcotest.check nat "recip 1" (N.shift_left N.one (2 * N.limb_bits))
    (N.recip N.one);
  Alcotest.check_raises "recip 0" Division_by_zero (fun () ->
      ignore (N.recip N.zero))

let test_rem_precomp_matches_rem () =
  let gen = mk_gen 19 in
  with_kernels ~recip:4 ~barrett:6 (fun () ->
      List.iter
        (fun dlimbs ->
          (* divisors one limb below/at/above the barrett cutoff *)
          let b = N.add (N.random_bits gen (dlimbs * N.limb_bits)) N.one in
          let p = N.precompute b in
          Alcotest.check nat "precomp_divisor" b (N.precomp_divisor p);
          List.iter
            (fun abits ->
              let a = N.random_bits gen abits in
              Alcotest.check nat
                (Printf.sprintf "rem_precomp %d-limb div, %d-bit a" dlimbs
                   abits)
                (N.rem a b) (N.rem_precomp a p))
            [ 0; 50; dlimbs * N.limb_bits; 2 * dlimbs * N.limb_bits;
              (7 * dlimbs * N.limb_bits / 2); 9 * dlimbs * N.limb_bits ])
        [ 5; 6; 7; 12; 40 ]);
  (* a = multiple of b reduces to zero through the barrett path *)
  with_kernels ~recip:4 ~barrett:4 (fun () ->
      let b = N.add (N.random_bits (mk_gen 23) 400) N.one in
      let p = N.precompute b in
      let a = N.mul b (N.random_bits (mk_gen 29) 900) in
      Alcotest.check nat "exact multiple" N.zero (N.rem_precomp a p))

(* Production-scale spot check: default thresholds, divisor above the
   48-limb barrett cutoff, dividend spanning several blocks. *)
let test_rem_precomp_default_thresholds () =
  let gen = mk_gen 31 in
  let b = N.add (N.random_bits gen 1600) N.one in
  let p = N.precompute b in
  List.iter
    (fun abits ->
      let a = N.random_bits gen abits in
      Alcotest.check nat "default-threshold rem_precomp" (N.rem a b)
        (N.rem_precomp a p))
    [ 1500; 1600; 3200; 9000 ]

let test_infix () =
  let open N.Infix in
  let a = N.of_int 100 and b = N.of_int 7 in
  Alcotest.check nat "+" (N.of_int 107) (a + b);
  Alcotest.check nat "-" (N.of_int 93) (a - b);
  Alcotest.check nat "*" (N.of_int 700) (a * b);
  Alcotest.check nat "/" (N.of_int 14) (a / b);
  Alcotest.check nat "mod" (N.of_int 2) (a mod b);
  Alcotest.(check bool) "<" true (b < a);
  Alcotest.(check bool) ">=" true (a >= a);
  Alcotest.(check bool) "=" false (a = b)

let tests =
  [
    Alcotest.test_case "small int roundtrip" `Quick test_small_roundtrip;
    Alcotest.test_case "decimal roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "hex" `Quick test_hex;
    Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    Alcotest.test_case "known mul/div" `Quick test_known_arithmetic;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "shifts" `Quick test_shift_consistency;
    Alcotest.test_case "sub negative raises" `Quick test_sub_negative_raises;
    Alcotest.test_case "divide by zero" `Quick test_divmod_by_zero;
    Alcotest.test_case "num_bits" `Quick test_num_bits;
    Alcotest.test_case "sqrt exact" `Quick test_sqrt_exact;
    Alcotest.test_case "gcd known" `Quick test_gcd_known;
    Alcotest.test_case "invert_mod" `Quick test_invert_mod;
    Alcotest.test_case "pow_mod fermat" `Quick test_pow_mod_fermat;
    Alcotest.test_case "random_below range" `Quick test_random_below_in_range;
    Alcotest.test_case "karatsuba vs schoolbook" `Slow test_karatsuba_vs_schoolbook;
    Alcotest.test_case "toom3 vs karatsuba/schoolbook" `Slow test_toom3_vs_karatsuba;
    Alcotest.test_case "toom3 default boundary" `Slow test_toom3_default_boundary;
    Alcotest.test_case "hgcd vs binary vs euclid" `Slow test_hgcd_equivalence;
    Alcotest.test_case "hgcd default dispatch" `Quick test_hgcd_default_dispatch;
    Alcotest.test_case "ntt vs toom3/karatsuba/schoolbook" `Slow test_ntt_vs_toom3;
    Alcotest.test_case "ntt default boundary" `Slow test_ntt_default_boundary;
    Alcotest.test_case "burnikel-ziegler vs knuth" `Slow test_bz_vs_knuth;
    Alcotest.test_case "division edge shapes" `Quick test_bz_balanced_and_edge_shapes;
    Alcotest.test_case "recip bounds" `Quick test_recip_bounds;
    Alcotest.test_case "rem_precomp vs rem" `Quick test_rem_precomp_matches_rem;
    Alcotest.test_case "rem_precomp default thresholds" `Quick
      test_rem_precomp_default_thresholds;
    Alcotest.test_case "infix operators" `Quick test_infix;
  ]
  @ props
